#ifndef FREQ_STREAM_EXACT_COUNTER_H
#define FREQ_STREAM_EXACT_COUNTER_H

/// \file exact_counter.h
/// Exact frequency oracle: the "trivial algorithm" of §4.1 that keeps one
/// counter per distinct identifier. Used as ground truth by the error
/// metrics, the tests, and the EXPERIMENTS harnesses — never by the sketches.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/update.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t>
class exact_counter {
public:
    using key_type = K;
    using weight_type = W;

    void update(K id, W weight) {
        counts_[id] += weight;
        total_weight_ += weight;
        ++num_updates_;
    }

    void consume(const update_stream<K, W>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    /// True frequency f_i (0 for identifiers that never appeared).
    W frequency(K id) const {
        const auto it = counts_.find(id);
        return it == counts_.end() ? W{0} : it->second;
    }

    /// N — the weighted stream length.
    W total_weight() const noexcept { return total_weight_; }
    /// n — the number of updates.
    std::uint64_t num_updates() const noexcept { return num_updates_; }
    /// Number of distinct identifiers.
    std::size_t num_distinct() const noexcept { return counts_.size(); }

    const std::unordered_map<K, W>& counts() const noexcept { return counts_; }

    /// Identifiers with f_i >= threshold — the true heavy hitter set.
    std::vector<K> heavy_hitters(W threshold) const {
        std::vector<K> out;
        for (const auto& [id, f] : counts_) {
            if (f >= threshold) {
                out.push_back(id);
            }
        }
        return out;
    }

    /// Top-j frequencies in descending order (for computing N^res(j)).
    std::vector<W> top_frequencies(std::size_t j) const {
        std::vector<W> freqs;
        freqs.reserve(counts_.size());
        for (const auto& [id, f] : counts_) {
            freqs.push_back(f);
        }
        std::sort(freqs.begin(), freqs.end(), std::greater<>());
        if (freqs.size() > j) {
            freqs.resize(j);
        }
        return freqs;
    }

    /// N^res(j): total weight minus the j largest frequencies (Lemma 2).
    W residual_weight(std::size_t j) const {
        W top{0};
        for (const W f : top_frequencies(j)) {
            top += f;
        }
        return total_weight_ - top;
    }

private:
    std::unordered_map<K, W> counts_;
    W total_weight_{0};
    std::uint64_t num_updates_ = 0;
};

}  // namespace freq

#endif  // FREQ_STREAM_EXACT_COUNTER_H
