#ifndef FREQ_STREAM_GENERATORS_H
#define FREQ_STREAM_GENERATORS_H

/// \file generators.h
/// Synthetic workload generators for the evaluation harnesses.
///
/// The paper's experiments (§4.1) use the CAIDA Anonymized Internet Traces
/// 2016 dataset, preprocessed into (source_ip, packet_size_in_bits) updates.
/// That dataset is not redistributable, so `caida_like_generator` synthesizes
/// a stream with the same relevant structure — a heavy-tailed (Zipf-like)
/// source-IP popularity distribution and a small-packet-dominated size
/// mixture — which the paper itself reports behaves "entirely similarly" to
/// the real traces (§4.1 / §4.2). `zipf_stream_generator` reproduces the
/// Fig. 4 merge workload: Zipf(alpha = 1.05) identifiers with uniform
/// weights in [1, 10000] (§4.5). `rbmc_pathology_generator` builds the §1.3.4
/// adversarial stream on which RBMC decrements on every update.
///
/// All generators are deterministic functions of their seed.

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/contracts.h"
#include "random/distributions.h"
#include "random/xoshiro.h"
#include "random/zipf.h"
#include "stream/update.h"

namespace freq {

/// Stream of Zipf-distributed identifiers with unit or uniform random
/// weights. Identifier values are scrambled (mixed) so that rank order does
/// not correlate with identifier value or hash slot.
class zipf_stream_generator {
public:
    struct config {
        std::uint64_t num_updates = 1'000'000;
        std::uint64_t num_distinct = 100'000;  ///< size of the rank space
        double alpha = 1.05;                   ///< Zipf skew (paper §4.5)
        std::uint64_t min_weight = 1;          ///< inclusive
        std::uint64_t max_weight = 10'000;     ///< inclusive; =min for unit streams
        std::uint64_t seed = 1;
    };

    explicit zipf_stream_generator(const config& cfg)
        : cfg_(cfg), rng_(cfg.seed), zipf_(cfg.num_distinct, cfg.alpha) {
        FREQ_REQUIRE(cfg.num_distinct >= 1, "need at least one distinct identifier");
        FREQ_REQUIRE(cfg.min_weight >= 1 && cfg.min_weight <= cfg.max_weight,
                     "weight range must satisfy 1 <= min <= max");
    }

    /// Next update: id = scrambled Zipf rank, weight ~ Uniform[min, max].
    update64 next() {
        const std::uint64_t rank = zipf_(rng_);
        const std::uint64_t id = mix64(rank ^ (cfg_.seed * 0x9e3779b97f4a7c15ULL));
        const std::uint64_t w = cfg_.min_weight == cfg_.max_weight
                                    ? cfg_.min_weight
                                    : rng_.between(cfg_.min_weight, cfg_.max_weight);
        return {id, w};
    }

    update_stream<std::uint64_t, std::uint64_t> generate() {
        update_stream<std::uint64_t, std::uint64_t> out;
        out.reserve(cfg_.num_updates);
        for (std::uint64_t i = 0; i < cfg_.num_updates; ++i) {
            out.push_back(next());
        }
        return out;
    }

    const config& cfg() const noexcept { return cfg_; }

private:
    config cfg_;
    xoshiro256ss rng_;
    zipf_distribution zipf_;
};

/// CAIDA-substitute packet-trace generator (see DESIGN.md §1).
///
/// Identifiers are synthetic IPv4 source addresses: `num_flows` distinct
/// 32-bit addresses whose popularity follows Zipf(alpha). Weights are packet
/// sizes **in bits**, drawn from a mixture dominated by ACK/control-size
/// packets so the mean packet size lands near the paper's observed
/// N/n ≈ 572 bits (§4.1: n ≈ 126.2e6, N ≈ 72.2e9).
class caida_like_generator {
public:
    struct config {
        std::uint64_t num_updates = 8'000'000;
        std::uint64_t num_flows = 500'000;  ///< distinct source IPs
        double alpha = 1.1;                 ///< source-IP popularity skew
        std::uint64_t seed = 2016;
    };

    explicit caida_like_generator(const config& cfg)
        : cfg_(cfg),
          rng_(cfg.seed),
          zipf_(cfg.num_flows, cfg.alpha),
          // Packet sizes in bytes; scaled to bits below. The mixture is
          // ~87% minimum-size packets plus a mid/MTU tail, mean ≈ 71 bytes.
          size_bytes_({{40, 0.87}, {64, 0.10}, {576, 0.02}, {1500, 0.01}}) {
        FREQ_REQUIRE(cfg.num_flows >= 1, "need at least one flow");
    }

    /// Next packet: id = synthetic IPv4 address (as a 64-bit value, matching
    /// the paper's use of a 64-bit identifier type), weight = size in bits.
    update64 next() {
        const std::uint64_t rank = zipf_(rng_);
        // Scramble rank -> a stable pseudo-random 32-bit address.
        const std::uint64_t ip = mix64(rank ^ (cfg_.seed | 0x1)) & 0xffffffffULL;
        const std::uint64_t bits = size_bytes_(rng_) * 8;
        return {ip, bits};
    }

    update_stream<std::uint64_t, std::uint64_t> generate() {
        update_stream<std::uint64_t, std::uint64_t> out;
        out.reserve(cfg_.num_updates);
        for (std::uint64_t i = 0; i < cfg_.num_updates; ++i) {
            out.push_back(next());
        }
        return out;
    }

    /// Mean packet size in bits (for reporting trace stats).
    double mean_weight_bits() const noexcept { return size_bytes_.mean() * 8; }

    const config& cfg() const noexcept { return cfg_; }

private:
    config cfg_;
    xoshiro256ss rng_;
    zipf_distribution zipf_;
    discrete_mixture size_bytes_;
};

/// The adversarial stream of §1.3.4: k updates of weight M to distinct
/// items, followed by M unit-weight updates to fresh distinct items. RBMC
/// performs a Θ(k) decrement on essentially every one of the last M updates;
/// SMED decrements at most once every ~k/2 updates.
class rbmc_pathology_generator {
public:
    struct config {
        std::uint32_t k = 1024;          ///< number of heavy prefix items
        std::uint64_t heavy_weight = 1'000'000;  ///< M
        std::uint64_t seed = 7;
    };

    explicit rbmc_pathology_generator(const config& cfg) : cfg_(cfg) {}

    update_stream<std::uint64_t, std::uint64_t> generate() const {
        update_stream<std::uint64_t, std::uint64_t> out;
        out.reserve(cfg_.k + cfg_.heavy_weight);
        for (std::uint32_t i = 0; i < cfg_.k; ++i) {
            out.push_back({mix64(cfg_.seed ^ i), cfg_.heavy_weight});
        }
        for (std::uint64_t j = 0; j < cfg_.heavy_weight; ++j) {
            out.push_back({mix64((cfg_.seed + 1) * 0x2545f4914f6cdd1dULL + j) | (1ULL << 63),
                           1});
        }
        return out;
    }

    const config& cfg() const noexcept { return cfg_; }

private:
    config cfg_;
};

}  // namespace freq

#endif  // FREQ_STREAM_GENERATORS_H
