#include "stream/trace_io.h"

#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/bytes.h"

namespace freq {

namespace {

constexpr std::uint32_t trace_magic = 0x52545146;  // "FQTR" little-endian
constexpr std::uint32_t trace_version_1 = 1;
constexpr std::uint32_t trace_version_2 = 2;
constexpr std::uint32_t trace_flag_timestamps = 1u;

struct file_closer {
    void operator()(std::FILE* f) const noexcept {
        if (f != nullptr) {
            std::fclose(f);
        }
    }
};
using unique_file = std::unique_ptr<std::FILE, file_closer>;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    throw std::runtime_error("libfreq trace IO: " + what + ": " + path);
}

void write_all(std::FILE* f, const byte_writer& w, const char* what,
               const std::string& path) {
    if (std::fwrite(w.bytes().data(), 1, w.size(), f) != w.size()) {
        fail(what, path);
    }
}

void write_records(std::FILE* f, const std::string& path,
                   const update_stream<std::uint64_t, std::uint64_t>& stream,
                   const std::vector<std::uint64_t>* timestamps) {
    // Records are streamed through a fixed chunk buffer so multi-gigabyte
    // traces never need a second in-memory copy.
    constexpr std::size_t chunk_records = 64 * 1024;
    const std::size_t record_size = timestamps != nullptr ? 24 : 16;
    byte_writer chunk;
    chunk.reserve(chunk_records * record_size);
    std::size_t pending = 0;
    auto flush = [&] {
        if (pending == 0) {
            return;
        }
        write_all(f, chunk, "record write failed", path);
        chunk = byte_writer{};
        chunk.reserve(chunk_records * record_size);
        pending = 0;
    };
    for (std::size_t i = 0; i < stream.size(); ++i) {
        chunk.put_u64(stream[i].id);
        chunk.put_u64(stream[i].weight);
        if (timestamps != nullptr) {
            chunk.put_u64((*timestamps)[i]);
        }
        if (++pending == chunk_records) {
            flush();
        }
    }
    flush();
    if (std::fflush(f) != 0) {
        fail("flush failed", path);
    }
}

timed_trace read_any_trace(const std::string& path, bool keep_timestamps) {
    unique_file f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        fail("cannot open for reading", path);
    }
    std::error_code ec;
    const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
    if (ec) {
        fail("cannot stat", path);
    }

    std::vector<std::uint8_t> head(8);
    if (std::fread(head.data(), 1, head.size(), f.get()) != head.size()) {
        fail("truncated header", path);
    }
    byte_reader header(head);
    if (header.get_u32() != trace_magic) {
        fail("bad magic (not a FQTR trace)", path);
    }
    const std::uint32_t version = header.get_u32();

    std::uint64_t count = 0;
    std::size_t header_size = 0;
    bool has_timestamps = false;
    if (version == trace_version_1) {
        std::vector<std::uint8_t> rest(8);
        if (std::fread(rest.data(), 1, rest.size(), f.get()) != rest.size()) {
            fail("truncated header", path);
        }
        count = byte_reader(rest).get_u64();
        header_size = 16;
    } else if (version == trace_version_2) {
        std::vector<std::uint8_t> rest(16);
        if (std::fread(rest.data(), 1, rest.size(), f.get()) != rest.size()) {
            fail("truncated header", path);
        }
        byte_reader r(rest);
        const std::uint32_t flags = r.get_u32();
        const std::uint32_t reserved = r.get_u32();
        if ((flags & ~trace_flag_timestamps) != 0 || reserved != 0) {
            fail("unsupported trace flags", path);
        }
        has_timestamps = (flags & trace_flag_timestamps) != 0;
        count = r.get_u64();
        header_size = 24;
    } else {
        fail("unsupported trace version", path);
    }

    // Validate the claimed record count against the bytes actually present
    // BEFORE reserving: a malformed header must not drive a huge allocation.
    const std::uint64_t record_size = has_timestamps ? 24 : 16;
    const std::uint64_t payload =
        file_size > header_size ? static_cast<std::uint64_t>(file_size) - header_size : 0;
    if (count > payload / record_size) {
        fail("header count exceeds file size", path);
    }

    timed_trace out;
    out.updates.reserve(static_cast<std::size_t>(count));
    if (keep_timestamps && has_timestamps) {
        out.timestamps.reserve(static_cast<std::size_t>(count));
    }
    constexpr std::size_t chunk_records = 64 * 1024;
    std::vector<std::uint8_t> buf(chunk_records * static_cast<std::size_t>(record_size));
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::size_t want =
            static_cast<std::size_t>(std::min<std::uint64_t>(remaining, chunk_records));
        if (std::fread(buf.data(), record_size, want, f.get()) != want) {
            fail("truncated records", path);
        }
        byte_reader r(buf.data(), want * record_size);
        for (std::size_t i = 0; i < want; ++i) {
            const std::uint64_t id = r.get_u64();
            const std::uint64_t w = r.get_u64();
            out.updates.push_back({id, w});
            if (has_timestamps) {
                const std::uint64_t ts = r.get_u64();
                if (keep_timestamps) {
                    out.timestamps.push_back(ts);
                }
            }
        }
        remaining -= want;
    }
    return out;
}

}  // namespace

void write_trace(const std::string& path,
                 const update_stream<std::uint64_t, std::uint64_t>& stream) {
    unique_file f(std::fopen(path.c_str(), "wb"));
    if (!f) {
        fail("cannot open for writing", path);
    }
    byte_writer header;
    header.put_u32(trace_magic);
    header.put_u32(trace_version_1);
    header.put_u64(stream.size());
    write_all(f.get(), header, "header write failed", path);
    write_records(f.get(), path, stream, nullptr);
}

void write_trace(const std::string& path,
                 const update_stream<std::uint64_t, std::uint64_t>& stream,
                 const std::vector<std::uint64_t>& timestamps) {
    if (timestamps.size() != stream.size()) {
        throw std::invalid_argument(
            "libfreq trace IO: timestamps size must match stream size");
    }
    unique_file f(std::fopen(path.c_str(), "wb"));
    if (!f) {
        fail("cannot open for writing", path);
    }
    byte_writer header;
    header.put_u32(trace_magic);
    header.put_u32(trace_version_2);
    header.put_u32(trace_flag_timestamps);
    header.put_u32(0);  // reserved
    header.put_u64(stream.size());
    write_all(f.get(), header, "header write failed", path);
    write_records(f.get(), path, stream, &timestamps);
}

update_stream<std::uint64_t, std::uint64_t> read_trace(const std::string& path) {
    return read_any_trace(path, /*keep_timestamps=*/false).updates;
}

timed_trace read_timed_trace(const std::string& path) {
    return read_any_trace(path, /*keep_timestamps=*/true);
}

}  // namespace freq
