#include "stream/trace_io.h"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/bytes.h"

namespace freq {

namespace {

constexpr std::uint32_t trace_magic = 0x52545146;  // "FQTR" little-endian
constexpr std::uint32_t trace_version = 1;

struct file_closer {
    void operator()(std::FILE* f) const noexcept {
        if (f != nullptr) {
            std::fclose(f);
        }
    }
};
using unique_file = std::unique_ptr<std::FILE, file_closer>;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    throw std::runtime_error("libfreq trace IO: " + what + ": " + path);
}

}  // namespace

void write_trace(const std::string& path,
                 const update_stream<std::uint64_t, std::uint64_t>& stream) {
    unique_file f(std::fopen(path.c_str(), "wb"));
    if (!f) {
        fail("cannot open for writing", path);
    }
    byte_writer header;
    header.put_u32(trace_magic);
    header.put_u32(trace_version);
    header.put_u64(stream.size());
    if (std::fwrite(header.bytes().data(), 1, header.size(), f.get()) != header.size()) {
        fail("header write failed", path);
    }
    // Records are streamed through a fixed chunk buffer so multi-gigabyte
    // traces never need a second in-memory copy.
    constexpr std::size_t chunk_records = 64 * 1024;
    byte_writer chunk;
    chunk.reserve(chunk_records * 16);
    std::size_t pending = 0;
    auto flush = [&] {
        if (pending == 0) {
            return;
        }
        if (std::fwrite(chunk.bytes().data(), 1, chunk.size(), f.get()) != chunk.size()) {
            fail("record write failed", path);
        }
        chunk = byte_writer{};
        chunk.reserve(chunk_records * 16);
        pending = 0;
    };
    for (const auto& u : stream) {
        chunk.put_u64(u.id);
        chunk.put_u64(u.weight);
        if (++pending == chunk_records) {
            flush();
        }
    }
    flush();
    if (std::fflush(f.get()) != 0) {
        fail("flush failed", path);
    }
}

update_stream<std::uint64_t, std::uint64_t> read_trace(const std::string& path) {
    unique_file f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        fail("cannot open for reading", path);
    }
    std::vector<std::uint8_t> header_bytes(16);
    if (std::fread(header_bytes.data(), 1, header_bytes.size(), f.get()) !=
        header_bytes.size()) {
        fail("truncated header", path);
    }
    byte_reader header(header_bytes);
    if (header.get_u32() != trace_magic) {
        fail("bad magic (not a FQTR trace)", path);
    }
    if (header.get_u32() != trace_version) {
        fail("unsupported trace version", path);
    }
    const std::uint64_t count = header.get_u64();

    update_stream<std::uint64_t, std::uint64_t> out;
    out.reserve(count);
    constexpr std::size_t chunk_records = 64 * 1024;
    std::vector<std::uint8_t> buf(chunk_records * 16);
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::size_t want =
            static_cast<std::size_t>(std::min<std::uint64_t>(remaining, chunk_records));
        if (std::fread(buf.data(), 16, want, f.get()) != want) {
            fail("truncated records", path);
        }
        byte_reader r(buf.data(), want * 16);
        for (std::size_t i = 0; i < want; ++i) {
            const std::uint64_t id = r.get_u64();
            const std::uint64_t w = r.get_u64();
            out.push_back({id, w});
        }
        remaining -= want;
    }
    return out;
}

}  // namespace freq
