#ifndef FREQ_STREAM_UPDATE_H
#define FREQ_STREAM_UPDATE_H

/// \file update.h
/// The stream update record (i_j, Δ_j) of §1.2: an item identifier and a
/// positive weight. Unit-weight streams simply use weight = 1.

#include <cstdint>
#include <vector>

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t>
struct update {
    using key_type = K;
    using weight_type = W;

    K id{};
    W weight{};

    friend bool operator==(const update&, const update&) = default;
};

/// The workhorse record of the evaluation: 64-bit identifiers (e.g. IPv4
/// addresses widened for generality, exactly as §4.1 describes) and 64-bit
/// integer weights (packet sizes in bits).
using update64 = update<std::uint64_t, std::uint64_t>;

/// Real-valued weights, e.g. tf-idf scores (§1.2).
using update64d = update<std::uint64_t, double>;

template <typename K, typename W>
using update_stream = std::vector<update<K, W>>;

}  // namespace freq

#endif  // FREQ_STREAM_UPDATE_H
