#ifndef FREQ_STREAM_TRACE_IO_H
#define FREQ_STREAM_TRACE_IO_H

/// \file trace_io.h
/// A minimal binary trace format ("FQTR") for persisting preprocessed update
/// streams, mirroring the paper's workflow of preprocessing pcap files into
/// (identifier, weight) records once and re-running all algorithms on the
/// same on-disk stream.
///
/// Layout (little-endian):
///   magic   u32  'FQTR'
///   version u32  (currently 1)
///   count   u64  number of records
///   records count × { id u64, weight u64 }

#include <cstdint>
#include <string>

#include "stream/update.h"

namespace freq {

/// Writes \p stream to \p path; throws std::runtime_error on IO failure.
void write_trace(const std::string& path,
                 const update_stream<std::uint64_t, std::uint64_t>& stream);

/// Reads a trace written by write_trace; throws std::runtime_error on IO
/// failure or malformed header.
update_stream<std::uint64_t, std::uint64_t> read_trace(const std::string& path);

}  // namespace freq

#endif  // FREQ_STREAM_TRACE_IO_H
