#ifndef FREQ_STREAM_TRACE_IO_H
#define FREQ_STREAM_TRACE_IO_H

/// \file trace_io.h
/// A minimal binary trace format ("FQTR") for persisting preprocessed update
/// streams, mirroring the paper's workflow of preprocessing pcap files into
/// (identifier, weight) records once and re-running all algorithms on the
/// same on-disk stream.
///
/// Layout (little-endian), version 1:
///   magic   u32  'FQTR'
///   version u32  (1)
///   count   u64  number of records
///   records count × { id u64, weight u64 }
///
/// Version 2 adds optional per-record timestamps (opaque monotonic units —
/// microseconds by convention) for replay harnesses that reproduce epoch
/// ticks or pacing:
///   magic    u32  'FQTR'
///   version  u32  (2)
///   flags    u32  bit 0: records carry timestamps; other bits reserved (0)
///   reserved u32  (0)
///   count    u64  number of records
///   records  count × { id u64, weight u64 [, timestamp u64] }
///
/// Readers accept both versions and validate the header count against the
/// actual file size before allocating, so a corrupt or malicious header can
/// not trigger a multi-gigabyte reserve.

#include <cstdint>
#include <string>
#include <vector>

#include "stream/update.h"

namespace freq {

/// A loaded trace: the update stream plus, when the image carried them,
/// one timestamp per record (same indexing).
struct timed_trace {
    update_stream<std::uint64_t, std::uint64_t> updates;
    std::vector<std::uint64_t> timestamps;  ///< empty, or size() == updates.size()

    bool has_timestamps() const noexcept { return !timestamps.empty(); }
};

/// Writes \p stream to \p path as FQTR v1; throws std::runtime_error on IO
/// failure.
void write_trace(const std::string& path,
                 const update_stream<std::uint64_t, std::uint64_t>& stream);

/// Writes \p stream with per-record \p timestamps as FQTR v2. Throws
/// std::invalid_argument when the sizes differ, std::runtime_error on IO
/// failure.
void write_trace(const std::string& path,
                 const update_stream<std::uint64_t, std::uint64_t>& stream,
                 const std::vector<std::uint64_t>& timestamps);

/// Reads a v1 or v2 trace, dropping timestamps if present; throws
/// std::runtime_error on IO failure or a malformed image.
update_stream<std::uint64_t, std::uint64_t> read_trace(const std::string& path);

/// Reads a v1 or v2 trace, keeping timestamps when the image has them;
/// throws std::runtime_error on IO failure or a malformed image.
timed_trace read_timed_trace(const std::string& path);

}  // namespace freq

#endif  // FREQ_STREAM_TRACE_IO_H
