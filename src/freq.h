#ifndef FREQ_FREQ_H
#define FREQ_FREQ_H

/// \file freq.h
/// Umbrella header: the public API of libfreq in one include.
///
///   #include "freq.h"
///
/// brings in the paper's sketch and every companion type. Individual
/// headers remain includable on their own for faster builds.
///
/// The library has two public layers; both are stable, pick by need:
///
///  * The **façade** (`src/api/`) — `freq::builder` → `freq::summarizer`.
///    Key type, weight type, k, lifetime policy and engine sharding are
///    *runtime* choices; queries return self-describing `result_set`s and
///    any summary round-trips through the unified `summary_bytes` envelope.
///    One virtual dispatch per call (amortized away by the span ingest
///    path; BENCH_api.json records the gap). This is the layer services
///    and config-driven integrations should use.
///
///  * The **template layer** (`src/core/`, `src/engine/`) — the concrete
///    `basic_frequent_items` / `frequent_items_sketch` / `stream_engine`
///    templates the façade wraps. Zero overhead, compile-time
///    configuration, richer static typing. The façade adds no state on
///    top: anything built here can be serialized with `envelope_save` and
///    re-opened as a summarizer (and vice versa).

// The runtime-configurable façade (builder / summarizer / envelope).
#include "api/builder.h"
#include "api/result_set.h"
#include "api/summarizer.h"
#include "api/summary_bytes.h"

// Memory subsystem: NUMA topology, huge-page-advised buffers, bump arenas
// (compile with -DFREQ_NUMA=OFF to pin every operation to its no-op
// degradation; results are identical either way).
#include "common/mem.h"

// The paper's contribution (Algorithms 3-5 + §2.3 engineering).
#include "core/basic_frequent_items.h"        // policy-templated counter core
#include "core/fingerprint_frequent_items.h"  // any key kind via fingerprints
#include "core/frequent_items_sketch.h"       // 64-bit identifiers (the fast path)
#include "core/generic_frequent_items.h"      // arbitrary item types (map-backed)
#include "core/lifetime_policy.h"             // plain / fading / sliding-window
#include "core/med_exact_sketch.h"            // Algorithm 3 (deterministic variant)
#include "core/parallel_summarize.h"          // §3 partition-then-merge utility
#include "core/signed_frequent_items.h"       // §1.3 Note: deletion support
#include "core/sketch_config.h"
#include "core/spelling_dictionary.h"         // detachable key-identification half
#include "core/string_frequent_items.h"       // string keys (tf-idf use case)

// The sharded concurrent ingestion engine (§3 scaled to a running system).
#include "engine/shard.h"
#include "engine/snapshot_service.h"  // async double-buffered read path
#include "engine/spelling_channel.h"  // text/generic key identification lane
#include "engine/spsc_ring.h"
#include "engine/stream_engine.h"

// Telemetry: lock-free instruments, the process-wide registry and the
// pipeline's instrument catalog (compile with -DFREQ_OBS_OFF to turn every
// instrument into a no-op).
#include "obs/instruments.h"
#include "obs/pipeline_metrics.h"
#include "obs/registry.h"

// Applications built on the sketch (§1.2 / §6).
#include "entropy/entropy_estimator.h"
#include "hhh/hierarchical_heavy_hitters.h"

// The network-telemetry subsystem: the applications promoted onto the
// engine (per-level sharded HHH, certified entropy alarms, trace replay).
#include "telemetry/entropy_monitor.h"
#include "telemetry/hhh_summarizer.h"
#include "telemetry/trace_replay.h"

// Workloads, ground truth and IO.
#include "metrics/error.h"
#include "metrics/space.h"
#include "stream/exact_counter.h"
#include "stream/generators.h"
#include "stream/trace_io.h"
#include "stream/update.h"

#endif  // FREQ_FREQ_H
