#ifndef FREQ_TELEMETRY_TRACE_REPLAY_H
#define FREQ_TELEMETRY_TRACE_REPLAY_H

/// \file trace_replay.h
/// Line-rate trace replay: drives an FQTR trace (stream/trace_io.h) through
/// any sink at maximum rate in fixed-size chunks, timing every chunk so the
/// report carries sustained records/sec plus p50/p99 chunk tails — the
/// "line rate is a benchmarked claim" harness behind BENCH_hhh.json and
/// `freq_cli replay`.
///
/// When the trace carries v2 timestamps and `tick_interval` is set, the
/// replay converts timestamp progress into epoch ticks: crossing each
/// `tick_interval`-sized timestamp boundary invokes the sink's tick hook,
/// so fading/windowed summarizers decay in trace time rather than wall
/// time. Tick hooks run inside the timed region — a replay measures the
/// pipeline as deployed, barriers included.

#include <chrono>
#include <cstdint>
#include <utility>

#include "api/summarizer.h"
#include "obs/instruments.h"
#include "obs/pipeline_metrics.h"
#include "stream/trace_io.h"
#include "telemetry/entropy_monitor.h"
#include "telemetry/hhh_summarizer.h"

namespace freq::telemetry {

struct replay_options {
    std::size_t chunk_records = 64 * 1024;  ///< records per timed chunk
    /// Timestamp units per epoch tick; 0 (or a trace without timestamps)
    /// disables trace-time ticking.
    std::uint64_t tick_interval = 0;
};

struct replay_report {
    std::uint64_t records = 0;
    std::uint64_t ticks = 0;
    double seconds = 0.0;
    double records_per_sec = 0.0;
    double chunk_p50_s = 0.0;
    double chunk_p99_s = 0.0;
};

/// Replays \p trace through \p push (called as push(id, weight) per record)
/// at maximum rate. \p tick is called as tick(epochs) whenever timestamp
/// boundaries are crossed (see file comment). Increments
/// `freq_replay_records_total` once per chunk.
template <typename PushFn, typename TickFn>
replay_report replay(const timed_trace& trace, const replay_options& opt,
                     PushFn&& push, TickFn&& tick) {
    using clock = std::chrono::steady_clock;
    const std::size_t chunk =
        opt.chunk_records == 0 ? std::size_t{64 * 1024} : opt.chunk_records;
    const bool ticking = opt.tick_interval > 0 && trace.has_timestamps();

    obs::basic_histogram chunk_ns;
    replay_report rep;
    std::uint64_t next_tick_at = 0;
    if (ticking) next_tick_at = trace.timestamps.front() + opt.tick_interval;

    const auto t0 = clock::now();
    std::size_t i = 0;
    const std::size_t n = trace.updates.size();
    while (i < n) {
        const std::size_t take = std::min(chunk, n - i);
        const auto c0 = clock::now();
        for (std::size_t j = i; j < i + take; ++j) {
            if (ticking) {
                const std::uint64_t ts = trace.timestamps[j];
                if (ts >= next_tick_at) {
                    const std::uint64_t epochs =
                        (ts - next_tick_at) / opt.tick_interval + 1;
                    tick(epochs);
                    rep.ticks += epochs;
                    next_tick_at += epochs * opt.tick_interval;
                }
            }
            push(trace.updates[j].id, static_cast<double>(trace.updates[j].weight));
        }
        const auto c1 = clock::now();
        chunk_ns.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(c1 - c0).count()));
        obs::pipeline().replay_records.add(take);
        i += take;
    }
    const auto t1 = clock::now();

    rep.records = n;
    rep.seconds = std::chrono::duration<double>(t1 - t0).count();
    rep.records_per_sec = rep.seconds > 0.0 ? static_cast<double>(n) / rep.seconds : 0.0;
    const auto snap = chunk_ns.snap();
    rep.chunk_p50_s = snap.quantile(0.5) / 1e9;
    rep.chunk_p99_s = snap.quantile(0.99) / 1e9;
    return rep;
}

template <typename PushFn>
replay_report replay(const timed_trace& trace, const replay_options& opt,
                     PushFn&& push) {
    return replay(trace, opt, std::forward<PushFn>(push), [](std::uint64_t) {});
}

/// Replays into a façade summarizer through an engine feeder; timestamp
/// ticks flush (applied-barrier) and advance the summarizer's epoch.
inline replay_report replay_into(summarizer& s, const timed_trace& trace,
                                 const replay_options& opt = {}) {
    summarizer::feeder f = s.make_feeder();
    replay_report rep = replay(
        trace, opt, [&](std::uint64_t id, double w) { f.push(id, w); },
        [&](std::uint64_t epochs) {
            f.flush();
            s.flush();
            s.tick(epochs);
        });
    f.flush();
    s.flush();
    return rep;
}

/// Replays into an HHH summarizer (every record fans out to all prefix
/// levels through the bundled feeder); ticks advance every level.
inline replay_report replay_into(hhh_summarizer& h, const timed_trace& trace,
                                 const replay_options& opt = {}) {
    hhh_summarizer::feeder f = h.make_feeder();
    replay_report rep = replay(
        trace, opt,
        [&](std::uint64_t id, double w) {
            f.push(static_cast<std::uint32_t>(id), w);
        },
        [&](std::uint64_t epochs) {
            f.flush();
            h.flush();
            h.tick(epochs);
        });
    f.flush();
    h.flush();
    return rep;
}

/// Replays into an entropy monitor (through its counting feeder, so the
/// certified residual bound stays valid); ticks advance the monitor.
inline replay_report replay_into(entropy_monitor& m, const timed_trace& trace,
                                 const replay_options& opt = {}) {
    entropy_monitor::feeder f = m.make_feeder();
    replay_report rep = replay(
        trace, opt, [&](std::uint64_t id, double w) { f.push(id, w); },
        [&](std::uint64_t epochs) {
            f.flush();
            m.flush();
            m.tick(epochs);
        });
    f.flush();
    m.flush();
    return rep;
}

}  // namespace freq::telemetry

#endif  // FREQ_TELEMETRY_TRACE_REPLAY_H
