#ifndef FREQ_TELEMETRY_HHH_SUMMARIZER_H
#define FREQ_TELEMETRY_HHH_SUMMARIZER_H

/// \file hhh_summarizer.h
/// Engine-backed hierarchical heavy hitters over IPv4 prefixes — the seed
/// `hhh::hierarchical_heavy_hitters` scheme (Mitzenmacher, Steinke & Thaler)
/// promoted onto the runtime façade: one sharded `freq::summarizer` per
/// prefix level, each with its own lifetime policy, so a deployment can ask
/// for "all-time /8s but only the last five minutes of /32s" from a single
/// object. Queries run the same discounted-descendant walk as the seed and
/// are bit-for-bit identical to it on matching single-shard plain configs
/// (property-tested in test_telemetry_hhh).
///
/// Walk semantics (unchanged from the seed): levels are visited from the
/// most specific prefix upward; within a level every tracked prefix whose
/// upper bound clears φ·N (no-false-negatives candidates) is considered in
/// (estimate desc, prefix asc) order; a candidate is reported iff its
/// *conditioned* count — estimate minus the estimates of already-reported
/// strictly-more-specific HHHs it covers — strictly exceeds φ·N. N and the
/// candidate set come from one snapshot view per level, so a query is
/// internally consistent even while feeders keep pushing.
///
/// Cross-node aggregation rides the existing envelope machinery:
/// `save()` emits one `summary_bytes` per level and `hhh_aggregate` folds
/// images from many nodes with `restore_summary` + `summarizer::merge`,
/// then answers the same conditioned-count queries over the merged views.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/builder.h"
#include "api/result_set.h"
#include "api/summarizer.h"
#include "api/summary_bytes.h"
#include "common/contracts.h"
#include "net/ipv4.h"
#include "obs/pipeline_metrics.h"

namespace freq::telemetry {

/// One reported hierarchical heavy hitter. Estimates are doubles because
/// levels may run real-weighted (fading) policies; for plain count levels
/// they are exact integers (≤ 2^53) and compare bit-for-bit against the
/// seed's u64 rows.
struct hhh_row {
    std::uint32_t prefix = 0;   ///< masked address
    unsigned prefix_len = 0;
    double estimate = 0.0;      ///< sketch estimate of the full prefix traffic
    double conditioned = 0.0;   ///< estimate minus reported descendants

    std::string to_string() const { return net::format_prefix(prefix, prefix_len); }
};

/// Per-level knobs: the prefix length plus that level's lifetime policy.
/// `decay` is read only for `lifetime_kind::fading`, `window_epochs` only
/// for `lifetime_kind::windowed`.
struct hhh_level_config {
    unsigned prefix_len = 32;
    lifetime_kind lifetime = lifetime_kind::plain;
    double decay = 0.97;
    std::uint32_t window_epochs = 4;
};

struct hhh_config {
    /// Levels in any order; stored sorted descending (most specific first).
    /// Empty means the byte-boundary default /32, /24, /16, /8 — all plain.
    std::vector<hhh_level_config> levels = {};
    std::uint32_t counters_per_level = 1024;  ///< k for each level's summarizer
    std::uint64_t seed = 0;                   ///< level l hashes with seed + l + 1, like the seed module
    std::uint32_t shards = 1;                 ///< engine shards per level
    std::uint32_t producers = 1;              ///< concurrent feeders per level
    /// > 0 enables each level's async snapshot service: queries then read
    /// the cached published fold instead of folding on demand.
    std::chrono::microseconds snapshot_every{0};
};

namespace detail {

/// The discounted-descendant walk, shared by the live engine path and the
/// merged-envelope path. `levels[i]` answers prefix length `lens[i]`;
/// `lens` is sorted descending.
inline std::vector<hhh_row> conditioned_walk(const std::vector<unsigned>& lens,
                                             const std::vector<summarizer>& levels,
                                             double phi) {
    FREQ_REQUIRE(phi > 0.0 && phi < 1.0, "phi must lie in (0, 1)");
    std::vector<hhh_row> out;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const unsigned len = lens[i];
        // One view per level: a threshold-0 NFN query returns every tracked
        // prefix together with the same view's N, so the φ·N cut and the
        // candidate set cannot straddle a snapshot republish.
        const result_set rs =
            levels[i].frequent_items(error_mode::no_false_negatives, 0.0);
        double threshold = phi * rs.total_weight();
        if (levels[i].descriptor().weights == weight_kind::counts)
            threshold = std::floor(threshold);  // the seed's u64 cast
        std::vector<result_row> cand;
        for (const result_row& r : rs.rows())
            if (r.upper_bound > threshold) cand.push_back(r);
        // Canonical order: estimate descending, prefix ascending. Same-level
        // order never changes conditioned values (discounts only consult
        // strictly more specific levels) but makes output deterministic
        // across fold orders.
        std::sort(cand.begin(), cand.end(), [](const result_row& a, const result_row& b) {
            if (a.estimate != b.estimate) return a.estimate > b.estimate;
            return a.id < b.id;
        });
        for (const result_row& c : cand) {
            const auto prefix = static_cast<std::uint32_t>(c.id);
            double discount = 0.0;
            for (const hhh_row& r : out)
                if (r.prefix_len > len && net::prefix_of(r.prefix, len) == prefix)
                    discount += r.estimate;
            const double cond = c.estimate > discount ? c.estimate - discount : 0.0;
            if (cond > threshold)
                out.push_back(hhh_row{prefix, len, c.estimate, cond});
        }
    }
    return out;
}

}  // namespace detail

/// A node's saved HHH state: one envelope per level, most specific first.
/// Feed these to hhh_aggregate to fold across nodes.
struct hhh_image {
    std::vector<unsigned> prefix_lens;
    std::vector<summary_bytes> levels;
};

/// Engine-backed HHH summarizer: owns one sharded façade summarizer per
/// prefix level and fans every address update out to all of them.
class hhh_summarizer {
public:
    explicit hhh_summarizer(hhh_config cfg) : cfg_(std::move(cfg)) {
        if (cfg_.levels.empty())
            for (const unsigned l : {32u, 24u, 16u, 8u})
                cfg_.levels.push_back(hhh_level_config{.prefix_len = l});
        std::sort(cfg_.levels.begin(), cfg_.levels.end(),
                  [](const hhh_level_config& a, const hhh_level_config& b) {
                      return a.prefix_len > b.prefix_len;
                  });
        for (const hhh_level_config& lc : cfg_.levels) {
            FREQ_REQUIRE(lc.prefix_len <= 32, "IPv4 prefix level must be <= 32");
            FREQ_REQUIRE(lens_.empty() || lens_.back() != lc.prefix_len,
                         "duplicate HHH prefix level");
            builder b;
            b.u64_keys()
                .max_counters(cfg_.counters_per_level)
                .seed(cfg_.seed + lc.prefix_len + 1)
                .sharded(cfg_.shards, cfg_.producers);
            switch (lc.lifetime) {
                case lifetime_kind::plain: b.counts().plain(); break;
                case lifetime_kind::fading: b.fading(lc.decay); break;
                case lifetime_kind::windowed:
                    b.counts().sliding_window(lc.window_epochs);
                    break;
            }
            if (cfg_.snapshot_every.count() > 0) b.snapshot_every(cfg_.snapshot_every);
            lens_.push_back(lc.prefix_len);
            levels_.push_back(b.build());
        }
    }

    /// Single-threaded ingest of one packet/flow record. Use feeders for
    /// concurrent ingestion.
    void update(std::uint32_t ip, double weight = 1.0) {
        for (std::size_t i = 0; i < levels_.size(); ++i)
            levels_[i].update(net::prefix_of(ip, lens_[i]), weight);
    }

    /// One engine producer per level, bundled: push() masks the address per
    /// level and hands each prefix to that level's ring. Distinct feeders
    /// may run on distinct threads (up to hhh_config::producers each).
    class feeder {
    public:
        void push(std::uint32_t ip, double weight = 1.0) {
            for (std::size_t i = 0; i < feeders_.size(); ++i)
                feeders_[i].push(net::prefix_of(ip, lens_[i]), weight);
        }
        void flush() {
            for (summarizer::feeder& f : feeders_) f.flush();
        }

    private:
        friend class hhh_summarizer;
        feeder(std::vector<unsigned> lens, std::vector<summarizer::feeder> feeders)
            : lens_(std::move(lens)), feeders_(std::move(feeders)) {}
        std::vector<unsigned> lens_;
        std::vector<summarizer::feeder> feeders_;
    };

    feeder make_feeder() {
        std::vector<summarizer::feeder> fs;
        fs.reserve(levels_.size());
        for (summarizer& s : levels_) fs.push_back(s.make_feeder());
        return feeder(lens_, std::move(fs));
    }

    /// Applied-barrier across every level (see summarizer::flush()).
    void flush() {
        for (summarizer& s : levels_) s.flush();
    }

    /// Advances epoch time on every level (fading decays, windows rotate;
    /// no-op for plain levels).
    void tick(std::uint64_t epochs = 1) {
        for (summarizer& s : levels_) s.tick(epochs);
    }

    /// Advances a single level — per-level clocks let "/32s in the last
    /// minute" tick faster than "/16s in the last hour".
    void tick_level(std::size_t i, std::uint64_t epochs = 1) {
        levels_.at(i).tick(epochs);
    }

    /// The conditioned-count HHH query (see file comment for semantics).
    std::vector<hhh_row> query(double phi) const {
        obs::pipeline().hhh_levels_queried.add(levels_.size());
        return detail::conditioned_walk(lens_, levels_, phi);
    }

    std::size_t num_levels() const noexcept { return levels_.size(); }
    unsigned prefix_len(std::size_t i) const { return lens_.at(i); }
    const summarizer& level(std::size_t i) const { return levels_.at(i); }
    const hhh_config& cfg() const noexcept { return cfg_; }

    /// Total ingested weight at one level (index into cfg().levels order).
    double total_weight(std::size_t i = 0) const { return levels_.at(i).total_weight(); }

    std::size_t memory_bytes() const {
        std::size_t total = 0;
        for (const summarizer& s : levels_) total += s.memory_bytes();
        return total;
    }

    /// Serializes every level through the versioned envelope (flushes
    /// pending feeder pushes first, like summarizer::save()).
    hhh_image save() {
        hhh_image img;
        img.prefix_lens = lens_;
        img.levels.reserve(levels_.size());
        for (summarizer& s : levels_) img.levels.push_back(s.save());
        return img;
    }

private:
    hhh_config cfg_;
    std::vector<unsigned> lens_;     // sorted descending, parallel to levels_
    std::vector<summarizer> levels_;
};

/// Cross-node HHH aggregation: folds per-level envelopes from N
/// hhh_summarizer nodes (restore + merge, with the envelope layer's usual
/// compatibility checks) and answers the same conditioned-count queries
/// over the merged views. Node sketches should use the same seeds — which
/// hhh_summarizer instances with equal hhh_config::seed do by construction.
class hhh_aggregate {
public:
    void add_node(const hhh_image& img) {
        FREQ_REQUIRE(img.prefix_lens.size() == img.levels.size(),
                     "malformed hhh_image: level count mismatch");
        if (merged_.empty()) {
            lens_ = img.prefix_lens;
            merged_.reserve(img.levels.size());
            for (const summary_bytes& b : img.levels)
                merged_.push_back(restore_summary(b));
            return;
        }
        FREQ_REQUIRE(lens_ == img.prefix_lens,
                     "hhh_image prefix levels do not match this aggregate");
        for (std::size_t i = 0; i < merged_.size(); ++i) {
            const summarizer node = restore_summary(img.levels[i]);
            merged_[i].merge(node);
        }
    }

    std::vector<hhh_row> query(double phi) const {
        FREQ_REQUIRE(!merged_.empty(), "hhh_aggregate has no nodes");
        obs::pipeline().hhh_levels_queried.add(merged_.size());
        return detail::conditioned_walk(lens_, merged_, phi);
    }

    bool empty() const noexcept { return merged_.empty(); }
    std::size_t num_levels() const noexcept { return merged_.size(); }
    unsigned prefix_len(std::size_t i) const { return lens_.at(i); }
    const summarizer& level(std::size_t i) const { return merged_.at(i); }

private:
    std::vector<unsigned> lens_;
    std::vector<summarizer> merged_;
};

}  // namespace freq::telemetry

#endif  // FREQ_TELEMETRY_HHH_SUMMARIZER_H
