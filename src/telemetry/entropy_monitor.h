#ifndef FREQ_TELEMETRY_ENTROPY_MONITOR_H
#define FREQ_TELEMETRY_ENTROPY_MONITOR_H

/// \file entropy_monitor.h
/// Streaming entropy with certified intervals and shift alarms, on the
/// engine. The estimator is the seed `entropy_estimator` scheme
/// (Chakrabarti–Cormode–McGregor: plug-in entropy of the tracked heavy
/// hitters plus analytic brackets on the untracked residual) lifted from
/// the raw single-threaded sketch onto published façade views: every
/// interval is computed from ONE `result_set` — a single snapshot of the
/// sharded engine (the cached async-service view when enabled) — so the
/// mass, error envelope and per-item counts can never straddle a republish.
///
/// Residual bounds, generalized beyond unit weights so the fading policy
/// stays certified: with residual mass R = N − Σ tracked lower bounds
/// spread over at most m distinct untracked keys,
///
///   residual entropy ≤ (R/N)·log2(N·m/R)        (equal-split maximum)
///   residual entropy ≥ (R/N)·log2(N/maxerr)     (each untracked ≤ maxerr)
///
/// The seed's unit-weight bound m ≤ R only holds for plain counts; here m
/// is additionally capped by the monitor's own raw update count, which is
/// valid under any lifetime policy (decay never mints new keys). A slack
/// of k·(maxerr/N)·log2 N absorbs sketch error on the tracked plug-in term
/// and is applied to BOTH endpoints (the seed subtracts it only from the
/// lower bound; a dominant flow past 1/e makes the upper side fallible
/// too, which is exactly the DDoS regime this monitor watches).
///
/// On top of the interval sits an EWMA-smoothed baseline: each observe()
/// compares the point estimate against the baseline and raises `collapse`
/// (entropy dropped — traffic concentrating, the classic DDoS signature)
/// or `spike` (entropy jumped — e.g. address-spoofed scatter) when the gap
/// exceeds the configured thresholds in bits. Alarms increment
/// `freq_entropy_alarm_total`.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <utility>

#include "api/builder.h"
#include "api/result_set.h"
#include "api/summarizer.h"
#include "common/contracts.h"
#include "obs/pipeline_metrics.h"

namespace freq::telemetry {

/// A certified entropy interval, in bits: lower ≤ H(stream) ≤ upper up to
/// the documented slack; `point` is the midpoint-residual estimate used by
/// the shift detector.
struct entropy_interval {
    double lower = 0.0;
    double upper = 0.0;
    double point = 0.0;
};

enum class entropy_alarm { none, collapse, spike };

inline const char* to_string(entropy_alarm a) {
    switch (a) {
        case entropy_alarm::collapse: return "collapse";
        case entropy_alarm::spike: return "spike";
        default: return "none";
    }
}

/// One observe() outcome: the interval, the EWMA baseline it was compared
/// against (as of before this sample folded in), and the alarm verdict.
struct entropy_observation {
    entropy_interval interval;
    double baseline = 0.0;
    entropy_alarm alarm = entropy_alarm::none;
};

struct entropy_monitor_config {
    std::uint32_t max_counters = 1024;
    std::uint64_t seed = 0;
    std::uint32_t shards = 1;
    std::uint32_t producers = 1;
    /// > 0 enables the async snapshot service; estimates then read the
    /// cached published view.
    std::chrono::microseconds snapshot_every{0};

    lifetime_kind lifetime = lifetime_kind::plain;
    double decay = 0.97;          ///< fading only
    std::uint32_t window_epochs = 4;  ///< windowed only

    // --- shift-detector knobs ----------------------------------------------
    double ewma_alpha = 0.125;           ///< baseline smoothing weight
    double collapse_threshold_bits = 1.0;  ///< alarm when point < baseline − this
    double spike_threshold_bits = 1.0;     ///< alarm when point > baseline + this
    std::uint32_t warmup_samples = 3;      ///< observations before alarms may fire
};

/// Computes the certified interval from a single façade view. `weights` is
/// the summary's weight kind (tightens the distinct-key cap for counts);
/// `max_distinct` is an upper bound on distinct keys ever ingested (the
/// monitor passes its raw update count; ~0 means "unknown").
inline entropy_interval certified_entropy(const result_set& rs, weight_kind weights,
                                          std::uint64_t max_distinct) {
    entropy_interval out;
    const double n = rs.total_weight();
    if (!(n > 0.0)) return out;
    const double maxerr = rs.maximum_error();

    double heavy_bits = 0.0;
    double tracked_mass = 0.0;
    for (const result_row& r : rs.rows()) {
        const double p = std::min(r.estimate, n) / n;
        if (p > 0.0) heavy_bits -= p * std::log2(p);
        tracked_mass += r.lower_bound;
    }

    const double residual = std::max(0.0, n - tracked_mass);
    double res_upper = 0.0;
    double res_lower = 0.0;
    if (residual > 0.0) {
        double m = max_distinct == 0 ? residual
                                     : static_cast<double>(max_distinct);
        if (weights == weight_kind::counts) m = std::min(m, residual);
        m = std::max(1.0, m);
        res_upper = (residual / n) * std::log2(std::max(1.0, n * m / residual));
        res_lower = maxerr > 0.0
                        ? (residual / n) * std::log2(std::max(1.0, n / maxerr))
                        : res_upper;
        res_lower = std::min(res_lower, res_upper);
    }

    const double slack = (n > 1.0 && maxerr > 0.0)
                             ? static_cast<double>(rs.rows().size()) *
                                   (maxerr / n) * std::log2(n)
                             : 0.0;

    out.upper = heavy_bits + res_upper + slack;
    out.lower = std::max(0.0, heavy_bits + res_lower - slack);
    out.point = std::clamp(heavy_bits + 0.5 * (res_lower + res_upper),
                           out.lower, out.upper);
    return out;
}

/// Engine-backed entropy monitor. Ingestion (update / feeders) is
/// concurrent like any sharded summarizer; estimate() is safe alongside
/// ingestion; observe() mutates the EWMA baseline and must be called from
/// one observer thread.
class entropy_monitor {
public:
    explicit entropy_monitor(entropy_monitor_config cfg) : cfg_(std::move(cfg)) {
        FREQ_REQUIRE(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0,
                     "ewma_alpha must lie in (0, 1]");
        builder b;
        b.u64_keys()
            .max_counters(cfg_.max_counters)
            .seed(cfg_.seed)
            .sharded(cfg_.shards, cfg_.producers);
        switch (cfg_.lifetime) {
            case lifetime_kind::plain: b.counts().plain(); break;
            case lifetime_kind::fading: b.fading(cfg_.decay); break;
            case lifetime_kind::windowed:
                b.counts().sliding_window(cfg_.window_epochs);
                break;
        }
        if (cfg_.snapshot_every.count() > 0) b.snapshot_every(cfg_.snapshot_every);
        summary_ = b.build();
    }

    void update(std::uint64_t id, double weight = 1.0) {
        summary_.update(id, weight);
        updates_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Concurrent ingestion handle; wraps an engine producer and keeps the
    /// monitor's distinct-key cap (raw update count) honest.
    class feeder {
    public:
        void push(std::uint64_t id, double weight = 1.0) {
            inner_.push(id, weight);
            updates_->fetch_add(1, std::memory_order_relaxed);
        }
        void flush() { inner_.flush(); }

    private:
        friend class entropy_monitor;
        feeder(summarizer::feeder inner, std::atomic<std::uint64_t>* updates)
            : inner_(std::move(inner)), updates_(updates) {}
        summarizer::feeder inner_;
        std::atomic<std::uint64_t>* updates_;
    };

    feeder make_feeder() { return feeder(summary_.make_feeder(), &updates_); }

    void flush() { summary_.flush(); }
    void tick(std::uint64_t epochs = 1) { summary_.tick(epochs); }

    /// The certified interval from one published view.
    entropy_interval estimate() const {
        const result_set rs =
            summary_.frequent_items(error_mode::no_false_negatives, 0.0);
        return certified_entropy(rs, summary_.descriptor().weights,
                                 updates_.load(std::memory_order_relaxed));
    }

    /// Samples the entropy, folds it into the EWMA baseline, and reports
    /// whether the sample shifted away from the baseline by more than the
    /// configured thresholds. The first `warmup_samples` observations only
    /// train the baseline.
    entropy_observation observe() {
        entropy_observation obs;
        obs.interval = estimate();
        if (samples_ == 0) {
            baseline_ = obs.interval.point;
        } else if (samples_ >= cfg_.warmup_samples) {
            if (obs.interval.point < baseline_ - cfg_.collapse_threshold_bits)
                obs.alarm = entropy_alarm::collapse;
            else if (obs.interval.point > baseline_ + cfg_.spike_threshold_bits)
                obs.alarm = entropy_alarm::spike;
        }
        obs.baseline = baseline_;
        baseline_ = cfg_.ewma_alpha * obs.interval.point +
                    (1.0 - cfg_.ewma_alpha) * baseline_;
        ++samples_;
        if (obs.alarm != entropy_alarm::none) obs::pipeline().entropy_alarms.add(1);
        return obs;
    }

    double baseline() const noexcept { return baseline_; }
    std::uint64_t samples() const noexcept { return samples_; }
    std::uint64_t raw_updates() const noexcept {
        return updates_.load(std::memory_order_relaxed);
    }
    const summarizer& summary() const noexcept { return summary_; }
    const entropy_monitor_config& cfg() const noexcept { return cfg_; }

private:
    entropy_monitor_config cfg_;
    summarizer summary_;
    std::atomic<std::uint64_t> updates_{0};
    double baseline_ = 0.0;
    std::uint64_t samples_ = 0;
};

}  // namespace freq::telemetry

#endif  // FREQ_TELEMETRY_ENTROPY_MONITOR_H
