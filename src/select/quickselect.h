#ifndef FREQ_SELECT_QUICKSELECT_H
#define FREQ_SELECT_QUICKSELECT_H

/// \file quickselect.h
/// Hoare's Find [Hoa61]: selection of the r-th smallest / largest element of
/// a scratch buffer, in expected O(n) time, in place.
///
/// This is the selection routine the paper relies on in three places:
///  * Algorithm 3 (MED) — exact k*-th largest counter during a decrement;
///  * Algorithm 4 (SMED) — quantile of the l sampled counters;
///  * the "Hoa61" merge baseline of §3.1/§4.5 — k-th largest counter of the
///    combined table.
/// Partitioning uses median-of-three pivots with a random fallback to avoid
/// the classic quadratic blowup on sorted or constant runs.

#include <cstddef>
#include <span>
#include <utility>

#include "common/contracts.h"
#include "random/xoshiro.h"

namespace freq {

namespace detail {

template <typename T>
std::size_t partition_around(std::span<T> v, std::size_t pivot_index) {
    const T pivot = v[pivot_index];
    std::swap(v[pivot_index], v[v.size() - 1]);
    std::size_t store = 0;
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
        if (v[i] < pivot) {
            std::swap(v[i], v[store]);
            ++store;
        }
    }
    std::swap(v[store], v[v.size() - 1]);
    return store;
}

template <typename T>
std::size_t median_of_three(std::span<T> v) {
    const std::size_t a = 0, b = v.size() / 2, c = v.size() - 1;
    if (v[a] < v[b]) {
        if (v[b] < v[c]) return b;
        return v[a] < v[c] ? c : a;
    }
    if (v[a] < v[c]) return a;
    return v[b] < v[c] ? c : b;
}

}  // namespace detail

/// Rearranges \p v so that the r-th smallest element (0-based) is at index r
/// and returns it. Expected O(n); mutates the buffer.
template <typename T>
T quickselect_smallest(std::span<T> v, std::size_t r) {
    FREQ_REQUIRE(!v.empty(), "quickselect on empty range");
    FREQ_REQUIRE(r < v.size(), "quickselect rank out of range");
    xoshiro256ss rng(0x9e3779b97f4a7c15ULL ^ v.size());
    std::span<T> range = v;
    std::size_t rank = r;
    while (range.size() > 1) {
        const std::size_t pivot_at = range.size() >= 8
                                         ? detail::median_of_three(range)
                                         : static_cast<std::size_t>(rng.below(range.size()));
        const std::size_t mid = detail::partition_around(range, pivot_at);
        if (rank == mid) {
            return range[mid];
        }
        if (rank < mid) {
            range = range.subspan(0, mid);
        } else {
            range = range.subspan(mid + 1);
            rank -= mid + 1;
        }
        // Degenerate partitions (all-equal buffers) can stall median-of-three;
        // fall back to a random pivot by re-entering the loop, which the rng
        // pivot below handles for small ranges.
        if (range.size() >= 8 && mid == 0) {
            const std::size_t rnd = static_cast<std::size_t>(rng.below(range.size()));
            std::swap(range[0], range[rnd]);
        }
    }
    return range[0];
}

/// r-th largest (0-based: r = 0 is the maximum). Expected O(n); mutates \p v.
template <typename T>
T quickselect_largest(std::span<T> v, std::size_t r) {
    FREQ_REQUIRE(r < v.size(), "quickselect rank out of range");
    return quickselect_smallest(v, v.size() - 1 - r);
}

/// Quantile q in [0, 1] of the buffer: q = 0 is the minimum, q = 0.5 the
/// median, q -> 1 the maximum. Used to implement the Fig. 3 decrement-quantile
/// sweep (SMIN is q = 0, SMED is q = 0.5). Mutates \p v.
template <typename T>
T quickselect_quantile(std::span<T> v, double q) {
    FREQ_REQUIRE(!v.empty(), "quantile of empty range");
    FREQ_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
    auto rank = static_cast<std::size_t>(q * static_cast<double>(v.size()));
    if (rank >= v.size()) {
        rank = v.size() - 1;
    }
    return quickselect_smallest(v, rank);
}

}  // namespace freq

#endif  // FREQ_SELECT_QUICKSELECT_H
