#ifndef FREQ_BASELINES_LOSSY_COUNTING_H
#define FREQ_BASELINES_LOSSY_COUNTING_H

/// \file lossy_counting.h
/// Manku & Motwani's Lossy Counting [15] — the third classic counter-based
/// algorithm in the §1.3 survey lineage. The stream is processed in buckets
/// of width ceil(1/ε); at each bucket boundary, every counter whose
/// (count + admission-error) no longer exceeds the bucket index is evicted.
/// Guarantees: estimates underestimate by at most ε·N, and space is
/// O((1/ε)·log(εN)) — worse than Misra-Gries' O(1/ε), which is why the
/// paper's line of work starts from MG instead.
///
/// Extended here to weighted updates in the natural way (weight counts as Δ
/// toward both the counter and the bucket clock), preserving the ε·N error
/// bound with N the weighted stream length.

#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "common/contracts.h"
#include "stream/update.h"

namespace freq {

template <typename K = std::uint64_t>
class lossy_counting {
public:
    using key_type = K;
    using weight_type = std::uint64_t;

    explicit lossy_counting(double epsilon) : epsilon_(epsilon) {
        FREQ_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        bucket_width_ = static_cast<std::uint64_t>(std::ceil(1.0 / epsilon));
        counters_.reserve(2 * bucket_width_);
    }

    void update(K id, std::uint64_t weight = 1) {
        if (weight == 0) {
            return;
        }
        total_weight_ += weight;
        const auto it = counters_.find(id);
        if (it != counters_.end()) {
            it->second.count += weight;
        } else {
            // New entries may have been missed for up to (bucket - 1) mass.
            counters_.emplace(id, entry{weight, current_bucket_ - 1});
        }
        // Bucket boundary: prune everything provably below the watermark.
        const std::uint64_t bucket = total_weight_ / bucket_width_ + 1;
        if (bucket != current_bucket_) {
            current_bucket_ = bucket;
            prune();
        }
    }

    void consume(const update_stream<K, std::uint64_t>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    /// Underestimates by at most epsilon * N.
    std::uint64_t estimate(K id) const {
        const auto it = counters_.find(id);
        return it == counters_.end() ? 0 : it->second.count;
    }

    std::uint64_t lower_bound(K id) const { return estimate(id); }

    std::uint64_t upper_bound(K id) const {
        const auto it = counters_.find(id);
        return it == counters_.end()
                   ? static_cast<std::uint64_t>(epsilon_ * static_cast<double>(total_weight_))
                   : it->second.count + it->second.error;
    }

    /// Items with estimate >= (phi - epsilon) * N: contains every phi-heavy
    /// item (the classic Lossy Counting output guarantee).
    std::vector<K> heavy_hitters(double phi) const {
        FREQ_REQUIRE(phi > epsilon_, "phi must exceed epsilon for a meaningful answer");
        const double threshold = (phi - epsilon_) * static_cast<double>(total_weight_);
        std::vector<K> out;
        for (const auto& [id, e] : counters_) {
            if (static_cast<double>(e.count) >= threshold) {
                out.push_back(id);
            }
        }
        return out;
    }

    double epsilon() const noexcept { return epsilon_; }
    std::uint64_t total_weight() const noexcept { return total_weight_; }
    std::size_t num_counters() const noexcept { return counters_.size(); }

    /// Hash-map storage model (node-based): the O((1/ε)log(εN)) entry count
    /// is the quantity of interest; bytes approximate a node-based map.
    std::size_t memory_bytes() const noexcept {
        return counters_.size() * (sizeof(K) + sizeof(entry) + 2 * sizeof(void*));
    }

    template <typename F>
    void for_each(F&& f) const {
        for (const auto& [id, e] : counters_) {
            f(id, e.count);
        }
    }

private:
    struct entry {
        std::uint64_t count;
        std::uint64_t error;  ///< max undercount at admission time (Δ in [15])
    };

    void prune() {
        for (auto it = counters_.begin(); it != counters_.end();) {
            if (it->second.count + it->second.error <= current_bucket_ - 1) {
                it = counters_.erase(it);
            } else {
                ++it;
            }
        }
    }

    double epsilon_;
    std::uint64_t bucket_width_ = 1;
    std::uint64_t current_bucket_ = 1;
    std::unordered_map<K, entry> counters_;
    std::uint64_t total_weight_ = 0;
};

}  // namespace freq

#endif  // FREQ_BASELINES_LOSSY_COUNTING_H
