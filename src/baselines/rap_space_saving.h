#ifndef FREQ_BASELINES_RAP_SPACE_SAVING_H
#define FREQ_BASELINES_RAP_SPACE_SAVING_H

/// \file rap_space_saving.h
/// The Space-Saving variant of Sivaraman et al. [21] sketched in §5 of the
/// paper (HashPipe's admission policy): when an untracked item arrives and
/// all counters are taken, sample ℓ counters at random, reassign the
/// *sample minimum* to the new item, and increment it by Δ. With constant ℓ
/// every update costs O(1) worst case and touches a bounded number of
/// memory locations — the property switch hardware needs — at the price of
/// weaker error guarantees than SMED (§5: "may have larger error than our
/// proposals", which the Fig. 2-style comparison in the benches quantifies).
///
/// The paper leaves the detailed comparison to future work; we implement it
/// so that comparison exists. Interpretation notes: the sample minimum is
/// the natural reading of "this counter" in §5 (matching SS, which evicts
/// the global minimum), and untracked items estimate 0 since no global
/// minimum is maintained.

#include <cstdint>

#include "common/contracts.h"
#include "random/xoshiro.h"
#include "stream/update.h"
#include "table/counter_table.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t>
class rap_space_saving {
public:
    using key_type = K;
    using weight_type = W;

    /// \param sample_size  ℓ — counters sampled per eviction (O(1) constant).
    explicit rap_space_saving(std::uint32_t max_counters, std::uint32_t sample_size = 2,
                              std::uint64_t seed = 0)
        : table_(max_counters, seed),
          sample_size_(sample_size),
          rng_(mix64(seed ^ 0xbb67ae8584caa73bULL)) {
        FREQ_REQUIRE(max_counters >= 1, "rap_space_saving needs at least one counter");
        FREQ_REQUIRE(sample_size >= 1, "sample size must be >= 1");
    }

    void update(K id, W weight = W{1}) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        total_weight_ += weight;
        if (W* c = table_.find(id)) {
            *c += weight;
            return;
        }
        if (!table_.full()) {
            table_.upsert(id, weight);
            return;
        }
        // Sample ℓ live counters; evict the sample minimum.
        std::uint32_t victim_slot = sample_occupied_slot();
        W victim_value = table_.slot_value(victim_slot);
        for (std::uint32_t j = 1; j < sample_size_; ++j) {
            const std::uint32_t s = sample_occupied_slot();
            if (table_.slot_value(s) < victim_value) {
                victim_slot = s;
                victim_value = table_.slot_value(s);
            }
        }
        const K victim = table_.slot_key(victim_slot);
        table_.erase(victim);
        table_.upsert(id, victim_value + weight);
        ++num_evictions_;
    }

    void consume(const update_stream<K, W>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    /// SS-style estimate: the (over-counting) counter when tracked, else 0.
    W estimate(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? *c : W{0};
    }

    W total_weight() const noexcept { return total_weight_; }
    std::uint32_t capacity() const noexcept { return table_.capacity(); }
    std::uint32_t num_counters() const noexcept { return table_.size(); }
    std::uint64_t num_evictions() const noexcept { return num_evictions_; }
    std::size_t memory_bytes() const noexcept { return table_.memory_bytes(); }

    template <typename F>
    void for_each(F&& f) const {
        table_.for_each(std::forward<F>(f));
    }

private:
    std::uint32_t sample_occupied_slot() {
        std::uint32_t s;
        do {
            s = static_cast<std::uint32_t>(rng_.below(table_.num_slots()));
        } while (!table_.slot_occupied(s));
        return s;
    }

    counter_table<K, W> table_;
    std::uint32_t sample_size_;
    xoshiro256ss rng_;
    W total_weight_{0};
    std::uint64_t num_evictions_ = 0;
};

}  // namespace freq

#endif  // FREQ_BASELINES_RAP_SPACE_SAVING_H
