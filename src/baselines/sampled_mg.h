#ifndef FREQ_BASELINES_SAMPLED_MG_H
#define FREQ_BASELINES_SAMPLED_MG_H

/// \file sampled_mg.h
/// The paper's §5 weighted adaptation of Bhattacharyya, Dey & Woodruff's
/// "simple" (φ, ε)-heavy-hitter algorithm: sample the stream at rate p and
/// feed the sampled mass into a small counter-based summary; report scaled
/// estimates.
///
/// A weighted update (i, Δ) contributes Binomial(Δ, p) sampled units,
/// generated in O(1 + Δp) expected time by summing Geometric(p) skip
/// lengths — exactly the geometric-random-variable construction §5 sketches.
/// The inner summary is the paper's own weighted sketch, so the adaptation
/// "carries over in a black-box manner" as §5 claims.
///
/// Estimates are unbiased up to the inner summary's deterministic error:
///   E[estimate(i)] ≈ f_i, with sampling noise O(sqrt(f_i / p)).

#include <cmath>
#include <cstdint>

#include "common/contracts.h"
#include "core/frequent_items_sketch.h"
#include "random/distributions.h"
#include "random/xoshiro.h"
#include "stream/update.h"

namespace freq {

template <typename K = std::uint64_t>
class sampled_mg {
public:
    using key_type = K;
    using weight_type = std::uint64_t;

    struct config {
        double sampling_probability = 0.01;  ///< p
        std::uint32_t max_counters = 256;    ///< k = O(1/ε) inner counters
        std::uint64_t seed = 0;
    };

    /// Sizes the algorithm for a (φ, ε) guarantee with failure probability
    /// \p delta on a stream of expected weighted length \p expected_weight:
    /// p = min(1, 4·ln(1/δ) / (ε²·N)), k = ceil(4/ε)  (cf. [BDW16] §3).
    static config for_stream(double epsilon, double delta, double expected_weight) {
        FREQ_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        FREQ_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        FREQ_REQUIRE(expected_weight > 0.0, "expected stream weight must be positive");
        config cfg;
        const double p = 4.0 * std::log(1.0 / delta) / (epsilon * epsilon * expected_weight);
        cfg.sampling_probability = p < 1.0 ? p : 1.0;
        cfg.max_counters = static_cast<std::uint32_t>(std::ceil(4.0 / epsilon));
        return cfg;
    }

    explicit sampled_mg(const config& cfg)
        : cfg_(cfg),
          skip_(cfg.sampling_probability),
          rng_(mix64(cfg.seed ^ 0x6a09e667f3bcc909ULL)),
          inner_(sketch_config{.max_counters = cfg.max_counters, .seed = cfg.seed}) {}

    void update(K id, std::uint64_t weight = 1) {
        total_weight_ += weight;
        std::uint64_t sampled = 0;
        if (cfg_.sampling_probability >= 1.0) {
            sampled = weight;
        } else {
            // Count Bernoulli(p) successes among `weight` trials by walking
            // geometric skip lengths — O(1 + weight·p) expected.
            std::uint64_t remaining = weight;
            for (;;) {
                const std::uint64_t g = skip_(rng_);
                if (g > remaining) {
                    break;
                }
                remaining -= g;
                ++sampled;
            }
        }
        if (sampled > 0) {
            inner_.update(id, sampled);
        }
    }

    void consume(const update_stream<K, std::uint64_t>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    /// Sample-scaled frequency estimate.
    double estimate(K id) const {
        return static_cast<double>(inner_.estimate(id)) / cfg_.sampling_probability;
    }

    std::uint64_t total_weight() const noexcept { return total_weight_; }
    std::uint64_t sampled_weight() const noexcept { return inner_.total_weight(); }
    const config& cfg() const noexcept { return cfg_; }
    const frequent_items_sketch<K, std::uint64_t>& inner() const noexcept { return inner_; }

    std::size_t memory_bytes() const noexcept { return inner_.memory_bytes(); }

private:
    config cfg_;
    geometric_skip skip_;
    xoshiro256ss rng_;
    frequent_items_sketch<K, std::uint64_t> inner_;
    std::uint64_t total_weight_ = 0;
};

}  // namespace freq

#endif  // FREQ_BASELINES_SAMPLED_MG_H
