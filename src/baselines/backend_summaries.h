#ifndef FREQ_BASELINES_BACKEND_SUMMARIES_H
#define FREQ_BASELINES_BACKEND_SUMMARIES_H

/// \file backend_summaries.h
/// The §1.3 baselines promoted to façade backends: adapters wrapping
/// count_min_sketch, count_sketch and space_saving_heap behind the
/// sketch_backend concept (core/counter_maintenance.h), so
/// `builder().algorithm(freq::algo::{count_min,count_sketch,space_saving})`
/// can run any of them through the type-erased summarizer, the sharded
/// stream_engine, the snapshot service and the summary_bytes envelope —
/// the same surfaces the paper's sketch uses.
///
/// Design notes:
///  * Composition, not reimplementation: each adapter owns the original
///    baseline class and adds exactly what the façade contract needs —
///    sketch_config mapping, batched updates, lifetime clocks, heavy-hitter
///    *enumeration*, and serde hooks. The baselines stay usable standalone.
///  * Enumeration for linear sketches: count-min / count-sketch answer
///    point queries only, so each adapter carries a candidate_tracker — a
///    position-tracked min-heap of the max_counters ids with the largest
///    current estimates (the standard "sketch + heap" heavy-hitter
///    construction). frequent_items / top_items report from the tracker;
///    only the *ids* ever reach the serde wire (keys are rebuilt from the
///    restored cells), keeping the envelope encoding canonical.
///  * Lifetime: plain works everywhere. exponential_fading rides on
///    linearity — arrivals scale up by the inflation factor, queries scale
///    down, and the rare renormalization pass is the baseline's scale_all
///    (count_min, space_saving). count_sketch stays plain-only: its u64
///    weights cannot carry forward-decay fractions (the façade rejects the
///    combination with a typed error). epoch_window is rejected for all
///    three — a ring of linear sketches is a different data structure, not
///    a policy instantiation.
///  * Error envelopes: count_min bounds are one-sided (lower_bound = 0,
///    estimate never underestimates) and its expected error e·N/width is
///    *probabilistic* — so its no-false-positives mode is vacuous and
///    FREQ_REQUIRE-rejected. count_sketch estimates are unbiased with an
///    AMS-style ±3·sqrt(F₂/width) envelope (also probabilistic; both query
///    modes allowed, documented as best-effort). space_saving keeps the
///    deterministic c(i) − e(i) ≤ f_i ≤ c(i) brackets.
///  * Sharded merging: the linear sketches opt out of the engine's
///    per-shard seed perturbation (`merge_requires_equal_seeds`) because
///    cellwise merge needs identical hash functions; that is sound for the
///    engine because shards partition the key space. space_saving merges
///    entry-wise by id (seed-agnostic) with the standard min-counter
///    adjustment for ids the other summary may have evicted.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "baselines/count_min_sketch.h"
#include "baselines/count_sketch.h"
#include "baselines/space_saving_heap.h"
#include "common/contracts.h"
#include "core/counter_maintenance.h"
#include "core/lifetime_policy.h"
#include "core/sketch_config.h"
#include "stream/update.h"
#include "table/flat_index.h"

namespace freq {

struct summary_serde_access;  // api/summary_bytes.h — the serde friend

namespace detail {

/// The (up to) capacity ids with the largest keys seen so far: a
/// position-tracked binary min-heap (root = smallest tracked key) plus a
/// flat hash index, the same layout as space_saving_heap. note(id, key)
/// re-keys a tracked id in O(log k), admits new ids while space remains,
/// and otherwise evicts the minimum only when the new key beats it. Keys
/// are in the owner's RAW storage units (a fading owner re-scales them via
/// scale_all alongside its cells, which is monotone and so preserves the
/// heap order).
template <typename W>
class candidate_tracker {
public:
    candidate_tracker(std::uint32_t capacity, std::uint64_t seed)
        : capacity_(capacity), index_(capacity, seed ^ 0x9e37'79b9'7f4a'7c15ULL) {
        FREQ_REQUIRE(capacity >= 1, "candidate_tracker needs at least one slot");
        heap_.reserve(capacity);
    }

    std::size_t size() const noexcept { return heap_.size(); }
    std::uint32_t capacity() const noexcept { return capacity_; }
    bool contains(std::uint64_t id) const { return index_.find(id) != nullptr; }
    W min_key() const noexcept { return heap_.empty() ? W{0} : heap_[0].key; }

    /// Observes id's current key (its fresh raw estimate). Tracked ids are
    /// re-keyed in place; untracked ids displace the minimum only when
    /// strictly larger, so the tracker converges on the top-capacity set.
    void note(std::uint64_t id, W key) {
        if (std::uint32_t* pos = index_.find(id)) {
            const W old = heap_[*pos].key;
            heap_[*pos].key = key;
            if (key >= old) {
                sift_down(*pos);
            } else {
                sift_up(*pos);
            }
            return;
        }
        if (heap_.size() < capacity_) {
            heap_.push_back(slot{id, key});
            index_.put(id, static_cast<std::uint32_t>(heap_.size() - 1));
            sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
            return;
        }
        if (!(key > heap_[0].key)) {
            return;
        }
        index_.erase(heap_[0].id);
        heap_[0] = slot{id, key};
        index_.put(id, 0);
        sift_down(0);
    }

    /// Uniform re-scaling (monotone — heap order preserved); the fading
    /// owner's renormalization hook.
    void scale_all(double factor) {
        for (slot& s : heap_) {
            s.key = static_cast<W>(static_cast<double>(s.key) * factor);
        }
    }

    template <typename F>
    void for_each_id(F&& f) const {
        for (const slot& s : heap_) {
            f(s.id);
        }
    }

    void clear() {
        heap_.clear();
        index_.clear();
    }

    std::size_t memory_bytes() const noexcept {
        return heap_.capacity() * sizeof(slot) + index_.memory_bytes();
    }

private:
    struct slot {
        std::uint64_t id;
        W key;
    };

    void sift_up(std::uint32_t pos) {
        while (pos > 0) {
            const std::uint32_t parent = (pos - 1) / 2;
            if (heap_[parent].key <= heap_[pos].key) {
                break;
            }
            swap_slots(pos, parent);
            pos = parent;
        }
    }

    void sift_down(std::uint32_t pos) {
        const auto n = static_cast<std::uint32_t>(heap_.size());
        for (;;) {
            std::uint32_t smallest = pos;
            const std::uint32_t left = 2 * pos + 1;
            const std::uint32_t right = 2 * pos + 2;
            if (left < n && heap_[left].key < heap_[smallest].key) {
                smallest = left;
            }
            if (right < n && heap_[right].key < heap_[smallest].key) {
                smallest = right;
            }
            if (smallest == pos) {
                return;
            }
            swap_slots(pos, smallest);
            pos = smallest;
        }
    }

    void swap_slots(std::uint32_t a, std::uint32_t b) {
        std::swap(heap_[a], heap_[b]);
        index_.put(heap_[a].id, a);
        index_.put(heap_[b].id, b);
    }

    std::uint32_t capacity_;
    std::vector<slot> heap_;
    flat_index<std::uint64_t, std::uint32_t> index_;
};

}  // namespace detail

// --- count-min ---------------------------------------------------------------

/// Count-Min behind the façade contract: width = max_counters (rounded to a
/// power of two), depth 4, plus a candidate tracker for enumeration.
/// Estimates never underestimate; lower_bound is always 0, so only the
/// no-false-negatives query mode is meaningful (no_false_positives is
/// rejected with a typed error). maximum_error() is the *expected* e·N/width
/// bound — probabilistic, unlike the paper sketch's deterministic offset.
template <typename W = std::uint64_t, typename L = plain_lifetime>
class count_min_summary {
public:
    using key_type = std::uint64_t;
    using weight_type = W;
    using lifetime_policy = L;

    static_assert(!L::windowed,
                  "count_min has no sliding-window instantiation (a ring of "
                  "linear sketches is a different structure, not a policy)");
    static_assert(!L::decaying || std::is_floating_point_v<W>,
                  "fading count_min requires real weights");

    /// Cellwise merge needs identical hash seeds — the engine must not
    /// perturb per-shard seeds (sound: shards partition the key space).
    static constexpr bool merge_requires_equal_seeds = true;

    struct row {
        std::uint64_t id;
        W estimate;
        W lower_bound;
        W upper_bound;
    };

    explicit count_min_summary(const sketch_config& cfg)
        : cfg_(cfg),
          cm_(typename count_min_sketch<std::uint64_t, W>::config{
              .width = std::max<std::uint32_t>(2u, cfg.max_counters),
              .depth = 4,
              .conservative = false,
              .seed = cfg.seed}),
          tracker_(cfg.max_counters, cfg.seed) {
        policy_.configure(cfg);
    }

    void update(std::uint64_t id, W weight = W{1}) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        if constexpr (L::decaying) {
            weight = static_cast<W>(weight * policy_.inflation());
        }
        cm_.update(id, weight);
        tracker_.note(id, cm_.estimate(id));
    }

    /// Batched ingest (the engine's drain path). Validates the whole batch
    /// before touching state so the all-or-nothing boundary sits at the
    /// batch, matching basic_frequent_items.
    void update(std::span<const freq::update<std::uint64_t, W>> batch) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            for (const auto& u : batch) {
                FREQ_REQUIRE(u.weight >= W{0}, "update weights must be non-negative");
            }
        }
        for (const auto& u : batch) {
            if (u.weight == W{0}) {
                continue;
            }
            W weight = u.weight;
            if constexpr (L::decaying) {
                weight = static_cast<W>(weight * policy_.inflation());
            }
            cm_.update(u.id, weight);
            tracker_.note(u.id, cm_.estimate(u.id));
        }
    }

    /// Advances the fading clock; a no-op under the plain policy. Mirrors
    /// basic_frequent_items::tick including the bulk-jump fast path.
    void tick(std::uint64_t epochs = 1) {
        if constexpr (L::decaying) {
            if (epochs == 0) {
                return;
            }
            if (epochs == 1) {
                if (policy_.tick()) {
                    renormalize();
                }
                return;
            }
            const double rebase = policy_.renormalize();
            policy_.jump(epochs);
            const double factor =
                rebase * std::pow(policy_.decay(), static_cast<double>(epochs));
            if (!(factor > 0.0)) {
                cm_.scale_all(0.0);
                tracker_.scale_all(0.0);
            } else if (factor < 1.0) {
                cm_.scale_all(factor);
                tracker_.scale_all(factor);
            }
        } else {
            (void)epochs;
        }
    }

    /// Cellwise merge (linearity), then the candidate set is rebuilt as the
    /// top-capacity of the *union* of both trackers under post-merge
    /// estimates. Under fading the clocks align on the later tick first,
    /// exactly like the paper core's merge.
    void merge(const count_min_summary& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        if constexpr (L::decaying) {
            FREQ_REQUIRE(policy_.decay() == other.policy_.decay(),
                         "merging fading sketches requires equal decay factors");
            if (other.policy_.now() > policy_.now()) {
                tick(other.policy_.now() - policy_.now());
            }
            cm_.merge_scaled(other.cm_, policy_.align_factor(other.policy_));
        } else {
            cm_.merge(other.cm_);
        }
        std::vector<std::uint64_t> ids;
        ids.reserve(tracker_.size() + other.tracker_.size());
        tracker_.for_each_id([&](std::uint64_t id) { ids.push_back(id); });
        other.tracker_.for_each_id([&](std::uint64_t id) { ids.push_back(id); });
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        tracker_.clear();
        for (const std::uint64_t id : ids) {
            tracker_.note(id, cm_.estimate(id));
        }
    }

    // --- queries (decayed units under a fading policy) -----------------------

    W estimate(std::uint64_t id) const { return present(cm_.estimate(id)); }
    W lower_bound(std::uint64_t) const { return W{0}; }
    W upper_bound(std::uint64_t id) const { return estimate(id); }
    W total_weight() const { return present(cm_.total_weight()); }

    /// Expected point-query error e·N/width — probabilistic (per query,
    /// failure probability ≤ e^{-depth}), not the deterministic bound the
    /// paper sketch carries.
    W maximum_error() const {
        const double n = static_cast<double>(cm_.total_weight());
        return present(static_cast<W>(2.718281828 * n / cm_.width()));
    }

    std::uint32_t num_counters() const noexcept {
        return static_cast<std::uint32_t>(tracker_.size());
    }
    std::uint32_t capacity() const noexcept { return tracker_.capacity(); }
    std::size_t memory_bytes() const noexcept {
        return cm_.memory_bytes() + tracker_.memory_bytes();
    }
    const sketch_config& config() const noexcept { return cfg_; }
    const L& policy() const noexcept { return policy_; }

    /// Tracked candidates whose upper bound exceeds \p threshold, sorted by
    /// descending estimate. Only no_false_negatives is meaningful: with
    /// lower_bound ≡ 0 a no-false-positives query could never report
    /// anything, so asking for it is a usage error, not an empty answer.
    std::vector<row> frequent_items(error_type et, W threshold) const {
        FREQ_REQUIRE(et == error_type::no_false_negatives,
                     "count_min has no lower bounds, so no_false_positives is "
                     "vacuous; query no_false_negatives or pick an algorithm "
                     "with two-sided bounds");
        std::vector<row> out;
        tracker_.for_each_id([&](std::uint64_t id) {
            const W ub = estimate(id);
            if (ub > threshold) {
                out.push_back(row{id, ub, W{0}, ub});
            }
        });
        sort_desc(out);
        return out;
    }

    std::vector<row> frequent_items(error_type et) const {
        return frequent_items(et, maximum_error());
    }

    std::vector<row> top_items(std::size_t m) const {
        std::vector<row> out;
        out.reserve(tracker_.size());
        tracker_.for_each_id([&](std::uint64_t id) {
            const W ub = estimate(id);
            out.push_back(row{id, ub, W{0}, ub});
        });
        sort_desc(out);
        if (out.size() > m) {
            out.resize(m);
        }
        return out;
    }

    std::string to_string() const {
        return "count_min_summary(w=" + std::to_string(cm_.width()) +
               ", d=" + std::to_string(cm_.depth()) +
               ", candidates=" + std::to_string(tracker_.size()) +
               ", N=" + std::to_string(static_cast<double>(total_weight())) + ")";
    }

private:
    friend struct summary_serde_access;

    W present(W raw) const {
        if constexpr (L::decaying) {
            return static_cast<W>(raw / policy_.inflation());
        } else {
            return raw;
        }
    }

    void renormalize() {
        const double factor = policy_.renormalize();
        cm_.scale_all(factor);
        tracker_.scale_all(factor);
    }

    static void sort_desc(std::vector<row>& rows) {
        std::sort(rows.begin(), rows.end(),
                  [](const row& a, const row& b) { return a.estimate > b.estimate; });
    }

    sketch_config cfg_;
    count_min_sketch<std::uint64_t, W> cm_;
    detail::candidate_tracker<W> tracker_;
    L policy_;
};

// --- count-sketch ------------------------------------------------------------

/// Count sketch behind the façade contract: width = max_counters (rounded
/// to a power of two), depth 5, candidate tracker for enumeration. The
/// estimate is the unbiased median-of-rows, bracketed by the AMS-style
/// ±3·sqrt(F₂/width) envelope computed from the sketch's own cells (a
/// self-estimate of the second moment — probabilistic in both directions,
/// so both query modes are allowed but best-effort). Plain lifetime and u64
/// weights only: the underlying counters are signed integers and cannot
/// carry forward-decay fractions.
class count_sketch_summary {
public:
    using key_type = std::uint64_t;
    using weight_type = std::uint64_t;
    using lifetime_policy = plain_lifetime;

    /// Cellwise merge needs identical hash seeds (see count_min_summary).
    static constexpr bool merge_requires_equal_seeds = true;

    struct row {
        std::uint64_t id;
        std::uint64_t estimate;
        std::uint64_t lower_bound;
        std::uint64_t upper_bound;
    };

    explicit count_sketch_summary(const sketch_config& cfg)
        : cfg_(cfg),
          cs_(count_sketch<std::uint64_t>::config{
              .width = std::max<std::uint32_t>(2u, cfg.max_counters),
              .depth = 5,
              .seed = cfg.seed}),
          tracker_(cfg.max_counters, cfg.seed) {}

    void update(std::uint64_t id, std::uint64_t weight = 1) {
        if (weight == 0) {
            return;
        }
        cs_.update(id, weight);
        tracker_.note(id, cs_.estimate(id));
    }

    void update(std::span<const freq::update<std::uint64_t, std::uint64_t>> batch) {
        for (const auto& u : batch) {
            update(u.id, u.weight);
        }
    }

    void tick(std::uint64_t = 1) noexcept {}  // plain lifetime: no clock

    void merge(const count_sketch_summary& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        cs_.merge(other.cs_);
        std::vector<std::uint64_t> ids;
        ids.reserve(tracker_.size() + other.tracker_.size());
        tracker_.for_each_id([&](std::uint64_t id) { ids.push_back(id); });
        other.tracker_.for_each_id([&](std::uint64_t id) { ids.push_back(id); });
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        tracker_.clear();
        for (const std::uint64_t id : ids) {
            tracker_.note(id, cs_.estimate(id));
        }
    }

    // --- queries -------------------------------------------------------------

    std::uint64_t estimate(std::uint64_t id) const { return cs_.estimate(id); }

    std::uint64_t lower_bound(std::uint64_t id) const {
        const std::uint64_t est = cs_.estimate(id);
        const std::uint64_t err = maximum_error();
        return est > err ? est - err : 0;
    }

    std::uint64_t upper_bound(std::uint64_t id) const {
        return cs_.estimate(id) + maximum_error();
    }

    std::uint64_t total_weight() const noexcept { return cs_.total_weight(); }

    /// ±3·sqrt(F₂_med/width): the median over rows of the per-row
    /// sum-of-squared-cells estimates F₂ (AMS), and one row's estimate has
    /// standard deviation ≤ sqrt(F₂/width) — three deviations around the
    /// median-of-5 make per-item misses rare. O(width·depth) per call;
    /// cached by enumeration queries.
    std::uint64_t maximum_error() const {
        const auto cells = cs_.cells();
        const std::uint32_t width = cs_.width();
        const std::uint32_t depth = cs_.depth();
        std::vector<double> f2(depth, 0.0);
        for (std::uint32_t j = 0; j < depth; ++j) {
            for (std::uint32_t i = 0; i < width; ++i) {
                const auto c = static_cast<double>(
                    cells[static_cast<std::size_t>(j) * width + i]);
                f2[j] += c * c;
            }
        }
        std::nth_element(f2.begin(), f2.begin() + depth / 2, f2.end());
        return static_cast<std::uint64_t>(3.0 * std::sqrt(f2[depth / 2] / width));
    }

    std::uint32_t num_counters() const noexcept {
        return static_cast<std::uint32_t>(tracker_.size());
    }
    std::uint32_t capacity() const noexcept { return tracker_.capacity(); }
    std::size_t memory_bytes() const noexcept {
        return cs_.memory_bytes() + tracker_.memory_bytes();
    }
    const sketch_config& config() const noexcept { return cfg_; }
    const plain_lifetime& policy() const noexcept { return policy_; }

    /// Tracked candidates whose chosen bound exceeds \p threshold, sorted
    /// by descending estimate. Both modes are allowed; the envelopes are
    /// probabilistic, so "no false X" is with high probability, not the
    /// paper sketch's certainty.
    std::vector<row> frequent_items(error_type et, std::uint64_t threshold) const {
        const std::uint64_t err = maximum_error();
        std::vector<row> out;
        tracker_.for_each_id([&](std::uint64_t id) {
            const std::uint64_t est = cs_.estimate(id);
            const std::uint64_t lb = est > err ? est - err : 0;
            const std::uint64_t ub = est + err;
            const std::uint64_t bound = et == error_type::no_false_positives ? lb : ub;
            if (bound > threshold) {
                out.push_back(row{id, est, lb, ub});
            }
        });
        sort_desc(out);
        return out;
    }

    std::vector<row> frequent_items(error_type et) const {
        return frequent_items(et, maximum_error());
    }

    std::vector<row> top_items(std::size_t m) const {
        const std::uint64_t err = maximum_error();
        std::vector<row> out;
        out.reserve(tracker_.size());
        tracker_.for_each_id([&](std::uint64_t id) {
            const std::uint64_t est = cs_.estimate(id);
            out.push_back(row{id, est, est > err ? est - err : 0, est + err});
        });
        sort_desc(out);
        if (out.size() > m) {
            out.resize(m);
        }
        return out;
    }

    std::string to_string() const {
        return "count_sketch_summary(w=" + std::to_string(cs_.width()) +
               ", d=" + std::to_string(cs_.depth()) +
               ", candidates=" + std::to_string(tracker_.size()) +
               ", N=" + std::to_string(total_weight()) + ")";
    }

private:
    friend struct summary_serde_access;

    static void sort_desc(std::vector<row>& rows) {
        std::sort(rows.begin(), rows.end(),
                  [](const row& a, const row& b) { return a.estimate > b.estimate; });
    }

    sketch_config cfg_;
    count_sketch<std::uint64_t> cs_;
    detail::candidate_tracker<std::uint64_t> tracker_;
    plain_lifetime policy_;
};

// --- space-saving ------------------------------------------------------------

/// Space Saving behind the façade contract. The heap already *is* a
/// heavy-hitter summary — the adapter adds the sketch_config mapping,
/// batched updates, the fading clock (scale_all renorm, like the paper
/// core), deterministic c−e ≤ f ≤ c query brackets, and a seed-agnostic
/// entry-wise merge (Agarwal et al.'s mergeable-summaries construction:
/// matching ids add counts and errors; one-sided ids absorb the other
/// side's min-counter as extra error; keep the top-capacity by count).
template <typename W = std::uint64_t, typename L = plain_lifetime>
class space_saving_summary {
public:
    using key_type = std::uint64_t;
    using weight_type = W;
    using lifetime_policy = L;

    static_assert(!L::windowed,
                  "space_saving has no sliding-window instantiation");
    static_assert(!L::decaying || std::is_floating_point_v<W>,
                  "fading space_saving requires real weights");

    struct row {
        std::uint64_t id;
        W estimate;
        W lower_bound;
        W upper_bound;
    };

    explicit space_saving_summary(const sketch_config& cfg)
        : cfg_(cfg), ss_(cfg.max_counters, cfg.seed) {
        policy_.configure(cfg);
    }

    void update(std::uint64_t id, W weight = W{1}) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        if constexpr (L::decaying) {
            weight = static_cast<W>(weight * policy_.inflation());
        }
        ss_.update(id, weight);
    }

    void update(std::span<const freq::update<std::uint64_t, W>> batch) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            for (const auto& u : batch) {
                FREQ_REQUIRE(u.weight >= W{0}, "update weights must be non-negative");
            }
        }
        for (const auto& u : batch) {
            if (u.weight == W{0}) {
                continue;
            }
            W weight = u.weight;
            if constexpr (L::decaying) {
                weight = static_cast<W>(weight * policy_.inflation());
            }
            ss_.update(u.id, weight);
        }
    }

    void tick(std::uint64_t epochs = 1) {
        if constexpr (L::decaying) {
            if (epochs == 0) {
                return;
            }
            if (epochs == 1) {
                if (policy_.tick()) {
                    ss_.scale_all(policy_.renormalize());
                }
                return;
            }
            const double rebase = policy_.renormalize();
            policy_.jump(epochs);
            const double factor =
                rebase * std::pow(policy_.decay(), static_cast<double>(epochs));
            ss_.scale_all(factor > 0.0 ? std::min(factor, 1.0) : 0.0);
        } else {
            (void)epochs;
        }
    }

    /// Entry-wise merge by id. Ids present on both sides add counts and
    /// error terms; ids only one side tracks absorb the other side's
    /// min-counter into both (the other stream may have fed the id up to
    /// that much before evicting it). The top-capacity entries by count
    /// survive; totals add. Seed-agnostic, so it also serves the sharded
    /// engine's fold (shards partition keys, making the min-counter
    /// adjustment merely conservative).
    void merge(const space_saving_summary& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        double f = 1.0;
        if constexpr (L::decaying) {
            FREQ_REQUIRE(policy_.decay() == other.policy_.decay(),
                         "merging fading sketches requires equal decay factors");
            if (other.policy_.now() > policy_.now()) {
                tick(other.policy_.now() - policy_.now());
            }
            f = policy_.align_factor(other.policy_);
        }
        using entry = typename space_saving_heap<std::uint64_t, W>::entry;
        std::vector<entry> mine;
        mine.reserve(ss_.num_counters());
        ss_.for_each_entry([&](std::uint64_t id, W count, W error) {
            mine.push_back(entry{id, count, error});
        });
        std::vector<entry> theirs;
        theirs.reserve(other.ss_.num_counters());
        other.ss_.for_each_entry([&](std::uint64_t id, W count, W error) {
            theirs.push_back(entry{id, static_cast<W>(count * f),
                                   static_cast<W>(error * f)});
        });
        const auto by_id = [](const entry& a, const entry& b) { return a.id < b.id; };
        std::sort(mine.begin(), mine.end(), by_id);
        std::sort(theirs.begin(), theirs.end(), by_id);
        const W min_mine =
            ss_.num_counters() == ss_.capacity() ? ss_.min_counter() : W{0};
        const W min_theirs = other.ss_.num_counters() == other.ss_.capacity()
                                 ? static_cast<W>(other.ss_.min_counter() * f)
                                 : W{0};
        std::vector<entry> merged;
        merged.reserve(mine.size() + theirs.size());
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < mine.size() || j < theirs.size()) {
            if (j == theirs.size() || (i < mine.size() && mine[i].id < theirs[j].id)) {
                merged.push_back(entry{mine[i].id,
                                       static_cast<W>(mine[i].count + min_theirs),
                                       static_cast<W>(mine[i].error + min_theirs)});
                ++i;
            } else if (i == mine.size() || theirs[j].id < mine[i].id) {
                merged.push_back(entry{theirs[j].id,
                                       static_cast<W>(theirs[j].count + min_mine),
                                       static_cast<W>(theirs[j].error + min_mine)});
                ++j;
            } else {
                merged.push_back(entry{mine[i].id,
                                       static_cast<W>(mine[i].count + theirs[j].count),
                                       static_cast<W>(mine[i].error + theirs[j].error)});
                ++i;
                ++j;
            }
        }
        if (merged.size() > ss_.capacity()) {
            std::sort(merged.begin(), merged.end(), [](const entry& a, const entry& b) {
                return a.count != b.count ? a.count > b.count : a.id < b.id;
            });
            merged.resize(ss_.capacity());
        }
        const W total =
            static_cast<W>(ss_.total_weight() + other.ss_.total_weight() * f);
        ss_.assign(merged, total);
    }

    // --- queries (decayed units under a fading policy) -----------------------

    W estimate(std::uint64_t id) const { return present(ss_.estimate(id)); }
    W lower_bound(std::uint64_t id) const { return present(ss_.lower_bound(id)); }
    W upper_bound(std::uint64_t id) const { return present(ss_.upper_bound(id)); }
    W total_weight() const { return present(ss_.total_weight()); }

    /// Deterministic: an untracked item's frequency is at most the minimum
    /// counter (0 while unassigned counters remain), and every tracked
    /// bracket is at most that wide too.
    W maximum_error() const {
        return present(ss_.num_counters() == ss_.capacity() ? ss_.min_counter()
                                                            : W{0});
    }

    std::uint32_t num_counters() const noexcept { return ss_.num_counters(); }
    std::uint32_t capacity() const noexcept { return ss_.capacity(); }
    std::size_t memory_bytes() const noexcept { return ss_.memory_bytes(); }
    const sketch_config& config() const noexcept { return cfg_; }
    const L& policy() const noexcept { return policy_; }

    /// Tracked items whose bound (chosen by \p et) exceeds \p threshold,
    /// sorted by descending estimate — the same deterministic NFP/NFN
    /// semantics as the paper sketch, from c−e / c brackets.
    std::vector<row> frequent_items(error_type et, W threshold) const {
        std::vector<row> out;
        ss_.for_each_entry([&](std::uint64_t id, W count, W error) {
            const W ub = present(count);
            const W lb = present(static_cast<W>(count - error));
            const W bound = et == error_type::no_false_positives ? lb : ub;
            if (bound > threshold) {
                out.push_back(row{id, ub, lb, ub});
            }
        });
        sort_desc(out);
        return out;
    }

    std::vector<row> frequent_items(error_type et) const {
        return frequent_items(et, maximum_error());
    }

    std::vector<row> top_items(std::size_t m) const {
        std::vector<row> out;
        out.reserve(ss_.num_counters());
        ss_.for_each_entry([&](std::uint64_t id, W count, W error) {
            out.push_back(row{id, present(count),
                              present(static_cast<W>(count - error)), present(count)});
        });
        sort_desc(out);
        if (out.size() > m) {
            out.resize(m);
        }
        return out;
    }

    std::string to_string() const {
        return "space_saving_summary(k=" + std::to_string(ss_.capacity()) +
               ", counters=" + std::to_string(ss_.num_counters()) +
               ", N=" + std::to_string(static_cast<double>(total_weight())) + ")";
    }

private:
    friend struct summary_serde_access;

    W present(W raw) const {
        if constexpr (L::decaying) {
            return static_cast<W>(raw / policy_.inflation());
        } else {
            return raw;
        }
    }

    static void sort_desc(std::vector<row>& rows) {
        std::sort(rows.begin(), rows.end(),
                  [](const row& a, const row& b) { return a.estimate > b.estimate; });
    }

    sketch_config cfg_;
    space_saving_heap<std::uint64_t, W> ss_;
    L policy_;
};

// Every façade-reachable instantiation models the backend concept — the
// compile-time contract the engine, summarizer and snapshot service program
// against.
static_assert(sketch_backend<count_min_summary<std::uint64_t, plain_lifetime>>);
static_assert(sketch_backend<count_min_summary<double, exponential_fading>>);
static_assert(sketch_backend<count_sketch_summary>);
static_assert(sketch_backend<space_saving_summary<std::uint64_t, plain_lifetime>>);
static_assert(sketch_backend<space_saving_summary<double, exponential_fading>>);
static_assert(detail::merge_requires_equal_seeds_v<count_sketch_summary> &&
              detail::merge_requires_equal_seeds_v<
                  count_min_summary<std::uint64_t, plain_lifetime>> &&
              !detail::merge_requires_equal_seeds_v<
                  space_saving_summary<std::uint64_t, plain_lifetime>>);

}  // namespace freq

#endif  // FREQ_BASELINES_BACKEND_SUMMARIES_H
