#ifndef FREQ_BASELINES_MERGE_BASELINES_H
#define FREQ_BASELINES_MERGE_BASELINES_H

/// \file merge_baselines.h
/// The two prior-work merge procedures the paper races against in Fig. 4
/// (§3.1, §4.5). Both merge two summaries of capacities k1 and k2 into a
/// fresh summary of capacity k = k1:
///
///  * **ach_sort_merge** — Agarwal et al. [ACH+13] as §3.1 describes its
///    natural implementation: add the counters of both summaries in a
///    scratch hash table of capacity k1 + k2, *sort* all pairs by count,
///    keep the top k. Ω((k1+k2)·log(k1+k2)) time, and ~2.5× the space of
///    the in-place procedure (scratch table + fresh output summary).
///
///  * **hoa61_merge** — the paper's proposed Quickselect variant of the
///    same procedure (named for Hoare's 1961 Find in Fig. 4): identify the
///    k-th largest combined counter with Quickselect, then make one pass
///    keeping the counters at least that large. O(k1 + k2) time, same
///    scratch space.
///
/// Offset handling: the paper's summaries carry the §2.3.1 offset. The
/// merged offset is offset1 + offset2 plus the largest *discarded* combined
/// counter (zero when nothing is discarded), which preserves the invariant
/// that upper_bound(i) = c(i) + offset never undershoots f_i — including
/// for items whose counters the merge dropped.
///
/// The in-place Algorithm 5 merge these baselines are compared against is
/// frequent_items_sketch::merge().

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "core/frequent_items_sketch.h"
#include "select/quickselect.h"
#include "table/counter_table.h"

namespace freq {

namespace detail {

/// The façade merge path (basic_frequent_items::merge) aligns fading
/// clocks itself — it ticks the older side forward and rescales via
/// align_factor. The §3.1 baselines add raw counters directly, so they
/// must instead *reject* what they cannot align: merging summaries whose
/// landmarks differ would silently add values in incompatible units. A
/// constexpr no-op for plain summaries.
template <typename S>
void require_aligned_lifetime_clocks([[maybe_unused]] const S& a,
                                     [[maybe_unused]] const S& b) {
    if constexpr (S::lifetime_policy::decaying) {
        FREQ_REQUIRE(a.policy().decay() == b.policy().decay(),
                     "merging fading summaries requires equal decay factors");
        FREQ_REQUIRE(a.policy().now() == b.policy().now() &&
                         a.policy().inflation() == b.policy().inflation(),
                     "fading clocks are misaligned: tick() the older summary "
                     "forward to the later clock before a baseline merge");
    }
}

/// Presented-units value (what maximum_error() / total_weight() report)
/// back to RAW storage units — combine_counters rows are raw, so the
/// offset/total arithmetic must be too.
template <typename S>
typename S::weight_type raw_units(const S& s, typename S::weight_type presented) {
    if constexpr (S::lifetime_policy::decaying) {
        return static_cast<typename S::weight_type>(presented * s.policy().inflation());
    } else {
        return presented;
    }
}

/// Step 1-2 of §3.1's procedure: accumulate both summaries' raw counters
/// into a scratch table of capacity k1 + k2 and dump them into a vector.
/// Sound across fading summaries only once the clocks are aligned (the
/// callers check first) — equal landmarks make raw counters addable.
template <typename S>
std::vector<std::pair<typename S::key_type, typename S::weight_type>> combine_counters(
    const S& a, const S& b) {
    using K = typename S::key_type;
    using W = typename S::weight_type;
    counter_table<K, W> scratch(a.capacity() + b.capacity());
    a.for_each([&](K id, W c) { scratch.upsert(id, c); });
    b.for_each([&](K id, W c) { scratch.upsert(id, c); });
    std::vector<std::pair<K, W>> rows;
    rows.reserve(scratch.size());
    scratch.for_each([&](K id, W c) { rows.emplace_back(id, c); });
    return rows;
}

/// Builds the merged summary, threading the fading clock through when the
/// summary type carries one.
template <typename S>
S merged_from_raw(const S& a,
                  std::span<const std::pair<typename S::key_type,
                                            typename S::weight_type>> rows,
                  typename S::weight_type offset, typename S::weight_type total) {
    if constexpr (S::lifetime_policy::decaying) {
        return S::from_raw(a.config(), rows, offset, total, a.policy().now(),
                           a.policy().inflation());
    } else {
        return S::from_raw(a.config(), rows, offset, total);
    }
}

}  // namespace detail

/// Scratch-table bytes the §3.1 baselines allocate on top of the inputs —
/// reported next to Fig. 4 results (the paper: "they consume 2.5x more
/// space than our procedure").
template <typename K = std::uint64_t, typename W = std::uint64_t>
std::size_t merge_scratch_bytes(std::uint32_t k1, std::uint32_t k2) {
    return counter_table<K, W>::bytes_for(k1 + k2) +
           static_cast<std::size_t>(k1 + k2) * sizeof(std::pair<K, W>);
}

/// Agarwal et al. [ACH+13] sort-based merge (see file comment). Works on
/// any flat counter-based summary — frequent_items_sketch, or a
/// basic_frequent_items instantiation (plain or fading; fading inputs must
/// arrive clock-aligned, see require_aligned_lifetime_clocks).
template <typename S>
S ach_sort_merge(const S& a, const S& b) {
    using K = typename S::key_type;
    using W = typename S::weight_type;
    static_assert(!S::lifetime_policy::windowed,
                  "the §3.1 baselines merge flat summaries, not epoch rings");
    detail::require_aligned_lifetime_clocks(a, b);
    auto rows = detail::combine_counters(a, b);
    std::sort(rows.begin(), rows.end(),
              [](const auto& x, const auto& y) { return x.second > y.second; });
    const std::uint32_t k = a.capacity();
    W dropped{0};
    if (rows.size() > k) {
        dropped = rows[k].second;
        rows.resize(k);
    }
    return detail::merged_from_raw(
        a, std::span<const std::pair<K, W>>(rows),
        static_cast<W>(detail::raw_units(a, a.maximum_error()) +
                       detail::raw_units(b, b.maximum_error()) + dropped),
        static_cast<W>(detail::raw_units(a, a.total_weight()) +
                       detail::raw_units(b, b.total_weight())));
}

/// Quickselect-based variant of the [ACH+13] merge (§3.1's improvement,
/// "Hoa61" in Fig. 4). Same summary-type generality and clock-alignment
/// requirement as ach_sort_merge.
template <typename S>
S hoa61_merge(const S& a, const S& b) {
    using K = typename S::key_type;
    using W = typename S::weight_type;
    static_assert(!S::lifetime_policy::windowed,
                  "the §3.1 baselines merge flat summaries, not epoch rings");
    detail::require_aligned_lifetime_clocks(a, b);
    auto rows = detail::combine_counters(a, b);
    const std::uint32_t k = a.capacity();
    W dropped{0};
    if (rows.size() > k) {
        // Threshold = k-th largest combined counter; keep counters above it,
        // then fill remaining slots with threshold-valued ties so exactly k
        // survive (ties make ">= threshold" alone overshoot).
        std::vector<W> values;
        values.reserve(rows.size());
        for (const auto& r : rows) {
            values.push_back(r.second);
        }
        const W threshold = quickselect_largest(std::span<W>(values), k - 1);
        std::vector<std::pair<K, W>> kept;
        kept.reserve(k);
        std::size_t ties_allowed = k;
        for (const auto& r : rows) {
            if (r.second > threshold) {
                kept.push_back(r);
                --ties_allowed;
            }
        }
        for (const auto& r : rows) {
            if (r.second == threshold && ties_allowed > 0) {
                kept.push_back(r);
                --ties_allowed;
            } else if (r.second <= threshold) {
                // Track the true largest discarded counter so the offset
                // matches the sort-based implementation exactly.
                dropped = std::max(dropped, r.second);
            }
        }
        rows = std::move(kept);
    }
    return detail::merged_from_raw(
        a, std::span<const std::pair<K, W>>(rows),
        static_cast<W>(detail::raw_units(a, a.maximum_error()) +
                       detail::raw_units(b, b.maximum_error()) + dropped),
        static_cast<W>(detail::raw_units(a, a.total_weight()) +
                       detail::raw_units(b, b.total_weight())));
}

}  // namespace freq

#endif  // FREQ_BASELINES_MERGE_BASELINES_H
