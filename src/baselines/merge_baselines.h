#ifndef FREQ_BASELINES_MERGE_BASELINES_H
#define FREQ_BASELINES_MERGE_BASELINES_H

/// \file merge_baselines.h
/// The two prior-work merge procedures the paper races against in Fig. 4
/// (§3.1, §4.5). Both merge two summaries of capacities k1 and k2 into a
/// fresh summary of capacity k = k1:
///
///  * **ach_sort_merge** — Agarwal et al. [ACH+13] as §3.1 describes its
///    natural implementation: add the counters of both summaries in a
///    scratch hash table of capacity k1 + k2, *sort* all pairs by count,
///    keep the top k. Ω((k1+k2)·log(k1+k2)) time, and ~2.5× the space of
///    the in-place procedure (scratch table + fresh output summary).
///
///  * **hoa61_merge** — the paper's proposed Quickselect variant of the
///    same procedure (named for Hoare's 1961 Find in Fig. 4): identify the
///    k-th largest combined counter with Quickselect, then make one pass
///    keeping the counters at least that large. O(k1 + k2) time, same
///    scratch space.
///
/// Offset handling: the paper's summaries carry the §2.3.1 offset. The
/// merged offset is offset1 + offset2 plus the largest *discarded* combined
/// counter (zero when nothing is discarded), which preserves the invariant
/// that upper_bound(i) = c(i) + offset never undershoots f_i — including
/// for items whose counters the merge dropped.
///
/// The in-place Algorithm 5 merge these baselines are compared against is
/// frequent_items_sketch::merge().

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "core/frequent_items_sketch.h"
#include "select/quickselect.h"
#include "table/counter_table.h"

namespace freq {

namespace detail {

/// Step 1-2 of §3.1's procedure: accumulate both summaries' raw counters
/// into a scratch table of capacity k1 + k2 and dump them into a vector.
template <typename K, typename W>
std::vector<std::pair<K, W>> combine_counters(const frequent_items_sketch<K, W>& a,
                                              const frequent_items_sketch<K, W>& b) {
    counter_table<K, W> scratch(a.capacity() + b.capacity());
    a.for_each([&](K id, W c) { scratch.upsert(id, c); });
    b.for_each([&](K id, W c) { scratch.upsert(id, c); });
    std::vector<std::pair<K, W>> rows;
    rows.reserve(scratch.size());
    scratch.for_each([&](K id, W c) { rows.emplace_back(id, c); });
    return rows;
}

}  // namespace detail

/// Scratch-table bytes the §3.1 baselines allocate on top of the inputs —
/// reported next to Fig. 4 results (the paper: "they consume 2.5x more
/// space than our procedure").
template <typename K = std::uint64_t, typename W = std::uint64_t>
std::size_t merge_scratch_bytes(std::uint32_t k1, std::uint32_t k2) {
    return counter_table<K, W>::bytes_for(k1 + k2) +
           static_cast<std::size_t>(k1 + k2) * sizeof(std::pair<K, W>);
}

/// Agarwal et al. [ACH+13] sort-based merge (see file comment).
template <typename K, typename W>
frequent_items_sketch<K, W> ach_sort_merge(const frequent_items_sketch<K, W>& a,
                                           const frequent_items_sketch<K, W>& b) {
    auto rows = detail::combine_counters(a, b);
    std::sort(rows.begin(), rows.end(),
              [](const auto& x, const auto& y) { return x.second > y.second; });
    const std::uint32_t k = a.capacity();
    W dropped{0};
    if (rows.size() > k) {
        dropped = rows[k].second;
        rows.resize(k);
    }
    return frequent_items_sketch<K, W>::from_raw(
        a.config(), std::span<const std::pair<K, W>>(rows),
        a.maximum_error() + b.maximum_error() + dropped,
        a.total_weight() + b.total_weight());
}

/// Quickselect-based variant of the [ACH+13] merge (§3.1's improvement,
/// "Hoa61" in Fig. 4).
template <typename K, typename W>
frequent_items_sketch<K, W> hoa61_merge(const frequent_items_sketch<K, W>& a,
                                        const frequent_items_sketch<K, W>& b) {
    auto rows = detail::combine_counters(a, b);
    const std::uint32_t k = a.capacity();
    W dropped{0};
    if (rows.size() > k) {
        // Threshold = k-th largest combined counter; keep counters above it,
        // then fill remaining slots with threshold-valued ties so exactly k
        // survive (ties make ">= threshold" alone overshoot).
        std::vector<W> values;
        values.reserve(rows.size());
        for (const auto& r : rows) {
            values.push_back(r.second);
        }
        const W threshold = quickselect_largest(std::span<W>(values), k - 1);
        std::vector<std::pair<K, W>> kept;
        kept.reserve(k);
        std::size_t ties_allowed = k;
        for (const auto& r : rows) {
            if (r.second > threshold) {
                kept.push_back(r);
                --ties_allowed;
            }
        }
        for (const auto& r : rows) {
            if (r.second == threshold && ties_allowed > 0) {
                kept.push_back(r);
                --ties_allowed;
            } else if (r.second <= threshold) {
                // Track the true largest discarded counter so the offset
                // matches the sort-based implementation exactly.
                dropped = std::max(dropped, r.second);
            }
        }
        rows = std::move(kept);
    }
    return frequent_items_sketch<K, W>::from_raw(
        a.config(), std::span<const std::pair<K, W>>(rows),
        a.maximum_error() + b.maximum_error() + dropped,
        a.total_weight() + b.total_weight());
}

}  // namespace freq

#endif  // FREQ_BASELINES_MERGE_BASELINES_H
