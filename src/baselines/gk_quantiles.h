#ifndef FREQ_BASELINES_GK_QUANTILES_H
#define FREQ_BASELINES_GK_QUANTILES_H

/// \file gk_quantiles.h
/// Greenwald & Khanna's ε-approximate quantile summary — the representative
/// of the third algorithm class in Cormode & Hadjieleftheriou's study
/// ("counter-based, quantile, and sketch", §1.3 of the paper). A quantile
/// summary answers rank queries within ±εn, and therefore point-frequency
/// queries within ±2εn: the frequency of x is the width of the rank
/// interval its occurrences occupy.
///
/// Included so `ablate_sketch_vs_counter` can reproduce the full §1.3
/// comparison. Like the classic analysis we treat unit-weight updates (the
/// weighted generalization of GK is its own research topic — one more
/// reason the paper builds on counter-based algorithms instead).
///
/// Summary structure: sorted tuples (v, g, Δ); the i-th tuple covers ranks
/// (Σ_{j<=i} g_j − g_i, Σ_{j<=i} g_j + Δ_i]. Following standard practice,
/// inserts are buffered and merged in sorted batches of 1/(2ε) (tuple-at-
/// a-time vector insertion would be quadratic); a compress pass then merges
/// neighbours whose combined coverage stays under the 2εn budget, keeping
/// O((1/ε)·log(εn)) tuples.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/contracts.h"

namespace freq {

template <typename V = std::uint64_t>
class gk_quantiles {
public:
    using value_type = V;

    explicit gk_quantiles(double epsilon) : epsilon_(epsilon) {
        FREQ_REQUIRE(epsilon > 0.0 && epsilon < 0.5, "epsilon must be in (0, 0.5)");
        batch_size_ = std::max<std::size_t>(
            1, static_cast<std::size_t>(1.0 / (2.0 * epsilon)));
        pending_.reserve(batch_size_);
    }

    /// Inserts one observation (a unit-weight update). Amortized cost
    /// O(s/B + log B) where s is the summary size and B the batch size.
    void update(V v) {
        pending_.push_back(v);
        ++count_;
        if (pending_.size() >= batch_size_) {
            flush();
        }
    }

    /// Number of observations so far (n).
    std::uint64_t count() const noexcept { return count_; }
    double epsilon() const noexcept { return epsilon_; }

    std::size_t num_tuples() {
        flush();
        return tuples_.size();
    }

    std::size_t memory_bytes() const noexcept {
        return tuples_.capacity() * sizeof(tuple) + pending_.capacity() * sizeof(V) +
               prefix_.capacity() * sizeof(std::uint64_t);
    }

    /// Value whose rank is within εn of q·n. Precondition: count() > 0.
    V quantile(double q) {
        FREQ_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
        FREQ_REQUIRE(count_ > 0, "quantile of an empty summary");
        flush();
        const double target = q * static_cast<double>(count_);
        const double slack = epsilon_ * static_cast<double>(count_);
        std::uint64_t r_min = 0;
        for (const auto& t : tuples_) {
            r_min += t.g;
            if (static_cast<double>(r_min + t.delta) >= target - slack) {
                return t.value;
            }
        }
        return tuples_.back().value;
    }

    /// Rank interval occupied by value v: upper rank estimates for values
    /// strictly below v and for values at or below v (both ±εn accurate).
    struct rank_interval {
        std::uint64_t below;
        std::uint64_t at;
    };

    rank_interval ranks(V v) {
        flush();
        // Binary search over the sorted tuples; prefix sums of g are cached
        // after each flush so a rank query is O(log s).
        const auto lo = std::lower_bound(
            tuples_.begin(), tuples_.end(), v,
            [](const tuple& t, V value) { return t.value < value; });
        const auto hi = std::upper_bound(
            tuples_.begin(), tuples_.end(), v,
            [](V value, const tuple& t) { return value < t.value; });
        std::uint64_t below = 0;
        if (lo != tuples_.begin()) {
            const auto i = static_cast<std::size_t>(lo - tuples_.begin()) - 1;
            below = prefix_[i] + tuples_[i].delta;
        }
        std::uint64_t at = below;
        if (hi != lo) {
            const auto i = static_cast<std::size_t>(hi - tuples_.begin()) - 1;
            at = prefix_[i] + tuples_[i].delta;
        }
        return {below, at};
    }

    /// Point-frequency estimate for v: the width of its rank interval.
    /// |estimate − f_v| <= 2εn.
    std::uint64_t estimate(V v) {
        const auto r = ranks(v);
        return r.at > r.below ? r.at - r.below : 0;
    }

    /// Candidate φ-heavy items: every distinct summary value whose rank
    /// interval is wide enough. Contains all true φ-heavy items (their
    /// interval cannot shrink below (φ − 2ε)n).
    std::vector<V> heavy_hitters(double phi) {
        FREQ_REQUIRE(phi > 2.0 * epsilon_, "phi must exceed 2*epsilon");
        flush();
        const double threshold = (phi - 2.0 * epsilon_) * static_cast<double>(count_);
        std::vector<V> out;
        // Single pass: accumulate the rank interval per distinct value.
        std::uint64_t prefix = 0;
        std::size_t i = 0;
        while (i < tuples_.size()) {
            const V v = tuples_[i].value;
            const std::uint64_t below = prefix + (i > 0 ? tuples_[i - 1].delta : 0);
            std::uint64_t at = below;
            while (i < tuples_.size() && tuples_[i].value == v) {
                prefix += tuples_[i].g;
                at = prefix + tuples_[i].delta;
                ++i;
            }
            if (static_cast<double>(at > below ? at - below : 0) >= threshold) {
                out.push_back(v);
            }
        }
        return out;
    }

private:
    struct tuple {
        V value;
        std::uint64_t g;      ///< min-rank increment over the predecessor
        std::uint64_t delta;  ///< max-rank slack
    };

    std::uint64_t max_delta() const noexcept {
        return static_cast<std::uint64_t>(2.0 * epsilon_ * static_cast<double>(count_));
    }

    /// Sort the pending batch, merge it into the summary in one linear
    /// pass, then compress.
    void flush() {
        if (pending_.empty()) {
            return;
        }
        std::sort(pending_.begin(), pending_.end());
        const std::uint64_t budget = max_delta();
        std::vector<tuple> merged;
        merged.reserve(tuples_.size() + pending_.size());
        std::size_t ti = 0;
        std::size_t pi = 0;
        while (ti < tuples_.size() || pi < pending_.size()) {
            if (pi >= pending_.size() ||
                (ti < tuples_.size() && tuples_[ti].value <= pending_[pi])) {
                merged.push_back(tuples_[ti++]);
            } else {
                // A new observation: extremes get delta 0, interior the
                // current budget (the classic GK insert rule).
                const bool extreme = merged.empty() || ti >= tuples_.size();
                merged.push_back(tuple{pending_[pi++], 1, extreme ? 0 : budget});
            }
        }
        tuples_ = std::move(merged);
        pending_.clear();
        compress();
        rebuild_prefix();
    }

    /// Merge neighbours whose combined span fits the 2εn budget. One sweep
    /// from the back (the classic formulation), preserving the first and
    /// last tuples (exact min/max).
    void compress() {
        if (tuples_.size() < 3) {
            return;
        }
        const std::uint64_t budget = max_delta();
        std::size_t write = tuples_.size() - 1;
        for (std::size_t i = tuples_.size() - 1; i-- > 1;) {
            tuple& succ = tuples_[write];
            const tuple& cur = tuples_[i];
            if (cur.g + succ.g + succ.delta <= budget) {
                succ.g += cur.g;  // absorb cur into its successor
            } else {
                tuples_[--write] = cur;
            }
        }
        tuples_[--write] = tuples_[0];
        tuples_.erase(tuples_.begin(), tuples_.begin() + static_cast<std::ptrdiff_t>(write));
    }

    void rebuild_prefix() {
        prefix_.resize(tuples_.size());
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < tuples_.size(); ++i) {
            acc += tuples_[i].g;
            prefix_[i] = acc;
        }
    }

    double epsilon_;
    std::size_t batch_size_;
    std::uint64_t count_ = 0;
    std::vector<tuple> tuples_;
    std::vector<std::uint64_t> prefix_;
    std::vector<V> pending_;
};

}  // namespace freq

#endif  // FREQ_BASELINES_GK_QUANTILES_H
