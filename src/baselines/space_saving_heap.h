#ifndef FREQ_BASELINES_SPACE_SAVING_HEAP_H
#define FREQ_BASELINES_SPACE_SAVING_HEAP_H

/// \file space_saving_heap.h
/// Algorithm 2 of the paper — Space Saving [MAE05] — implemented with a
/// position-tracked binary min-heap plus a flat hash index:
///  * for unit weights this is **SSH** (§1.3.3);
///  * for weighted updates it is **MHE**, the Min-Heap Extension of §1.3.5
///    that prior work (e.g. hierarchical heavy hitters [18]) used as the
///    algorithm of choice, and the main speed baseline of Figs. 1-2.
///
/// Update cost is O(log k) (heap sift); space is a heap entry *and* a hash
/// index entry per counter — the "nearly doubles the space" overhead the
/// paper attributes to SSH/MHE, which memory_bytes() faithfully reports.
///
/// Each counter also carries the classic Space-Saving error term e(i) (the
/// counter value it absorbed when it took over the slot), so the standard
/// bounds are available: c(i) − e(i) ≤ f_i ≤ c(i).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "stream/update.h"
#include "table/flat_index.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t>
class space_saving_heap {
public:
    using key_type = K;
    using weight_type = W;

    /// One counter slot: id, count c(i) and absorbed-error term e(i).
    /// Public because the serde envelope and merge helpers ship entries
    /// wholesale (backend_summaries.h).
    struct entry {
        K id;
        W count;
        W error;
    };

    explicit space_saving_heap(std::uint32_t max_counters, std::uint64_t seed = 0)
        : max_counters_(max_counters), index_(max_counters, seed) {
        FREQ_REQUIRE(max_counters >= 1, "space_saving_heap needs at least one counter");
        heap_.reserve(max_counters);
    }

    /// Processes the weighted update (id, weight); weight = 1 gives the
    /// classic unit-weight Space Saving.
    void update(K id, W weight = W{1}) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        total_weight_ += weight;
        if (std::uint32_t* pos = index_.find(id)) {
            heap_[*pos].count += weight;
            sift_down(*pos);
            return;
        }
        if (heap_.size() < max_counters_) {
            heap_.push_back(entry{id, weight, W{0}});
            index_.put(id, static_cast<std::uint32_t>(heap_.size() - 1));
            sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
            return;
        }
        // Algorithm 2, lines 10-12: evict the minimum counter, hand it to
        // the new item, and remember the absorbed count as its error term.
        entry& root = heap_[0];
        index_.erase(root.id);
        root.error = root.count;
        root.count += weight;
        root.id = id;
        index_.put(id, 0);
        sift_down(0);
    }

    void consume(const update_stream<K, W>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    /// Algorithm 2's Estimate(): the counter when assigned; otherwise the
    /// minimum counter value (0 while unassigned counters remain).
    W estimate(K id) const {
        if (const std::uint32_t* pos = index_.find(id)) {
            return heap_[*pos].count;
        }
        return heap_.size() < max_counters_ ? W{0} : min_counter();
    }

    /// Space-Saving bounds: c(i) − e(i) ≤ f_i ≤ c(i) for tracked items.
    W upper_bound(K id) const { return estimate(id); }

    W lower_bound(K id) const {
        if (const std::uint32_t* pos = index_.find(id)) {
            return heap_[*pos].count - heap_[*pos].error;
        }
        return W{0};
    }

    /// Smallest counter value (0 when counters remain unassigned).
    W min_counter() const noexcept { return heap_.empty() ? W{0} : heap_[0].count; }

    W total_weight() const noexcept { return total_weight_; }
    std::uint32_t capacity() const noexcept { return max_counters_; }
    std::uint32_t num_counters() const noexcept {
        return static_cast<std::uint32_t>(heap_.size());
    }

    /// Heap storage plus hash index — the §1.3.3/§1.3.5 space overhead.
    std::size_t memory_bytes() const noexcept {
        return heap_.capacity() * sizeof(entry) + index_.memory_bytes();
    }

    /// Storage model for a hypothetical instance with k counters, for the
    /// equal-space sizing in the Fig. 1-2 harnesses.
    static std::size_t bytes_for(std::uint32_t k) noexcept {
        return static_cast<std::size_t>(k) * sizeof(entry) +
               flat_index<K, std::uint32_t>::bytes_for(k);
    }

    template <typename F>
    void for_each(F&& f) const {
        for (const auto& e : heap_) {
            f(e.id, e.count);
        }
    }

    /// Entry-level enumeration including the error terms, for serde and
    /// entry-wise merging.
    template <typename F>
    void for_each_entry(F&& f) const {
        for (const auto& e : heap_) {
            f(e.id, e.count, e.error);
        }
    }

    /// Uniformly scales every counter, error term and the running total —
    /// the renorm hook a time-fading wrapper needs (mirrors
    /// counter_table::scale_all). Scaling is monotone, so the heap order
    /// and the index positions are preserved as-is.
    void scale_all(double factor) {
        for (entry& e : heap_) {
            e.count = static_cast<W>(static_cast<double>(e.count) * factor);
            e.error = static_cast<W>(static_cast<double>(e.error) * factor);
        }
        total_weight_ = static_cast<W>(static_cast<double>(total_weight_) * factor);
    }

    /// Replaces the heap contents wholesale — the serde-restore / merge
    /// hook. Callers pass entries with count > 0 and 0 ≤ error ≤ count;
    /// uniqueness is re-checked here because the index insert would
    /// otherwise silently overwrite a duplicate. Heap order is rebuilt, so
    /// the input may arrive in any order (the envelope ships it sorted by
    /// id for canonical bytes).
    void assign(std::span<const entry> entries, W total) {
        FREQ_REQUIRE(entries.size() <= max_counters_,
                     "space_saving_heap assign exceeds capacity");
        heap_.assign(entries.begin(), entries.end());
        index_.clear();
        for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(heap_.size()); ++i) {
            FREQ_REQUIRE(index_.find(heap_[i].id) == nullptr,
                         "space_saving_heap assign requires unique ids");
            index_.put(heap_[i].id, i);
        }
        for (std::uint32_t i = static_cast<std::uint32_t>(heap_.size()) / 2; i-- > 0;) {
            sift_down(i);
        }
        total_weight_ = total;
    }

private:
    void sift_up(std::uint32_t pos) {
        while (pos > 0) {
            const std::uint32_t parent = (pos - 1) / 2;
            if (heap_[parent].count <= heap_[pos].count) {
                break;
            }
            swap_entries(pos, parent);
            pos = parent;
        }
    }

    void sift_down(std::uint32_t pos) {
        const auto n = static_cast<std::uint32_t>(heap_.size());
        for (;;) {
            std::uint32_t smallest = pos;
            const std::uint32_t left = 2 * pos + 1;
            const std::uint32_t right = 2 * pos + 2;
            if (left < n && heap_[left].count < heap_[smallest].count) {
                smallest = left;
            }
            if (right < n && heap_[right].count < heap_[smallest].count) {
                smallest = right;
            }
            if (smallest == pos) {
                return;
            }
            swap_entries(pos, smallest);
            pos = smallest;
        }
    }

    void swap_entries(std::uint32_t a, std::uint32_t b) {
        std::swap(heap_[a], heap_[b]);
        index_.put(heap_[a].id, a);
        index_.put(heap_[b].id, b);
    }

    std::uint32_t max_counters_;
    std::vector<entry> heap_;
    flat_index<K, std::uint32_t> index_;
    W total_weight_{0};
};

/// The paper's names for the two uses of this implementation.
template <typename K = std::uint64_t>
using ssh = space_saving_heap<K, std::uint64_t>;
template <typename K = std::uint64_t, typename W = std::uint64_t>
using mhe = space_saving_heap<K, W>;

}  // namespace freq

#endif  // FREQ_BASELINES_SPACE_SAVING_HEAP_H
