#ifndef FREQ_BASELINES_RBMC_H
#define FREQ_BASELINES_RBMC_H

/// \file rbmc.h
/// Berinde et al.'s Reduce-By-Min-Counter extension of Misra-Gries to
/// weighted streams (§1.3.4 of the paper) — the accuracy yardstick of the
/// evaluation. When a new item arrives with all k counters taken:
///  * if Δ ≤ c_min, every counter is reduced by Δ and the item is dropped;
///  * otherwise every counter is reduced by c_min and the item receives a
///    counter of Δ − c_min.
/// Its estimates are *identical* to feeding the unit-expanded stream through
/// classic Misra-Gries (RTUC-MG), hence it inherits Lemmas 1-2 exactly — a
/// property the test suite checks literally.
///
/// The cost: c_min is a global minimum, so a decrement may be triggered by
/// essentially every update (§1.3.4's adversarial stream), and each one
/// scans all k counters. This implementation runs on the same counter_table
/// substrate as the paper's algorithm so Figs. 1-2 compare algorithms, not
/// hash tables.

#include <cstdint>
#include <limits>

#include "common/contracts.h"
#include "stream/update.h"
#include "table/counter_table.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t>
class rbmc {
public:
    using key_type = K;
    using weight_type = W;

    explicit rbmc(std::uint32_t max_counters, std::uint64_t seed = 0)
        : table_(max_counters, seed) {
        FREQ_REQUIRE(max_counters >= 1, "rbmc needs at least one counter");
    }

    void update(K id, W weight) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        total_weight_ += weight;
        ingest(id, weight);
    }

    void update(K id) { update(id, W{1}); }

    void consume(const update_stream<K, W>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    /// Offset hybrid estimate (same estimator as the paper's algorithm, so
    /// Fig. 2 compares decrement policies, not estimators).
    W estimate(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? *c + offset_ : W{0};
    }

    /// The original Berinde et al. estimate — equals RTUC-MG's estimate.
    W lower_bound(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? *c : W{0};
    }

    W upper_bound(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? *c + offset_ : offset_;
    }

    W maximum_error() const noexcept { return offset_; }
    W total_weight() const noexcept { return total_weight_; }
    std::uint32_t capacity() const noexcept { return table_.capacity(); }
    std::uint32_t num_counters() const noexcept { return table_.size(); }
    std::uint64_t num_decrements() const noexcept { return num_decrements_; }
    std::size_t memory_bytes() const noexcept { return table_.memory_bytes(); }

    static std::size_t bytes_for(std::uint32_t k) noexcept {
        return counter_table<K, W>::bytes_for(k);
    }

    template <typename F>
    void for_each(F&& f) const {
        table_.for_each(std::forward<F>(f));
    }

    /// Algorithm 5 applied to RBMC — the merge procedure is generic over
    /// counter-based algorithms (§3.2).
    void merge(const rbmc& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        const W combined_weight = total_weight_ + other.total_weight_;
        other.table_.for_each([&](K id, W c) { ingest(id, c); });
        offset_ += other.offset_;
        total_weight_ = combined_weight;
    }

private:
    void ingest(K id, W weight) {
        if (W* c = table_.find(id)) {
            *c += weight;
            return;
        }
        if (!table_.full()) {
            table_.upsert(id, weight);
            return;
        }
        W cmin = std::numeric_limits<W>::max();
        table_.for_each([&](K, W c) { cmin = c < cmin ? c : cmin; });
        ++num_decrements_;
        if (weight <= cmin) {
            table_.decrement_all(weight);
            offset_ += weight;
            return;
        }
        table_.decrement_all(cmin);
        offset_ += cmin;
        table_.upsert(id, weight - cmin);
    }

    counter_table<K, W> table_;
    W offset_{0};
    W total_weight_{0};
    std::uint64_t num_decrements_ = 0;
};

}  // namespace freq

#endif  // FREQ_BASELINES_RBMC_H
