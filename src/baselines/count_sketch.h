#ifndef FREQ_BASELINES_COUNT_SKETCH_H
#define FREQ_BASELINES_COUNT_SKETCH_H

/// \file count_sketch.h
/// The Count sketch of Charikar, Chen & Farach-Colton [6]: d rows of w
/// counters, each update (i, Δ) adds s_j(i)·Δ to slot h_j(i) where s_j is a
/// ±1 hash; the estimate is the *median* over rows of s_j(i)·row_j[h_j(i)].
///
/// Unlike Count-Min the estimate is unbiased (errors in both directions)
/// with error O(||f||₂/√w) per row — better on heavy-tailed streams, at the
/// cost of signed counters and median computation. Present for the §1.3
/// sketch-vs-counter comparison; not recommended for the paper's target
/// workloads (that is the point the bench makes).

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/contracts.h"
#include "hashing/hash.h"
#include "stream/update.h"

namespace freq {

template <typename K = std::uint64_t>
class count_sketch {
public:
    using key_type = K;
    using weight_type = std::uint64_t;

    struct config {
        std::uint32_t width = 2048;  ///< counters per row (rounded to pow2)
        std::uint32_t depth = 5;     ///< number of rows (odd keeps medians simple)
        std::uint64_t seed = 0;
    };

    explicit count_sketch(const config& cfg) : cfg_(cfg) {
        FREQ_REQUIRE(cfg.width >= 2, "count_sketch width must be >= 2");
        FREQ_REQUIRE(cfg.depth >= 1, "count_sketch depth must be >= 1");
        cfg_.width = static_cast<std::uint32_t>(ceil_pow2(cfg.width));
        mask_ = cfg_.width - 1;
        rows_.assign(static_cast<std::size_t>(cfg_.width) * cfg_.depth, 0);
        scratch_.resize(cfg_.depth);
    }

    void update(K id, std::uint64_t weight = 1) {
        if (weight == 0) {
            return;
        }
        total_weight_ += weight;
        for (std::uint32_t j = 0; j < cfg_.depth; ++j) {
            const auto [idx, sgn] = cell(id, j);
            rows_[idx] += sgn * static_cast<std::int64_t>(weight);
        }
    }

    void consume(const update_stream<K, std::uint64_t>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    /// Median-of-rows estimate, clamped to [0, N] (frequencies are known to
    /// be non-negative and at most the stream weight).
    std::uint64_t estimate(K id) const {
        auto& vals = scratch_;  // mutable scratch: estimate() is logically const
        for (std::uint32_t j = 0; j < cfg_.depth; ++j) {
            const auto [idx, sgn] = cell(id, j);
            vals[j] = sgn * rows_[idx];
        }
        std::nth_element(vals.begin(), vals.begin() + cfg_.depth / 2, vals.end());
        const std::int64_t med = vals[cfg_.depth / 2];
        if (med < 0) {
            return 0;
        }
        const auto clamped = static_cast<std::uint64_t>(med);
        return clamped > total_weight_ ? total_weight_ : clamped;
    }

    std::uint64_t total_weight() const noexcept { return total_weight_; }
    std::uint32_t width() const noexcept { return cfg_.width; }
    std::uint32_t depth() const noexcept { return cfg_.depth; }
    std::size_t memory_bytes() const noexcept { return rows_.size() * sizeof(std::int64_t); }

    /// The raw signed cell array (row-major, width() × depth()) — what the
    /// serde envelope ships and what the AMS-style F₂ error bound reads.
    std::span<const std::int64_t> cells() const noexcept { return rows_; }

    /// Restores cells + total from envelope bytes (count validated by the
    /// caller against width() × depth()).
    void restore_cells(std::span<const std::int64_t> cells, std::uint64_t total) {
        FREQ_REQUIRE(cells.size() == rows_.size(),
                     "count_sketch cell count does not match the configuration");
        std::copy(cells.begin(), cells.end(), rows_.begin());
        total_weight_ = total;
    }

    static std::size_t bytes_for(std::uint32_t width, std::uint32_t depth) noexcept {
        return static_cast<std::size_t>(ceil_pow2(width)) * depth * sizeof(std::int64_t);
    }

    /// Linear-sketch mergeability: cellwise addition.
    void merge(const count_sketch& other) {
        FREQ_REQUIRE(cfg_.width == other.cfg_.width && cfg_.depth == other.cfg_.depth &&
                         cfg_.seed == other.cfg_.seed,
                     "count_sketch merge requires identical configuration");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            rows_[i] += other.rows_[i];
        }
        total_weight_ += other.total_weight_;
    }

private:
    std::pair<std::size_t, std::int64_t> cell(K id, std::uint32_t row) const noexcept {
        const std::uint64_t h =
            table_hash(static_cast<std::uint64_t>(id), cfg_.seed * 2654435761ULL + row);
        const std::size_t idx = static_cast<std::size_t>(row) * cfg_.width +
                                (static_cast<std::uint32_t>(h) & mask_);
        // An untouched high bit supplies the ±1 sign hash.
        const std::int64_t sgn = (h >> 63) != 0 ? 1 : -1;
        return {idx, sgn};
    }

    config cfg_;
    std::uint32_t mask_ = 0;
    std::vector<std::int64_t> rows_;
    mutable std::vector<std::int64_t> scratch_;
    std::uint64_t total_weight_ = 0;
};

}  // namespace freq

#endif  // FREQ_BASELINES_COUNT_SKETCH_H
