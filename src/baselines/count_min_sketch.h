#ifndef FREQ_BASELINES_COUNT_MIN_SKETCH_H
#define FREQ_BASELINES_COUNT_MIN_SKETCH_H

/// \file count_min_sketch.h
/// The Count-Min sketch of Cormode & Muthukrishnan [9] — the canonical
/// *linear sketch* for point queries. Included because §1.3 of the paper
/// reports confirming Cormode & Hadjieleftheriou's finding that counter-
/// based algorithms beat sketches on space/speed/accuracy for insertion
/// streams; the `ablate_sketch_vs_counter` bench reproduces that
/// confirmation against this implementation.
///
/// Structure: depth d rows of width w counters; row j increments slot
/// h_j(i) by Δ; the point estimate is the minimum over rows (always an
/// overestimate). Guarantees: with w = ceil(e/ε) and d = ceil(ln(1/δ)),
/// error ≤ ε·N with probability ≥ 1 − δ per query.
///
/// The optional *conservative update* refinement increments each row only
/// up to the current point estimate plus Δ — slower but strictly more
/// accurate; exposed so the bench can show even the strengthened sketch
/// loses to the counter-based algorithms at equal space.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/contracts.h"
#include "hashing/hash.h"
#include "stream/update.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t>
class count_min_sketch {
public:
    using key_type = K;
    using weight_type = W;

    struct config {
        std::uint32_t width = 2048;   ///< w — counters per row (rounded to pow2)
        std::uint32_t depth = 4;      ///< d — number of rows
        bool conservative = false;    ///< conservative-update refinement
        std::uint64_t seed = 0;
    };

    /// Sizes the sketch for error ≤ epsilon·N with failure probability delta.
    static config for_error(double epsilon, double delta, std::uint64_t seed = 0) {
        FREQ_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        FREQ_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        config cfg;
        cfg.width = static_cast<std::uint32_t>(ceil_pow2(
            static_cast<std::uint64_t>(std::ceil(2.718281828 / epsilon))));
        cfg.depth = static_cast<std::uint32_t>(std::ceil(std::log(1.0 / delta)));
        cfg.seed = seed;
        return cfg;
    }

    explicit count_min_sketch(const config& cfg) : cfg_(cfg) {
        FREQ_REQUIRE(cfg.width >= 2, "count_min width must be >= 2");
        FREQ_REQUIRE(cfg.depth >= 1, "count_min depth must be >= 1");
        cfg_.width = static_cast<std::uint32_t>(ceil_pow2(cfg.width));
        mask_ = cfg_.width - 1;
        rows_.assign(static_cast<std::size_t>(cfg_.width) * cfg_.depth, W{0});
    }

    void update(K id, W weight = W{1}) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        total_weight_ += weight;
        if (!cfg_.conservative) {
            for (std::uint32_t j = 0; j < cfg_.depth; ++j) {
                rows_[slot(id, j)] += weight;
            }
            return;
        }
        // Conservative update: raise each row only to max(row, est + weight).
        const W target = estimate(id) + weight;
        for (std::uint32_t j = 0; j < cfg_.depth; ++j) {
            W& cell = rows_[slot(id, j)];
            cell = std::max(cell, target);
        }
    }

    void consume(const update_stream<K, W>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    /// Point estimate: min over rows. Never underestimates.
    W estimate(K id) const {
        W best = std::numeric_limits<W>::max();
        for (std::uint32_t j = 0; j < cfg_.depth; ++j) {
            best = std::min(best, rows_[slot(id, j)]);
        }
        return best;
    }

    W upper_bound(K id) const { return estimate(id); }
    /// CM gives no nontrivial per-item lower bound.
    W lower_bound(K) const { return W{0}; }

    W total_weight() const noexcept { return total_weight_; }
    std::uint32_t width() const noexcept { return cfg_.width; }
    std::uint32_t depth() const noexcept { return cfg_.depth; }

    std::size_t memory_bytes() const noexcept { return rows_.size() * sizeof(W); }

    static std::size_t bytes_for(std::uint32_t width, std::uint32_t depth) noexcept {
        return static_cast<std::size_t>(ceil_pow2(width)) * depth * sizeof(W);
    }

    /// Linear-sketch mergeability: cellwise addition (requires identical
    /// configuration including seed).
    void merge(const count_min_sketch& other) {
        FREQ_REQUIRE(cfg_.width == other.cfg_.width && cfg_.depth == other.cfg_.depth &&
                         cfg_.seed == other.cfg_.seed,
                     "count_min merge requires identical configuration");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            rows_[i] += other.rows_[i];
        }
        total_weight_ += other.total_weight_;
    }

    /// Cellwise merge with \p other's cells pre-scaled by \p factor —
    /// linearity lets a time-fading caller align two inflation clocks
    /// before adding (backend_summaries.h). Meaningful for floating W.
    void merge_scaled(const count_min_sketch& other, double factor) {
        FREQ_REQUIRE(cfg_.width == other.cfg_.width && cfg_.depth == other.cfg_.depth &&
                         cfg_.seed == other.cfg_.seed,
                     "count_min merge requires identical configuration");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            rows_[i] += static_cast<W>(static_cast<double>(other.rows_[i]) * factor);
        }
        total_weight_ += static_cast<W>(static_cast<double>(other.total_weight_) * factor);
    }

    /// Uniformly scales every cell and the running total — the renorm hook
    /// a time-fading wrapper needs (mirrors counter_table::scale_all).
    /// Sound by linearity: scaling all cells scales every estimate.
    void scale_all(double factor) {
        for (W& c : rows_) {
            c = static_cast<W>(static_cast<double>(c) * factor);
        }
        total_weight_ = static_cast<W>(static_cast<double>(total_weight_) * factor);
    }

    /// The raw cell array (row-major, width() × depth()) — what the serde
    /// envelope ships.
    std::span<const W> cells() const noexcept { return rows_; }

    /// Restores cells + total from envelope bytes (count validated by the
    /// caller against width() × depth()).
    void restore_cells(std::span<const W> cells, W total) {
        FREQ_REQUIRE(cells.size() == rows_.size(),
                     "count_min cell count does not match the configuration");
        std::copy(cells.begin(), cells.end(), rows_.begin());
        total_weight_ = total;
    }

private:
    std::size_t slot(K id, std::uint32_t row) const noexcept {
        const std::uint64_t h =
            table_hash(static_cast<std::uint64_t>(id), cfg_.seed * 1315423911ULL + row);
        return static_cast<std::size_t>(row) * cfg_.width +
               (static_cast<std::uint32_t>(h) & mask_);
    }

    config cfg_;
    std::uint32_t mask_ = 0;
    std::vector<W> rows_;
    W total_weight_{0};
};

}  // namespace freq

#endif  // FREQ_BASELINES_COUNT_MIN_SKETCH_H
