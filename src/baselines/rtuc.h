#ifndef FREQ_BASELINES_RTUC_H
#define FREQ_BASELINES_RTUC_H

/// \file rtuc.h
/// Reduce-To-Unit-Case adapters (§1.3.4 / §1.3.5 of the paper): a weighted
/// update (i, Δ) is processed as Δ unit updates, for integer Δ. Cost grows
/// linearly with Δ — exactly the shortcoming the paper's algorithm removes —
/// so these adapters exist for the isomorphism property tests
/// (RBMC ≡ RTUC-MG and MHE ≡ RTUC-SS, §1.4) and for small-weight
/// micro-benchmarks, never for production use.

#include <cstdint>

#include "baselines/misra_gries.h"
#include "baselines/space_saving_heap.h"
#include "common/contracts.h"
#include "stream/update.h"

namespace freq {

/// Feeds Δ unit updates into any unit-update algorithm exposing update(id).
template <typename Inner>
class rtuc {
public:
    using key_type = typename Inner::key_type;
    using weight_type = std::uint64_t;

    template <typename... Args>
    explicit rtuc(Args&&... args) : inner_(std::forward<Args>(args)...) {}

    void update(key_type id, std::uint64_t weight = 1) {
        FREQ_REQUIRE(weight <= (1u << 24),
                     "rtuc expands weights into unit updates; this weight is impractical");
        for (std::uint64_t j = 0; j < weight; ++j) {
            inner_.update(id);
        }
    }

    void consume(const update_stream<key_type, std::uint64_t>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    auto estimate(key_type id) const { return inner_.estimate(id); }

    Inner& inner() noexcept { return inner_; }
    const Inner& inner() const noexcept { return inner_; }

private:
    Inner inner_;
};

/// RTUC-MG (§1.3.4): unit-expanded Misra-Gries.
template <typename K = std::uint64_t>
using rtuc_mg = rtuc<misra_gries<K>>;

/// RTUC-SS (§1.3.5): unit-expanded Space Saving. The unit-update overload of
/// space_saving_heap::update makes it directly usable here.
template <typename K = std::uint64_t>
class rtuc_ss {
public:
    using key_type = K;
    using weight_type = std::uint64_t;

    explicit rtuc_ss(std::uint32_t max_counters, std::uint64_t seed = 0)
        : inner_(max_counters, seed) {}

    void update(K id, std::uint64_t weight = 1) {
        FREQ_REQUIRE(weight <= (1u << 24),
                     "rtuc expands weights into unit updates; this weight is impractical");
        for (std::uint64_t j = 0; j < weight; ++j) {
            inner_.update(id, 1);
        }
    }

    void consume(const update_stream<K, std::uint64_t>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    std::uint64_t estimate(K id) const { return inner_.estimate(id); }

    space_saving_heap<K, std::uint64_t>& inner() noexcept { return inner_; }
    const space_saving_heap<K, std::uint64_t>& inner() const noexcept { return inner_; }

private:
    space_saving_heap<K, std::uint64_t> inner_;
};

}  // namespace freq

#endif  // FREQ_BASELINES_RTUC_H
