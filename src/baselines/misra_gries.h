#ifndef FREQ_BASELINES_MISRA_GRIES_H
#define FREQ_BASELINES_MISRA_GRIES_H

/// \file misra_gries.h
/// Algorithm 1 of the paper: the classic Misra-Gries algorithm for unit
/// weight updates [MG82], implemented over a hash table exactly as §1.3.2
/// prescribes. Guarantees (Lemma 1): 0 ≤ f_i − f̂_i ≤ N/(k+1), and the
/// stronger tail bound of Lemma 2. Amortized O(1) per unit update.
///
/// This is a *reference baseline*: the test suite uses it to validate the
/// classical guarantees and the Agarwal et al. isomorphism against Space
/// Saving; the weighted algorithms are elsewhere.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/contracts.h"

namespace freq {

template <typename K = std::uint64_t>
class misra_gries {
public:
    using key_type = K;
    using weight_type = std::uint64_t;

    explicit misra_gries(std::uint32_t max_counters) : max_counters_(max_counters) {
        FREQ_REQUIRE(max_counters >= 1, "misra_gries needs at least one counter");
        counters_.reserve(max_counters + 1);
    }

    /// Processes a unit update (i, +1).
    void update(K id) {
        ++total_weight_;
        const auto it = counters_.find(id);
        if (it != counters_.end()) {
            ++it->second;
            return;
        }
        if (counters_.size() < max_counters_) {
            counters_.emplace(id, 1);
            return;
        }
        decrement_counters();
        // Note the classic algorithm drops the arriving item entirely when
        // all counters are taken (Algorithm 1, lines 9-10).
    }

    /// f̂_i: the counter when assigned, else 0 (Algorithm 1, Estimate()).
    std::uint64_t estimate(K id) const {
        const auto it = counters_.find(id);
        return it == counters_.end() ? 0 : it->second;
    }

    std::uint64_t total_weight() const noexcept { return total_weight_; }
    std::uint32_t capacity() const noexcept { return max_counters_; }
    std::size_t num_counters() const noexcept { return counters_.size(); }
    std::uint64_t num_decrements() const noexcept { return num_decrements_; }

    template <typename F>
    void for_each(F&& f) const {
        for (const auto& [id, c] : counters_) {
            f(id, c);
        }
    }

private:
    /// Algorithm 1, DecrementCounters(): subtract one from every counter and
    /// unassign the zeroed ones.
    void decrement_counters() {
        for (auto it = counters_.begin(); it != counters_.end();) {
            if (--it->second == 0) {
                it = counters_.erase(it);
            } else {
                ++it;
            }
        }
        ++num_decrements_;
    }

    std::uint32_t max_counters_;
    std::unordered_map<K, std::uint64_t> counters_;
    std::uint64_t total_weight_ = 0;
    std::uint64_t num_decrements_ = 0;
};

}  // namespace freq

#endif  // FREQ_BASELINES_MISRA_GRIES_H
