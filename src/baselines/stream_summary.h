#ifndef FREQ_BASELINES_STREAM_SUMMARY_H
#define FREQ_BASELINES_STREAM_SUMMARY_H

/// \file stream_summary.h
/// Metwally et al.'s Stream-Summary data structure (**SSL** in Cormode &
/// Hadjieleftheriou's study and §1.3.3 of the paper): Space Saving for unit
/// weight updates in worst-case O(1) time.
///
/// Buckets of equal-count counters form a doubly linked list in ascending
/// count order; each bucket owns a doubly linked list of counters. A unit
/// increment moves a counter to the adjacent (count + 1) bucket; an eviction
/// recycles a counter of the minimum bucket. The paper includes SSL for the
/// unweighted comparison and notes (§1.3.5) that it "does not naturally
/// extend to the case of weighted updates" — a weighted increment would need
/// to *search* for the destination bucket, losing O(1) — so this type only
/// accepts unit updates, and its very existence documents that limitation.
///
/// Nodes and buckets live in index-linked pools (no per-update allocation,
/// pointer-free), and the pointer overhead the paper mentions ("will more
/// than double the space usage") is visible in memory_bytes().

#include <cstdint>
#include <vector>

#include "common/contracts.h"
#include "table/flat_index.h"

namespace freq {

template <typename K = std::uint64_t>
class stream_summary {
public:
    using key_type = K;
    using weight_type = std::uint64_t;

    explicit stream_summary(std::uint32_t max_counters, std::uint64_t seed = 0)
        : max_counters_(max_counters), index_(max_counters, seed) {
        FREQ_REQUIRE(max_counters >= 1, "stream_summary needs at least one counter");
        nodes_.reserve(max_counters);
        // Worst case: every counter in its own bucket, plus one in flight
        // while a counter migrates between buckets.
        buckets_.reserve(max_counters + 1);
    }

    /// Processes a unit update (i, +1) in worst-case O(1).
    void update(K id) {
        ++total_weight_;
        if (const std::uint32_t* pos = index_.find(id)) {
            increment(*pos);
            return;
        }
        if (nodes_.size() < max_counters_) {
            const auto node = static_cast<std::uint32_t>(nodes_.size());
            nodes_.push_back(counter{id, 0, nil, nil, nil});
            index_.put(id, node);
            attach_with_count(node, 1);
            return;
        }
        // Evict a counter of the minimum bucket (Algorithm 2, lines 10-12).
        const std::uint32_t bucket = bucket_head_;
        const std::uint32_t node = buckets_[bucket].members;
        index_.erase(nodes_[node].id);
        nodes_[node].id = id;
        nodes_[node].error = buckets_[bucket].count;
        index_.put(id, node);
        increment(node);
    }

    /// Counter value when tracked; the minimum counter once the summary is
    /// full (Algorithm 2's Estimate()); 0 before that.
    std::uint64_t estimate(K id) const {
        if (const std::uint32_t* pos = index_.find(id)) {
            return count_of(*pos);
        }
        return nodes_.size() < max_counters_ ? 0 : min_counter();
    }

    std::uint64_t upper_bound(K id) const { return estimate(id); }

    std::uint64_t lower_bound(K id) const {
        if (const std::uint32_t* pos = index_.find(id)) {
            return count_of(*pos) - nodes_[*pos].error;
        }
        return 0;
    }

    std::uint64_t min_counter() const {
        return bucket_head_ == nil ? 0 : buckets_[bucket_head_].count;
    }

    std::uint64_t total_weight() const noexcept { return total_weight_; }
    std::uint32_t capacity() const noexcept { return max_counters_; }
    std::uint32_t num_counters() const noexcept {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    std::size_t memory_bytes() const noexcept {
        return nodes_.capacity() * sizeof(counter) +
               buckets_.capacity() * sizeof(bucket_node) + index_.memory_bytes();
    }

    static std::size_t bytes_for(std::uint32_t k) noexcept {
        return static_cast<std::size_t>(k) * sizeof(counter) +
               static_cast<std::size_t>(k + 1) * sizeof(bucket_node) +
               flat_index<K, std::uint32_t>::bytes_for(k);
    }

    template <typename F>
    void for_each(F&& f) const {
        for (const auto& n : nodes_) {
            f(n.id, count_of_node(n));
        }
    }

    /// Walks buckets in ascending count order — test hook for the structural
    /// invariants (bucket ordering, membership consistency).
    template <typename F>
    void for_each_bucket(F&& f) const {
        for (std::uint32_t b = bucket_head_; b != nil; b = buckets_[b].next) {
            std::uint32_t members = 0;
            for (std::uint32_t n = buckets_[b].members; n != nil; n = nodes_[n].next) {
                ++members;
            }
            f(buckets_[b].count, members);
        }
    }

private:
    static constexpr std::uint32_t nil = 0xffffffffu;

    // Counts live on buckets (the defining trick of Stream-Summary: a unit
    // increment is a bucket hop, not an arithmetic update on the node).
    struct counter {
        K id;
        std::uint64_t error;
        std::uint32_t bucket;
        std::uint32_t prev;
        std::uint32_t next;
    };

    struct bucket_node {
        std::uint64_t count;
        std::uint32_t members;  // head of the counter list
        std::uint32_t prev;
        std::uint32_t next;
    };

    std::uint64_t count_of(std::uint32_t node) const {
        return buckets_[nodes_[node].bucket].count;
    }
    std::uint64_t count_of_node(const counter& n) const { return buckets_[n.bucket].count; }

    /// Moves \p node from its bucket to the (count + 1) bucket, creating or
    /// deleting buckets as needed. O(1): the destination is either the next
    /// bucket or a brand new neighbour.
    void increment(std::uint32_t node) {
        const std::uint32_t old_bucket = nodes_[node].bucket;
        const std::uint64_t new_count = buckets_[old_bucket].count + 1;
        const std::uint32_t succ = buckets_[old_bucket].next;
        detach_from_bucket(node);
        if (succ != nil && buckets_[succ].count == new_count) {
            push_member(succ, node);
        } else {
            // Insert a fresh bucket right after old_bucket (which may have
            // just been freed if node was its only member).
            const std::uint32_t nb = alloc_bucket(new_count);
            link_bucket_before(nb, succ);
            push_member(nb, node);
        }
    }

    void attach_with_count(std::uint32_t node, std::uint64_t count) {
        if (bucket_head_ != nil && buckets_[bucket_head_].count == count) {
            push_member(bucket_head_, node);
            return;
        }
        FREQ_EXPECTS(bucket_head_ == nil || buckets_[bucket_head_].count > count);
        const std::uint32_t nb = alloc_bucket(count);
        link_bucket_before(nb, bucket_head_);
        push_member(nb, node);
    }

    void push_member(std::uint32_t bucket, std::uint32_t node) {
        counter& n = nodes_[node];
        n.bucket = bucket;
        n.prev = nil;
        n.next = buckets_[bucket].members;
        if (n.next != nil) {
            nodes_[n.next].prev = node;
        }
        buckets_[bucket].members = node;
    }

    void detach_from_bucket(std::uint32_t node) {
        counter& n = nodes_[node];
        bucket_node& b = buckets_[n.bucket];
        if (n.prev != nil) {
            nodes_[n.prev].next = n.next;
        } else {
            b.members = n.next;
        }
        if (n.next != nil) {
            nodes_[n.next].prev = n.prev;
        }
        if (b.members == nil) {
            unlink_bucket(n.bucket);
        }
        n.prev = n.next = nil;
        n.bucket = nil;
    }

    std::uint32_t alloc_bucket(std::uint64_t count) {
        std::uint32_t b;
        if (bucket_free_ != nil) {
            b = bucket_free_;
            bucket_free_ = buckets_[b].next;
        } else {
            b = static_cast<std::uint32_t>(buckets_.size());
            buckets_.push_back({});
        }
        buckets_[b] = bucket_node{count, nil, nil, nil};
        return b;
    }

    /// Links \p b immediately before \p succ (succ = nil appends at the tail
    /// ... of an empty position; callers always pass the correct neighbour).
    void link_bucket_before(std::uint32_t b, std::uint32_t succ) {
        std::uint32_t pred = succ == nil ? bucket_tail_ : buckets_[succ].prev;
        buckets_[b].prev = pred;
        buckets_[b].next = succ;
        if (pred != nil) {
            buckets_[pred].next = b;
        } else {
            bucket_head_ = b;
        }
        if (succ != nil) {
            buckets_[succ].prev = b;
        } else {
            bucket_tail_ = b;
        }
    }

    void unlink_bucket(std::uint32_t b) {
        if (buckets_[b].prev != nil) {
            buckets_[buckets_[b].prev].next = buckets_[b].next;
        } else {
            bucket_head_ = buckets_[b].next;
        }
        if (buckets_[b].next != nil) {
            buckets_[buckets_[b].next].prev = buckets_[b].prev;
        } else {
            bucket_tail_ = buckets_[b].prev;
        }
        buckets_[b].next = bucket_free_;
        bucket_free_ = b;
    }

    std::uint32_t max_counters_;
    std::vector<counter> nodes_;
    std::vector<bucket_node> buckets_;
    flat_index<K, std::uint32_t> index_;
    std::uint32_t bucket_head_ = nil;
    std::uint32_t bucket_tail_ = nil;
    std::uint32_t bucket_free_ = nil;
    std::uint64_t total_weight_ = 0;
};

}  // namespace freq

#endif  // FREQ_BASELINES_STREAM_SUMMARY_H
