#ifndef FREQ_ENGINE_SHARD_H
#define FREQ_ENGINE_SHARD_H

/// \file shard.h
/// One shard of the sharded ingestion engine: a set of inbound SPSC rings
/// (one per registered producer), a sketch covering the shard's key
/// sub-space, and the worker-side drain loop that moves updates from the
/// rings into the sketch in batches.
///
/// The shard is templated on the sketch type, so the same
/// ring/batched-drain machinery serves every lifetime policy: plain
/// frequent_items_sketch (the default), basic_frequent_items with
/// exponential_fading, or the epoch_window ring — anything constructible
/// from a sketch_config with update(span), merge, tick and copy.
///
/// Spelling-keeping sketches (core/fingerprint_frequent_items.h — text and
/// generic keys) additionally get a spelling_channel: the rings still carry
/// only fixed-size (fingerprint, weight) records, and the variable-size key
/// spellings arrive through the channel, drained into the sketch's
/// dictionary under the same mutex as the ring batches. This shard
/// therefore owns the dictionary *slice* for exactly the fingerprints the
/// engine routes to it.
///
/// Threading contract:
///  * ring(p).try_push(...)  — producer p only.
///  * spellings().try_push() — any producer (mutex-guarded MPSC).
///  * drain()                — the shard's single worker thread only.
///  * clone_sketch(), tick() — any thread; take the sketch mutex.
///
/// The sketch mutex is held only while a drained batch (or spelling run) is
/// applied, while the sketch is being cloned for a snapshot, or while the
/// lifetime clock ticks — never while waiting on a ring — so queries clone
/// O(k) state and ingestion resumes immediately; readers never traverse
/// live sketch state.

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "common/mem.h"
#include "core/frequent_items_sketch.h"
#include "core/sketch_config.h"
#include "engine/spelling_channel.h"
#include "engine/spsc_ring.h"
#include "obs/pipeline_metrics.h"
#include "stream/update.h"

namespace freq {

/// A sketch that separates counting from identification: fingerprint spans
/// on the hot path, spellings attached through note_spelling(), and a
/// static fingerprint() mapping the engine can route by.
template <typename Sketch>
concept spelling_sketch = requires(Sketch& s, std::uint64_t fp,
                                   typename Sketch::item_type item,
                                   typename Sketch::item_view view) {
    s.note_spelling(fp, std::move(item));
    { Sketch::fingerprint(view) } -> std::same_as<std::uint64_t>;
};

namespace detail {

/// Zero-cost stand-in for shards whose sketch keeps no spellings.
struct no_spelling_channel {
    struct entry {};
    explicit no_spelling_channel(std::size_t) {}
    std::uint64_t pushed() const noexcept { return 0; }
    std::uint64_t applied() const noexcept { return 0; }
};

template <typename Sketch, bool = spelling_sketch<Sketch>>
struct spelling_channel_of {
    using type = no_spelling_channel;
};
template <typename Sketch>
struct spelling_channel_of<Sketch, true> {
    using type = spelling_channel<typename Sketch::item_type>;
};

}  // namespace detail

template <typename K = std::uint64_t, typename W = std::uint64_t,
          typename Sketch = frequent_items_sketch<K, W>>
class engine_shard {
public:
    using update_type = update<K, W>;
    using sketch_type = Sketch;
    using spelling_channel_type = typename detail::spelling_channel_of<Sketch>::type;

    /// \param cfg               per-shard sketch configuration (already
    ///                          seeded distinctly per shard by the engine —
    ///                          §3.2).
    /// \param num_producers     how many inbound SPSC rings to create.
    /// \param ring_capacity     slots per ring (rounded up to a power of two).
    /// \param batch_size        maximum updates applied per sketch lock.
    /// \param spelling_capacity pending-spelling bound (spelling-keeping
    ///                          sketches only; ignored otherwise).
    /// \param place             memory hints (common/mem.h): huge-page
    ///                          advice lands on the sketch tables, ring
    ///                          buffers and spelling arena; NUMA locality
    ///                          comes from *constructing this shard on the
    ///                          pinned worker thread* (first-touch), which
    ///                          is what stream_engine does.
    engine_shard(const sketch_config& cfg, std::size_t num_producers,
                 std::size_t ring_capacity, std::size_t batch_size,
                 std::size_t spelling_capacity = 4096, const mem::placement& place = {})
        : sketch_(make_sketch(cfg, place)),
          spellings_(spelling_capacity),
          batch_size_(batch_size) {
        FREQ_REQUIRE(num_producers >= 1, "shard needs at least one producer ring");
        FREQ_REQUIRE(batch_size >= 1, "shard batch size must be positive");
        rings_.reserve(num_producers);
        for (std::size_t p = 0; p < num_producers; ++p) {
            rings_.push_back(std::make_unique<spsc_ring<update_type>>(ring_capacity));
            mem::apply_placement(rings_.back()->storage(),
                                 rings_.back()->storage_bytes(), place);
        }
        batch_buf_.resize(batch_size);
    }

    /// Inbound ring for producer \p p.
    spsc_ring<update_type>& ring(std::size_t p) noexcept { return *rings_[p]; }
    std::size_t num_rings() const noexcept { return rings_.size(); }

    /// Inbound spelling side-lane (spelling-keeping sketches only).
    spelling_channel_type& spellings() noexcept { return spellings_; }

    // --- worker side ---------------------------------------------------------

    /// Drains up to one batch from the inbound rings (round-robin across
    /// producers for fairness) and applies it to the sketch under the lock;
    /// then drains any pending spellings into the sketch dictionary.
    /// Returns the number of updates + spellings applied; 0 means every
    /// lane was empty.
    std::size_t drain() {
        std::size_t n = 0;
        const std::size_t r = rings_.size();
        for (std::size_t i = 0; i < r && n < batch_size_; ++i) {
            const std::size_t p = (next_ring_ + i) % r;
            n += rings_[p]->try_pop(batch_buf_.data() + n, batch_size_ - n);
        }
        next_ring_ = (next_ring_ + 1) % r;
        if (n > 0) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                sketch_.update(std::span<const update_type>(batch_buf_.data(), n));
            }
            applied_.fetch_add(n, std::memory_order_release);
            batches_.fetch_add(1, std::memory_order_relaxed);
            auto& m = obs::pipeline();
            m.engine_updates_applied.add(n);
            m.engine_batches_applied.add(1);
            m.shard_drain_batch_size.record(n);
        }
        return n + drain_spellings();
    }

    // --- snapshot / flush / lifetime support ---------------------------------

    /// O(k) copy of the shard sketch (its dictionary slice included), taken
    /// under the sketch mutex so a snapshot never observes a half-applied
    /// batch.
    Sketch clone_sketch() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return sketch_;
    }

    /// Copy-assigning clone for callers that keep a reusable target: the
    /// target's backing arrays (counter table vectors, dictionary arena)
    /// are reused when capacities match, so a steady-state fold cycle
    /// (stream_engine::snapshot_into) performs no heap allocation. Same
    /// consistency contract as clone_sketch().
    void clone_sketch_into(Sketch& out) const {
        std::lock_guard<std::mutex> lock(mutex_);
        out = sketch_;
    }

    /// Advances the sketch's lifetime clock (fading decay step / window
    /// epoch rotation; no-op for the plain policy) under the sketch mutex,
    /// so a tick never lands inside a half-applied batch.
    void tick(std::uint64_t epochs = 1) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            sketch_.tick(epochs);
        }
        ticks_.fetch_add(epochs, std::memory_order_release);
        obs::pipeline().shard_ticks.add(epochs);
    }

    /// Monotonic dirty generation: advances whenever the shard sketch
    /// mutates — a ring batch applied, a spelling drained, or a lifetime
    /// tick. Composed from the cursors those paths already maintain, so the
    /// drain hot path pays nothing extra. Incremental snapshot folds
    /// (stream_engine::snapshot()) compare generations across publishes to
    /// skip re-cloning and re-merging idle shards; a reader that loads the
    /// generation *before* cloning observes a value no newer than the clone,
    /// so a mutation racing the clone can only make the next fold
    /// conservatively re-merge, never serve stale state.
    std::uint64_t generation() const noexcept {
        return applied() + spellings_applied() + ticks_.load(std::memory_order_acquire);
    }

    /// Total updates ever enqueued into this shard's rings (sum of producer
    /// cursors) vs. total applied to the sketch. The engine's flush barrier
    /// waits until applied() catches up with enqueued() — and, for
    /// spelling-keeping sketches, until the spelling cursors agree too.
    std::uint64_t enqueued() const noexcept {
        std::uint64_t total = 0;
        for (const auto& r : rings_) {
            total += r->pushed();
        }
        return total;
    }
    std::uint64_t applied() const noexcept { return applied_.load(std::memory_order_acquire); }
    std::uint64_t batches_applied() const noexcept {
        return batches_.load(std::memory_order_relaxed);
    }

    std::uint64_t spellings_enqueued() const noexcept { return spellings_.pushed(); }
    std::uint64_t spellings_applied() const noexcept { return spellings_.applied(); }

    /// Whether any accepted update or spelling has not reached the sketch
    /// yet (the flush barrier / worker-shutdown predicate).
    bool has_pending() const noexcept {
        return applied() < enqueued() || spellings_applied() < spellings_enqueued();
    }

private:
    /// Constructs the shard sketch, forwarding placement hints to backends
    /// that accept them (the paper-sketch family does); backends with a
    /// config-only constructor — some façade alternatives — still work,
    /// they just skip the hugepage advice.
    static Sketch make_sketch(const sketch_config& cfg, const mem::placement& place) {
        if constexpr (std::is_constructible_v<Sketch, const sketch_config&,
                                              const mem::placement&>) {
            return Sketch(cfg, place);
        } else {
            (void)place;
            return Sketch(cfg);
        }
    }

    /// Moves pending spellings from the channel into the sketch dictionary
    /// under the sketch mutex. Spellings may arrive before the counts that
    /// admit their fingerprint — insertion is unconditional and the
    /// dictionary's prune discipline (spelling_dictionary.h) bounds memory.
    std::size_t drain_spellings() {
        if constexpr (spelling_sketch<Sketch>) {
            const std::size_t n = spellings_.drain(spelling_scratch_);
            if (n > 0) {
                std::lock_guard<std::mutex> lock(mutex_);
                for (auto& e : spelling_scratch_) {
                    sketch_.note_spelling(e.fp, std::move(e.item));
                }
                spellings_.mark_applied(n);
                obs::pipeline().spelling_applied.add(n);
            }
            return n;
        } else {
            return 0;
        }
    }

    Sketch sketch_;
    mutable std::mutex mutex_;  ///< guards sketch_ (drain vs. clone_sketch/tick)

    std::vector<std::unique_ptr<spsc_ring<update_type>>> rings_;
    spelling_channel_type spellings_;  ///< inbound key spellings (side lane)
    std::vector<typename spelling_channel_type::entry> spelling_scratch_;
    std::vector<update_type> batch_buf_;  ///< worker-local drain scratch
    std::size_t batch_size_;
    std::size_t next_ring_ = 0;  ///< round-robin fairness cursor

    std::atomic<std::uint64_t> applied_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> ticks_{0};  ///< lifetime-clock component of generation()
};

}  // namespace freq

#endif  // FREQ_ENGINE_SHARD_H
