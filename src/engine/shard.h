#ifndef FREQ_ENGINE_SHARD_H
#define FREQ_ENGINE_SHARD_H

/// \file shard.h
/// One shard of the sharded ingestion engine: a set of inbound SPSC rings
/// (one per registered producer), a sketch covering the shard's key
/// sub-space, and the worker-side drain loop that moves updates from the
/// rings into the sketch in batches.
///
/// The shard is templated on the sketch type, so the same
/// ring/batched-drain machinery serves every lifetime policy: plain
/// frequent_items_sketch (the default), basic_frequent_items with
/// exponential_fading, or the epoch_window ring — anything constructible
/// from a sketch_config with update(span), merge, tick and copy.
///
/// Threading contract:
///  * ring(p).try_push(...)  — producer p only.
///  * drain()                — the shard's single worker thread only.
///  * clone_sketch(), tick() — any thread; take the sketch mutex.
///
/// The sketch mutex is held only while a drained batch is applied, while
/// the sketch is being cloned for a snapshot, or while the lifetime clock
/// ticks — never while waiting on a ring — so queries clone O(k) state and
/// ingestion resumes immediately; readers never traverse live sketch state.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/contracts.h"
#include "core/frequent_items_sketch.h"
#include "core/sketch_config.h"
#include "engine/spsc_ring.h"
#include "stream/update.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t,
          typename Sketch = frequent_items_sketch<K, W>>
class engine_shard {
public:
    using update_type = update<K, W>;
    using sketch_type = Sketch;

    /// \param cfg            per-shard sketch configuration (already seeded
    ///                       distinctly per shard by the engine — §3.2).
    /// \param num_producers  how many inbound SPSC rings to create.
    /// \param ring_capacity  slots per ring (rounded up to a power of two).
    /// \param batch_size     maximum updates applied per sketch lock.
    engine_shard(const sketch_config& cfg, std::size_t num_producers,
                 std::size_t ring_capacity, std::size_t batch_size)
        : sketch_(cfg), batch_size_(batch_size) {
        FREQ_REQUIRE(num_producers >= 1, "shard needs at least one producer ring");
        FREQ_REQUIRE(batch_size >= 1, "shard batch size must be positive");
        rings_.reserve(num_producers);
        for (std::size_t p = 0; p < num_producers; ++p) {
            rings_.push_back(std::make_unique<spsc_ring<update_type>>(ring_capacity));
        }
        batch_buf_.resize(batch_size);
    }

    /// Inbound ring for producer \p p.
    spsc_ring<update_type>& ring(std::size_t p) noexcept { return *rings_[p]; }
    std::size_t num_rings() const noexcept { return rings_.size(); }

    // --- worker side ---------------------------------------------------------

    /// Drains up to one batch from the inbound rings (round-robin across
    /// producers for fairness) and applies it to the sketch under the lock.
    /// Returns the number of updates applied; 0 means every ring was empty.
    std::size_t drain() {
        std::size_t n = 0;
        const std::size_t r = rings_.size();
        for (std::size_t i = 0; i < r && n < batch_size_; ++i) {
            const std::size_t p = (next_ring_ + i) % r;
            n += rings_[p]->try_pop(batch_buf_.data() + n, batch_size_ - n);
        }
        next_ring_ = (next_ring_ + 1) % r;
        if (n > 0) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                sketch_.update(std::span<const update_type>(batch_buf_.data(), n));
            }
            applied_.fetch_add(n, std::memory_order_release);
            batches_.fetch_add(1, std::memory_order_relaxed);
        }
        return n;
    }

    // --- snapshot / flush / lifetime support ---------------------------------

    /// O(k) copy of the shard sketch, taken under the sketch mutex so a
    /// snapshot never observes a half-applied batch.
    Sketch clone_sketch() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return sketch_;
    }

    /// Advances the sketch's lifetime clock (fading decay step / window
    /// epoch rotation; no-op for the plain policy) under the sketch mutex,
    /// so a tick never lands inside a half-applied batch.
    void tick(std::uint64_t epochs = 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        sketch_.tick(epochs);
    }

    /// Total updates ever enqueued into this shard's rings (sum of producer
    /// cursors) vs. total applied to the sketch. The engine's flush barrier
    /// waits until applied() catches up with enqueued().
    std::uint64_t enqueued() const noexcept {
        std::uint64_t total = 0;
        for (const auto& r : rings_) {
            total += r->pushed();
        }
        return total;
    }
    std::uint64_t applied() const noexcept { return applied_.load(std::memory_order_acquire); }
    std::uint64_t batches_applied() const noexcept {
        return batches_.load(std::memory_order_relaxed);
    }

private:
    Sketch sketch_;
    mutable std::mutex mutex_;  ///< guards sketch_ (drain vs. clone_sketch/tick)

    std::vector<std::unique_ptr<spsc_ring<update_type>>> rings_;
    std::vector<update_type> batch_buf_;  ///< worker-local drain scratch
    std::size_t batch_size_;
    std::size_t next_ring_ = 0;  ///< round-robin fairness cursor

    std::atomic<std::uint64_t> applied_{0};
    std::atomic<std::uint64_t> batches_{0};
};

}  // namespace freq

#endif  // FREQ_ENGINE_SHARD_H
