#ifndef FREQ_ENGINE_SPSC_RING_H
#define FREQ_ENGINE_SPSC_RING_H

/// \file spsc_ring.h
/// Bounded single-producer / single-consumer ring buffer — the wait-free
/// hand-off lane between one ingestion thread and one shard worker in the
/// sharded engine (see stream_engine.h).
///
/// Design (the classic Lamport queue plus two standard refinements):
///  * head_ (consumer cursor) and tail_ (producer cursor) are *monotonic*
///    64-bit counters; slot index = counter & mask. Monotonic cursors make
///    fill level, total-pushed and total-popped trivially observable, which
///    the engine's flush barrier relies on.
///  * Each cursor lives on its own cache line, and each side keeps a local
///    cached copy of the opposite cursor, refreshed only when the ring
///    appears full (producer) or empty (consumer). Steady-state operation
///    therefore touches one shared cache line per side instead of two.
///  * Push and pop are *batched*: one acquire load, one bulk copy, one
///    release store per span, amortizing the synchronization over the whole
///    batch. This is the producer half of the engine's "batched updates"
///    fast path.
///
/// Progress: both operations are wait-free (they never loop); a full ring
/// pushes back by returning a short count, and the caller decides how to
/// wait (the engine yields).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/bits.h"
#include "common/contracts.h"

namespace freq {

template <typename T>
class spsc_ring {
    static_assert(std::is_trivially_copyable_v<T>,
                  "spsc_ring elements are copied as raw slots");

public:
    /// Ring with capacity ceil_pow2(\p min_capacity) slots.
    explicit spsc_ring(std::size_t min_capacity) {
        FREQ_REQUIRE(min_capacity >= 2, "spsc_ring needs at least two slots");
        FREQ_REQUIRE(min_capacity <= (std::size_t{1} << 30),
                     "spsc_ring capacity limited to 2^30 slots");
        capacity_ = static_cast<std::size_t>(ceil_pow2(min_capacity));
        mask_ = capacity_ - 1;
        buf_.resize(capacity_);
    }

    spsc_ring(const spsc_ring&) = delete;
    spsc_ring& operator=(const spsc_ring&) = delete;

    std::size_t capacity() const noexcept { return capacity_; }

    // --- producer side (exactly one thread) ---------------------------------

    /// Appends as many elements of \p in as fit; returns how many were
    /// pushed (possibly 0 when full). Wait-free.
    std::size_t try_push(std::span<const T> in) noexcept {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t free = capacity_ - static_cast<std::size_t>(tail - head_cache_);
        if (free < in.size()) {
            head_cache_ = head_.load(std::memory_order_acquire);
            free = capacity_ - static_cast<std::size_t>(tail - head_cache_);
        }
        const std::size_t n = free < in.size() ? free : in.size();
        for (std::size_t i = 0; i < n; ++i) {
            buf_[static_cast<std::size_t>(tail + i) & mask_] = in[i];
        }
        tail_.store(tail + n, std::memory_order_release);
        return n;
    }

    /// Single-element convenience push. Returns false when full.
    bool try_push(const T& v) noexcept { return try_push(std::span<const T>(&v, 1)) == 1; }

    // --- consumer side (exactly one thread) ---------------------------------

    /// Pops up to \p max elements into \p out; returns how many were popped
    /// (possibly 0 when empty). Wait-free.
    std::size_t try_pop(T* out, std::size_t max) noexcept {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
        if (avail == 0) {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            avail = static_cast<std::size_t>(tail_cache_ - head);
        }
        const std::size_t n = avail < max ? avail : max;
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = buf_[static_cast<std::size_t>(head + i) & mask_];
        }
        head_.store(head + n, std::memory_order_release);
        return n;
    }

    /// Single-element convenience pop. Returns false when empty.
    bool try_pop(T& out) noexcept { return try_pop(&out, 1) == 1; }

    // --- observers (any thread) ---------------------------------------------

    /// Total elements ever pushed / popped — monotonic, exact. The engine's
    /// flush barrier waits for applied-count >= pushed().
    std::uint64_t pushed() const noexcept { return tail_.load(std::memory_order_acquire); }
    std::uint64_t popped() const noexcept { return head_.load(std::memory_order_acquire); }

    /// Instantaneous fill level (racy but clamped: never negative, never
    /// exceeds capacity). The two cursors cannot be read atomically
    /// together, so a concurrent push/pop between the loads can make the
    /// raw difference negative or larger than the ring; clamping keeps the
    /// documented contract for any-thread observers.
    std::size_t size() const noexcept {
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        const std::int64_t diff = static_cast<std::int64_t>(tail - head);
        if (diff <= 0) {
            return 0;
        }
        const auto n = static_cast<std::size_t>(diff);
        return n < capacity_ ? n : capacity_;
    }

    bool empty() const noexcept { return size() == 0; }

    /// Raw backing storage, for placement advice (common/mem.h huge-page
    /// madvise) right after construction — the slots themselves are only
    /// ever accessed through the SPSC protocol above.
    void* storage() noexcept { return buf_.data(); }
    std::size_t storage_bytes() const noexcept { return capacity_ * sizeof(T); }

private:
    // Immutable after construction and read by both sides: lives on its own
    // read-only-shared line ahead of the mutable cursors.
    std::size_t capacity_ = 0;
    std::size_t mask_ = 0;
    std::vector<T> buf_;

    // Cache-line separation: shared cursors on their own lines, each side's
    // private cached copy of the opposite cursor on another. The struct's
    // 64-byte alignment pads the tail so no hot field shares a line with
    // an adjacent object.
    alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
    alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
    alignas(64) std::uint64_t head_cache_ = 0;        ///< producer's view of head_
    alignas(64) std::uint64_t tail_cache_ = 0;        ///< consumer's view of tail_
};

}  // namespace freq

#endif  // FREQ_ENGINE_SPSC_RING_H
