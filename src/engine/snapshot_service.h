#ifndef FREQ_ENGINE_SNAPSHOT_SERVICE_H
#define FREQ_ENGINE_SNAPSHOT_SERVICE_H

/// \file snapshot_service.h
/// The async snapshot publisher: moves the engine's fold-on-demand read
/// path off the hot loop. stream_engine::snapshot() clones every shard and
/// folds the clones *on the caller's thread* — an O(k·S) merge per query
/// that steals cycles from the ingest path the engine exists to protect.
/// The snapshot_service performs that fold once per publish interval on its
/// own background thread and publishes the result into one of two
/// alternating buffers; readers acquire() the current buffer in a handful
/// of atomic operations, so point queries and heavy-hitter reports cost a
/// pointer chase instead of a merge, and their staleness is bounded by the
/// publish interval.
///
/// Publication protocol (double-buffered, refcounted):
///
///           fold()                 publish              acquire()
///   shards ───────► back buffer ──────────► published ───────────► readers
///                   (epoch e+1)    atomic     buffer               (refcount)
///                                  pointer    (epoch e)
///                                  swap
///
///  * Two buffers alternate in steady state: the publisher folds into the
///    spare buffer, stamps it with a monotonically increasing epoch and a
///    publish timestamp, then swaps the published pointer. A buffer is
///    reused only once no reader still holds it (its refcount is zero);
///    when a long-held view pins the spare, the publisher allocates a
///    fresh buffer instead of skipping or blocking (stats().pool_grows),
///    so a publish — in particular the synchronous republish behind
///    flush()/advance_epoch() — ALWAYS lands. The pool never exceeds the
///    number of concurrently-held views plus two.
///  * acquire() is a load + refcount increment + validating re-load. It
///    retries only when a publish lands in that window (at most one publish
///    per interval), so readers are wait-free in steady state and lock-free
///    under a concurrent publish. Reads of the sketch happen only after the
///    validating load, which synchronizes with the publishing store, so a
///    view is always a complete, consistent fold — never torn.
///  * A published_snapshot is a move-only RAII view: it pins its buffer
///    (refcount) and the buffer storage (shared_ptr), exposes the folded
///    sketch plus the epoch / publish-time / policy-clock metadata, and
///    releases the pin on destruction. Holding a view indefinitely never
///    corrupts anything — it only keeps one pool buffer out of rotation.
///
/// Lifetime-policy coordination: the fold callback runs the engine's
/// policy-aware merge, so fading views are aligned on the latest logical
/// clock and windowed views merge epoch-wise. stream_engine::advance_epoch
/// republishes synchronously when the service is attached, so a cached view
/// never straddles a tick for longer than it takes advance_epoch to return;
/// stream_engine::flush() republishes too, giving flush-then-read the same
/// "everything pushed is visible" meaning it has with fold-on-demand reads.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "obs/pipeline_metrics.h"

namespace freq {

/// Aggregate counters of one snapshot_service (monotonic for the life of
/// the service; stream_engine::snapshot_stats() additionally accumulates
/// them across service restarts, so the engine-level view is monotonic for
/// the life of the *engine* — see stream_engine.h).
struct snapshot_service_stats {
    std::uint64_t publishes = 0;   ///< buffers published (epoch high-water mark)
    std::uint64_t pool_grows = 0;  ///< buffers allocated because held views pinned the spares
    std::uint64_t acquires = 0;    ///< views handed out
    std::uint64_t acquire_retries = 0;  ///< acquire() restarts due to a racing publish
    std::uint64_t coalesced_publishes = 0;  ///< publish_now() calls satisfied by another caller's fold

    /// Component-wise sum — used by stream_engine to fold a finished
    /// service's totals into its accumulated base.
    snapshot_service_stats& operator+=(const snapshot_service_stats& o) noexcept {
        publishes += o.publishes;
        pool_grows += o.pool_grows;
        acquires += o.acquires;
        acquire_retries += o.acquire_retries;
        coalesced_publishes += o.coalesced_publishes;
        return *this;
    }
};

namespace detail {

/// One publication buffer of the pool.
template <typename Sketch>
struct snapshot_buffer {
    Sketch sketch;
    std::uint64_t epoch = 0;  ///< publish sequence number (0 = never published)
    std::uint64_t policy_clock = 0;  ///< sketch's lifetime clock at publish
    std::chrono::steady_clock::time_point publish_time{};
    std::atomic<std::uint64_t> refs{0};  ///< live published_snapshot views

    explicit snapshot_buffer(Sketch s) : sketch(std::move(s)) {}
};

/// The buffer pool lives behind a shared_ptr so views outlive service
/// teardown. Two buffers in steady state; grows (under the publish mutex)
/// only while long-held views pin spares. The vector itself is touched
/// only by the serialized publisher — readers hold raw buffer pointers,
/// which stay stable because buffers are individually heap-allocated and
/// never freed before the pool dies.
template <typename Sketch>
struct snapshot_buffers {
    std::vector<std::unique_ptr<snapshot_buffer<Sketch>>> pool;
};

/// Lifetime clock of a folded sketch: now() for windowed cores,
/// policy().now() for fading ones, 0 for plain.
template <typename Sketch>
std::uint64_t snapshot_clock(const Sketch& s) {
    if constexpr (requires { s.now(); }) {
        return s.now();
    } else if constexpr (requires { s.policy().now(); }) {
        return s.policy().now();
    } else {
        return 0;
    }
}

}  // namespace detail

/// A pinned, consistent, epoch-tagged view of one published fold. Move-only
/// RAII: destruction releases the buffer for reuse by the publisher. Cheap
/// to acquire and hold briefly; holding one across publish intervals makes
/// the publisher allocate around it (stats().pool_grows) but is always safe.
template <typename Sketch>
class published_snapshot {
public:
    published_snapshot(published_snapshot&& other) noexcept
        : storage_(std::move(other.storage_)), buf_(std::exchange(other.buf_, nullptr)) {}
    published_snapshot& operator=(published_snapshot&& other) noexcept {
        if (this != &other) {
            release();
            storage_ = std::move(other.storage_);
            buf_ = std::exchange(other.buf_, nullptr);
        }
        return *this;
    }
    published_snapshot(const published_snapshot&) = delete;
    published_snapshot& operator=(const published_snapshot&) = delete;
    ~published_snapshot() { release(); }

    /// The folded sketch this view pins. Immutable while the view is alive.
    const Sketch& sketch() const noexcept { return buf_->sketch; }
    const Sketch& operator*() const noexcept { return buf_->sketch; }
    const Sketch* operator->() const noexcept { return &buf_->sketch; }

    /// Publish sequence number: strictly increasing across publishes, >= 1.
    std::uint64_t epoch() const noexcept { return buf_->epoch; }

    /// The sketch's lifetime-policy clock when this view was folded (decay
    /// steps for fading, window epoch for windowed, 0 for plain).
    std::uint64_t policy_clock() const noexcept { return buf_->policy_clock; }

    std::chrono::steady_clock::time_point publish_time() const noexcept {
        return buf_->publish_time;
    }

    /// How stale this view is right now. Bounded by the publish interval
    /// plus one fold while the service is running.
    std::chrono::steady_clock::duration age() const {
        return std::chrono::steady_clock::now() - buf_->publish_time;
    }

private:
    template <typename S>
    friend class snapshot_service;

    published_snapshot(std::shared_ptr<detail::snapshot_buffers<Sketch>> storage,
                       detail::snapshot_buffer<Sketch>* buf)
        : storage_(std::move(storage)), buf_(buf) {}

    void release() noexcept {
        if (buf_ != nullptr) {
            buf_->refs.fetch_sub(1, std::memory_order_acq_rel);
            buf_ = nullptr;
        }
        storage_.reset();
    }

    std::shared_ptr<detail::snapshot_buffers<Sketch>> storage_;
    detail::snapshot_buffer<Sketch>* buf_ = nullptr;
};

/// The background publisher. Templated on the folded sketch type and fed by
/// a fold callback (for stream_engine: [&engine] { return engine.snapshot(); }),
/// so the same service publishes plain, fading and windowed views — and
/// tests can drive it from any snapshot source.
template <typename Sketch>
class snapshot_service {
public:
    using fold_fn = std::function<Sketch()>;
    using fold_into_fn = std::function<void(Sketch&)>;
    using view = published_snapshot<Sketch>;

    /// Starts the publisher thread and synchronously publishes epoch 1, so
    /// acquire() is valid from the moment the constructor returns.
    /// \param fold      produces one consistent fold (called on the
    ///                  publisher thread and inside publish_now callers).
    /// \param interval  target publish period; staleness of any acquired
    ///                  view is bounded by interval + one fold duration.
    /// \param fold_into optional allocation-free form: folds into an
    ///                  existing sketch by copy-assignment, letting the
    ///                  publisher reuse its pooled buffers' backing arrays
    ///                  instead of building a fresh sketch per publish
    ///                  (stream_engine::snapshot_into). Must produce the
    ///                  same result as \p fold; used whenever a recyclable
    ///                  buffer exists, with \p fold covering first
    ///                  publishes and pool growth.
    snapshot_service(fold_fn fold, std::chrono::microseconds interval,
                     fold_into_fn fold_into = nullptr)
        : fold_(std::move(fold)), fold_into_(std::move(fold_into)), interval_(interval) {
        FREQ_REQUIRE(fold_ != nullptr, "snapshot_service needs a fold callback");
        FREQ_REQUIRE(interval_.count() > 0, "snapshot publish interval must be positive");
        Sketch first = fold_();
        Sketch second = first;  // both steady-state buffers start as valid folds
        buffers_ = std::make_shared<detail::snapshot_buffers<Sketch>>();
        buffers_->pool.push_back(
            std::make_unique<detail::snapshot_buffer<Sketch>>(std::move(first)));
        buffers_->pool.push_back(
            std::make_unique<detail::snapshot_buffer<Sketch>>(std::move(second)));
        // Publish the first buffer as epoch 1 (its fold already happened).
        detail::snapshot_buffer<Sketch>& head = *buffers_->pool.front();
        head.epoch = 1;
        head.policy_clock = detail::snapshot_clock(head.sketch);
        head.publish_time = std::chrono::steady_clock::now();
        published_.store(&head, std::memory_order_seq_cst);
        published_epoch_.store(1, std::memory_order_release);
        publishes_.store(1, std::memory_order_relaxed);
        last_publish_ns_.store(obs::now_ns(), std::memory_order_relaxed);
        obs::pipeline().snapshot_publishes.add(1);
        // Derived staleness gauge: evaluated at registry collect() time.
        // One series per live service, disambiguated by an instance label;
        // the RAII handle retires the callback before last_publish_ns_ dies.
        static std::atomic<std::uint64_t> next_instance{1};
        age_gauge_ = obs::registry::global().register_callback_gauge(
            "freq_snapshot_age_ns", "Age of the published cached view, nanoseconds",
            {{"instance",
              std::to_string(next_instance.fetch_add(1, std::memory_order_relaxed))}},
            [this] {
                return static_cast<double>(
                    obs::now_ns() - last_publish_ns_.load(std::memory_order_relaxed));
            });
        publisher_ = std::thread([this] { publisher_loop(); });
    }

    snapshot_service(const snapshot_service&) = delete;
    snapshot_service& operator=(const snapshot_service&) = delete;

    ~snapshot_service() { stop(); }

    /// Stops the publisher thread. Idempotent; outstanding views stay valid
    /// (they pin the buffer storage) but go permanently stale.
    void stop() {
        bool expected = false;
        if (stopping_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
            // Take the wake mutex before notifying: without it the notify
            // can land between the publisher's predicate check and its
            // sleep, get lost, and leave teardown waiting a full interval.
            { std::lock_guard<std::mutex> lock(wake_mutex_); }
            wake_.notify_all();
        }
        if (publisher_.joinable()) {
            publisher_.join();
        }
    }

    /// Wait-free in steady state: pins and returns the currently published
    /// view. Retries (bounded by publish frequency) only when a publish
    /// swaps the pointer mid-acquire.
    view acquire() const {
        acquires_.fetch_add(1, std::memory_order_relaxed);
        obs::pipeline().snapshot_acquires.add(1);
        for (;;) {
            detail::snapshot_buffer<Sketch>* buf = published_.load(std::memory_order_seq_cst);
            buf->refs.fetch_add(1, std::memory_order_seq_cst);
            if (published_.load(std::memory_order_seq_cst) == buf) {
                // The validating load saw buf still published, so the
                // publisher cannot have been overwriting it: reuse requires
                // unpublishing first and observing refs == 0 afterwards.
                return view(buffers_, buf);
            }
            buf->refs.fetch_sub(1, std::memory_order_acq_rel);
            acquire_retries_.fetch_add(1, std::memory_order_relaxed);
            obs::pipeline().snapshot_acquire_retries.add(1);
        }
    }

    /// Epoch of the currently published view (>= 1). Tracked in its own
    /// atomic: dereferencing the published buffer without pinning it would
    /// race the publisher recycling that buffer.
    std::uint64_t epoch() const noexcept {
        return published_epoch_.load(std::memory_order_acquire);
    }

    /// Synchronous publish on the caller's thread: after this returns, the
    /// published view reflects a fold that *started after this call was
    /// entered* — so the next acquire() observes everything the caller made
    /// visible (e.g. an engine flush) before calling. Always lands, even
    /// when held views pin every spare (the pool grows instead of
    /// skipping). Serialized with the periodic publisher; returns the
    /// satisfying epoch.
    ///
    /// Concurrent callers coalesce: while one caller's fold-and-swap is in
    /// flight, callers that entered before that fold started simply wait
    /// for it and adopt its epoch instead of each folding again — N
    /// simultaneous publish_now() calls cost one or two folds, not N
    /// (stats().coalesced_publishes counts the riders).
    std::uint64_t publish_now() {
        const std::uint64_t entered = folds_started_.load(std::memory_order_acquire);
        std::lock_guard<std::mutex> lock(publish_mutex_);
        if (folds_started_.load(std::memory_order_relaxed) != entered) {
            // A fold began after we entered and — since cycles complete
            // under the mutex we now hold — its publish already landed.
            // Everything visible before our entry was visible to that fold.
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            obs::pipeline().snapshot_coalesced_publishes.add(1);
            return published_epoch_.load(std::memory_order_acquire);
        }
        return publish_cycle_locked();
    }

    std::chrono::microseconds interval() const noexcept { return interval_; }

    snapshot_service_stats stats() const noexcept {
        snapshot_service_stats st;
        st.publishes = publishes_.load(std::memory_order_relaxed);
        st.pool_grows = grows_.load(std::memory_order_relaxed);
        st.acquires = acquires_.load(std::memory_order_relaxed);
        st.acquire_retries = acquire_retries_.load(std::memory_order_relaxed);
        st.coalesced_publishes = coalesced_.load(std::memory_order_relaxed);
        return st;
    }

private:
    void publisher_loop() {
        std::unique_lock<std::mutex> lock(wake_mutex_);
        while (!stopping_.load(std::memory_order_acquire)) {
            wake_.wait_for(lock, interval_,
                           [this] { return stopping_.load(std::memory_order_acquire); });
            if (stopping_.load(std::memory_order_acquire)) {
                return;
            }
            lock.unlock();
            publish_cycle();
            lock.lock();
        }
    }

    /// One fold-and-swap. Publisher-side mutual exclusion only (readers
    /// never take this mutex).
    std::uint64_t publish_cycle() {
        std::lock_guard<std::mutex> lock(publish_mutex_);
        return publish_cycle_locked();
    }

    /// The body of a cycle; requires publish_mutex_ held.
    std::uint64_t publish_cycle_locked() {
        obs::scoped_timer timer(obs::pipeline().snapshot_publish_latency_ns);
        // Announce the fold before running it: publish_now() riders that
        // entered earlier may adopt this cycle's result.
        folds_started_.fetch_add(1, std::memory_order_acq_rel);
        detail::snapshot_buffer<Sketch>* front =
            published_.load(std::memory_order_seq_cst);
        // A spare buffer is safe to overwrite once its refcount reads zero
        // *after* it was unpublished: no reader can re-pin it, because
        // acquire() validates against the published pointer. When every
        // spare is pinned by a held view, grow the pool instead of
        // skipping — a publish (and so flush()'s / advance_epoch()'s
        // synchronous republish guarantee) must always land.
        detail::snapshot_buffer<Sketch>* back = nullptr;
        for (const auto& b : buffers_->pool) {
            if (b.get() != front && b->refs.load(std::memory_order_seq_cst) == 0) {
                back = b.get();
                break;
            }
        }
        if (back != nullptr && fold_into_ != nullptr) {
            // Reuse the spare buffer's sketch storage: the fold-into form
            // copy-assigns into its existing backing arrays, so a
            // steady-state publish performs no heap allocation.
            fold_into_(back->sketch);
        } else {
            Sketch folded = fold_();
            if (back == nullptr) {
                buffers_->pool.push_back(
                    std::make_unique<detail::snapshot_buffer<Sketch>>(std::move(folded)));
                back = buffers_->pool.back().get();
                grows_.fetch_add(1, std::memory_order_relaxed);
                obs::pipeline().snapshot_pool_grows.add(1);
            } else {
                back->sketch = std::move(folded);
            }
        }
        back->epoch = front->epoch + 1;  // safe: only the serialized publisher writes epochs
        back->policy_clock = detail::snapshot_clock(back->sketch);
        back->publish_time = std::chrono::steady_clock::now();
        published_.store(back, std::memory_order_seq_cst);
        published_epoch_.store(back->epoch, std::memory_order_release);
        publishes_.fetch_add(1, std::memory_order_relaxed);
        last_publish_ns_.store(obs::now_ns(), std::memory_order_relaxed);
        obs::pipeline().snapshot_publishes.add(1);
        return back->epoch;
    }

    fold_fn fold_;
    fold_into_fn fold_into_;  ///< optional allocation-free fold (see ctor)
    std::chrono::microseconds interval_;
    std::shared_ptr<detail::snapshot_buffers<Sketch>> buffers_;
    std::atomic<detail::snapshot_buffer<Sketch>*> published_{nullptr};
    std::atomic<std::uint64_t> published_epoch_{0};

    std::mutex publish_mutex_;  ///< serializes publish_cycle (loop vs. publish_now)
    std::thread publisher_;
    std::mutex wake_mutex_;
    std::condition_variable wake_;
    std::atomic<bool> stopping_{false};

    std::atomic<std::uint64_t> publishes_{0};
    std::atomic<std::uint64_t> grows_{0};
    std::atomic<std::uint64_t> folds_started_{0};  ///< cycles begun (coalescing marker)
    std::atomic<std::uint64_t> coalesced_{0};
    mutable std::atomic<std::uint64_t> acquires_{0};
    mutable std::atomic<std::uint64_t> acquire_retries_{0};

    std::atomic<std::int64_t> last_publish_ns_{0};  ///< steady-clock ns of the last publish
    // Declared last: destroyed first, so the staleness callback (which
    // reads last_publish_ns_) is retired before any member it touches.
    obs::callback_gauge_handle age_gauge_;
};

}  // namespace freq

#endif  // FREQ_ENGINE_SNAPSHOT_SERVICE_H
