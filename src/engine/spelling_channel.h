#ifndef FREQ_ENGINE_SPELLING_CHANNEL_H
#define FREQ_ENGINE_SPELLING_CHANNEL_H

/// \file spelling_channel.h
/// The identification side-lane of the sharded engine's text/generic key
/// path. The hot path stays fixed-size — producers ship (fingerprint,
/// weight) records through the wait-free SPSC rings — while the
/// variable-size spellings travel here: a bounded, mutex-guarded MPSC queue
/// per shard that the shard's worker drains into its sketch's
/// spelling_dictionary alongside the ring batches.
///
/// Why a mutex is fine on this lane: spellings are sent once per key
/// first-sight (and again only after a producer's recently-sent filter
/// evicts the fingerprint), so traffic is proportional to *distinct-key
/// churn*, not stream length — orders of magnitude below the update rate
/// the rings carry. The queue is bounded; a full channel rejects the push
/// and the producer simply does not mark the fingerprint as sent, so the
/// spelling is retried on the key's next occurrence instead of blocking
/// the hot path.
///
/// The pushed()/applied() counters mirror the rings' cursors so the
/// engine's flush() barrier can cover identification state too: after a
/// flush, every spelling that was accepted into a channel has reached its
/// shard dictionary.
///
/// spelling_filter is the producer-side dedupe: a direct-mapped
/// recently-sent cache (one word per slot). Collisions between distinct
/// keys simply cause re-sends — which doubles as the healing mechanism for
/// spellings the shard swept while their fingerprint was untracked.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/contracts.h"
#include "obs/pipeline_metrics.h"

namespace freq {

template <typename Item>
class spelling_channel {
public:
    struct entry {
        std::uint64_t fp;
        Item item;
    };

    /// Channel holding at most \p capacity pending spellings.
    explicit spelling_channel(std::size_t capacity) : capacity_(capacity) {
        FREQ_REQUIRE(capacity >= 1, "spelling channel needs at least one slot");
        queue_.reserve(capacity < 4096 ? capacity : 4096);
    }

    /// Any producer thread. False when the channel is full — the caller
    /// must then *not* mark the fingerprint as sent, so the spelling is
    /// retried later instead of being lost.
    bool try_push(std::uint64_t fp, Item item) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.size() >= capacity_) {
                obs::pipeline().spelling_rejects.add(1);
                return false;
            }
            queue_.push_back(entry{fp, std::move(item)});
            pushed_.fetch_add(1, std::memory_order_release);
        }
        obs::pipeline().spelling_enqueued.add(1);
        return true;
    }

    /// Consumer side (the shard worker): swaps every pending entry into
    /// \p out (cleared first) and returns the count. The caller applies the
    /// entries to its sketch, then acknowledges with mark_applied() so the
    /// flush barrier can observe completion.
    std::size_t drain(std::vector<entry>& out) {
        out.clear();
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.swap(out);
        return out.size();
    }

    void mark_applied(std::size_t n) {
        applied_.fetch_add(n, std::memory_order_release);
    }

    /// Spellings ever accepted / ever applied to the shard dictionary —
    /// monotonic cursors for the engine's flush barrier.
    std::uint64_t pushed() const noexcept { return pushed_.load(std::memory_order_acquire); }
    std::uint64_t applied() const noexcept {
        return applied_.load(std::memory_order_acquire);
    }

private:
    mutable std::mutex mutex_;
    std::vector<entry> queue_;
    std::size_t capacity_;
    std::atomic<std::uint64_t> pushed_{0};
    std::atomic<std::uint64_t> applied_{0};
};

/// Direct-mapped recently-sent cache: one fingerprint per slot, no
/// tombstones. contains() + insert() are one array access each; distinct
/// fingerprints mapping to the same slot evict each other, which is part
/// of the intended re-send pressure (see file comment).
///
/// Collisions alone cannot be relied on for healing — a workload that
/// settles on few hot keys may never collide again, permanently hiding a
/// spelling the shard swept while its fingerprint was untracked. evict_next()
/// exists for that: the owner calls it on a fixed cadence to clear one slot
/// round-robin, so *every* slot is emptied at least once per
/// (cadence × slot count) pushes and a still-occurring key re-sends its
/// spelling within one full sweep.
class spelling_filter {
public:
    explicit spelling_filter(std::size_t min_slots) {
        FREQ_REQUIRE(min_slots >= 2, "spelling filter needs at least two slots");
        slots_.resize(static_cast<std::size_t>(ceil_pow2(min_slots)), empty_slot);
        mask_ = slots_.size() - 1;
    }

    bool recently_sent(std::uint64_t fp) const noexcept {
        return slots_[static_cast<std::size_t>(fp) & mask_] == fp;
    }

    void mark_sent(std::uint64_t fp) noexcept {
        slots_[static_cast<std::size_t>(fp) & mask_] = fp;
    }

    /// Clears the next slot round-robin (the rolling refresh; O(1)).
    void evict_next() noexcept {
        slots_[cursor_++ & mask_] = empty_slot;
    }

    std::size_t num_slots() const noexcept { return slots_.size(); }

private:
    // A real fingerprint equal to the sentinel is re-sent every time —
    // harmless (the dictionary dedupes).
    static constexpr std::uint64_t empty_slot = ~std::uint64_t{0};

    std::vector<std::uint64_t> slots_;
    std::size_t mask_ = 0;
    std::size_t cursor_ = 0;  ///< evict_next round-robin position
};

}  // namespace freq

#endif  // FREQ_ENGINE_SPELLING_CHANNEL_H
