#ifndef FREQ_ENGINE_STREAM_ENGINE_H
#define FREQ_ENGINE_STREAM_ENGINE_H

/// \file stream_engine.h
/// The sharded concurrent ingestion engine — the §3 partition-then-merge
/// architecture as a running system instead of a batch utility.
///
/// Topology:
///
///   producer 0 ──┐ staging ┌─ ring[0][s] ─┐
///   producer 1 ──┤ buffers ├─ ring[1][s] ─┼─► worker s ─► sketch s ──┐
///      ...       │  (key-  │     ...      │   (batched drain)        ├─► snapshot()
///   producer P ──┘ routed) └─ ring[P][s] ─┘                          │   = clone + merge
///                                             ... one per shard ...──┘     (Algorithm 5)
///
///  * Keys are routed to shards by an independent hash, so each shard's
///    sketch summarizes a fixed sub-space of keys and Theorem 4 applies per
///    shard; the merged snapshot obeys the merged-error bound of Theorem 5.
///  * Producer → shard hand-off uses bounded SPSC rings (spsc_ring.h): one
///    ring per (producer, shard) pair keeps every ring single-producer /
///    single-consumer and therefore wait-free. A full ring pushes back on
///    its producer (bounded memory); producers stage small per-shard runs
///    so ring synchronization is amortized over whole batches.
///  * Each shard worker drains its rings in batches and applies them with
///    the sketch's batched update() fast path. Queries never traverse live
///    sketch state: snapshot() clones each shard's O(k) summary under a
///    brief lock and folds the clones with the in-place O(k) merge —
///    readers never block writers for more than one O(k) copy.
///
/// Sizing guidance (see README "Engine" section): shard count S should not
/// exceed the physical core budget for ingestion; each shard's sketch keeps
/// its own k counters, so the merged snapshot carries the union (up to k
/// live counters after folding) and the snapshot error bound grows with the
/// *sum* of shard offsets — prefer fewer, larger shards when query accuracy
/// at small k matters, more shards when raw ingest rate matters.
///
/// Lifetime policies: the engine is templated on the per-shard sketch type,
/// so the same rings/workers/snapshot path serves plain, time-fading and
/// sliding-window shards (core/lifetime_policy.h):
///
///   stream_engine<>                                           // plain
///   stream_engine<std::uint64_t, double,
///                 fading_frequent_items<std::uint64_t, double>>
///   stream_engine<std::uint64_t, std::uint64_t,
///                 windowed_frequent_items<>>
///
/// advance_epoch() ticks every shard's lifetime clock (decay step / window
/// rotation; no-op for plain), and snapshot() folds shard clones with the
/// policy-aware merge — fading clones align on the latest logical clock,
/// windowed clones merge epoch-wise, dropping expired epochs exactly. The
/// producer-facing ingestion API is identical for every policy.
///
/// Text / generic keys: instantiate the engine with a spelling-keeping
/// sketch (core/fingerprint_frequent_items.h, e.g.
/// string_frequent_items<W, L>) and producers additionally accept keyed
/// pushes — push("alice", 3.0). The key is fingerprinted in the producer's
/// thread, the fixed-size (fingerprint, weight) record rides the ordinary
/// SPSC ring hot path, and the spelling travels at most once per
/// first-sight (deduplicated by a per-producer direct-mapped filter)
/// through the shard's bounded spelling_channel. Each shard thus owns the
/// dictionary slice for exactly the fingerprints routed to it; snapshot()
/// unions the slices, so snapshot().top_items(m) reports full spellings.
/// flush() barriers cover the spelling lane too. Identification is
/// best-effort by design — a spelling swept while its fingerprint was
/// untracked is re-sent when the producer's filter evicts, and the filter
/// rolls one slot clear every few keyed pushes so a still-occurring key is
/// re-sent within one full filter sweep even without slot collisions —
/// while the counts keep the paper's exact NFP/NFN guarantees in
/// fingerprint space.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/contracts.h"
#include "common/mem.h"
#include "core/counter_maintenance.h"
#include "core/frequent_items_sketch.h"
#include "core/sketch_config.h"
#include "engine/shard.h"
#include "engine/snapshot_service.h"
#include "engine/spsc_ring.h"
#include "obs/pipeline_metrics.h"
#include "hashing/hash.h"
#include "stream/update.h"

namespace freq {

/// How the engine places shards relative to the host's NUMA topology
/// (common/mem.h). Placement never changes results — only where the
/// shards' pages live and which CPUs their workers run on.
enum class numa_policy : std::uint8_t {
    /// No pinning, no placement: workers float, memory lands wherever the
    /// scheduler ran the constructing thread. The pre-placement behavior.
    none,
    /// Round-robin shards across the detected NUMA nodes: shard s's worker
    /// is pinned to node (s mod nodes) and constructs the shard's memory
    /// itself, so first-touch puts the counter tables, rings and spelling
    /// arenas on the worker's node. Degrades to `none` on single-node
    /// hosts, FREQ_NUMA=OFF builds and non-Linux platforms.
    interleave,
};

/// Tuning knobs of stream_engine.
struct engine_config {
    /// S — number of shards, i.e. worker threads and per-shard sketches.
    std::uint32_t num_shards = 4;

    /// P — number of producer handles the engine hands out; one SPSC ring
    /// exists per (producer, shard) pair.
    std::uint32_t num_producers = 1;

    /// Slots per ring, rounded up to a power of two. Bounded memory:
    /// total queued updates never exceed P * S * ring_capacity.
    std::size_t ring_capacity = 4096;

    /// Maximum updates a worker applies to its sketch per lock acquisition.
    std::size_t drain_batch = 512;

    /// Updates a producer stages per shard before pushing the run into the
    /// shard's ring (amortizes ring synchronization).
    std::size_t producer_batch = 128;

    /// Pending-spelling bound per shard (spelling-keeping sketches only):
    /// a full channel defers the spelling to the key's next occurrence
    /// instead of blocking the hot path.
    std::size_t spelling_channel_capacity = 4096;

    /// Slots in each producer's direct-mapped recently-sent spelling
    /// filter (rounded up to a power of two). Smaller filters re-send
    /// spellings more often (more side-lane traffic, faster healing of
    /// swept spellings); larger ones dedupe better.
    std::size_t spelling_filter_slots = 4096;

    /// Per-shard sketch configuration. Shard s runs with seed + s so the
    /// shards' hash functions are independent (§3.2's merge note).
    sketch_config sketch{};

    /// NUMA shard placement (see numa_policy above). The default keeps
    /// behavior and thread affinity identical to a build without the
    /// memory subsystem.
    numa_policy numa = numa_policy::none;

    /// Advise transparent huge pages on each shard's large backing buffers
    /// (counter-table arrays, SPSC ring slots, spelling arena blocks).
    /// Advice only: hosts without THP, FREQ_NUMA=OFF builds and non-Linux
    /// platforms silently ignore it. freq_mem_hugepage_regions_total counts
    /// the regions actually advised.
    bool hugepages = false;

    /// Incremental snapshot folds: snapshot() keeps a per-shard clone cache
    /// keyed by engine_shard::generation() and re-clones/re-merges only the
    /// shards that mutated since the previous fold — O(k·dirty) per publish
    /// instead of O(k·S), and a fully idle publish is one O(k) copy. Costs
    /// ~(S+2) extra sketch copies of resident memory; set false to fold
    /// every shard from scratch on every snapshot (the pre-cache behavior,
    /// also what bench_snapshot uses as its baseline).
    bool incremental_snapshots = true;
};

/// Aggregate engine statistics (monotonic; racy-but-consistent reads).
struct engine_stats {
    std::uint64_t updates_enqueued = 0;  ///< pushed into rings by producers
    std::uint64_t updates_applied = 0;   ///< applied to shard sketches
    std::uint64_t batches_applied = 0;   ///< sketch lock acquisitions by workers
    std::uint64_t ring_full_stalls = 0;  ///< producer yields due to full rings
    std::uint64_t spellings_enqueued = 0;  ///< accepted into shard spelling channels
    std::uint64_t spellings_applied = 0;   ///< reached a shard dictionary
    std::uint64_t spelling_rejects = 0;    ///< deferred by full channels (retried later)
    std::uint64_t snapshot_folds = 0;      ///< snapshot() calls (any path)
    std::uint64_t snapshot_shards_refolded = 0;  ///< shard merges done by those folds
    std::uint64_t snapshot_fold_reuses = 0;      ///< folds served as a copy of the
                                                 ///< previous result (no shard dirty)
};

template <typename K = std::uint64_t, typename W = std::uint64_t,
          typename Sketch = frequent_items_sketch<K, W>>
class stream_engine {
public:
    using update_type = update<K, W>;
    using sketch_type = Sketch;

    /// A single-threaded ingestion handle. Each producer owns one SPSC ring
    /// per shard plus per-shard staging buffers; distinct producers may run
    /// on distinct threads concurrently, but one producer instance must not
    /// be shared across threads. Destruction flushes staged updates.
    /// Lifetime: a producer holds a pointer into its engine and must be
    /// destroyed before it; push/flush after stop() drop instead of block.
    class producer {
    public:
        producer(producer&& other) noexcept
            : engine_(other.engine_),
              slot_(other.slot_),
              stages_(std::move(other.stages_)),
              filter_(std::move(other.filter_)),
              filter_ticks_(other.filter_ticks_),
              stalls_(other.stalls_),
              spelling_rejects_(other.spelling_rejects_) {
            other.engine_ = nullptr;
        }
        producer(const producer&) = delete;
        producer& operator=(const producer&) = delete;
        producer& operator=(producer&&) = delete;

        ~producer() {
            if (engine_ != nullptr) {
                flush();
                engine_->release_producer_slot(slot_);
            }
        }

        /// Routes one weighted update to its shard's staging buffer.
        /// Weights are validated here, in the caller's thread, so a bad
        /// update surfaces as a catchable exception instead of unwinding a
        /// shard worker (which would terminate the process).
        void push(K id, W weight) {
            if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
                FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
            }
            const std::uint32_t s = engine_->shard_of(id);
            auto& stage = stages_[s];
            stage.push_back(update_type{id, weight});
            if (stage.size() >= engine_->cfg_.producer_batch) {
                publish(s);
            }
        }

        void push(const update_type& u) { push(u.id, u.weight); }

        /// Routes a whole batch (the bulk-load path).
        void push(std::span<const update_type> batch) {
            for (const auto& u : batch) {
                push(u.id, u.weight);
            }
        }

        /// Keyed push for spelling-keeping sketches (text / generic keys):
        /// fingerprints \p item here in the producer's thread, routes the
        /// fixed-size (fingerprint, weight) record through the ordinary
        /// ring hot path, and ships the spelling itself at most once per
        /// first-sight (per-producer direct-mapped dedupe; a full channel
        /// defers to the key's next occurrence). Counting is exact in
        /// fingerprint space whether or not the spelling has landed.
        template <typename S = Sketch>
            requires spelling_sketch<S>
        void push(typename S::item_view item, W weight = W{1}) {
            if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
                FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
            }
            const std::uint64_t fp = S::fingerprint(item);
            const std::uint32_t s = engine_->shard_of(fp);
            // Rolling filter refresh: clear one slot every few keyed pushes
            // so a spelling the shard swept while its fingerprint was
            // untracked is re-sent within one full filter sweep even when
            // the key mix is too small to cause slot collisions.
            if (++filter_ticks_ >= spelling_refresh_period) {
                filter_ticks_ = 0;
                filter_->evict_next();
            }
            if (!filter_->recently_sent(fp)) {
                if (engine_->shards_[s]->spellings().try_push(
                        fp, S::key_traits::materialize(item))) {
                    filter_->mark_sent(fp);
                } else {
                    ++spelling_rejects_;
                    engine_->spelling_rejects_.fetch_add(1, std::memory_order_relaxed);
                }
            } else {
                obs::pipeline().spelling_dedupe_hits.add(1);
            }
            auto& stage = stages_[s];
            stage.push_back(update_type{fp, weight});
            if (stage.size() >= engine_->cfg_.producer_batch) {
                publish(s);
            }
        }

        /// Publishes every staged update into the shard rings. After flush()
        /// returns, all of this producer's updates are visible to the
        /// workers (though not necessarily applied yet — see engine flush()).
        void flush() {
            for (std::uint32_t s = 0; s < stages_.size(); ++s) {
                if (!stages_[s].empty()) {
                    publish(s);
                }
            }
        }

        /// Producer-observed backpressure events (full-ring yields).
        std::uint64_t ring_full_stalls() const noexcept { return stalls_; }

        /// Spellings deferred because the shard channel was full (each is
        /// retried on the key's next occurrence).
        std::uint64_t spelling_rejects() const noexcept { return spelling_rejects_; }

    private:
        friend class stream_engine;

        producer(stream_engine* engine, std::uint32_t slot) : engine_(engine), slot_(slot) {
            stages_.resize(engine_->cfg_.num_shards);
            for (auto& s : stages_) {
                s.reserve(engine_->cfg_.producer_batch);
            }
            if constexpr (spelling_sketch<Sketch>) {
                filter_.emplace(engine_->cfg_.spelling_filter_slots);
            }
        }

        /// Pushes shard \p s's staged run into its ring, yielding while full.
        /// If the engine has been stopped (its workers are gone, so a full
        /// ring would never drain) the remaining staged updates are dropped
        /// rather than livelocking — pushing after stop() is a contract
        /// violation, but the destructor-flush must stay safe against it.
        void publish(std::uint32_t s) {
            auto& ring = engine_->shards_[s]->ring(slot_);
            std::span<const update_type> pending(stages_[s]);
            const std::size_t staged = pending.size();
            while (!pending.empty()) {
                if (engine_->stopping_.load(std::memory_order_acquire)) {
                    break;
                }
                const std::size_t n = ring.try_push(pending);
                pending = pending.subspan(n);
                if (!pending.empty()) {
                    ++stalls_;
                    engine_->stalls_.fetch_add(1, std::memory_order_relaxed);
                    obs::pipeline().engine_ring_full.add(1);
                    std::this_thread::yield();
                }
            }
            // Telemetry once per publish (amortized over producer_batch
            // updates): totals plus a ring-occupancy sample right after
            // the push, which is what backpressure tuning wants to see.
            if (const std::size_t pushed = staged - pending.size(); pushed > 0) {
                auto& m = obs::pipeline();
                m.engine_updates_enqueued.add(pushed);
                m.engine_publishes.add(1);
                m.engine_ring_occupancy.record(ring.size());
            }
            stages_[s].clear();
        }

        /// Keyed pushes between rolling filter evictions: every slot clears
        /// at least once per (period × slots) pushes, bounding both the
        /// re-send rate and the time an evicted spelling stays hidden.
        static constexpr std::size_t spelling_refresh_period = 16;

        stream_engine* engine_;
        std::uint32_t slot_;
        std::vector<std::vector<update_type>> stages_;  ///< one staging run per shard
        std::optional<spelling_filter> filter_;  ///< recently-sent spelling dedupe
        std::size_t filter_ticks_ = 0;           ///< pushes since the last eviction
        std::uint64_t stalls_ = 0;
        std::uint64_t spelling_rejects_ = 0;
    };

    explicit stream_engine(const engine_config& cfg) : cfg_(cfg) {
        FREQ_REQUIRE(cfg.num_shards >= 1, "engine needs at least one shard");
        FREQ_REQUIRE(cfg.num_shards <= 4096, "engine shard count limited to 4096");
        FREQ_REQUIRE(cfg.num_producers >= 1, "engine needs at least one producer slot");
        FREQ_REQUIRE(cfg.num_producers <= 4096, "engine producer count limited to 4096");
        route_salt_ = murmur_mix64(cfg.sketch.seed ^ 0x5368'6172'6445'6e67ULL);
        // Each worker pins itself (per cfg.numa) and then constructs its own
        // shard, so first-touch places the shard's memory — tables, rings,
        // spelling arena — on the worker's node. The constructor returns
        // only once every shard exists (producers may touch any shard the
        // moment make_producer() is reachable) or a construction failed.
        shards_.resize(cfg.num_shards);
        struct start_sync {
            std::mutex m;
            std::condition_variable cv;
            std::uint32_t ready = 0;
            std::exception_ptr failure;
        } start;
        workers_.reserve(cfg.num_shards);
        try {
            for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
                workers_.emplace_back([this, s, &start] {
                    bool ok = false;
                    try {
                        construct_shard(s);
                        ok = true;
                    } catch (...) {
                        std::lock_guard<std::mutex> lk(start.m);
                        if (start.failure == nullptr) {
                            start.failure = std::current_exception();
                        }
                    }
                    {
                        std::lock_guard<std::mutex> lk(start.m);
                        ++start.ready;
                        // Notify under the lock: the constructor's wait()
                        // cannot return — and `start` unwind — until this
                        // worker drops the mutex, so the signal always
                        // completes before the condition_variable dies.
                        start.cv.notify_one();
                    }
                    if (ok) {
                        worker_loop(s);
                    }
                });
            }
            std::unique_lock<std::mutex> lk(start.m);
            start.cv.wait(lk, [&] { return start.ready == cfg_.num_shards; });
            if (start.failure != nullptr) {
                std::rethrow_exception(start.failure);
            }
        } catch (...) {
            // Thread spawn or shard construction failed partway: stop and
            // join the workers that did start, so unwinding never destroys
            // a joinable thread or leaves a worker draining a dead engine.
            stopping_.store(true, std::memory_order_release);
            for (auto& w : workers_) {
                if (w.joinable()) {
                    w.join();
                }
            }
            throw;
        }
    }

    stream_engine(const stream_engine&) = delete;
    stream_engine& operator=(const stream_engine&) = delete;

    ~stream_engine() { stop(); }

    const engine_config& config() const noexcept { return cfg_; }
    std::uint32_t num_shards() const noexcept { return cfg_.num_shards; }

    /// Which shard serves \p id. Routing hash is independent of every
    /// shard's table hash (different mixer family and salt), so shard
    /// membership does not correlate with slot placement.
    std::uint32_t shard_of(K id) const noexcept {
        return static_cast<std::uint32_t>(
            mix64(static_cast<std::uint64_t>(id) ^ route_salt_) % cfg_.num_shards);
    }

    /// Hands out a producer slot. At most num_producers producers may be
    /// alive at once; destroying a producer returns its slot (after a
    /// flush), so short-lived ingestion handles — the façade's feeders
    /// (api/summarizer.h) — can come and go for the engine's whole lifetime.
    /// A recycled slot reuses the original slot's rings, which stay SPSC
    /// because the old producer flushed before the new one can exist.
    producer make_producer() {
        std::lock_guard<std::mutex> lock(slot_mutex_);
        std::uint32_t slot;
        if (!free_slots_.empty()) {
            slot = free_slots_.back();
            free_slots_.pop_back();
        } else {
            FREQ_REQUIRE(next_producer_ < cfg_.num_producers,
                         "more live producers than cfg.num_producers");
            slot = next_producer_++;
        }
        return producer(this, slot);
    }

    /// Barrier: returns once every update already published to the rings
    /// (i.e. after the producers' flush()) has been applied to a shard
    /// sketch. Callers that need stream-complete snapshots flush producers,
    /// then the engine, then snapshot. With the snapshot service attached,
    /// flush() also republishes, so cached reads keep the same "everything
    /// flushed is visible" meaning as fold-on-demand reads.
    void flush() {
        FREQ_REQUIRE(!stopping_.load(std::memory_order_acquire),
                     "flush() on a stopped engine");
        for (const auto& shard : shards_) {
            const std::uint64_t target = shard->enqueued();
            const std::uint64_t spelling_target = shard->spellings_enqueued();
            while (shard->applied() < target ||
                   shard->spellings_applied() < spelling_target) {
                std::this_thread::yield();
            }
        }
        if (snapshots_ != nullptr) {
            snapshots_->publish_now();
        }
    }

    /// Advances every shard's lifetime clock by \p epochs ticks (decay step
    /// for exponential_fading, epoch rotation for epoch_window, no-op for
    /// plain). Each shard ticks under its sketch mutex, so a tick never
    /// splits a drained batch; shards tick one after another, and the
    /// policy-aware merge in snapshot() re-aligns clones should a snapshot
    /// land between two shard ticks. Callers that need an exact epoch
    /// boundary flush producers and the engine first (same discipline as a
    /// stream-complete snapshot).
    void advance_epoch(std::uint64_t epochs = 1) {
        for (const auto& shard : shards_) {
            shard->tick(epochs);
        }
        // Clock-consistency with cached reads: republish synchronously so a
        // cached view reflects the new logical clock as soon as the tick
        // returns, instead of serving the pre-tick ageing for up to one
        // publish interval.
        if (snapshots_ != nullptr) {
            snapshots_->publish_now();
        }
    }

    /// A consistent point-in-time summary of everything applied so far:
    /// clones each shard's sketch (brief per-shard lock, O(k) copy) and
    /// folds the clones with the in-place Algorithm 5 merge. Never blocks
    /// ingestion beyond the per-shard copy. Valid summary of the union of
    /// shard sub-streams by Theorem 5.
    ///
    /// With cfg.incremental_snapshots (the default) the fold is incremental:
    /// each shard's generation() is read *before* its clone, and only shards
    /// whose generation advanced since the previous fold are re-cloned and
    /// re-merged. The shards that stayed clean are served from a cached
    /// "clean fold" (one merged sketch over the stable cold set, rebuilt
    /// only when cold-set membership changes), so a steady-state publish
    /// with D dirty shards costs one O(k) copy plus D merges — O(k·dirty),
    /// not O(k·S) — and a publish with nothing dirty is one O(k) copy of
    /// the previous result. Concurrent snapshot() calls serialize on the
    /// cache mutex; the per-shard clone still happens under the shard's own
    /// sketch mutex (cache mutex is always acquired first, and no path
    /// takes them in the other order).
    sketch_type snapshot() const {
        sketch_type out(fold_base_cfg());
        snapshot_into(out);
        return out;
    }

    /// Folds the current snapshot state *into* \p out by copy-assignment —
    /// the allocation-free form of snapshot(). A caller that reuses one
    /// target sketch across publishes (the snapshot service does) performs
    /// zero heap allocations per steady-state incremental fold for
    /// fixed-layout sketches (u64 keys): the cached clean fold, the
    /// per-shard clones and the previous-fold cache all copy-assign into
    /// existing vector capacity, and the dirty-shard merges are in-place
    /// O(k). Spelling-keeping sketches still allocate hash-map nodes for
    /// dictionary entries new since the last fold (their byte storage
    /// reuses the arena). \p out must be constructed from this engine's
    /// config or be a previous snapshot of it.
    void snapshot_into(sketch_type& out) const {
        if (!cfg_.incremental_snapshots) {
            snapshot_folds_.fetch_add(1, std::memory_order_relaxed);
            snapshot_refolds_.fetch_add(shards_.size(), std::memory_order_relaxed);
            obs::pipeline().snapshot_shards_refolded.add(shards_.size());
            shards_[0]->clone_sketch_into(out);
            for (std::size_t s = 1; s < shards_.size(); ++s) {
                const sketch_type part = shards_[s]->clone_sketch();
                out.merge(part);
            }
            return;
        }
        const std::size_t S = shards_.size();
        std::lock_guard<std::mutex> lock(fold_mutex_);
        snapshot_folds_.fetch_add(1, std::memory_order_relaxed);
        fold_cache& c = cache_;
        // Generations first, clones after: a mutation racing this read can
        // only make a future fold conservatively re-merge a shard whose
        // clone already contains it — never the reverse.
        std::vector<std::uint64_t>& gens_now = c.gens_scratch;
        gens_now.resize(S);
        for (std::size_t s = 0; s < S; ++s) {
            gens_now[s] = shards_[s]->generation();
        }
        if (c.last_fold.has_value() && gens_now == c.last_gens) {
            snapshot_reuses_.fetch_add(1, std::memory_order_relaxed);
            out = *c.last_fold;
            return;
        }
        if (c.clones.empty()) {
            c.clones.reserve(S);
            for (std::size_t s = 0; s < S; ++s) {
                c.clones.push_back(shards_[s]->clone_sketch());
            }
            c.gens = gens_now;
            c.dirty.assign(S, 1);
        } else {
            c.dirty.assign(S, 0);
            for (std::size_t s = 0; s < S; ++s) {
                if (gens_now[s] != c.gens[s]) {
                    c.dirty[s] = 1;
                    shards_[s]->clone_sketch_into(c.clones[s]);
                    c.gens[s] = gens_now[s];
                }
            }
        }
        std::uint64_t refolded = 0;
        // The clean fold covers exactly the shards that did NOT move this
        // round; rebuild it only when that membership changes (a shard going
        // hot→cold or cold→hot), from the cached clones — no shard locks.
        std::vector<char>& clean = c.clean_scratch;
        clean.resize(S);
        for (std::size_t s = 0; s < S; ++s) {
            clean[s] = static_cast<char>(!c.dirty[s]);
        }
        if (!c.clean_fold.has_value() || clean != c.in_clean) {
            c.clean_fold.emplace(fold_base_cfg());
            for (std::size_t s = 0; s < S; ++s) {
                if (clean[s]) {
                    c.clean_fold->merge(c.clones[s]);
                    ++refolded;
                }
            }
            c.in_clean = clean;
        }
        out = *c.clean_fold;
        for (std::size_t s = 0; s < S; ++s) {
            if (c.dirty[s]) {
                out.merge(c.clones[s]);
                ++refolded;
            }
        }
        snapshot_refolds_.fetch_add(refolded, std::memory_order_relaxed);
        obs::pipeline().snapshot_shards_refolded.add(refolded);
        c.last_fold = out;
        c.last_gens = gens_now;
    }

    // --- async snapshot service ---------------------------------------------

    /// Opt-in: starts the background snapshot publisher (snapshot_service.h)
    /// folding a fresh merged snapshot every \p interval and publishing it
    /// into the double-buffered slot acquire_snapshot() reads from. Queries
    /// served from the cached view cost a pointer acquire instead of an
    /// O(k·S) fold, at a staleness bounded by \p interval (flush() and
    /// advance_epoch() republish synchronously). Idempotent re-enable
    /// replaces the interval by restarting the service. Control-plane calls
    /// (enable/disable/stop) are owner-thread operations: they must not
    /// race acquire_snapshot()/flush()/advance_epoch() on other threads.
    void enable_snapshot_service(std::chrono::microseconds interval) {
        FREQ_REQUIRE(!stopping_.load(std::memory_order_acquire),
                     "enable_snapshot_service() on a stopped engine");
        retire_snapshot_service();  // stop any previous publisher first
        // The fold-into form lets the publisher reuse its pooled buffers'
        // sketches: a steady-state publish is allocation-free end to end
        // (see snapshot_into()).
        snapshots_ = std::make_unique<snapshot_service<sketch_type>>(
            [this] { return snapshot(); }, interval,
            [this](sketch_type& out) { snapshot_into(out); });
    }

    /// Stops the publisher and returns reads to fold-on-demand. Outstanding
    /// views stay valid (they pin their buffer storage).
    void disable_snapshot_service() { retire_snapshot_service(); }

    bool snapshot_service_enabled() const noexcept { return snapshots_ != nullptr; }

    /// Pins and returns the currently published cached view (wait-free in
    /// steady state; see published_snapshot). Requires the service enabled.
    published_snapshot<sketch_type> acquire_snapshot() const {
        FREQ_REQUIRE(snapshots_ != nullptr,
                     "acquire_snapshot() requires enable_snapshot_service()");
        return snapshots_->acquire();
    }

    /// Synchronous republish (requires the service enabled); returns the
    /// published epoch.
    std::uint64_t publish_snapshot_now() {
        FREQ_REQUIRE(snapshots_ != nullptr,
                     "publish_snapshot_now() requires enable_snapshot_service()");
        return snapshots_->publish_now();
    }

    /// Epoch of the published cached view — one atomic load, no buffer
    /// pin (poll this freely). 0 when the service is off.
    std::uint64_t snapshot_epoch() const noexcept {
        return snapshots_ != nullptr ? snapshots_->epoch() : 0;
    }

    /// Publisher counters. Monotonic for the life of the *engine*, not just
    /// of one service instance: totals of every retired service (each
    /// enable/disable cycle) are accumulated into a base that the live
    /// service's counters are added on top of, so re-enabling the service
    /// never makes any counter go backwards. Zeros only if the service was
    /// never enabled.
    snapshot_service_stats snapshot_stats() const noexcept {
        snapshot_service_stats st = snapshot_stats_base_;
        if (snapshots_ != nullptr) {
            st += snapshots_->stats();
        }
        return st;
    }

    /// Drains every ring, stops the workers and joins them. Idempotent;
    /// called by the destructor. Producers must not push after stop().
    void stop() {
        bool expected = false;
        if (!stopping_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
            return;
        }
        // The publisher folds via snapshot(); stop it before the workers so
        // no fold runs against a half-stopped engine.
        retire_snapshot_service();
        for (auto& w : workers_) {
            if (w.joinable()) {
                w.join();
            }
        }
    }

    engine_stats stats() const noexcept {
        engine_stats st;
        for (const auto& shard : shards_) {
            st.updates_enqueued += shard->enqueued();
            st.updates_applied += shard->applied();
            st.batches_applied += shard->batches_applied();
            st.spellings_enqueued += shard->spellings_enqueued();
            st.spellings_applied += shard->spellings_applied();
        }
        st.ring_full_stalls = stalls_.load(std::memory_order_relaxed);
        st.spelling_rejects = spelling_rejects_.load(std::memory_order_relaxed);
        st.snapshot_folds = snapshot_folds_.load(std::memory_order_relaxed);
        st.snapshot_shards_refolded = snapshot_refolds_.load(std::memory_order_relaxed);
        st.snapshot_fold_reuses = snapshot_reuses_.load(std::memory_order_relaxed);
        return st;
    }

private:
    /// State of the incremental fold (all accessed under fold_mutex_).
    struct fold_cache {
        std::vector<std::uint64_t> gens;   ///< generation captured before each clone
        std::vector<sketch_type> clones;   ///< latest clone per shard
        std::vector<char> dirty;           ///< scratch: which shards moved this fold
        std::vector<char> in_clean;        ///< membership of clean_fold
        std::optional<sketch_type> clean_fold;  ///< fold over the stable cold set
        std::optional<sketch_type> last_fold;   ///< previous snapshot() result
        std::vector<std::uint64_t> last_gens;   ///< generations last_fold covers
        std::vector<std::uint64_t> gens_scratch;  ///< per-fold generation reads
        std::vector<char> clean_scratch;          ///< per-fold clean membership
    };

    /// Config of the empty sketch incremental folds merge into. Must match
    /// shard 0's config bit-for-bit (for seed-perturbing backends the
    /// engine seeds shard s with
    /// cfg.sketch.seed + s): the non-incremental path publishes a clone of
    /// shard 0, and snapshot consumers — the serde envelope descriptor in
    /// particular — must see the same config regardless of which fold path
    /// produced the sketch.
    sketch_config fold_base_cfg() const { return cfg_.sketch; }

    /// Runs on worker thread s, before its drain loop: applies the NUMA
    /// policy (pin first, construct after), so every allocation the shard
    /// makes first-touches pages on the worker's node.
    void construct_shard(std::uint32_t s) {
        int node = -1;
        if (cfg_.numa == numa_policy::interleave) {
            const mem::topology& topo = mem::host_topology();
            node = topo.node_for_worker(s);  // -1 on single-node hosts
            if (node >= 0) {
                if (mem::pin_thread_to_node(topo, node)) {
                    obs::pipeline().mem_node_local_shards.add(1);
                } else {
                    // Pin failed (cpuset restrictions, degraded build): the
                    // shard still works, its memory just isn't node-bound.
                    node = -1;
                    obs::pipeline().mem_remote_shards.add(1);
                }
            }
        }
        sketch_config local = cfg_.sketch;
        // Per-shard seed perturbation decorrelates the counter cores'
        // decrement sampling — but linear-sketch backends (count_min /
        // count_sketch) opt out via merge_requires_equal_seeds: their
        // cellwise merge composes across shards only under identical
        // hash functions, which is sound because shards partition the
        // key space (equal seeds never double-count an item).
        if constexpr (!detail::merge_requires_equal_seeds_v<Sketch>) {
            local.seed = cfg_.sketch.seed + s;
        }
        shards_[s] = std::make_unique<engine_shard<K, W, Sketch>>(
            local, cfg_.num_producers, cfg_.ring_capacity, cfg_.drain_batch,
            cfg_.spelling_channel_capacity, mem::placement{cfg_.hugepages, node});
    }

    void worker_loop(std::uint32_t s) {
        engine_shard<K, W, Sketch>& shard = *shards_[s];
        std::uint32_t idle_streak = 0;
        for (;;) {
            const std::size_t n = shard.drain();
            if (n > 0) {
                idle_streak = 0;
                continue;
            }
            if (stopping_.load(std::memory_order_acquire)) {
                // Stop only once the lanes stay empty: drain() returned 0
                // after the stop flag was visible, and producers are done.
                if (!shard.has_pending()) {
                    return;
                }
                continue;
            }
            // Idle backoff: yield first (cheap on a contended box), then
            // sleep briefly so idle shards do not starve producers of CPU.
            if (++idle_streak < 64) {
                std::this_thread::yield();
            } else {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
            }
        }
    }

    void release_producer_slot(std::uint32_t slot) {
        std::lock_guard<std::mutex> lock(slot_mutex_);
        free_slots_.push_back(slot);
    }

    /// Stops and destroys the current snapshot service (if any), folding
    /// its counters into the accumulated base first so snapshot_stats()
    /// stays monotonic across enable/disable cycles. Owner-thread only
    /// (same contract as enable/disable).
    void retire_snapshot_service() {
        if (snapshots_ != nullptr) {
            snapshot_stats_base_ += snapshots_->stats();
            snapshots_.reset();
        }
    }

    engine_config cfg_;
    std::uint64_t route_salt_ = 0;
    std::vector<std::unique_ptr<engine_shard<K, W, Sketch>>> shards_;
    std::vector<std::thread> workers_;
    std::mutex slot_mutex_;                  ///< guards the slot allocator below
    std::uint32_t next_producer_ = 0;        ///< next never-used slot
    std::vector<std::uint32_t> free_slots_;  ///< slots of destroyed producers
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> stalls_{0};
    std::atomic<std::uint64_t> spelling_rejects_{0};
    mutable std::mutex fold_mutex_;  ///< guards cache_ (snapshot() is const)
    mutable fold_cache cache_;
    mutable std::atomic<std::uint64_t> snapshot_folds_{0};
    mutable std::atomic<std::uint64_t> snapshot_refolds_{0};
    mutable std::atomic<std::uint64_t> snapshot_reuses_{0};
    std::unique_ptr<snapshot_service<sketch_type>> snapshots_;  ///< null = fold-on-demand
    /// Accumulated totals of retired snapshot services (see snapshot_stats()).
    snapshot_service_stats snapshot_stats_base_{};
};

}  // namespace freq

#endif  // FREQ_ENGINE_STREAM_ENGINE_H
