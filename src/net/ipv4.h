#ifndef FREQ_NET_IPV4_H
#define FREQ_NET_IPV4_H

/// \file ipv4.h
/// IPv4 address helpers for the networking examples and the hierarchical
/// heavy hitters module. The paper's preprocessing (§4.1) turns dotted-quad
/// source addresses into integers "with decimal points excluded"; we provide
/// both that encoding and the conventional 32-bit big-endian value.

#include <cstdint>
#include <optional>
#include <string>

namespace freq::net {

/// Parses "a.b.c.d" into the conventional 32-bit value (a << 24 | ...).
/// Returns nullopt on malformed input; never throws.
std::optional<std::uint32_t> parse_ipv4(const std::string& dotted);

/// Formats a 32-bit address as dotted-quad text.
std::string format_ipv4(std::uint32_t addr);

/// The paper's §4.1 identifier encoding: the dotted-quad with the dots
/// removed, read as a decimal number — e.g. "10.1.2.3" -> 101023... is
/// ambiguous in general, so the canonical form zero-pads each octet to three
/// digits: "10.1.2.3" -> 010001002003 -> 10001002003.
std::uint64_t decimal_encoding(std::uint32_t addr);

/// Masks \p addr down to its length-\p prefix_len network prefix
/// (prefix_len in [0, 32]).
std::uint32_t prefix_of(std::uint32_t addr, unsigned prefix_len);

/// Formats "a.b.c.d/len".
std::string format_prefix(std::uint32_t addr, unsigned prefix_len);

}  // namespace freq::net

#endif  // FREQ_NET_IPV4_H
