#include "net/ipv4.h"

#include <array>

#include "common/contracts.h"

namespace freq::net {

std::optional<std::uint32_t> parse_ipv4(const std::string& dotted) {
    std::array<std::uint32_t, 4> octets{};
    std::size_t octet = 0;
    std::uint32_t value = 0;
    std::size_t digits = 0;
    for (const char c : dotted) {
        if (c >= '0' && c <= '9') {
            // At most 3 digits per octet: the value>255 check alone would
            // accept arbitrarily many leading zeros ("0000.1.2.3"), making
            // acceptance inconsistent with the canonical dotted-quad form.
            if (++digits > 3) {
                return std::nullopt;
            }
            value = value * 10 + static_cast<std::uint32_t>(c - '0');
            if (value > 255) {
                return std::nullopt;
            }
        } else if (c == '.') {
            if (digits == 0 || octet >= 3) {
                return std::nullopt;
            }
            octets[octet++] = value;
            value = 0;
            digits = 0;
        } else {
            return std::nullopt;
        }
    }
    if (digits == 0 || octet != 3) {
        return std::nullopt;
    }
    octets[3] = value;
    return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3];
}

std::string format_ipv4(std::uint32_t addr) {
    return std::to_string(addr >> 24) + '.' + std::to_string((addr >> 16) & 0xff) + '.' +
           std::to_string((addr >> 8) & 0xff) + '.' + std::to_string(addr & 0xff);
}

std::uint64_t decimal_encoding(std::uint32_t addr) {
    const std::uint64_t a = addr >> 24;
    const std::uint64_t b = (addr >> 16) & 0xff;
    const std::uint64_t c = (addr >> 8) & 0xff;
    const std::uint64_t d = addr & 0xff;
    return ((a * 1000 + b) * 1000 + c) * 1000 + d;
}

std::uint32_t prefix_of(std::uint32_t addr, unsigned prefix_len) {
    FREQ_REQUIRE(prefix_len <= 32, "IPv4 prefix length must be <= 32");
    if (prefix_len == 0) {
        return 0;
    }
    const std::uint32_t mask = prefix_len == 32 ? 0xffffffffu
                                                : ~((1u << (32 - prefix_len)) - 1u);
    return addr & mask;
}

std::string format_prefix(std::uint32_t addr, unsigned prefix_len) {
    return format_ipv4(prefix_of(addr, prefix_len)) + '/' + std::to_string(prefix_len);
}

}  // namespace freq::net
