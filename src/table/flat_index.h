#ifndef FREQ_TABLE_FLAT_INDEX_H
#define FREQ_TABLE_FLAT_INDEX_H

/// \file flat_index.h
/// A flat open-addressing map from 64-bit keys to a small trivially-copyable
/// value (heap positions, node indices). This is the hash index used by the
/// min-heap Space-Saving (SSH/MHE) and Stream-Summary (SSL) baselines; using
/// a flat probing table rather than a node-based std::unordered_map keeps
/// the baseline comparisons fair — the paper's baselines were themselves
/// carefully engineered.
///
/// Fixed capacity (the frequent-items algorithms bound live keys by k),
/// linear probing, backward-shift deletion, no tombstones.

#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/bits.h"
#include "common/contracts.h"
#include "hashing/hash.h"

namespace freq {

template <typename K, typename V>
class flat_index {
    static_assert(std::is_integral_v<K> && sizeof(K) <= 8, "keys are integral identifiers");
    static_assert(std::is_trivially_copyable_v<V>, "values must be trivially copyable");

public:
    explicit flat_index(std::uint32_t max_items, std::uint64_t hash_seed = 0)
        : max_items_(max_items), hash_seed_(hash_seed) {
        FREQ_REQUIRE(max_items >= 1, "flat_index needs capacity for at least one entry");
        const std::uint64_t want = (static_cast<std::uint64_t>(max_items) * 4 + 2) / 3;
        num_slots_ = static_cast<std::uint32_t>(ceil_pow2(want));
        mask_ = num_slots_ - 1;
        keys_.resize(num_slots_);
        values_.resize(num_slots_);
        used_.assign(num_slots_, 0);
    }

    std::uint32_t size() const noexcept { return num_active_; }
    std::uint32_t capacity() const noexcept { return max_items_; }
    bool empty() const noexcept { return num_active_ == 0; }
    bool full() const noexcept { return num_active_ == max_items_; }

    std::size_t memory_bytes() const noexcept {
        return static_cast<std::size_t>(num_slots_) * (sizeof(K) + sizeof(V) + 1);
    }

    /// Storage cost of a hypothetical index with capacity \p max_items,
    /// computed without allocating.
    static std::size_t bytes_for(std::uint32_t max_items) noexcept {
        const std::uint64_t want = (static_cast<std::uint64_t>(max_items) * 4 + 2) / 3;
        return static_cast<std::size_t>(ceil_pow2(want)) * (sizeof(K) + sizeof(V) + 1);
    }

    const V* find(K key) const noexcept {
        std::uint32_t idx = home_slot(key);
        while (used_[idx]) {
            if (keys_[idx] == key) {
                return &values_[idx];
            }
            idx = (idx + 1) & mask_;
        }
        return nullptr;
    }

    V* find(K key) noexcept {
        return const_cast<V*>(static_cast<const flat_index*>(this)->find(key));
    }

    /// Inserts or overwrites. Precondition: when inserting a new key the
    /// index must not be full.
    void put(K key, V value) {
        std::uint32_t idx = home_slot(key);
        while (used_[idx]) {
            if (keys_[idx] == key) {
                values_[idx] = value;
                return;
            }
            idx = (idx + 1) & mask_;
        }
        FREQ_EXPECTS(num_active_ < max_items_);
        keys_[idx] = key;
        values_[idx] = value;
        used_[idx] = 1;
        ++num_active_;
    }

    /// Removes \p key; returns true when it was present.
    bool erase(K key) {
        std::uint32_t idx = home_slot(key);
        while (used_[idx]) {
            if (keys_[idx] == key) {
                used_[idx] = 0;
                --num_active_;
                backward_shift(idx);
                return true;
            }
            idx = (idx + 1) & mask_;
        }
        return false;
    }

    void clear() noexcept {
        used_.assign(num_slots_, 0);
        num_active_ = 0;
    }

private:
    std::uint32_t home_slot(K key) const noexcept {
        return static_cast<std::uint32_t>(
                   table_hash(static_cast<std::uint64_t>(key), hash_seed_)) &
               mask_;
    }

    void backward_shift(std::uint32_t hole) {
        std::uint32_t idx = (hole + 1) & mask_;
        while (used_[idx]) {
            const std::uint32_t dist = (idx - home_slot(keys_[idx])) & mask_;
            const std::uint32_t gap = (idx - hole) & mask_;
            if (dist >= gap) {
                keys_[hole] = keys_[idx];
                values_[hole] = values_[idx];
                used_[hole] = 1;
                used_[idx] = 0;
                hole = idx;
            }
            idx = (idx + 1) & mask_;
        }
    }

    std::uint32_t max_items_;
    std::uint32_t num_slots_ = 0;
    std::uint32_t mask_ = 0;
    std::uint32_t num_active_ = 0;
    std::uint64_t hash_seed_;
    std::vector<K> keys_;
    std::vector<V> values_;
    std::vector<std::uint8_t> used_;
};

}  // namespace freq

#endif  // FREQ_TABLE_FLAT_INDEX_H
