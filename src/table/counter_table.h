#ifndef FREQ_TABLE_COUNTER_TABLE_H
#define FREQ_TABLE_COUNTER_TABLE_H

/// \file counter_table.h
/// The hash table of §2.3.3 of the paper: an open-addressing, linear-probing
/// map from 64-bit item identifiers to counters, laid out as three parallel
/// arrays (keys, values, states) of length L = ceil_pow2(4k/3) where k is the
/// maximum number of live counters.
///
/// A state of 0 marks an empty slot; a positive state equals the probe
/// distance of the stored key from its preferred slot, plus one. States fit
/// in 16 bits: at load factor <= 3/4 the probability that any probe sequence
/// ever exceeds 2^14 is negligible (the paper reports < 1e-250), and the
/// implementation checks the bound explicitly.
///
/// Beyond find/upsert, the table supports the one operation that makes the
/// paper's algorithms fast: decrement_all(c*), which subtracts c* from every
/// counter and removes the non-positive ones *in place*, in a single pass,
/// with no scratch memory. Removal uses run-local backward shifting: the
/// sweep starts just past an empty slot, so when a slot is processed every
/// occupied slot between any key's preferred slot and its current slot has
/// already been re-placed, and re-probing from the preferred slot restores
/// the linear-probing reachability invariant.
///
/// At 8-byte keys, 8-byte values and 2-byte states the table costs
/// 18 * ceil_pow2(4k/3) bytes — the paper's "24k bytes" figure when 4k/3
/// lands on a power of two.

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/bits.h"
#include "common/contracts.h"
#include "hashing/hash.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t>
class counter_table {
    static_assert(std::is_integral_v<K> && sizeof(K) <= 8,
                  "counter_table keys are integral identifiers (fingerprint other types)");
    static_assert(std::is_arithmetic_v<W>, "counter weights must be arithmetic");

public:
    using key_type = K;
    using weight_type = W;
    using state_type = std::uint16_t;

    /// \param max_items  k — the largest number of simultaneously tracked
    ///                   counters; the slot array is sized ceil_pow2(4k/3).
    /// \param hash_seed  seeds the slot hash so distinct tables can use
    ///                   independent hash functions (see §3.2's merge note).
    explicit counter_table(std::uint32_t max_items, std::uint64_t hash_seed = 0)
        : max_items_(max_items), hash_seed_(hash_seed) {
        FREQ_REQUIRE(max_items >= 1, "counter_table needs capacity for at least one counter");
        FREQ_REQUIRE(max_items <= (1u << 28), "counter_table capacity limited to 2^28 counters");
        const std::uint64_t want = (static_cast<std::uint64_t>(max_items) * 4 + 2) / 3;
        num_slots_ = static_cast<std::uint32_t>(ceil_pow2(want));
        mask_ = num_slots_ - 1;
        keys_.resize(num_slots_);
        values_.resize(num_slots_);
        states_.assign(num_slots_, 0);
    }

    std::uint32_t capacity() const noexcept { return max_items_; }   ///< k
    std::uint32_t num_slots() const noexcept { return num_slots_; }  ///< L
    std::uint32_t size() const noexcept { return num_active_; }
    bool empty() const noexcept { return num_active_ == 0; }
    bool full() const noexcept { return num_active_ == max_items_; }
    std::uint64_t hash_seed() const noexcept { return hash_seed_; }

    /// Bytes consumed by the parallel arrays — the quantity the paper's
    /// equal-space comparisons (§4.3) equalize across algorithms.
    std::size_t memory_bytes() const noexcept {
        return static_cast<std::size_t>(num_slots_) *
               (sizeof(K) + sizeof(W) + sizeof(state_type));
    }

    /// Storage cost of a hypothetical table with capacity \p max_items,
    /// computed without allocating (the equal-space harnesses probe large k).
    static std::size_t bytes_for(std::uint32_t max_items) noexcept {
        const std::uint64_t want = (static_cast<std::uint64_t>(max_items) * 4 + 2) / 3;
        return static_cast<std::size_t>(ceil_pow2(want)) *
               (sizeof(K) + sizeof(W) + sizeof(state_type));
    }

    /// Pointer to the counter for \p key, or nullptr when untracked.
    const W* find(K key) const noexcept {
        std::uint32_t idx = home_slot(key);
        while (states_[idx] != 0) {
            if (keys_[idx] == key) {
                return &values_[idx];
            }
            idx = (idx + 1) & mask_;
        }
        return nullptr;
    }

    W* find(K key) noexcept {
        return const_cast<W*>(static_cast<const counter_table*>(this)->find(key));
    }

    /// Prefetches the cache lines a probe for \p key will touch first. The
    /// batched update path (frequent_items_sketch::update(span)) issues
    /// these a few items ahead so successive probes overlap their memory
    /// latency instead of serializing on it — the §2.3.3 table is large
    /// enough at realistic k that nearly every probe misses cache.
    void prefetch(K key) const noexcept {
        const std::uint32_t idx = home_slot(key);
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&states_[idx], 0, 3);
        __builtin_prefetch(&keys_[idx], 0, 3);
        __builtin_prefetch(&values_[idx], 1, 3);
#endif
    }

    /// Adds \p weight to the counter for \p key, inserting the key if absent.
    /// Returns true when a new counter was created.
    /// Precondition: if the key is absent, the table must not be full —
    /// callers (the sketch algorithms) decrement-and-compact first.
    bool upsert(K key, W weight) {
        std::uint32_t idx = home_slot(key);
        std::uint32_t dist = 0;
        while (states_[idx] != 0) {
            if (keys_[idx] == key) {
                values_[idx] += weight;
                return false;
            }
            idx = (idx + 1) & mask_;
            ++dist;
        }
        FREQ_EXPECTS(num_active_ < max_items_);
        FREQ_EXPECTS(dist + 1 <= max_state);
        keys_[idx] = key;
        values_[idx] = weight;
        states_[idx] = static_cast<state_type>(dist + 1);
        ++num_active_;
        return true;
    }

    /// Subtracts \p amount from every counter and erases the counters that
    /// become non-positive, compacting probe runs in place. Returns the
    /// number of erased counters. O(L) single pass, no allocation.
    std::uint32_t decrement_all(W amount) {
        if (num_active_ == 0) {
            return 0;
        }
        // A load factor <= 3/4 guarantees an empty slot exists.
        std::uint32_t start = 0;
        while (states_[start] != 0) {
            ++start;
            FREQ_EXPECTS(start < num_slots_);
        }
        std::uint32_t erased = 0;
        std::uint32_t idx = (start + 1) & mask_;
        for (std::uint32_t step = 1; step < num_slots_; ++step, idx = (idx + 1) & mask_) {
            if (states_[idx] == 0) {
                continue;
            }
            // Vacate the slot, then either drop the counter or re-place it by
            // probing from its preferred slot. Every occupied slot this probe
            // can traverse has already been processed, so the probe ends at
            // or before the slot just vacated. Compare before subtracting:
            // unsigned weights must not wrap.
            const K key = keys_[idx];
            const W value = values_[idx];
            states_[idx] = 0;
            if (value <= amount) {
                --num_active_;
                ++erased;
                continue;
            }
            const W remaining = value - amount;
            std::uint32_t target = home_slot(key);
            std::uint32_t dist = 0;
            while (states_[target] != 0) {
                target = (target + 1) & mask_;
                ++dist;
            }
            FREQ_EXPECTS(dist + 1 <= max_state);
            keys_[target] = key;
            values_[target] = remaining;
            states_[target] = static_cast<state_type>(dist + 1);
        }
        return erased;
    }

    /// Multiplies every counter by \p factor (> 0) in place — the
    /// renormalization pass of the forward-decay lifetime policy, which
    /// periodically rebases its landmark so inflated counters keep
    /// floating-point headroom. Slot placement is key-driven, so scaling
    /// never moves entries; counters that underflow to zero (possible only
    /// for denormal values with a floating W) are erased afterwards.
    void scale_all(double factor) {
        static_assert(std::is_floating_point_v<W>,
                      "scale_all is meaningful only for floating-point counters");
        FREQ_REQUIRE(factor > 0.0, "scale_all factor must be positive");
        bool underflow = false;
        for (std::uint32_t i = 0; i < num_slots_; ++i) {
            if (states_[i] != 0) {
                values_[i] = static_cast<W>(values_[i] * factor);
                underflow |= !(values_[i] > W{0});
            }
        }
        if (underflow) {
            std::vector<K> dead;
            for (std::uint32_t i = 0; i < num_slots_; ++i) {
                if (states_[i] != 0 && !(values_[i] > W{0})) {
                    dead.push_back(keys_[i]);
                }
            }
            for (const K key : dead) {
                erase(key);
            }
        }
    }

    /// Removes \p key if present, restoring the probing invariant by the
    /// standard backward-shift technique (no tombstones). Returns true when
    /// the key was present. Used by the RAP Space-Saving variant, which
    /// reassigns (rather than decrements) counters.
    bool erase(K key) {
        std::uint32_t idx = home_slot(key);
        while (states_[idx] != 0) {
            if (keys_[idx] == key) {
                states_[idx] = 0;
                --num_active_;
                backward_shift(idx);
                return true;
            }
            idx = (idx + 1) & mask_;
        }
        return false;
    }

    /// Visits every live (key, counter) pair in slot order.
    template <typename F>
    void for_each(F&& f) const {
        for (std::uint32_t i = 0; i < num_slots_; ++i) {
            if (states_[i] != 0) {
                f(keys_[i], values_[i]);
            }
        }
    }

    /// Visits every live pair starting at \p start_slot and wrapping — used
    /// by the merge procedure to iterate the source summary in a randomized
    /// order, avoiding the front-of-table overpopulation hazard of §3.2.
    template <typename F>
    void for_each_from(std::uint32_t start_slot, F&& f) const {
        FREQ_REQUIRE(num_slots_ == 0 || start_slot < num_slots_, "start slot out of range");
        std::uint32_t idx = start_slot;
        for (std::uint32_t step = 0; step < num_slots_; ++step, idx = (idx + 1) & mask_) {
            if (states_[idx] != 0) {
                f(keys_[idx], values_[idx]);
            }
        }
    }

    // --- raw slot access (sampling during SMED decrements) -----------------

    bool slot_occupied(std::uint32_t slot) const noexcept { return states_[slot] != 0; }
    K slot_key(std::uint32_t slot) const noexcept { return keys_[slot]; }
    W slot_value(std::uint32_t slot) const noexcept { return values_[slot]; }
    state_type slot_state(std::uint32_t slot) const noexcept { return states_[slot]; }

    /// Preferred slot of a key — exposed for invariant checking in tests.
    std::uint32_t home_slot(K key) const noexcept {
        return static_cast<std::uint32_t>(
                   table_hash(static_cast<std::uint64_t>(key), hash_seed_)) &
               mask_;
    }

    void clear() noexcept {
        states_.assign(num_slots_, 0);
        num_active_ = 0;
    }

private:
    /// After vacating \p hole, slide each subsequent cluster element one
    /// step closer to its preferred slot when doing so keeps it reachable.
    void backward_shift(std::uint32_t hole) {
        std::uint32_t idx = (hole + 1) & mask_;
        while (states_[idx] != 0) {
            const std::uint32_t dist = states_[idx] - 1u;
            const std::uint32_t gap = (idx - hole) & mask_;
            if (dist >= gap) {
                // The element's preferred slot is at or before the hole, so
                // it may occupy the hole without breaking its probe chain.
                keys_[hole] = keys_[idx];
                values_[hole] = values_[idx];
                states_[hole] = static_cast<state_type>(dist - gap + 1);
                states_[idx] = 0;
                hole = idx;
            }
            idx = (idx + 1) & mask_;
        }
    }

    static constexpr state_type max_state = 0xffff;

    std::uint32_t max_items_;
    std::uint32_t num_slots_ = 0;
    std::uint32_t mask_ = 0;
    std::uint32_t num_active_ = 0;
    std::uint64_t hash_seed_;
    std::vector<K> keys_;
    std::vector<W> values_;
    std::vector<state_type> states_;
};

}  // namespace freq

#endif  // FREQ_TABLE_COUNTER_TABLE_H
