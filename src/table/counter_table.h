#ifndef FREQ_TABLE_COUNTER_TABLE_H
#define FREQ_TABLE_COUNTER_TABLE_H

/// \file counter_table.h
/// The hash table of §2.3.3 of the paper: an open-addressing, linear-probing
/// map from 64-bit item identifiers to counters, laid out as three parallel
/// arrays (keys, values, states) of length L = ceil_pow2(4k/3) where k is the
/// maximum number of live counters.
///
/// A state of 0 marks an empty slot; a positive state equals the probe
/// distance of the stored key from its preferred slot, plus one. States fit
/// in 16 bits: at load factor <= 3/4 the probability that any probe sequence
/// ever exceeds 2^14 is negligible (the paper reports < 1e-250), and the
/// implementation checks the bound explicitly.
///
/// Beyond find/upsert, the table supports the one operation that makes the
/// paper's algorithms fast: decrement_all(c*), which subtracts c* from every
/// counter and removes the non-positive ones *in place*, in a single pass,
/// with no scratch memory. Removal uses run-local backward shifting: the
/// sweep starts just past an empty slot, so when a slot is processed every
/// occupied slot between any key's preferred slot and its current slot has
/// already been re-placed, and re-probing from the preferred slot restores
/// the linear-probing reachability invariant.
///
/// The probe loops and the decrement sweep are written against the
/// freq::simd group primitives (common/simd.h): with an ISA compiled in,
/// find/upsert take probe_prefix scalar steps (the common short-probe case,
/// where one compare beats the group step's fixed mask cost) and then
/// compare four consecutive slots per step, and decrement_all
/// subtracts-and-tests four counters per step over the parallel
/// values_/states_ arrays. The power-of-two slot array needs no padding —
/// group steps run while a whole group fits before the array end and fall
/// back to single-slot steps for the (at most three) slots at the wrap.
/// The UseSimd template parameter exists so one binary can instantiate both
/// layouts; tests/test_simd_parity.cpp checks they produce bit-identical
/// tables, and the micro_table bench measures the spread.
///
/// Group-probe correctness notes:
///   * the empty-lane mask is exact, so a key match in a lane whose empty
///     bit is clear is a genuine live match;
///   * a *stale* key (left behind by an erase or eviction) can only match in
///     a lane whose empty bit is set, and the probe takes the lowest
///     eventful lane with empty-beats-match, so a stale match at or after
///     the first empty lane is never taken — the probe misses there, exactly
///     like the scalar loop.
///
/// At 8-byte keys, 8-byte values and 2-byte states the table costs
/// 18 * ceil_pow2(4k/3) bytes — the paper's "24k bytes" figure when 4k/3
/// lands on a power of two.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/bits.h"
#include "common/contracts.h"
#include "common/mem.h"
#include "common/simd.h"
#include "hashing/hash.h"

/// Keeps the group-probe tails out of the inlined fast paths: find/upsert
/// resolve most probes within the scalar prefix, and inlining the (much
/// larger) group loops next to that code measurably slows the short-probe
/// case down.
#if defined(__GNUC__) || defined(__clang__)
#define FREQ_TABLE_NOINLINE __attribute__((noinline))
#else
#define FREQ_TABLE_NOINLINE
#endif

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t,
          bool UseSimd = simd::enabled>
class counter_table {
    static_assert(std::is_integral_v<K> && sizeof(K) <= 8,
                  "counter_table keys are integral identifiers (fingerprint other types)");
    static_assert(std::is_arithmetic_v<W>, "counter weights must be arithmetic");

public:
    using key_type = K;
    using weight_type = W;
    using state_type = std::uint16_t;

    /// True when find/upsert use the 4-lane group probe (needs 8-byte keys).
    static constexpr bool group_probe = UseSimd && sizeof(K) == 8;
    /// True when decrement_all uses the 4-lane subtract-and-test sweep.
    static constexpr bool group_sweep = UseSimd && simd::sweepable_weight<W>;
    /// Scalar probe steps taken before entering the group loop. At load
    /// factor <= 3/4 most probes resolve within the first few slots, where
    /// one compare-and-branch beats the group step's fixed mask cost; the
    /// group loop takes over for the long-cluster tail it is built for.
    static constexpr std::uint32_t probe_prefix = 4;
    /// The group sweep pays off once the parallel arrays spill past the
    /// fast cache levels, where its wide loads overlap memory latency;
    /// below this many bytes the scalar per-slot sweep's simple loop wins
    /// (measured in bench/micro_table.cpp) and decrement_all uses it even
    /// when group_sweep is compiled in. Results are bit-identical either
    /// way — this picks a code path, not a semantic.
    static constexpr std::size_t sweep_bytes_threshold = 256 * 1024;

    /// \param max_items  k — the largest number of simultaneously tracked
    ///                   counters; the slot array is sized ceil_pow2(4k/3).
    /// \param hash_seed  seeds the slot hash so distinct tables can use
    ///                   independent hash functions (see §3.2's merge note).
    /// \param place      memory-placement hints (common/mem.h): with
    ///                   hugepages set, the freshly sized parallel arrays —
    ///                   the SIMD probe groups live inside them — are
    ///                   THP-advised right here, before any entry lands, so
    ///                   the kernel can back them with huge pages from the
    ///                   first fault. NUMA locality needs no hook: the
    ///                   arrays fault in on the *constructing* thread's
    ///                   node, and the engine constructs each shard on its
    ///                   pinned worker. Placement never affects results.
    explicit counter_table(std::uint32_t max_items, std::uint64_t hash_seed = 0,
                           const mem::placement& place = {})
        : max_items_(max_items), hash_seed_(hash_seed) {
        FREQ_REQUIRE(max_items >= 1, "counter_table needs capacity for at least one counter");
        FREQ_REQUIRE(max_items <= (1u << 28), "counter_table capacity limited to 2^28 counters");
        const std::uint64_t want = (static_cast<std::uint64_t>(max_items) * 4 + 2) / 3;
        num_slots_ = static_cast<std::uint32_t>(ceil_pow2(want));
        mask_ = num_slots_ - 1;
        keys_.resize(num_slots_);
        values_.resize(num_slots_);
        states_.assign(num_slots_, 0);
        apply_placement(place);
    }

    /// The allocator hook's re-advise half: applies the hugepage hint to
    /// the already-allocated parallel arrays (vectors never reallocate, so
    /// advising once covers the table's lifetime). Safe to call anytime.
    void apply_placement(const mem::placement& place) noexcept {
        mem::apply_placement(keys_.data(), keys_.size() * sizeof(K), place);
        mem::apply_placement(values_.data(), values_.size() * sizeof(W), place);
        mem::apply_placement(states_.data(), states_.size() * sizeof(state_type), place);
    }

    std::uint32_t capacity() const noexcept { return max_items_; }   ///< k
    std::uint32_t num_slots() const noexcept { return num_slots_; }  ///< L
    std::uint32_t size() const noexcept { return num_active_; }
    bool empty() const noexcept { return num_active_ == 0; }
    bool full() const noexcept { return num_active_ == max_items_; }
    std::uint64_t hash_seed() const noexcept { return hash_seed_; }

    /// Bytes consumed by the parallel arrays — the quantity the paper's
    /// equal-space comparisons (§4.3) equalize across algorithms.
    std::size_t memory_bytes() const noexcept {
        return static_cast<std::size_t>(num_slots_) *
               (sizeof(K) + sizeof(W) + sizeof(state_type));
    }

    /// Storage cost of a hypothetical table with capacity \p max_items,
    /// computed without allocating (the equal-space harnesses probe large k).
    static std::size_t bytes_for(std::uint32_t max_items) noexcept {
        const std::uint64_t want = (static_cast<std::uint64_t>(max_items) * 4 + 2) / 3;
        return static_cast<std::size_t>(ceil_pow2(want)) *
               (sizeof(K) + sizeof(W) + sizeof(state_type));
    }

    /// Pointer to the counter for \p key, or nullptr when untracked.
    const W* find(K key) const noexcept {
        std::uint32_t idx = home_slot(key);
        if constexpr (group_probe) {
            if (num_slots_ >= simd::group) {
                for (std::uint32_t i = 0; i < probe_prefix; ++i) {
                    if (states_[idx] == 0) {
                        return nullptr;
                    }
                    if (keys_[idx] == key) {
                        return &values_[idx];
                    }
                    idx = (idx + 1) & mask_;
                }
                return find_group_tail(key, idx);
            }
        }
        while (states_[idx] != 0) {
            if (keys_[idx] == key) {
                return &values_[idx];
            }
            idx = (idx + 1) & mask_;
        }
        return nullptr;
    }

    W* find(K key) noexcept {
        return const_cast<W*>(static_cast<const counter_table*>(this)->find(key));
    }

    /// Probes a block of keys, writing results[i] = counter pointer for
    /// keys[i] or nullptr when untracked. Issues the home-slot prefetches for
    /// the whole block up front, then probes each key (four slots per step
    /// under the group layout), so the block's probe cache misses overlap
    /// instead of serializing — the batched sketch update path feeds its
    /// spans through here in blocks.
    ///
    /// The returned pointers obey the same invalidation rule as find():
    /// upsert never moves entries (the arrays never reallocate), only
    /// decrement_all / erase / scale_all do.
    void find_batch(const K* keys, std::size_t n, W** results) noexcept {
        for (std::size_t i = 0; i < n; ++i) {
            prefetch(keys[i]);
        }
        for (std::size_t i = 0; i < n; ++i) {
            results[i] = find(keys[i]);
        }
    }

    /// Probe length (state value, distance-plus-one) of the slot holding
    /// \p counter, which must be a pointer previously returned by
    /// find/find_batch and still valid. Feeds the probe-length telemetry
    /// without a second probe.
    state_type probe_length_of(const W* counter) const noexcept {
        return states_[static_cast<std::size_t>(counter - values_.data())];
    }

    /// Prefetches the cache lines a probe for \p key will touch first. The
    /// batched update path (frequent_items_sketch::update(span)) issues
    /// these a few items ahead so successive probes overlap their memory
    /// latency instead of serializing on it — the §2.3.3 table is large
    /// enough at realistic k that nearly every probe misses cache.
    void prefetch(K key) const noexcept {
        const std::uint32_t idx = home_slot(key);
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&states_[idx], 0, 3);
        __builtin_prefetch(&keys_[idx], 0, 3);
        __builtin_prefetch(&values_[idx], 1, 3);
#endif
    }

    /// Adds \p weight to the counter for \p key, inserting the key if absent.
    /// Returns true when a new counter was created.
    /// Precondition: if the key is absent, the table must not be full —
    /// callers (the sketch algorithms) decrement-and-compact first.
    bool upsert(K key, W weight) {
        const std::uint32_t home = home_slot(key);
        std::uint32_t idx = home;
        if constexpr (group_probe) {
            if (num_slots_ >= simd::group) {
                for (std::uint32_t i = 0; i < probe_prefix; ++i) {
                    if (states_[idx] == 0) {
                        insert_at(idx, home, key, weight);
                        return true;
                    }
                    if (keys_[idx] == key) {
                        values_[idx] += weight;
                        return false;
                    }
                    idx = (idx + 1) & mask_;
                }
                return upsert_group_tail(key, home, idx, weight);
            }
        }
        while (states_[idx] != 0) {
            if (keys_[idx] == key) {
                values_[idx] += weight;
                return false;
            }
            idx = (idx + 1) & mask_;
        }
        insert_at(idx, home, key, weight);
        return true;
    }

    /// Subtracts \p amount from every counter and erases the counters that
    /// become non-positive, compacting probe runs in place. Returns the
    /// number of erased counters. O(L) single pass, no allocation.
    ///
    /// The sweep starts just past an empty slot, located from the slot the
    /// previous decrement (or erase) left empty rather than by scanning from
    /// slot 0 — on a near-full table whose front is one long cluster the
    /// old scan was O(cluster) extra work per decrement.
    ///
    /// Group fast path: within a cluster where no counter has been evicted
    /// yet, survivors re-place to the slot they already occupy (every slot
    /// between their preferred slot and their current one was occupied
    /// before the sweep and was re-placed identically), so a group of four
    /// occupied, all-surviving slots in such a cluster reduces to one
    /// 4-lane vector subtract with keys and states untouched. Any empty
    /// lane, dying lane, or earlier eviction in the cluster drops to the
    /// scalar vacate-and-re-place step. A slot found empty *at sweep time*
    /// is empty in its original state (re-placements never land ahead of
    /// the sweep cursor), so it resets the eviction flag exactly like the
    /// empty slots the scalar argument relies on.
    std::uint32_t decrement_all(W amount) {
        if (num_active_ == 0) {
            return 0;
        }
        // A load factor <= 3/4 guarantees an empty slot exists; the hint
        // may have been refilled since, so scan (wrapping) from it.
        std::uint32_t start = empty_hint_;
        std::uint32_t scanned = 0;
        while (states_[start] != 0) {
            start = (start + 1) & mask_;
            ++scanned;
            FREQ_EXPECTS(scanned <= num_slots_);
        }
        std::uint32_t erased;
        if constexpr (group_sweep) {
            // The two sweep instantiations produce bit-identical tables;
            // the threshold only picks whichever is faster for this size.
            if (memory_bytes() >= sweep_bytes_threshold) {
                erased = sweep_pass<true>(start, amount);
            } else {
                erased = sweep_pass<false>(start, amount);
            }
        } else {
            erased = sweep_pass<false>(start, amount);
        }
        // The start slot was empty before the sweep and no re-placement can
        // reach it (its original probe paths never crossed it), so it is
        // still empty — the next decrement starts its scan here.
        empty_hint_ = start;
        return erased;
    }

    /// Multiplies every counter by \p factor (> 0) in place — the
    /// renormalization pass of the forward-decay lifetime policy, which
    /// periodically rebases its landmark so inflated counters keep
    /// floating-point headroom. Slot placement is key-driven, so scaling
    /// itself never moves entries; in the (denormal-only) event that some
    /// counter underflows to zero, one decrement_all(0) pass drops the dead
    /// counters and compacts the probe runs — a single O(L) sweep instead
    /// of the former rescan-then-erase-per-key cleanup.
    void scale_all(double factor) {
        static_assert(std::is_floating_point_v<W>,
                      "scale_all is meaningful only for floating-point counters");
        FREQ_REQUIRE(factor > 0.0, "scale_all factor must be positive");
        bool underflow = false;
        for (std::uint32_t i = 0; i < num_slots_; ++i) {
            if (states_[i] != 0) {
                values_[i] = static_cast<W>(values_[i] * factor);
                underflow |= !(values_[i] > W{0});
            }
        }
        if (underflow) {
            decrement_all(W{0});
        }
    }

    /// Removes \p key if present, restoring the probing invariant by the
    /// standard backward-shift technique (no tombstones). Returns true when
    /// the key was present. Used by the RAP Space-Saving variant, which
    /// reassigns (rather than decrements) counters.
    bool erase(K key) {
        std::uint32_t idx = home_slot(key);
        while (states_[idx] != 0) {
            if (keys_[idx] == key) {
                states_[idx] = 0;
                --num_active_;
                empty_hint_ = backward_shift(idx);
                return true;
            }
            idx = (idx + 1) & mask_;
        }
        return false;
    }

    /// Visits every live (key, counter) pair in slot order.
    template <typename F>
    void for_each(F&& f) const {
        for (std::uint32_t i = 0; i < num_slots_; ++i) {
            if (states_[i] != 0) {
                f(keys_[i], values_[i]);
            }
        }
    }

    /// Visits every live pair starting at \p start_slot and wrapping — used
    /// by the merge procedure to iterate the source summary in a randomized
    /// order, avoiding the front-of-table overpopulation hazard of §3.2.
    template <typename F>
    void for_each_from(std::uint32_t start_slot, F&& f) const {
        FREQ_REQUIRE(num_slots_ == 0 || start_slot < num_slots_, "start slot out of range");
        std::uint32_t idx = start_slot;
        for (std::uint32_t step = 0; step < num_slots_; ++step, idx = (idx + 1) & mask_) {
            if (states_[idx] != 0) {
                f(keys_[idx], values_[idx]);
            }
        }
    }

    // --- raw slot access (sampling during SMED decrements) -----------------

    bool slot_occupied(std::uint32_t slot) const noexcept { return states_[slot] != 0; }
    K slot_key(std::uint32_t slot) const noexcept { return keys_[slot]; }
    W slot_value(std::uint32_t slot) const noexcept { return values_[slot]; }
    state_type slot_state(std::uint32_t slot) const noexcept { return states_[slot]; }

    /// Preferred slot of a key — exposed for invariant checking in tests.
    std::uint32_t home_slot(K key) const noexcept {
        return static_cast<std::uint32_t>(
                   table_hash(static_cast<std::uint64_t>(key), hash_seed_)) &
               mask_;
    }

    void clear() noexcept {
        states_.assign(num_slots_, 0);
        num_active_ = 0;
        empty_hint_ = 0;
    }

private:
    /// Group-probe continuation of find() once the scalar prefix is
    /// exhausted. Kept out of line so find()'s short-probe fast path stays
    /// small enough to inline into callers — long probes are the rare case
    /// and absorb the call overhead.
    FREQ_TABLE_NOINLINE
    const W* find_group_tail(K key, std::uint32_t idx) const noexcept {
        for (;;) {
            if (idx + simd::group <= num_slots_) {
                const std::uint32_t empty = simd::empty_mask4(&states_[idx]);
                const std::uint32_t match = simd::match_mask4(&keys_[idx], key);
                const std::uint32_t events = empty | match;
                if (events != 0) {
                    const std::uint32_t lane =
                        static_cast<std::uint32_t>(std::countr_zero(events));
                    if ((empty >> lane) & 1u) {
                        return nullptr;
                    }
                    return &values_[idx + lane];
                }
                idx += simd::group;
                if (idx == num_slots_) {
                    idx = 0;
                }
            } else {
                if (states_[idx] == 0) {
                    return nullptr;
                }
                if (keys_[idx] == key) {
                    return &values_[idx];
                }
                idx = (idx + 1) & mask_;
            }
        }
    }

    /// Group-probe continuation of upsert(). Unlike find_group_tail this is
    /// left inlinable: forcing it out of line makes the call site spill the
    /// caller's hot registers around the (rarely taken) call, which measures
    /// worse than carrying the group loop inline.
    bool upsert_group_tail(K key, std::uint32_t home, std::uint32_t idx, W weight) {
        for (;;) {
            if (idx + simd::group <= num_slots_) {
                const std::uint32_t empty = simd::empty_mask4(&states_[idx]);
                const std::uint32_t match = simd::match_mask4(&keys_[idx], key);
                const std::uint32_t events = empty | match;
                if (events != 0) {
                    const std::uint32_t lane =
                        static_cast<std::uint32_t>(std::countr_zero(events));
                    const std::uint32_t slot = idx + lane;
                    if ((empty >> lane) & 1u) {
                        insert_at(slot, home, key, weight);
                        return true;
                    }
                    values_[slot] += weight;
                    return false;
                }
                idx += simd::group;
                if (idx == num_slots_) {
                    idx = 0;
                }
            } else {
                if (states_[idx] == 0) {
                    insert_at(idx, home, key, weight);
                    return true;
                }
                if (keys_[idx] == key) {
                    values_[idx] += weight;
                    return false;
                }
                idx = (idx + 1) & mask_;
            }
        }
    }

    /// The decrement sweep proper, from the empty slot \p start all the way
    /// around the array. Templated on the group fast path so the scalar
    /// instantiation carries no per-iteration test for it — decrement_all
    /// dispatches on the size threshold.
    template <bool Group>
    std::uint32_t sweep_pass(std::uint32_t start, W amount) {
        std::uint32_t erased = 0;
        std::uint32_t idx = (start + 1) & mask_;
        std::uint32_t step = 1;
        // True when a counter has been evicted since the last slot the sweep
        // found empty: survivors beyond it may shift backward, so the group
        // subtract-in-place shortcut is off until the next empty slot.
        bool cluster_dirty = false;
        while (step < num_slots_) {
            if constexpr (Group) {
                if (idx + simd::group <= num_slots_ &&
                    step + simd::group <= num_slots_) {
                    const std::uint32_t empty = simd::empty_mask4(&states_[idx]);
                    if (!cluster_dirty && empty == 0 &&
                        simd::le_mask4(&values_[idx], amount) == 0) {
                        simd::sub4(&values_[idx], amount);
                    } else {
                        // Dispatch all four lanes off the one mask instead of
                        // re-reading states slot by slot: re-placements made
                        // while processing the group probe from the key's
                        // preferred slot and end at or before the slot just
                        // vacated, never ahead of the cursor, so a lane's
                        // cached empty bit stays valid until that lane is
                        // processed.
                        for (std::uint32_t lane = 0; lane < simd::group; ++lane) {
                            if ((empty >> lane) & 1u) {
                                cluster_dirty = false;
                            } else {
                                sweep_occupied(idx + lane, amount, cluster_dirty,
                                               erased);
                            }
                        }
                    }
                    idx += simd::group;
                    if (idx == num_slots_) {
                        idx = 0;
                    }
                    step += simd::group;
                    continue;
                }
            }
            if (states_[idx] == 0) {
                cluster_dirty = false;
            } else {
                sweep_occupied(idx, amount, cluster_dirty, erased);
            }
            idx = (idx + 1) & mask_;
            ++step;
        }
        return erased;
    }

    void insert_at(std::uint32_t slot, std::uint32_t home, K key, W weight) {
        const std::uint32_t dist = (slot - home) & mask_;
        FREQ_EXPECTS(num_active_ < max_items_);
        FREQ_EXPECTS(dist + 1 <= max_state);
        keys_[slot] = key;
        values_[slot] = weight;
        states_[slot] = static_cast<state_type>(dist + 1);
        ++num_active_;
    }

    /// One occupied-slot step of the decrement sweep. Vacates \p idx, then
    /// either drops the counter or re-places it by probing from its
    /// preferred slot. Every occupied slot this probe can traverse has
    /// already been processed, so the probe ends at or before the slot just
    /// vacated. Compare before subtracting: unsigned weights must not wrap.
    void sweep_occupied(std::uint32_t idx, W amount, bool& cluster_dirty,
                        std::uint32_t& erased) {
        const K key = keys_[idx];
        const W value = values_[idx];
        states_[idx] = 0;
        if (value <= amount) {
            --num_active_;
            ++erased;
            cluster_dirty = true;
        } else {
            const W remaining = value - amount;
            std::uint32_t target = home_slot(key);
            std::uint32_t dist = 0;
            while (states_[target] != 0) {
                target = (target + 1) & mask_;
                ++dist;
            }
            FREQ_EXPECTS(dist + 1 <= max_state);
            keys_[target] = key;
            values_[target] = remaining;
            states_[target] = static_cast<state_type>(dist + 1);
        }
    }

    /// After vacating \p hole, slide each subsequent cluster element one
    /// step closer to its preferred slot when doing so keeps it reachable.
    /// Returns the slot left empty, which the next decrement_all uses as
    /// its empty-slot hint.
    std::uint32_t backward_shift(std::uint32_t hole) {
        std::uint32_t idx = (hole + 1) & mask_;
        while (states_[idx] != 0) {
            const std::uint32_t dist = states_[idx] - 1u;
            const std::uint32_t gap = (idx - hole) & mask_;
            if (dist >= gap) {
                // The element's preferred slot is at or before the hole, so
                // it may occupy the hole without breaking its probe chain.
                keys_[hole] = keys_[idx];
                values_[hole] = values_[idx];
                states_[hole] = static_cast<state_type>(dist - gap + 1);
                states_[idx] = 0;
                hole = idx;
            }
            idx = (idx + 1) & mask_;
        }
        return hole;
    }

    static constexpr state_type max_state = 0xffff;

    std::uint32_t max_items_;
    std::uint32_t num_slots_ = 0;
    std::uint32_t mask_ = 0;
    std::uint32_t num_active_ = 0;
    std::uint32_t empty_hint_ = 0;
    std::uint64_t hash_seed_;
    std::vector<K> keys_;
    std::vector<W> values_;
    std::vector<state_type> states_;
};

}  // namespace freq

#endif  // FREQ_TABLE_COUNTER_TABLE_H
