#ifndef FREQ_OBS_REGISTRY_H
#define FREQ_OBS_REGISTRY_H

/// \file registry.h
/// Named instrument families and their export surface.
///
/// A registry owns instrument *families* — (name, help, kind) — each with
/// one instrument per distinct label set. get_counter()/get_gauge()/
/// get_histogram() are get-or-create: the first call registers the family,
/// later calls with the same name + labels return the same instrument, so
/// components anywhere in the process share one family by naming it. The
/// structure mutex only guards registration and collect(); the returned
/// references are heap-stable and updated lock-free for the registry's
/// lifetime.
///
/// Callback gauges cover values that are derived rather than stored (e.g.
/// snapshot staleness age): register_callback_gauge() returns an RAII
/// handle, the callback runs inside collect() under the registry mutex,
/// and destroying the handle unregisters it — so a callback can safely
/// capture `this` of a component that dies before the process does, as
/// long as the handle is a member destroyed first.
///
/// collect() renders into registry_snapshot, a plain value exporting
/// Prometheus text exposition (counters/gauges verbatim; histograms as
/// summaries with p50/p95/p99 + _sum/_count) and a JSON document (which
/// additionally carries mean and max per histogram).
///
/// registry::global() is the process-wide instance the pipeline metrics
/// (obs/pipeline_metrics.h), the façade's telemetry() and `freq_cli stats`
/// all share. Instruments on the global registry are process-lifetime
/// totals across every engine/sketch instance, Prometheus-style.
///
/// Under -DFREQ_OBS_OFF the registry keeps its API but becomes inert:
/// get_* return references to shared no-op instruments, callback gauges
/// are dropped at registration, and collect() returns an empty snapshot.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "obs/instruments.h"

namespace freq::obs {

enum class instrument_kind { counter, gauge, histogram };

inline const char* kind_name(instrument_kind k) noexcept {
    switch (k) {
        case instrument_kind::counter: return "counter";
        case instrument_kind::gauge: return "gauge";
        default: return "histogram";
    }
}

/// Ordered label pairs; rendered as {k="v",...}.
using label_set = std::vector<std::pair<std::string, std::string>>;

namespace detail {

inline std::string label_key(const label_set& labels) {
    std::string key;
    for (const auto& [k, v] : labels) {
        key += k;
        key += '\x1f';
        key += v;
        key += '\x1e';
    }
    return key;
}

inline void append_escaped(std::string& out, std::string_view v) {
    for (char c : v) {
        if (c == '\\' || c == '"') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
}

inline void append_label_block(std::string& out, const label_set& labels,
                               std::string_view extra_key = {},
                               std::string_view extra_val = {}) {
    if (labels.empty() && extra_key.empty()) {
        return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += k;
        out += "=\"";
        append_escaped(out, v);
        out += '"';
    }
    if (!extra_key.empty()) {
        if (!first) {
            out += ',';
        }
        out += extra_key;
        out += "=\"";
        append_escaped(out, extra_val);
        out += '"';
    }
    out += '}';
}

inline void append_number(std::string& out, double v) {
    char buf[64];
    // %.17g round-trips doubles; trim to %g for readability of exact ints.
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) && v > -1e15 && v < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
    }
    out += buf;
}

inline void append_json_string(std::string& out, std::string_view v) {
    out += '"';
    for (char c : v) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

}  // namespace detail

/// One exported time series: a label set plus either a scalar (counter /
/// gauge) or a histogram snapshot.
struct sample_snapshot {
    label_set labels;
    double value = 0.0;            ///< counters and gauges
    histogram_snapshot hist;       ///< histograms only
};

struct family_snapshot {
    std::string name;
    std::string help;
    instrument_kind kind = instrument_kind::counter;
    std::vector<sample_snapshot> samples;
};

/// Point-in-time copy of a whole registry, with renderers. A plain value:
/// safe to hold, compare and render long after the registry moved on.
struct registry_snapshot {
    std::vector<family_snapshot> families;

    std::size_t family_count() const noexcept { return families.size(); }

    const family_snapshot* find(std::string_view name) const noexcept {
        for (const auto& f : families) {
            if (f.name == name) {
                return &f;
            }
        }
        return nullptr;
    }

    /// Prometheus text exposition format. Counters and gauges render
    /// verbatim; histograms render as summaries (quantile series + _sum +
    /// _count), which keeps scrape output compact while preserving the
    /// tail percentiles.
    std::string to_prometheus() const {
        std::string out;
        out.reserve(256 + families.size() * 160);
        for (const auto& f : families) {
            out += "# HELP ";
            out += f.name;
            out += ' ';
            detail::append_escaped(out, f.help);
            out += '\n';
            out += "# TYPE ";
            out += f.name;
            out += ' ';
            out += f.kind == instrument_kind::histogram ? "summary" : kind_name(f.kind);
            out += '\n';
            for (const auto& s : f.samples) {
                if (f.kind != instrument_kind::histogram) {
                    out += f.name;
                    detail::append_label_block(out, s.labels);
                    out += ' ';
                    detail::append_number(out, s.value);
                    out += '\n';
                    continue;
                }
                for (const auto& [q, qv] : {std::pair<const char*, double>{"0.5", 0.5},
                                            {"0.95", 0.95},
                                            {"0.99", 0.99}}) {
                    out += f.name;
                    detail::append_label_block(out, s.labels, "quantile", q);
                    out += ' ';
                    detail::append_number(out, s.hist.quantile(qv));
                    out += '\n';
                }
                out += f.name;
                out += "_sum";
                detail::append_label_block(out, s.labels);
                out += ' ';
                detail::append_number(out, static_cast<double>(s.hist.sum));
                out += '\n';
                out += f.name;
                out += "_count";
                detail::append_label_block(out, s.labels);
                out += ' ';
                detail::append_number(out, static_cast<double>(s.hist.count));
                out += '\n';
            }
        }
        return out;
    }

    /// JSON document: {"families":[{name, help, kind, samples:[...]}]}.
    /// Histogram samples carry count/sum/mean/max/p50/p95/p99.
    std::string to_json() const {
        std::string out = "{\"families\":[";
        bool first_family = true;
        for (const auto& f : families) {
            if (!first_family) {
                out += ',';
            }
            first_family = false;
            out += "{\"name\":";
            detail::append_json_string(out, f.name);
            out += ",\"help\":";
            detail::append_json_string(out, f.help);
            out += ",\"kind\":\"";
            out += kind_name(f.kind);
            out += "\",\"samples\":[";
            bool first_sample = true;
            for (const auto& s : f.samples) {
                if (!first_sample) {
                    out += ',';
                }
                first_sample = false;
                out += "{\"labels\":{";
                bool first_label = true;
                for (const auto& [k, v] : s.labels) {
                    if (!first_label) {
                        out += ',';
                    }
                    first_label = false;
                    detail::append_json_string(out, k);
                    out += ':';
                    detail::append_json_string(out, v);
                }
                out += '}';
                if (f.kind != instrument_kind::histogram) {
                    out += ",\"value\":";
                    detail::append_number(out, s.value);
                } else {
                    out += ",\"count\":";
                    detail::append_number(out, static_cast<double>(s.hist.count));
                    out += ",\"sum\":";
                    detail::append_number(out, static_cast<double>(s.hist.sum));
                    out += ",\"mean\":";
                    detail::append_number(out, s.hist.mean());
                    out += ",\"max\":";
                    detail::append_number(out, static_cast<double>(s.hist.max));
                    out += ",\"p50\":";
                    detail::append_number(out, s.hist.quantile(0.50));
                    out += ",\"p95\":";
                    detail::append_number(out, s.hist.quantile(0.95));
                    out += ",\"p99\":";
                    detail::append_number(out, s.hist.quantile(0.99));
                }
                out += '}';
            }
            out += "]}";
        }
        out += "]}";
        return out;
    }
};

class registry;

/// RAII registration of a callback gauge; destroying the handle (or the
/// registry) unregisters the callback. Movable, not copyable.
class callback_gauge_handle {
public:
    callback_gauge_handle() = default;
    callback_gauge_handle(callback_gauge_handle&& other) noexcept
        : reg_(other.reg_), name_(std::move(other.name_)), id_(other.id_) {
        other.reg_ = nullptr;
    }
    callback_gauge_handle& operator=(callback_gauge_handle&& other) noexcept {
        if (this != &other) {
            reset();
            reg_ = other.reg_;
            name_ = std::move(other.name_);
            id_ = other.id_;
            other.reg_ = nullptr;
        }
        return *this;
    }
    callback_gauge_handle(const callback_gauge_handle&) = delete;
    callback_gauge_handle& operator=(const callback_gauge_handle&) = delete;
    ~callback_gauge_handle() { reset(); }

    inline void reset() noexcept;

private:
    friend class registry;
    callback_gauge_handle(registry* reg, std::string name, std::uint64_t id)
        : reg_(reg), name_(std::move(name)), id_(id) {}

    registry* reg_ = nullptr;
    std::string name_;
    std::uint64_t id_ = 0;
};

#ifndef FREQ_OBS_OFF

class registry {
public:
    registry() = default;
    registry(const registry&) = delete;
    registry& operator=(const registry&) = delete;

    /// The process-wide registry every pipeline instrument lives in.
    static registry& global() {
        static registry r;
        return r;
    }

    counter& get_counter(std::string_view name, std::string_view help,
                         label_set labels = {}) {
        return get<counter>(instrument_kind::counter, name, help, std::move(labels));
    }

    gauge& get_gauge(std::string_view name, std::string_view help,
                     label_set labels = {}) {
        return get<gauge>(instrument_kind::gauge, name, help, std::move(labels));
    }

    histogram& get_histogram(std::string_view name, std::string_view help,
                             label_set labels = {}) {
        return get<histogram>(instrument_kind::histogram, name, help, std::move(labels));
    }

    /// Registers a derived gauge evaluated inside collect() (under the
    /// registry mutex — callbacks must be cheap and must not re-enter the
    /// registry). The returned handle unregisters on destruction; keep it
    /// as a member of the object the callback reads, declared last, so it
    /// is destroyed (and the callback retired) before the data it uses.
    [[nodiscard]] callback_gauge_handle register_callback_gauge(
        std::string_view name, std::string_view help, label_set labels,
        std::function<double()> fn) {
        std::lock_guard<std::mutex> lock(mutex_);
        family& fam = family_for(instrument_kind::gauge, name, help);
        const std::uint64_t id = next_callback_id_++;
        fam.callbacks.push_back(callback_cell{id, std::move(labels), std::move(fn)});
        return callback_gauge_handle(this, std::string(name), id);
    }

    /// Point-in-time copy of every family (callback gauges evaluated now).
    registry_snapshot collect() const {
        registry_snapshot snap;
        std::lock_guard<std::mutex> lock(mutex_);
        snap.families.reserve(families_.size());
        for (const auto& [name, fam] : families_) {
            family_snapshot fs;
            fs.name = name;
            fs.help = fam.help;
            fs.kind = fam.kind;
            for (const auto& [key, cell] : fam.cells) {
                sample_snapshot s;
                s.labels = cell->labels;
                switch (fam.kind) {
                    case instrument_kind::counter:
                        s.value = static_cast<double>(cell->c->value());
                        break;
                    case instrument_kind::gauge:
                        s.value = static_cast<double>(cell->g->value());
                        break;
                    case instrument_kind::histogram:
                        s.hist = cell->h->snap();
                        break;
                }
                fs.samples.push_back(std::move(s));
            }
            for (const auto& cb : fam.callbacks) {
                sample_snapshot s;
                s.labels = cb.labels;
                s.value = cb.fn();
                fs.samples.push_back(std::move(s));
            }
            snap.families.push_back(std::move(fs));
        }
        return snap;
    }

    std::size_t num_families() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return families_.size();
    }

private:
    friend class callback_gauge_handle;

    struct instrument_cell {
        label_set labels;
        std::unique_ptr<counter> c;
        std::unique_ptr<gauge> g;
        std::unique_ptr<histogram> h;
    };
    struct callback_cell {
        std::uint64_t id;
        label_set labels;
        std::function<double()> fn;
    };
    struct family {
        std::string help;
        instrument_kind kind = instrument_kind::counter;
        std::map<std::string, std::unique_ptr<instrument_cell>> cells;
        std::vector<callback_cell> callbacks;
    };

    family& family_for(instrument_kind kind, std::string_view name,
                       std::string_view help) {
        auto it = families_.find(std::string(name));
        if (it == families_.end()) {
            family fam;
            fam.help = std::string(help);
            fam.kind = kind;
            it = families_.emplace(std::string(name), std::move(fam)).first;
        } else {
            FREQ_REQUIRE(it->second.kind == kind,
                         "obs::registry: family re-registered with a different kind");
        }
        return it->second;
    }

    template <typename T>
    T& get(instrument_kind kind, std::string_view name, std::string_view help,
           label_set labels) {
        std::lock_guard<std::mutex> lock(mutex_);
        family& fam = family_for(kind, name, help);
        const std::string key = detail::label_key(labels);
        auto it = fam.cells.find(key);
        if (it == fam.cells.end()) {
            auto cell = std::make_unique<instrument_cell>();
            cell->labels = std::move(labels);
            if constexpr (std::is_same_v<T, counter>) {
                cell->c = std::make_unique<counter>();
            } else if constexpr (std::is_same_v<T, gauge>) {
                cell->g = std::make_unique<gauge>();
            } else {
                cell->h = std::make_unique<histogram>();
            }
            it = fam.cells.emplace(key, std::move(cell)).first;
        }
        if constexpr (std::is_same_v<T, counter>) {
            return *it->second->c;
        } else if constexpr (std::is_same_v<T, gauge>) {
            return *it->second->g;
        } else {
            return *it->second->h;
        }
    }

    void unregister_callback(const std::string& name, std::uint64_t id) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = families_.find(name);
        if (it == families_.end()) {
            return;
        }
        auto& cbs = it->second.callbacks;
        for (std::size_t i = 0; i < cbs.size(); ++i) {
            if (cbs[i].id == id) {
                cbs.erase(cbs.begin() + static_cast<std::ptrdiff_t>(i));
                return;
            }
        }
    }

    mutable std::mutex mutex_;
    std::map<std::string, family> families_;
    std::uint64_t next_callback_id_ = 1;
};

inline void callback_gauge_handle::reset() noexcept {
    if (reg_ != nullptr) {
        reg_->unregister_callback(name_, id_);
        reg_ = nullptr;
    }
}

#else  // FREQ_OBS_OFF: same API, inert storage, empty snapshots.

class registry {
public:
    registry() = default;
    registry(const registry&) = delete;
    registry& operator=(const registry&) = delete;

    static registry& global() {
        static registry r;
        return r;
    }

    counter& get_counter(std::string_view, std::string_view, label_set = {}) {
        static counter c;
        return c;
    }
    gauge& get_gauge(std::string_view, std::string_view, label_set = {}) {
        static gauge g;
        return g;
    }
    histogram& get_histogram(std::string_view, std::string_view, label_set = {}) {
        static histogram h;
        return h;
    }
    [[nodiscard]] callback_gauge_handle register_callback_gauge(
        std::string_view, std::string_view, label_set, std::function<double()>) {
        return callback_gauge_handle{};
    }
    registry_snapshot collect() const { return registry_snapshot{}; }
    std::size_t num_families() const { return 0; }
};

inline void callback_gauge_handle::reset() noexcept { reg_ = nullptr; }

#endif  // FREQ_OBS_OFF

}  // namespace freq::obs

#endif  // FREQ_OBS_REGISTRY_H
