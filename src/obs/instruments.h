#ifndef FREQ_OBS_INSTRUMENTS_H
#define FREQ_OBS_INSTRUMENTS_H

/// \file instruments.h
/// Lock-free telemetry primitives: counters, gauges and log-bucketed
/// histograms cheap enough to live on (amortized) hot paths.
///
///  * basic_counter — a monotonic counter striped over cache-line-padded
///    cells. Writers pick a stripe from a thread-local hint, so concurrent
///    incrementers (shard workers, producers) do not bounce one cache line;
///    value() folds the stripes. One relaxed fetch_add per add.
///  * basic_gauge — a single atomic signed value (set/add/sub).
///  * basic_histogram — HdrHistogram-flavoured power-of-two buckets:
///    bucket b counts values whose bit_width is b, so record() is
///    bit_width + two relaxed fetch_adds (plus a rarely-taken CAS to track
///    the max). Quantiles (p50/p95/p99/…) are extracted from a snapshot by
///    cumulative walk with linear interpolation inside the landing bucket.
///
/// All mutation and all reads are atomic with relaxed ordering: readers see
/// a racy-but-consistent view (each cell individually exact, the fold
/// momentarily torn), which is the usual contract for telemetry. Everything
/// here is data-race-free under TSan.
///
/// Compile-time kill switch: building with -DFREQ_OBS_OFF aliases the
/// public instrument names (obs::counter, obs::gauge, obs::histogram,
/// obs::scoped_timer) to empty no-op types, so every instrumented call
/// site compiles to nothing and the hot path is provably unchanged. The
/// basic_* implementations remain available in both modes for tooling that
/// needs real statistics regardless (e.g. the bench harness).

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace freq::obs {

/// Steady-clock nanoseconds since an arbitrary epoch — the time base every
/// latency instrument in this subsystem records in.
inline std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

namespace detail {
/// Small per-thread stripe hint: threads enumerate themselves on first use,
/// so each long-lived thread (shard worker, producer) settles on its own
/// counter stripe.
inline std::size_t stripe_hint() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t mine = next.fetch_add(1, std::memory_order_relaxed);
    return mine;
}
}  // namespace detail

/// Monotonic counter striped over cache-line-padded cells (see file
/// comment). add() is one relaxed fetch_add on the calling thread's stripe.
class basic_counter {
public:
    static constexpr std::size_t num_stripes = 8;

    void add(std::uint64_t n = 1) noexcept { add_at(detail::stripe_hint(), n); }

    /// Caller-chosen stripe (e.g. a shard index) — avoids the thread-local
    /// lookup when the caller already has a good spreading key.
    void add_at(std::size_t hint, std::uint64_t n) noexcept {
        cells_[hint & (num_stripes - 1)].v.fetch_add(n, std::memory_order_relaxed);
    }

    /// Folded total (racy-but-consistent: each stripe exact, the fold
    /// momentarily torn while writers run).
    std::uint64_t value() const noexcept {
        std::uint64_t total = 0;
        for (const auto& c : cells_) {
            total += c.v.load(std::memory_order_relaxed);
        }
        return total;
    }

private:
    struct alignas(64) cell {
        std::atomic<std::uint64_t> v{0};
    };
    std::array<cell, num_stripes> cells_{};
};

/// Last-writer-wins signed gauge.
class basic_gauge {
public:
    void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
    void sub(std::int64_t n = 1) noexcept { v_.fetch_sub(n, std::memory_order_relaxed); }
    std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

private:
    alignas(64) std::atomic<std::int64_t> v_{0};
};

/// Point-in-time copy of a histogram, with quantile extraction. Bucket b
/// holds values v with std::bit_width(v) == b, i.e. bucket 0 is exactly
/// {0} and bucket b >= 1 spans [2^(b-1), 2^b - 1].
struct histogram_snapshot {
    static constexpr std::size_t num_buckets = 65;

    std::array<std::uint64_t, num_buckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;

    double mean() const noexcept {
        return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Value at quantile \p q in [0, 1]: cumulative walk over the buckets,
    /// linearly interpolated inside the landing bucket and clamped to the
    /// observed max. Exact for q landing in bucket 0; within one bucket
    /// width (a factor of two) otherwise — the usual log-bucket contract.
    double quantile(double q) const noexcept {
        if (count == 0) {
            return 0.0;
        }
        if (q <= 0.0) {
            q = 0.0;
        } else if (q > 1.0) {
            q = 1.0;
        }
        // Rank of the requested order statistic, 1-based.
        const double want = q * static_cast<double>(count - 1) + 1.0;
        std::uint64_t seen = 0;
        for (std::size_t b = 0; b < num_buckets; ++b) {
            if (buckets[b] == 0) {
                continue;
            }
            const std::uint64_t in_bucket = buckets[b];
            if (static_cast<double>(seen + in_bucket) + 1e-9 >= want) {
                const double lo = b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
                double hi = b == 0 ? 0.0
                                   : static_cast<double>((std::uint64_t{1} << (b - 1)) * 2 - 1);
                if (hi > static_cast<double>(max) && max >= lo) {
                    hi = static_cast<double>(max);  // top occupied bucket: clamp to observed max
                }
                const double frac =
                    in_bucket <= 1 ? 0.0
                                   : (want - static_cast<double>(seen) - 1.0) /
                                         static_cast<double>(in_bucket - 1);
                return lo + (hi - lo) * frac;
            }
            seen += in_bucket;
        }
        return static_cast<double>(max);
    }
};

/// Log-bucketed histogram; record() is bit_width + two relaxed fetch_adds
/// and a rarely-taken CAS for the running max.
class basic_histogram {
public:
    static constexpr std::size_t num_buckets = histogram_snapshot::num_buckets;

    void record(std::uint64_t v) noexcept {
        const unsigned b = static_cast<unsigned>(std::bit_width(v));  // 0 for v == 0
        buckets_[b].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        std::uint64_t m = max_.load(std::memory_order_relaxed);
        while (v > m &&
               !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
        }
    }

    /// Clamping convenience for signed durations (negative → 0).
    void record_signed(std::int64_t v) noexcept {
        record(v > 0 ? static_cast<std::uint64_t>(v) : 0);
    }

    histogram_snapshot snap() const noexcept {
        histogram_snapshot s;
        for (std::size_t b = 0; b < num_buckets; ++b) {
            s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
            s.count += s.buckets[b];
        }
        s.sum = sum_.load(std::memory_order_relaxed);
        s.max = max_.load(std::memory_order_relaxed);
        return s;
    }

    std::uint64_t count() const noexcept { return snap().count; }

private:
    std::array<std::atomic<std::uint64_t>, num_buckets> buckets_{};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

#ifndef FREQ_OBS_OFF

using counter = basic_counter;
using gauge = basic_gauge;
using histogram = basic_histogram;

/// RAII latency probe: records elapsed steady-clock nanoseconds into a
/// histogram on scope exit.
class scoped_timer {
public:
    explicit scoped_timer(histogram& h) noexcept : h_(&h), t0_(now_ns()) {}
    scoped_timer(const scoped_timer&) = delete;
    scoped_timer& operator=(const scoped_timer&) = delete;
    ~scoped_timer() { h_->record_signed(now_ns() - t0_); }

private:
    histogram* h_;
    std::int64_t t0_;
};

#else  // FREQ_OBS_OFF: every instrument is an empty no-op type.

class counter {
public:
    static constexpr std::size_t num_stripes = 1;
    void add(std::uint64_t = 1) noexcept {}
    void add_at(std::size_t, std::uint64_t) noexcept {}
    std::uint64_t value() const noexcept { return 0; }
};

class gauge {
public:
    void set(std::int64_t) noexcept {}
    void add(std::int64_t = 1) noexcept {}
    void sub(std::int64_t = 1) noexcept {}
    std::int64_t value() const noexcept { return 0; }
};

class histogram {
public:
    static constexpr std::size_t num_buckets = histogram_snapshot::num_buckets;
    void record(std::uint64_t) noexcept {}
    void record_signed(std::int64_t) noexcept {}
    histogram_snapshot snap() const noexcept { return histogram_snapshot{}; }
    std::uint64_t count() const noexcept { return 0; }
};

class scoped_timer {
public:
    explicit scoped_timer(histogram&) noexcept {}
    scoped_timer(const scoped_timer&) = delete;
    scoped_timer& operator=(const scoped_timer&) = delete;
};

#endif  // FREQ_OBS_OFF

}  // namespace freq::obs

#endif  // FREQ_OBS_INSTRUMENTS_H
