#ifndef FREQ_OBS_PIPELINE_METRICS_H
#define FREQ_OBS_PIPELINE_METRICS_H

/// \file pipeline_metrics.h
/// The instrument catalog of the freq pipeline — every metric the library
/// exports, registered once on the process-wide registry and shared by all
/// engine/sketch/façade instances (process-lifetime totals, Prometheus
/// style). Call sites reach them through obs::pipeline(), a magic-static
/// bundle of references, so the per-event cost is the instrument operation
/// itself (one relaxed fetch_add, or a histogram record).
///
/// Naming scheme (one prefix per layer; *_total for monotonic counters,
/// *_ns for steady-clock nanosecond latencies):
///
///   freq_engine_*    ring hot path (producers, backpressure, occupancy)
///   freq_shard_*     worker drain loop and lifetime clock
///   freq_sketch_*    sketch maintenance (decrement rounds, evictions,
///                    renormalizations)
///   freq_spelling_*  identification side-lane (channel + dedupe filter)
///   freq_snapshot_*  async snapshot service
///   freq_facade_*    api/summarizer.h verbs
///   freq_hhh_* / freq_entropy_* / freq_replay_*
///                    network-telemetry subsystem (src/telemetry/)
///   freq_mem_*       memory subsystem (common/mem.h): hugepage-backed
///                    regions, arena reservations/resets, NUMA shard
///                    placement outcomes
///
/// Under -DFREQ_OBS_OFF this struct collapses to a bundle of empty no-op
/// members with constant initialization, so obs::pipeline().x.add(…)
/// compiles to nothing.

#include "obs/instruments.h"
#include "obs/registry.h"

namespace freq::obs {

#ifndef FREQ_OBS_OFF

struct pipeline_metrics {
    // --- engine / ring layer ------------------------------------------------
    counter& engine_updates_enqueued;
    counter& engine_updates_applied;
    counter& engine_batches_applied;
    counter& engine_ring_full;
    counter& engine_publishes;
    histogram& engine_ring_occupancy;

    // --- shard / sketch maintenance -----------------------------------------
    histogram& shard_drain_batch_size;
    counter& shard_ticks;
    counter& sketch_decrement_rounds;
    counter& sketch_evictions;
    counter& sketch_renormalizations;
    histogram& table_probe_length;

    // --- spelling side-lane -------------------------------------------------
    counter& spelling_enqueued;
    counter& spelling_applied;
    counter& spelling_rejects;
    counter& spelling_dedupe_hits;

    // --- snapshot service ---------------------------------------------------
    counter& snapshot_publishes;
    counter& snapshot_coalesced_publishes;
    counter& snapshot_acquires;
    counter& snapshot_acquire_retries;
    counter& snapshot_pool_grows;
    counter& snapshot_shards_refolded;
    histogram& snapshot_publish_latency_ns;

    // --- façade -------------------------------------------------------------
    counter& facade_updates;
    histogram& facade_estimate_latency_ns;
    histogram& facade_frequent_items_latency_ns;
    histogram& facade_top_items_latency_ns;

    // --- network telemetry ----------------------------------------------------
    counter& hhh_levels_queried;
    counter& entropy_alarms;
    counter& replay_records;

    // --- memory subsystem (common/mem.h) --------------------------------------
    counter& mem_hugepage_regions;
    counter& mem_arena_reserved_bytes;
    counter& mem_arena_resets;
    counter& mem_node_local_shards;
    counter& mem_remote_shards;

    static pipeline_metrics& instance() {
        static pipeline_metrics m{registry::global()};
        return m;
    }

private:
    explicit pipeline_metrics(registry& r)
        : engine_updates_enqueued(r.get_counter(
              "freq_engine_updates_enqueued_total",
              "Updates pushed into shard rings by producers")),
          engine_updates_applied(r.get_counter(
              "freq_engine_updates_applied_total",
              "Updates applied to shard sketches by workers")),
          engine_batches_applied(r.get_counter(
              "freq_engine_batches_applied_total",
              "Sketch lock acquisitions by shard workers (drained batches)")),
          engine_ring_full(r.get_counter(
              "freq_engine_ring_full_total",
              "Producer yields due to full rings (backpressure stalls)")),
          engine_publishes(r.get_counter(
              "freq_engine_publishes_total",
              "Staged runs published into shard rings by producers")),
          engine_ring_occupancy(r.get_histogram(
              "freq_engine_ring_occupancy",
              "Ring fill level (elements) sampled at each producer publish")),
          shard_drain_batch_size(r.get_histogram(
              "freq_shard_drain_batch_size",
              "Updates applied per shard drain batch")),
          shard_ticks(r.get_counter(
              "freq_shard_ticks_total",
              "Lifetime-clock ticks applied to shards (decay steps / window rotations)")),
          sketch_decrement_rounds(r.get_counter(
              "freq_sketch_decrement_rounds_total",
              "Offset-subtraction rounds triggered by full counter tables")),
          sketch_evictions(r.get_counter(
              "freq_sketch_evictions_total",
              "Counters evicted (reached zero) during decrement rounds")),
          sketch_renormalizations(r.get_counter(
              "freq_sketch_renormalizations_total",
              "Fading-sketch weight renormalizations (rebase of decayed scales)")),
          table_probe_length(r.get_histogram(
              "freq_table_probe_length",
              "Counter-table probe length (slots from preferred), sampled once "
              "per batched-update block")),
          spelling_enqueued(r.get_counter(
              "freq_spelling_enqueued_total",
              "Spellings accepted into shard spelling channels")),
          spelling_applied(r.get_counter(
              "freq_spelling_applied_total",
              "Spellings applied to shard dictionaries")),
          spelling_rejects(r.get_counter(
              "freq_spelling_rejects_total",
              "Spellings deferred by full channels (retried on next occurrence)")),
          spelling_dedupe_hits(r.get_counter(
              "freq_spelling_dedupe_hits_total",
              "Keyed pushes whose spelling was suppressed by the recently-sent filter")),
          snapshot_publishes(r.get_counter(
              "freq_snapshot_publishes_total",
              "Snapshot-service publish cycles (fold + buffer swap)")),
          snapshot_coalesced_publishes(r.get_counter(
              "freq_snapshot_coalesced_publishes_total",
              "publish_now() calls satisfied by an in-flight publish cycle")),
          snapshot_acquires(r.get_counter(
              "freq_snapshot_acquires_total",
              "Cached-view acquisitions (published_snapshot pins)")),
          snapshot_acquire_retries(r.get_counter(
              "freq_snapshot_acquire_retries_total",
              "Validating-reload retries taken inside acquire()")),
          snapshot_pool_grows(r.get_counter(
              "freq_snapshot_pool_grows_total",
              "Buffer-pool growth events caused by long-pinned views")),
          snapshot_shards_refolded(r.get_counter(
              "freq_snapshot_shards_refolded_total",
              "Shards re-cloned and re-merged by incremental snapshot folds "
              "(dirty generations since the previous fold)")),
          snapshot_publish_latency_ns(r.get_histogram(
              "freq_snapshot_publish_latency_ns",
              "Latency of one publish cycle (fold + swap), nanoseconds")),
          facade_updates(r.get_counter(
              "freq_facade_updates_total",
              "Updates accepted through the summarizer facade")),
          facade_estimate_latency_ns(r.get_histogram(
              "freq_facade_query_latency_ns",
              "Facade query latency by verb, nanoseconds",
              {{"verb", "estimate"}})),
          facade_frequent_items_latency_ns(r.get_histogram(
              "freq_facade_query_latency_ns",
              "Facade query latency by verb, nanoseconds",
              {{"verb", "frequent_items"}})),
          facade_top_items_latency_ns(r.get_histogram(
              "freq_facade_query_latency_ns",
              "Facade query latency by verb, nanoseconds",
              {{"verb", "top_items"}})),
          hhh_levels_queried(r.get_counter(
              "freq_hhh_levels_queried_total",
              "Prefix levels walked by hierarchical heavy-hitter queries")),
          entropy_alarms(r.get_counter(
              "freq_entropy_alarm_total",
              "Entropy-shift alarms raised (collapse or spike vs the EWMA baseline)")),
          replay_records(r.get_counter(
              "freq_replay_records_total",
              "Trace records driven through the pipeline by replay harnesses")),
          mem_hugepage_regions(r.get_counter(
              "freq_mem_hugepage_regions_total",
              "Memory regions successfully huge-page backed or THP-advised")),
          mem_arena_reserved_bytes(r.get_counter(
              "freq_mem_arena_reserved_bytes_total",
              "Bytes of block storage ever reserved by bump-pointer arenas")),
          mem_arena_resets(r.get_counter(
              "freq_mem_arena_resets_total",
              "Bulk arena resets (spelling prune rebuilds, fold-scratch reuse)")),
          mem_node_local_shards(r.get_counter(
              "freq_mem_node_local_shards_total",
              "Shard workers pinned to a NUMA node with node-local state")),
          mem_remote_shards(r.get_counter(
              "freq_mem_remote_shards_total",
              "Shard workers that requested NUMA placement but degraded "
              "(single node, failed pin, or FREQ_NUMA=OFF)")) {}
};

#else  // FREQ_OBS_OFF: empty no-op members, constant-initialized.

struct pipeline_metrics {
    counter engine_updates_enqueued;
    counter engine_updates_applied;
    counter engine_batches_applied;
    counter engine_ring_full;
    counter engine_publishes;
    histogram engine_ring_occupancy;
    histogram shard_drain_batch_size;
    counter shard_ticks;
    counter sketch_decrement_rounds;
    counter sketch_evictions;
    counter sketch_renormalizations;
    histogram table_probe_length;
    counter spelling_enqueued;
    counter spelling_applied;
    counter spelling_rejects;
    counter spelling_dedupe_hits;
    counter snapshot_publishes;
    counter snapshot_coalesced_publishes;
    counter snapshot_acquires;
    counter snapshot_acquire_retries;
    counter snapshot_pool_grows;
    counter snapshot_shards_refolded;
    histogram snapshot_publish_latency_ns;
    counter facade_updates;
    histogram facade_estimate_latency_ns;
    histogram facade_frequent_items_latency_ns;
    histogram facade_top_items_latency_ns;
    counter hhh_levels_queried;
    counter entropy_alarms;
    counter replay_records;
    counter mem_hugepage_regions;
    counter mem_arena_reserved_bytes;
    counter mem_arena_resets;
    counter mem_node_local_shards;
    counter mem_remote_shards;

    static pipeline_metrics& instance() noexcept {
        static pipeline_metrics m;
        return m;
    }
};

#endif  // FREQ_OBS_OFF

/// The shared catalog (see file comment).
inline pipeline_metrics& pipeline() { return pipeline_metrics::instance(); }

}  // namespace freq::obs

#endif  // FREQ_OBS_PIPELINE_METRICS_H
