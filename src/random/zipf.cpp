#include "random/zipf.h"

#include <cmath>

#include "common/contracts.h"

namespace freq {

namespace {

/// (exp(x) - 1) / x, numerically stable near zero.
double expm1_over_x(double x) {
    return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0;
}

/// log1p(x) / x, numerically stable near zero.
double log1p_over_x(double x) {
    return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2.0;
}

}  // namespace

zipf_distribution::zipf_distribution(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
    FREQ_REQUIRE(n >= 1, "zipf_distribution needs at least one rank");
    FREQ_REQUIRE(alpha >= 0.0, "zipf_distribution skew must be non-negative");
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n) + 0.5);
    s_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -alpha));
}

// H(x) = integral of t^(-alpha) dt; expressed through expm1/log1p so the
// alpha -> 1 limit is handled without a branch discontinuity.
double zipf_distribution::h(double x) const {
    const double log_x = std::log(x);
    return expm1_over_x((1.0 - alpha_) * log_x) * log_x;
}

double zipf_distribution::h_inv(double x) const {
    const double t = x * (1.0 - alpha_);
    return std::exp(log1p_over_x(t) * x);
}

std::uint64_t zipf_distribution::operator()(xoshiro256ss& rng) const {
    if (n_ == 1) {
        return 1;
    }
    for (;;) {
        const double u = h_n_ + rng.unit_real() * (h_x1_ - h_n_);
        const double x = h_inv(u);
        // Clamp to the valid rank range before the acceptance test; floating
        // point drift can push x marginally outside [1, n].
        double k = std::floor(x + 0.5);
        if (k < 1.0) {
            k = 1.0;
        } else if (k > static_cast<double>(n_)) {
            k = static_cast<double>(n_);
        }
        if (k - x <= s_ || u >= h(k + 0.5) - std::pow(k, -alpha_)) {
            return static_cast<std::uint64_t>(k);
        }
    }
}

}  // namespace freq
