#ifndef FREQ_RANDOM_ZIPF_H
#define FREQ_RANDOM_ZIPF_H

/// \file zipf.h
/// Zipf(alpha) sampler over ranks {1, ..., n}: P(rank = r) ∝ r^(-alpha).
///
/// Implements Hörmann & Derflinger's rejection-inversion method, which has
/// O(1) expected time per sample independent of n — the evaluation streams
/// have n up to millions of distinct ranks, so a CDF table is not viable.
/// Valid for alpha >= 0 (alpha = 0 degenerates to uniform); the paper's
/// merge experiment uses alpha = 1.05 (§4.5).

#include <cstdint>

#include "random/xoshiro.h"

namespace freq {

class zipf_distribution {
public:
    /// \param n      number of ranks (must be >= 1)
    /// \param alpha  skew parameter (must be >= 0)
    zipf_distribution(std::uint64_t n, double alpha);

    /// Draw a rank in [1, n].
    std::uint64_t operator()(xoshiro256ss& rng) const;

    std::uint64_t num_ranks() const noexcept { return n_; }
    double alpha() const noexcept { return alpha_; }

private:
    double h(double x) const;          // integral of x^(-alpha)
    double h_inv(double x) const;      // inverse of h

    std::uint64_t n_;
    double alpha_;
    double h_x1_;        // h(1.5) - 1
    double h_n_;         // h(n + 0.5)
    double s_;           // shift constant
};

}  // namespace freq

#endif  // FREQ_RANDOM_ZIPF_H
