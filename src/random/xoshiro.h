#ifndef FREQ_RANDOM_XOSHIRO_H
#define FREQ_RANDOM_XOSHIRO_H

/// \file xoshiro.h
/// xoshiro256** PRNG (Blackman & Vigna). Deterministic given a seed, far
/// faster than std::mt19937_64, and satisfies the UniformRandomBitGenerator
/// concept so it composes with <random> distributions where needed.

#include <cstdint>
#include <limits>

#include "hashing/hash.h"

namespace freq {

class xoshiro256ss {
public:
    using result_type = std::uint64_t;

    /// Seeds the four state words through SplitMix64, as the reference
    /// implementation recommends (never leaves the state all-zero).
    explicit xoshiro256ss(std::uint64_t seed = 0xfeedfacecafebeefULL) noexcept {
        std::uint64_t sm = seed;
        for (auto& w : s_) {
            w = splitmix64(sm);
        }
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
    std::uint64_t below(std::uint64_t bound) noexcept {
        const std::uint64_t x = (*this)();
        const __uint128_t m = static_cast<__uint128_t>(x) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform double in [0, 1) with 53 bits of precision.
    double unit_real() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
        return lo + below(hi - lo + 1);
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

}  // namespace freq

#endif  // FREQ_RANDOM_XOSHIRO_H
