#ifndef FREQ_RANDOM_DISTRIBUTIONS_H
#define FREQ_RANDOM_DISTRIBUTIONS_H

/// \file distributions.h
/// Small distribution helpers built on xoshiro256**: geometric skips for the
/// Bhattacharyya §5 weighted sampler and the discrete packet-size mixture
/// used by the CAIDA-like trace generator.

#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/contracts.h"
#include "random/xoshiro.h"

namespace freq {

/// Samples Geometric(p) on {1, 2, ...}: the number of Bernoulli(p) trials up
/// to and including the first success. Used to "skip" stream updates in the
/// sampled Misra-Gries algorithm (§5 of the paper) in O(1) time via inversion.
class geometric_skip {
public:
    explicit geometric_skip(double p) : p_(p) {
        FREQ_REQUIRE(p > 0.0 && p <= 1.0, "geometric skip probability must be in (0, 1]");
        log1m_p_ = std::log1p(-p);
    }

    std::uint64_t operator()(xoshiro256ss& rng) const {
        if (p_ >= 1.0) {
            return 1;
        }
        // Inversion: ceil(log(U) / log(1-p)), U in (0, 1].
        const double u = 1.0 - rng.unit_real();  // (0, 1]
        const double g = std::ceil(std::log(u) / log1m_p_);
        return g < 1.0 ? 1 : static_cast<std::uint64_t>(g);
    }

    double success_probability() const noexcept { return p_; }

private:
    double p_;
    double log1m_p_;
};

/// Discrete distribution over a small set of (value, probability) atoms,
/// sampled by linear CDF walk — the mixtures used here have <= 8 atoms so a
/// walk beats alias-table setup cost and stays trivially verifiable.
class discrete_mixture {
public:
    struct atom {
        std::uint64_t value;
        double probability;
    };

    explicit discrete_mixture(std::initializer_list<atom> atoms) : atoms_(atoms) {
        FREQ_REQUIRE(atoms_.size() >= 1, "mixture needs at least one atom");
        double total = 0.0;
        for (const auto& a : atoms_) {
            FREQ_REQUIRE(a.probability >= 0.0, "mixture probabilities must be non-negative");
            total += a.probability;
        }
        FREQ_REQUIRE(total > 0.0, "mixture probabilities must not all be zero");
        // Normalize so callers can pass unnormalized weights.
        for (auto& a : atoms_) {
            a.probability /= total;
        }
    }

    std::uint64_t operator()(xoshiro256ss& rng) const {
        double u = rng.unit_real();
        for (const auto& a : atoms_) {
            if (u < a.probability) {
                return a.value;
            }
            u -= a.probability;
        }
        return atoms_.back().value;  // guard against accumulated rounding
    }

    /// Expected value of the mixture — used to report synthetic trace stats.
    double mean() const noexcept {
        double m = 0.0;
        for (const auto& a : atoms_) {
            m += static_cast<double>(a.value) * a.probability;
        }
        return m;
    }

private:
    std::vector<atom> atoms_;
};

}  // namespace freq

#endif  // FREQ_RANDOM_DISTRIBUTIONS_H
