#ifndef FREQ_ENTROPY_ENTROPY_ESTIMATOR_H
#define FREQ_ENTROPY_ENTROPY_ESTIMATOR_H

/// \file entropy_estimator.h
/// Streaming empirical-entropy estimation using the frequent-items sketch as
/// a black-box subroutine — the second application the paper names (§1.2,
/// §6; Chakrabarti, Cormode & McGregor [5] pioneered entropy estimation via
/// heavy hitter removal; network anomaly detectors [10, 22] consume exactly
/// this statistic).
///
/// The estimator separates the stream into the sketch's tracked (heavy)
/// items, whose probabilities are known to within the sketch's error
/// bounds, and a residual mass R. The heavy part contributes its plug-in
/// entropy; the residual is bracketed by its extreme configurations:
///  * at most: R spread over unit-weight items  -> (R/N)·log2(N);
///  * at least: R packed into chunks of size maxerr (no untracked item can
///    exceed the sketch's maximum error) -> (R/N)·log2(N/maxerr).
/// The result is a certified interval [lower, upper] plus a point estimate.
/// For skewed traffic (the anomaly-detection regime) the heavy part
/// dominates and the interval is tight.

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/contracts.h"
#include "core/frequent_items_sketch.h"

namespace freq {

class entropy_estimator {
public:
    struct result {
        double lower;  ///< certified lower bound on empirical entropy (bits)
        double upper;  ///< certified upper bound (bits)
        double point;  ///< point estimate (bits)
    };

    explicit entropy_estimator(std::uint32_t max_counters, std::uint64_t seed = 0)
        : sketch_(sketch_config{.max_counters = max_counters, .seed = seed}) {}

    void update(std::uint64_t id, std::uint64_t weight = 1) { sketch_.update(id, weight); }

    std::uint64_t total_weight() const noexcept { return sketch_.total_weight(); }
    std::size_t memory_bytes() const noexcept { return sketch_.memory_bytes(); }
    const frequent_items_sketch<std::uint64_t, std::uint64_t>& sketch() const noexcept {
        return sketch_;
    }

    /// Empirical entropy H = -Σ (f_i/N)·log2(f_i/N) of the stream so far.
    result estimate() const {
        const double n = static_cast<double>(sketch_.total_weight());
        if (n <= 0.0) {
            return {0.0, 0.0, 0.0};
        }
        // Heavy part: plug-in entropy of the tracked estimates. Lower bounds
        // (raw counters) understate heavy mass; estimates (counter + offset)
        // overstate it. Use estimates for the point value and track the
        // residual with both to keep the interval certified.
        double heavy_bits = 0.0;
        double tracked_mass = 0.0;
        sketch_.for_each([&](std::uint64_t, std::uint64_t c) {
            const double est = static_cast<double>(c + sketch_.maximum_error());
            const double p = std::min(est, n) / n;
            if (p > 0.0) {
                heavy_bits -= p * std::log2(p);
            }
            tracked_mass += static_cast<double>(c);
        });
        const double maxerr = static_cast<double>(sketch_.maximum_error());
        // Residual mass: everything not covered by raw counters. Using raw
        // counters (not estimates) keeps R an upper bound on untracked mass.
        const double residual = std::max(0.0, n - tracked_mass);
        double res_upper = 0.0;
        double res_lower = 0.0;
        if (residual > 0.0) {
            // Spread thinnest (unit items): maximal entropy contribution.
            res_upper = residual / n * std::log2(n);
            // Packed into maxerr-sized chunks: minimal entropy contribution.
            if (maxerr >= 1.0) {
                res_lower = residual / n * std::log2(std::max(1.0, n / maxerr));
            } else {
                res_lower = res_upper;  // nothing was ever evicted: exact
            }
        }
        result r;
        r.upper = heavy_bits + res_upper;
        r.lower = std::max(0.0, heavy_bits + res_lower - entropy_slack());
        r.point = heavy_bits + 0.5 * (res_lower + res_upper);
        return r;
    }

private:
    /// Slack for the heavy part: each tracked probability is known only to
    /// within maxerr/N, and -p·log2(p) has bounded sensitivity; a simple
    /// conservative allowance is k·(maxerr/N)·log2(N) capped at heavy mass.
    double entropy_slack() const {
        const double n = static_cast<double>(sketch_.total_weight());
        const double maxerr = static_cast<double>(sketch_.maximum_error());
        if (n <= 1.0 || maxerr <= 0.0) {
            return 0.0;
        }
        return static_cast<double>(sketch_.num_counters()) * (maxerr / n) * std::log2(n);
    }

    frequent_items_sketch<std::uint64_t, std::uint64_t> sketch_;
};

}  // namespace freq

#endif  // FREQ_ENTROPY_ENTROPY_ESTIMATOR_H
