#ifndef FREQ_COMMON_MEM_H
#define FREQ_COMMON_MEM_H

/// \file mem.h
/// Where bytes live, as a first-class property of the pipeline.
///
/// The paper's central claim is that the sketch runs at the speed of the
/// memory system (§2.3.3 sizes the table so indexing stays cache friendly);
/// once the arithmetic is vectorized, the remaining ceiling is *placement*:
/// which NUMA node a shard's table faults onto, whether the hot arrays sit
/// on huge pages (TLB relief), and how much allocator traffic the steady
/// state generates. This header gathers those concerns:
///
///   * topology       — NUMA nodes + cpulists + hugepage availability,
///                      parsed straight from sysfs (no libnuma dependency;
///                      the root is a parameter so tests feed a fake tree)
///   * pin_thread_to_node — sched_setaffinity onto one node's cpulist
///   * page_alloc     — page-granular buffers, optionally explicit-hugetlb
///                      backed or madvise(MADV_HUGEPAGE)-advised, with
///                      graceful fallback to ordinary pages / operator new
///   * arena          — bump-pointer allocator with bulk reset, the backing
///                      store of the spelling dictionary's string bytes
///   * first_touch    — commit freshly-mapped pages from the calling
///                      thread, so first-touch NUMA policy places them on
///                      the caller's node
///   * placement      — the hint struct threaded through counter_table /
///                      shard construction
///
/// Degradation contract: a -DFREQ_NUMA_OFF build (CMake -DFREQ_NUMA=OFF), a
/// non-Linux host, a single-node machine, or a kernel without THP all
/// degrade every operation here to a well-defined no-op — same results,
/// same envelopes, bit-for-bit; only the page placement differs.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "obs/pipeline_metrics.h"

namespace freq::mem {

/// True when the build can even try NUMA/hugepage syscalls. OFF builds and
/// non-Linux hosts compile the same API surface; every call degrades.
#if defined(FREQ_NUMA_OFF) || !defined(__linux__)
inline constexpr bool numa_compiled = false;
#else
inline constexpr bool numa_compiled = true;
#endif

// --- topology ----------------------------------------------------------------

/// One NUMA node and the CPUs that belong to it.
struct topology_node {
    int id = 0;
    std::vector<int> cpus;
};

/// The host memory topology, as sysfs describes it. Default-constructed =
/// the degraded single-node view (what FREQ_NUMA=OFF and non-Linux get).
struct topology {
    std::vector<topology_node> nodes;
    /// Transparent huge pages available (enabled != "never").
    bool thp_available = false;
    /// Size of the default explicit-hugepage pool, 0 when none configured.
    std::size_t explicit_hugepage_bytes = 0;

    std::size_t num_nodes() const noexcept { return nodes.empty() ? 1 : nodes.size(); }
    bool multi_node() const noexcept { return nodes.size() > 1; }

    /// Round-robin worker->node assignment; -1 when the topology is
    /// degenerate (no parsed nodes, or a single node: pinning would only
    /// constrain the scheduler without changing placement).
    int node_for_worker(std::size_t worker_index) const noexcept {
        if (nodes.size() < 2) {
            return -1;
        }
        return nodes[worker_index % nodes.size()].id;
    }

    const topology_node* find_node(int id) const noexcept {
        for (const auto& n : nodes) {
            if (n.id == id) {
                return &n;
            }
        }
        return nullptr;
    }
};

/// Parses \p sysfs_root ("/sys" on a live host; tests pass a fake tree):
/// node list from <root>/devices/system/node/node*/cpulist, THP state from
/// <root>/kernel/mm/transparent_hugepage/enabled, hugepage pool from
/// <root>/kernel/mm/hugepages/. Unreadable paths yield the degraded view.
topology detect_topology(const std::string& sysfs_root = "/sys");

/// The cached live-host topology (detect_topology("/sys") once per process;
/// the degraded view under FREQ_NUMA_OFF without touching sysfs at all).
const topology& host_topology();

/// Pins the calling thread to \p node's cpulist. Returns true on success;
/// false (and leaves affinity untouched) for node -1, unknown nodes, empty
/// cpulists, failed syscalls, or degraded builds.
bool pin_thread_to_node(const topology& topo, int node) noexcept;

// --- placement hints ---------------------------------------------------------

/// The hint struct threaded through table/shard construction. Deliberately
/// *not* part of sketch_config: placement never affects results, so it must
/// not participate in merge-compatibility checks or travel in envelopes.
struct placement {
    /// Advise MADV_HUGEPAGE on large backing buffers (tables, arena blocks).
    bool hugepages = false;
    /// Preferred NUMA node (-1 = no preference). Informational: first-touch
    /// from a pinned thread is what actually places the pages.
    int node = -1;
};

// --- page-granular buffers ---------------------------------------------------

/// One mmap'd (or heap-fallback) buffer. bytes is the usable size, rounded
/// up to page granularity by page_alloc.
struct page_block {
    void* ptr = nullptr;
    std::size_t bytes = 0;
    bool mapped = false;       ///< mmap backing (else operator new fallback)
    bool huge = false;         ///< explicit MAP_HUGETLB mapping succeeded
    bool thp_advised = false;  ///< MADV_HUGEPAGE applied to the range

    explicit operator bool() const noexcept { return ptr != nullptr; }
};

/// Allocates \p bytes of zero-initialized page-aligned memory. With
/// \p want_hugepages, tries explicit MAP_HUGETLB first (when the host pool
/// is non-empty), then an ordinary mapping with MADV_HUGEPAGE; every
/// failure falls back one step, ending at operator new. Never throws for
/// the mmap paths; the final heap fallback can.
page_block page_alloc(std::size_t bytes, bool want_hugepages);

/// Releases a page_alloc'd block (no-op for empty blocks).
void page_free(page_block& block) noexcept;

/// madvise(MADV_HUGEPAGE) on the page-aligned interior of [p, p+bytes).
/// Returns true when at least one page was advised — false on degraded
/// builds, tiny ranges, or kernels without THP. Safe on any readable range.
bool advise_hugepages(void* p, std::size_t bytes) noexcept;

/// Writes one byte per page so freshly-mapped memory faults in from the
/// calling thread (first-touch NUMA placement). Only meaningful on memory
/// that has not been written yet — it stores zeros.
void first_touch(void* p, std::size_t bytes) noexcept;

// --- bump-pointer arena ------------------------------------------------------

/// Bump-pointer arena over page_alloc'd blocks: O(1) allocate, bulk reset()
/// that keeps the first block hot (steady-state reuse allocates nothing).
/// Move-only; owners that need copies rebuild (spelling_dictionary does).
class arena {
public:
    static constexpr std::size_t default_block_bytes = 64 * 1024;

    arena() = default;
    explicit arena(std::size_t block_bytes, placement hints = {})
        : block_bytes_(block_bytes < 4096 ? 4096 : block_bytes), hints_(hints) {}

    arena(arena&& other) noexcept { swap(other); }
    arena& operator=(arena&& other) noexcept {
        if (this != &other) {
            release();
            swap(other);
        }
        return *this;
    }
    arena(const arena&) = delete;
    arena& operator=(const arena&) = delete;
    ~arena() { release(); }

    /// \p align must be a power of two. Alignment is taken on the absolute
    /// address, not the block offset: the operator-new fallback path hands
    /// out blocks with only default alignment, so offset arithmetic alone
    /// would mis-align on degraded builds.
    void* allocate(std::size_t n, std::size_t align = alignof(std::max_align_t)) {
        FREQ_REQUIRE(align != 0 && (align & (align - 1)) == 0,
                     "arena alignment must be a power of two");
        if (n == 0) {
            n = 1;
        }
        if (blocks_.empty()) {
            grow(n + align);
        }
        std::size_t off = aligned_offset(align);
        if (off + n > blocks_.back().bytes) {
            grow(n + align);
            off = aligned_offset(align);
        }
        char* base = static_cast<char*>(blocks_.back().ptr);
        offset_ = off + n;
        used_ += n;
        return base + off;
    }

    /// Copies \p s into the arena and returns a view of the stored bytes
    /// (valid until reset()/destruction). Empty views need no storage.
    std::string_view store(std::string_view s) {
        if (s.empty()) {
            return std::string_view{};
        }
        char* dst = static_cast<char*>(allocate(s.size(), 1));
        std::memcpy(dst, s.data(), s.size());
        return std::string_view(dst, s.size());
    }

    /// Bulk reset: rewinds to the start of the first block and drops every
    /// later block, so a steady-state fill/reset cycle touches the same hot
    /// pages and performs zero heap allocations.
    void reset() noexcept {
        for (std::size_t i = 1; i < blocks_.size(); ++i) {
            page_free(blocks_[i]);
        }
        if (!blocks_.empty()) {
            blocks_.resize(1);
        }
        offset_ = 0;
        used_ = 0;
        obs::pipeline().mem_arena_resets.add(1);
    }

    /// Drops every block (used by the move/destructor path).
    void release() noexcept {
        for (auto& b : blocks_) {
            page_free(b);
        }
        blocks_.clear();
        offset_ = 0;
        used_ = 0;
    }

    std::size_t bytes_used() const noexcept { return used_; }
    std::size_t bytes_reserved() const noexcept {
        std::size_t total = 0;
        for (const auto& b : blocks_) {
            total += b.bytes;
        }
        return total;
    }
    std::size_t num_blocks() const noexcept { return blocks_.size(); }

    placement hints() const noexcept { return hints_; }
    /// Applies to blocks allocated after the call (existing blocks keep
    /// their backing).
    void set_hints(placement hints) noexcept { hints_ = hints; }

private:
    /// Smallest offset >= offset_ whose *absolute address* in the current
    /// (non-empty) last block is \p align-aligned.
    std::size_t aligned_offset(std::size_t align) const noexcept {
        const auto base = reinterpret_cast<std::uintptr_t>(blocks_.back().ptr);
        const std::uintptr_t aligned =
            (base + offset_ + align - 1) & ~(std::uintptr_t{align} - 1);
        return static_cast<std::size_t>(aligned - base);
    }

    void grow(std::size_t at_least) {
        std::size_t want = block_bytes_;
        // Doubling block growth keeps the block count logarithmic in the
        // arena's high-water mark (prune rebuilds stay O(bytes), not
        // O(bytes * blocks)).
        if (!blocks_.empty()) {
            const std::size_t last = blocks_.back().bytes;
            if (last < (std::size_t{1} << 30)) {
                want = last * 2;
            } else {
                want = last;
            }
        }
        if (want < at_least) {
            want = at_least;
        }
        page_block b = page_alloc(want, hints_.hugepages);
        first_touch(b.ptr, b.bytes);
        obs::pipeline().mem_arena_reserved_bytes.add(b.bytes);
        blocks_.push_back(b);
        offset_ = 0;
    }

    void swap(arena& other) noexcept {
        blocks_.swap(other.blocks_);
        std::swap(offset_, other.offset_);
        std::swap(used_, other.used_);
        std::swap(block_bytes_, other.block_bytes_);
        std::swap(hints_, other.hints_);
    }

    std::vector<page_block> blocks_;
    std::size_t offset_ = 0;  ///< bump offset within the last block
    std::size_t used_ = 0;    ///< bytes handed out since the last reset
    std::size_t block_bytes_ = default_block_bytes;
    placement hints_;
};

/// Applies the hugepage half of \p hints to an already-allocated buffer
/// (vector storage and similar): advises THP over the interior pages and
/// reports the attempt to the freq_mem_* telemetry. The node half of the
/// hint is satisfied by *constructing* on a pinned thread (first-touch),
/// not here.
inline void apply_placement(void* p, std::size_t bytes, const placement& hints) noexcept {
    if (!hints.hugepages || p == nullptr || bytes == 0) {
        return;
    }
    if (advise_hugepages(p, bytes)) {
        obs::pipeline().mem_hugepage_regions.add(1);
    }
}

}  // namespace freq::mem

#endif  // FREQ_COMMON_MEM_H
