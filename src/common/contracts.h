#ifndef FREQ_COMMON_CONTRACTS_H
#define FREQ_COMMON_CONTRACTS_H

/// \file contracts.h
/// Precondition / invariant checking used throughout the library.
///
/// Two levels of checking are provided:
///  * FREQ_REQUIRE   — validates arguments of public API entry points and
///                     throws std::invalid_argument; always enabled.
///  * FREQ_EXPECTS / FREQ_ENSURES — internal invariants, cheap enough to
///                     keep enabled in release builds; violations indicate
///                     a bug inside the library and throw std::logic_error.

#include <stdexcept>
#include <string>

namespace freq::detail {

[[noreturn]] inline void throw_requirement(const char* expr, const char* what) {
    throw std::invalid_argument(std::string("libfreq: requirement failed: ") + what +
                                " (" + expr + ")");
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file, int line) {
    throw std::logic_error(std::string("libfreq: internal invariant violated at ") + file +
                           ":" + std::to_string(line) + ": " + expr);
}

}  // namespace freq::detail

/// Validate a caller-supplied argument; throws std::invalid_argument on failure.
#define FREQ_REQUIRE(cond, what)                              \
    do {                                                      \
        if (!(cond)) {                                        \
            ::freq::detail::throw_requirement(#cond, (what)); \
        }                                                     \
    } while (0)

/// Internal precondition (Expects) — a failure is a library bug.
#define FREQ_EXPECTS(cond)                                                 \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::freq::detail::throw_invariant(#cond, __FILE__, __LINE__);    \
        }                                                                  \
    } while (0)

/// Internal postcondition (Ensures) — a failure is a library bug.
#define FREQ_ENSURES(cond) FREQ_EXPECTS(cond)

#endif  // FREQ_COMMON_CONTRACTS_H
