#ifndef FREQ_COMMON_SIMD_H
#define FREQ_COMMON_SIMD_H

/// \file simd.h
/// The freq::simd capability layer: small fixed-width group primitives the
/// counter table's hot paths (table/counter_table.h) are written against,
/// with the best available implementation selected at *compile time*:
///
///   AVX2   (x86, -mavx2 / -march=native)  4 x 64-bit lanes per op
///   SSE2   (x86-64 baseline)              2 x 64-bit lanes, issued twice
///   NEON   (aarch64)                      2 x 64-bit lanes, issued twice
///   scalar (anything else, or -DFREQ_SIMD_OFF)
///
/// Every primitive operates on a GROUP of 4 consecutive lanes and reports
/// per-lane results as a bitmask (bit i <-> lane i), so the table's probe
/// loops are written once against the group API and are bit-identical
/// across implementations — a property tests/test_simd_parity.cpp checks by
/// running the scalar reference (always compiled, namespace simd::scalar)
/// against the dispatched implementation on the same inputs.
///
/// -DFREQ_SIMD_OFF (CMake option, CI matrix leg) removes every intrinsic
/// from the build: simd::compiled becomes false, the dispatched functions
/// collapse to the scalar reference, and counter_table's default template
/// argument disables the group-probe layout entirely — the configuration a
/// machine without any of the above ISAs builds.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if !defined(FREQ_SIMD_OFF)
#if defined(__AVX2__)
#define FREQ_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define FREQ_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define FREQ_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !FREQ_SIMD_OFF

namespace freq::simd {

/// Lanes per group op. The table's probe loops advance in strides of this.
inline constexpr std::size_t group = 4;

/// True when an ISA-specific implementation is compiled in. With this false
/// the dispatched functions below are the scalar reference — same results,
/// no intrinsics.
#if defined(FREQ_SIMD_AVX2) || defined(FREQ_SIMD_SSE2) || defined(FREQ_SIMD_NEON)
inline constexpr bool compiled = true;
#else
inline constexpr bool compiled = false;
#endif

/// Default for counter_table's UseSimd parameter: use the group layout
/// exactly when an ISA backs it (the group layout with scalar primitives is
/// correct but not faster than the plain probe loop).
inline constexpr bool enabled = compiled;

constexpr const char* isa_name() noexcept {
#if defined(FREQ_SIMD_AVX2)
    return "avx2";
#elif defined(FREQ_SIMD_SSE2)
    return "sse2";
#elif defined(FREQ_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/// Weight types the vectorized decrement sweep handles; anything else takes
/// the scalar reference lane-by-lane.
template <typename W>
inline constexpr bool sweepable_weight =
    std::is_arithmetic_v<W> && sizeof(W) == 8;

// --- scalar reference (always compiled; the parity oracle) -------------------

namespace scalar {

/// Bit i set iff states[i] == 0 (exact, all four lanes).
inline std::uint32_t empty_mask4(const std::uint16_t* states) noexcept {
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < group; ++i) {
        m |= static_cast<std::uint32_t>(states[i] == 0) << i;
    }
    return m;
}

/// Bit i set iff keys[i] == needle. Comparison is bitwise over the 8-byte
/// representation, so it serves any 8-byte integral key type.
template <typename K>
inline std::uint32_t match_mask4(const K* keys, K needle) noexcept {
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < group; ++i) {
        m |= static_cast<std::uint32_t>(keys[i] == needle) << i;
    }
    return m;
}

/// Bit i set iff values[i] <= amount.
template <typename W>
inline std::uint32_t le_mask4(const W* values, W amount) noexcept {
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < group; ++i) {
        m |= static_cast<std::uint32_t>(values[i] <= amount) << i;
    }
    return m;
}

/// values[i] -= amount for all four lanes.
template <typename W>
inline void sub4(W* values, W amount) noexcept {
    for (std::size_t i = 0; i < group; ++i) {
        values[i] -= amount;
    }
}

}  // namespace scalar

// --- dispatched implementations ----------------------------------------------

#if defined(FREQ_SIMD_AVX2)

inline std::uint32_t empty_mask4(const std::uint16_t* states) noexcept {
    // 4 x u16 fit one 64-bit lane; SSE compare-eq-16 then compress the
    // 2-bits-per-lane byte mask down to 1 bit per lane.
    const __m128i s = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(states));
    const __m128i eq = _mm_cmpeq_epi16(s, _mm_setzero_si128());
    const std::uint32_t bytes = static_cast<std::uint32_t>(_mm_movemask_epi8(eq));
    return ((bytes >> 0) & 1u) | ((bytes >> 1) & 2u) | ((bytes >> 2) & 4u) |
           ((bytes >> 3) & 8u);
}

template <typename K>
inline std::uint32_t match_mask4(const K* keys, K needle) noexcept {
    static_assert(sizeof(K) == 8, "group key compare is for 8-byte keys");
    std::uint64_t bits;
    std::memcpy(&bits, &needle, sizeof(bits));
    const __m256i k = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
    const __m256i eq = _mm256_cmpeq_epi64(k, _mm256_set1_epi64x(
                                                 static_cast<long long>(bits)));
    return static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
}

template <typename W>
inline std::uint32_t le_mask4(const W* values, W amount) noexcept {
    if constexpr (std::is_same_v<W, double>) {
        const __m256d v = _mm256_loadu_pd(values);
        const __m256d le = _mm256_cmp_pd(v, _mm256_set1_pd(amount), _CMP_LE_OQ);
        return static_cast<std::uint32_t>(_mm256_movemask_pd(le));
    } else if constexpr (std::is_integral_v<W> && sizeof(W) == 8) {
        // v <= a  <=>  !(v > a); unsigned compares flip the sign bit first
        // so the signed cmpgt orders them correctly.
        __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values));
        __m256i a = _mm256_set1_epi64x(static_cast<long long>(amount));
        if constexpr (std::is_unsigned_v<W>) {
            const __m256i flip = _mm256_set1_epi64x(
                static_cast<long long>(0x8000'0000'0000'0000ULL));
            v = _mm256_xor_si256(v, flip);
            a = _mm256_xor_si256(a, flip);
        }
        const __m256i gt = _mm256_cmpgt_epi64(v, a);
        return static_cast<std::uint32_t>(
                   _mm256_movemask_pd(_mm256_castsi256_pd(gt))) ^
               0xFu;
    } else {
        return scalar::le_mask4(values, amount);
    }
}

template <typename W>
inline void sub4(W* values, W amount) noexcept {
    if constexpr (std::is_same_v<W, double>) {
        _mm256_storeu_pd(values,
                         _mm256_sub_pd(_mm256_loadu_pd(values), _mm256_set1_pd(amount)));
    } else if constexpr (std::is_integral_v<W> && sizeof(W) == 8) {
        __m256i* p = reinterpret_cast<__m256i*>(values);
        _mm256_storeu_si256(
            p, _mm256_sub_epi64(_mm256_loadu_si256(p),
                                _mm256_set1_epi64x(static_cast<long long>(amount))));
    } else {
        scalar::sub4(values, amount);
    }
}

#elif defined(FREQ_SIMD_SSE2)

inline std::uint32_t empty_mask4(const std::uint16_t* states) noexcept {
    const __m128i s = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(states));
    const __m128i eq = _mm_cmpeq_epi16(s, _mm_setzero_si128());
    const std::uint32_t bytes = static_cast<std::uint32_t>(_mm_movemask_epi8(eq));
    return ((bytes >> 0) & 1u) | ((bytes >> 1) & 2u) | ((bytes >> 2) & 4u) |
           ((bytes >> 3) & 8u);
}

namespace detail {
/// 2-lane 64-bit equality via paired 32-bit compares (SSE2 has no
/// cmpeq_epi64): a lane matches iff both halves match.
inline std::uint32_t match_mask2(const __m128i v, const __m128i needle) noexcept {
    const __m128i eq32 = _mm_cmpeq_epi32(v, needle);
    const __m128i eq64 =
        _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    return static_cast<std::uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(eq64)));
}

/// 2-lane signed 64-bit x > y without pcmpgtq (SSE4.2+): the high dwords
/// decide, unless they are equal, in which case the sign of the exact
/// 64-bit difference y - x does (high halves equal means the difference
/// fits and its sign is the unsigned low-half comparison). Only each
/// lane's high dword carries the verdict, so broadcast it across the lane
/// and read the two sign bits with the double movemask.
inline std::uint32_t gt_mask2_epi64(const __m128i x, const __m128i y) noexcept {
    __m128i r = _mm_and_si128(_mm_cmpeq_epi32(x, y), _mm_sub_epi64(y, x));
    r = _mm_or_si128(r, _mm_cmpgt_epi32(x, y));
    r = _mm_shuffle_epi32(r, _MM_SHUFFLE(3, 3, 1, 1));
    return static_cast<std::uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(r)));
}
}  // namespace detail

template <typename K>
inline std::uint32_t match_mask4(const K* keys, K needle) noexcept {
    static_assert(sizeof(K) == 8, "group key compare is for 8-byte keys");
    std::uint64_t bits;
    std::memcpy(&bits, &needle, sizeof(bits));
    const __m128i n = _mm_set1_epi64x(static_cast<long long>(bits));
    const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
    const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + 2));
    return detail::match_mask2(lo, n) | (detail::match_mask2(hi, n) << 2);
}

template <typename W>
inline std::uint32_t le_mask4(const W* values, W amount) noexcept {
    if constexpr (std::is_same_v<W, double>) {
        const __m128d a = _mm_set1_pd(amount);
        const std::uint32_t lo = static_cast<std::uint32_t>(
            _mm_movemask_pd(_mm_cmple_pd(_mm_loadu_pd(values), a)));
        const std::uint32_t hi = static_cast<std::uint32_t>(
            _mm_movemask_pd(_mm_cmple_pd(_mm_loadu_pd(values + 2), a)));
        return lo | (hi << 2);
    } else if constexpr (std::is_integral_v<W> && sizeof(W) == 8) {
        // v <= a  <=>  !(v > a); unsigned compares flip the sign bit first
        // so the emulated signed cmpgt orders them correctly.
        __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(values));
        __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + 2));
        __m128i a = _mm_set1_epi64x(static_cast<long long>(amount));
        if constexpr (std::is_unsigned_v<W>) {
            const __m128i flip = _mm_set1_epi64x(
                static_cast<long long>(0x8000'0000'0000'0000ULL));
            lo = _mm_xor_si128(lo, flip);
            hi = _mm_xor_si128(hi, flip);
            a = _mm_xor_si128(a, flip);
        }
        return (detail::gt_mask2_epi64(lo, a) |
                (detail::gt_mask2_epi64(hi, a) << 2)) ^
               0xFu;
    } else {
        return scalar::le_mask4(values, amount);
    }
}

template <typename W>
inline void sub4(W* values, W amount) noexcept {
    if constexpr (std::is_same_v<W, double>) {
        const __m128d a = _mm_set1_pd(amount);
        _mm_storeu_pd(values, _mm_sub_pd(_mm_loadu_pd(values), a));
        _mm_storeu_pd(values + 2, _mm_sub_pd(_mm_loadu_pd(values + 2), a));
    } else if constexpr (std::is_integral_v<W> && sizeof(W) == 8) {
        const __m128i a = _mm_set1_epi64x(static_cast<long long>(amount));
        __m128i* p = reinterpret_cast<__m128i*>(values);
        _mm_storeu_si128(p, _mm_sub_epi64(_mm_loadu_si128(p), a));
        _mm_storeu_si128(p + 1, _mm_sub_epi64(_mm_loadu_si128(p + 1), a));
    } else {
        scalar::sub4(values, amount);
    }
}

#elif defined(FREQ_SIMD_NEON)

inline std::uint32_t empty_mask4(const std::uint16_t* states) noexcept {
    const uint16x4_t s = vld1_u16(states);
    const uint16x4_t eq = vceq_u16(s, vdup_n_u16(0));
    const std::uint64_t lanes = vget_lane_u64(vreinterpret_u64_u16(eq), 0);
    return static_cast<std::uint32_t>(((lanes >> 0) & 1u) | ((lanes >> 15) & 2u) |
                                      ((lanes >> 30) & 4u) | ((lanes >> 45) & 8u));
}

template <typename K>
inline std::uint32_t match_mask4(const K* keys, K needle) noexcept {
    static_assert(sizeof(K) == 8, "group key compare is for 8-byte keys");
    std::uint64_t bits;
    std::memcpy(&bits, &needle, sizeof(bits));
    const std::uint64_t* k = reinterpret_cast<const std::uint64_t*>(keys);
    const uint64x2_t n = vdupq_n_u64(bits);
    const uint64x2_t lo = vceqq_u64(vld1q_u64(k), n);
    const uint64x2_t hi = vceqq_u64(vld1q_u64(k + 2), n);
    return static_cast<std::uint32_t>(
        (vgetq_lane_u64(lo, 0) & 1u) | ((vgetq_lane_u64(lo, 1) & 1u) << 1) |
        ((vgetq_lane_u64(hi, 0) & 1u) << 2) | ((vgetq_lane_u64(hi, 1) & 1u) << 3));
}

template <typename W>
inline std::uint32_t le_mask4(const W* values, W amount) noexcept {
    if constexpr (std::is_same_v<W, double>) {
        const float64x2_t a = vdupq_n_f64(amount);
        const uint64x2_t lo = vcleq_f64(vld1q_f64(values), a);
        const uint64x2_t hi = vcleq_f64(vld1q_f64(values + 2), a);
        return static_cast<std::uint32_t>(
            (vgetq_lane_u64(lo, 0) & 1u) | ((vgetq_lane_u64(lo, 1) & 1u) << 1) |
            ((vgetq_lane_u64(hi, 0) & 1u) << 2) |
            ((vgetq_lane_u64(hi, 1) & 1u) << 3));
    } else if constexpr (std::is_unsigned_v<W> && sizeof(W) == 8) {
        const uint64x2_t a = vdupq_n_u64(amount);
        const uint64x2_t lo = vcleq_u64(vld1q_u64(values), a);
        const uint64x2_t hi = vcleq_u64(vld1q_u64(values + 2), a);
        return static_cast<std::uint32_t>(
            (vgetq_lane_u64(lo, 0) & 1u) | ((vgetq_lane_u64(lo, 1) & 1u) << 1) |
            ((vgetq_lane_u64(hi, 0) & 1u) << 2) |
            ((vgetq_lane_u64(hi, 1) & 1u) << 3));
    } else if constexpr (std::is_signed_v<W> && std::is_integral_v<W> &&
                         sizeof(W) == 8) {
        const int64x2_t a = vdupq_n_s64(amount);
        const uint64x2_t lo = vcleq_s64(vld1q_s64(values), a);
        const uint64x2_t hi = vcleq_s64(vld1q_s64(values + 2), a);
        return static_cast<std::uint32_t>(
            (vgetq_lane_u64(lo, 0) & 1u) | ((vgetq_lane_u64(lo, 1) & 1u) << 1) |
            ((vgetq_lane_u64(hi, 0) & 1u) << 2) |
            ((vgetq_lane_u64(hi, 1) & 1u) << 3));
    } else {
        return scalar::le_mask4(values, amount);
    }
}

template <typename W>
inline void sub4(W* values, W amount) noexcept {
    if constexpr (std::is_same_v<W, double>) {
        const float64x2_t a = vdupq_n_f64(amount);
        vst1q_f64(values, vsubq_f64(vld1q_f64(values), a));
        vst1q_f64(values + 2, vsubq_f64(vld1q_f64(values + 2), a));
    } else if constexpr (std::is_unsigned_v<W> && sizeof(W) == 8) {
        const uint64x2_t a = vdupq_n_u64(amount);
        vst1q_u64(values, vsubq_u64(vld1q_u64(values), a));
        vst1q_u64(values + 2, vsubq_u64(vld1q_u64(values + 2), a));
    } else if constexpr (std::is_signed_v<W> && std::is_integral_v<W> &&
                         sizeof(W) == 8) {
        const int64x2_t a = vdupq_n_s64(amount);
        vst1q_s64(values, vsubq_s64(vld1q_s64(values), a));
        vst1q_s64(values + 2, vsubq_s64(vld1q_s64(values + 2), a));
    } else {
        scalar::sub4(values, amount);
    }
}

#else  // scalar build: the dispatched names ARE the reference.

using scalar::empty_mask4;
using scalar::match_mask4;
using scalar::le_mask4;
using scalar::sub4;

#endif

}  // namespace freq::simd

#endif  // FREQ_COMMON_SIMD_H
