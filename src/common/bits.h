#ifndef FREQ_COMMON_BITS_H
#define FREQ_COMMON_BITS_H

/// \file bits.h
/// Small bit-manipulation helpers shared by the hash table and hashing code.

#include <bit>
#include <cstdint>

namespace freq {

/// True when \p x is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t x) noexcept {
    return x != 0 && (x & (x - 1)) == 0;
}

/// Smallest power of two that is >= \p x (x = 0 maps to 1).
constexpr std::uint64_t ceil_pow2(std::uint64_t x) noexcept {
    return std::bit_ceil(x == 0 ? std::uint64_t{1} : x);
}

/// Floor of log2(x). Precondition: x > 0.
constexpr unsigned floor_log2(std::uint64_t x) noexcept {
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

}  // namespace freq

#endif  // FREQ_COMMON_BITS_H
