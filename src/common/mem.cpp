/// \file mem.cpp
/// Out-of-line half of common/mem.h: the sysfs topology parse and the
/// mmap/madvise/sched_setaffinity syscall wrappers. Everything here honors
/// the degradation contract — any failure returns the documented fallback
/// instead of surfacing an error, because placement is an optimization,
/// never a correctness requirement.

#include "common/mem.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#if defined(__linux__) && !defined(FREQ_NUMA_OFF)
#define FREQ_MEM_LINUX 1
#include <sched.h>
#include <sys/mman.h>
#include <unistd.h>
#else
#define FREQ_MEM_LINUX 0
#endif

namespace freq::mem {

namespace {

/// First line of \p path, or empty when unreadable.
std::string read_line(const std::string& path) {
    std::ifstream in(path);
    std::string line;
    if (!in || !std::getline(in, line)) {
        return {};
    }
    return line;
}

/// Parses a kernel cpulist ("0-3,8,10-11") into explicit CPU ids.
std::vector<int> parse_cpulist(const std::string& list) {
    std::vector<int> cpus;
    std::stringstream ss(list);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        if (tok.empty()) {
            continue;
        }
        const std::size_t dash = tok.find('-');
        char* end = nullptr;
        if (dash == std::string::npos) {
            const long cpu = std::strtol(tok.c_str(), &end, 10);
            if (end != tok.c_str() && cpu >= 0) {
                cpus.push_back(static_cast<int>(cpu));
            }
        } else {
            const long lo = std::strtol(tok.c_str(), &end, 10);
            const long hi = std::strtol(tok.c_str() + dash + 1, &end, 10);
            for (long cpu = lo; cpu >= 0 && cpu <= hi; ++cpu) {
                cpus.push_back(static_cast<int>(cpu));
            }
        }
    }
    return cpus;
}

/// THP "enabled" files look like "always [madvise] never" — available
/// unless the bracket sits on "never".
bool thp_from_enabled_line(const std::string& line) {
    if (line.empty()) {
        return false;
    }
    const std::size_t open = line.find('[');
    const std::size_t close = line.find(']');
    if (open == std::string::npos || close == std::string::npos || close <= open) {
        return false;
    }
    return line.substr(open + 1, close - open - 1) != "never";
}

}  // namespace

topology detect_topology(const std::string& sysfs_root) {
    topology topo;
    if constexpr (!numa_compiled) {
        return topo;  // degraded single-node view, no filesystem access
    }
    // Nodes: <root>/devices/system/node/nodeN/cpulist. Probe ids densely
    // from 0; sysfs numbers nodes contiguously on every kernel we target,
    // and a fake test tree can do the same.
    for (int id = 0;; ++id) {
        const std::string cpulist = read_line(
            sysfs_root + "/devices/system/node/node" + std::to_string(id) + "/cpulist");
        if (cpulist.empty()) {
            break;
        }
        topology_node node;
        node.id = id;
        node.cpus = parse_cpulist(cpulist);
        topo.nodes.push_back(std::move(node));
    }
    topo.thp_available = thp_from_enabled_line(
        read_line(sysfs_root + "/kernel/mm/transparent_hugepage/enabled"));
    // Explicit hugepage pool: the default size is the one the kernel
    // advertises under hugepages-<kB>kB with a non-zero nr_hugepages.
    for (const std::size_t kb : {2048u, 1048576u}) {
        const std::string nr = read_line(sysfs_root + "/kernel/mm/hugepages/hugepages-" +
                                         std::to_string(kb) + "kB/nr_hugepages");
        if (!nr.empty() && std::strtoull(nr.c_str(), nullptr, 10) > 0) {
            topo.explicit_hugepage_bytes = kb * 1024;
            break;
        }
    }
    return topo;
}

const topology& host_topology() {
    static const topology topo = detect_topology("/sys");
    return topo;
}

bool pin_thread_to_node([[maybe_unused]] const topology& topo,
                        [[maybe_unused]] int node) noexcept {
#if FREQ_MEM_LINUX
    if (node < 0) {
        return false;
    }
    const topology_node* n = topo.find_node(node);
    if (n == nullptr || n->cpus.empty()) {
        return false;
    }
    cpu_set_t set;
    CPU_ZERO(&set);
    bool any = false;
    for (const int cpu : n->cpus) {
        if (cpu >= 0 && cpu < CPU_SETSIZE) {
            CPU_SET(cpu, &set);
            any = true;
        }
    }
    if (!any) {
        return false;
    }
    return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    return false;
#endif
}

bool advise_hugepages([[maybe_unused]] void* p,
                      [[maybe_unused]] std::size_t bytes) noexcept {
#if FREQ_MEM_LINUX && defined(MADV_HUGEPAGE)
    const std::size_t page = 4096;
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t lo = (addr + page - 1) & ~(page - 1);
    const std::uintptr_t hi = (addr + bytes) & ~(page - 1);
    if (hi <= lo) {
        return false;  // range too small to contain a full page
    }
    return madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE) == 0;
#else
    return false;
#endif
}

void first_touch(void* p, std::size_t bytes) noexcept {
    if (p == nullptr) {
        return;
    }
    auto* bytes_ptr = static_cast<volatile char*>(p);
    for (std::size_t off = 0; off < bytes; off += 4096) {
        bytes_ptr[off] = 0;
    }
}

page_block page_alloc(std::size_t bytes, [[maybe_unused]] bool want_hugepages) {
    page_block block;
    if (bytes == 0) {
        return block;
    }
#if FREQ_MEM_LINUX
    const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    const std::size_t rounded = (bytes + page - 1) & ~(page - 1);
#if defined(MAP_HUGETLB)
    if (want_hugepages && host_topology().explicit_hugepage_bytes != 0) {
        const std::size_t huge = host_topology().explicit_hugepage_bytes;
        const std::size_t huge_rounded = (bytes + huge - 1) & ~(huge - 1);
        void* p = mmap(nullptr, huge_rounded, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
        if (p != MAP_FAILED) {
            block.ptr = p;
            block.bytes = huge_rounded;
            block.mapped = true;
            block.huge = true;
            obs::pipeline().mem_hugepage_regions.add(1);
            return block;
        }
        // Pool exhausted or permission denied: fall through to THP advice.
    }
#endif
    void* p = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
        block.ptr = p;
        block.bytes = rounded;
        block.mapped = true;
        if (want_hugepages && advise_hugepages(p, rounded)) {
            block.thp_advised = true;
            obs::pipeline().mem_hugepage_regions.add(1);
        }
        return block;
    }
#endif
    // Final fallback: ordinary heap memory, zeroed to match the mmap paths.
    block.ptr = ::operator new(bytes);
    block.bytes = bytes;
    block.mapped = false;
    std::memset(block.ptr, 0, bytes);
    return block;
}

void page_free(page_block& block) noexcept {
    if (block.ptr == nullptr) {
        return;
    }
#if FREQ_MEM_LINUX
    if (block.mapped) {
        munmap(block.ptr, block.bytes);
        block = page_block{};
        return;
    }
#endif
    ::operator delete(block.ptr);
    block = page_block{};
}

}  // namespace freq::mem
