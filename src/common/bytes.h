#ifndef FREQ_COMMON_BYTES_H
#define FREQ_COMMON_BYTES_H

/// \file bytes.h
/// Endian-stable (little-endian on the wire) byte buffer reader/writer used
/// by the sketch serialization code and the binary trace format.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/contracts.h"

namespace freq {

/// Append-only byte sink producing a portable little-endian encoding.
class byte_writer {
public:
    byte_writer() = default;

    /// Reserve capacity up front to avoid reallocation in hot serialization loops.
    void reserve(std::size_t n) { buf_.reserve(n); }

    void put_u8(std::uint8_t v) { buf_.push_back(v); }

    void put_u16(std::uint16_t v) { put_le(v); }
    void put_u32(std::uint32_t v) { put_le(v); }
    void put_u64(std::uint64_t v) { put_le(v); }

    void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

    /// Doubles travel as their IEEE-754 bit pattern.
    void put_f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        put_u64(bits);
    }

    void put_bytes(const void* data, std::size_t n) {
        const auto* p = static_cast<const std::uint8_t*>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
    std::vector<std::uint8_t> take() && { return std::move(buf_); }
    std::size_t size() const noexcept { return buf_.size(); }

private:
    template <typename T>
    void put_le(T v) {
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a byte span written by byte_writer.
/// Throws std::out_of_range on truncated input — malformed sketches must
/// never crash the process.
class byte_reader {
public:
    byte_reader(const std::uint8_t* data, std::size_t size) noexcept
        : data_(data), size_(size) {}

    explicit byte_reader(const std::vector<std::uint8_t>& v) noexcept
        : byte_reader(v.data(), v.size()) {}

    std::uint8_t get_u8() { return get_le<std::uint8_t>(); }
    std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
    std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
    std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
    std::int64_t get_i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }

    double get_f64() {
        const std::uint64_t bits = get_u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void get_bytes(void* out, std::size_t n) {
        check(n);
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    std::size_t remaining() const noexcept { return size_ - pos_; }
    std::size_t position() const noexcept { return pos_; }

private:
    void check(std::size_t n) const {
        if (size_ - pos_ < n) {
            throw std::out_of_range("libfreq: truncated input: need " + std::to_string(n) +
                                    " bytes, have " + std::to_string(size_ - pos_));
        }
    }

    template <typename T>
    T get_le() {
        check(sizeof(T));
        T v{};
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
        }
        pos_ += sizeof(T);
        return v;
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

}  // namespace freq

#endif  // FREQ_COMMON_BYTES_H
