#ifndef FREQ_METRICS_SPACE_H
#define FREQ_METRICS_SPACE_H

/// \file space.h
/// Space-budget helpers for the equal-space comparisons of §4.3: given a
/// byte budget, find the largest number of counters an algorithm can afford
/// under its own storage model (each algorithm exposes a static bytes_for(k)).

#include <cstddef>
#include <cstdint>

#include "common/contracts.h"

namespace freq {

/// Largest k with bytes_for(k) <= budget_bytes. \p bytes_for must be
/// monotone non-decreasing in k (true of every algorithm here: storage
/// grows with capacity).
template <typename BytesFn>
std::uint32_t max_counters_within(std::size_t budget_bytes, BytesFn&& bytes_for) {
    FREQ_REQUIRE(bytes_for(1u) <= budget_bytes,
                 "space budget cannot accommodate even one counter");
    std::uint32_t lo = 1;          // feasible
    std::uint32_t hi = 1u << 28;   // counter_table's capacity ceiling
    while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo + 1) / 2;
        if (bytes_for(mid) <= budget_bytes) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    return lo;
}

}  // namespace freq

#endif  // FREQ_METRICS_SPACE_H
