#ifndef FREQ_METRICS_ERROR_H
#define FREQ_METRICS_ERROR_H

/// \file error.h
/// Accuracy evaluation against exact ground truth — the measurements behind
/// Fig. 2 (maximum estimate error) and Fig. 3 (error vs decrement quantile),
/// plus heavy-hitter precision/recall for the (φ, ε) guarantee of §1.2.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "stream/exact_counter.h"

namespace freq {

struct error_report {
    double max_error = 0.0;        ///< max over all items of |f̂_i − f_i| (Fig. 2's metric)
    double mean_error = 0.0;       ///< mean absolute error over distinct items
    double max_overestimate = 0.0;   ///< max of f̂_i − f_i
    double max_underestimate = 0.0;  ///< max of f_i − f̂_i
    std::size_t items_evaluated = 0;
};

/// Evaluates \p sketch's estimate() against exact counts over every distinct
/// item of the stream. Any algorithm exposing `estimate(id)` works: the
/// sketches, the baselines, and the exact counter itself.
template <typename Sketch, typename K, typename W>
error_report evaluate_errors(const Sketch& sketch, const exact_counter<K, W>& exact) {
    error_report r;
    double total = 0.0;
    for (const auto& [id, f] : exact.counts()) {
        const double est = static_cast<double>(sketch.estimate(id));
        const double truth = static_cast<double>(f);
        const double err = est - truth;
        r.max_error = std::max(r.max_error, std::abs(err));
        r.max_overestimate = std::max(r.max_overestimate, err);
        r.max_underestimate = std::max(r.max_underestimate, -err);
        total += std::abs(err);
        ++r.items_evaluated;
    }
    if (r.items_evaluated > 0) {
        r.mean_error = total / static_cast<double>(r.items_evaluated);
    }
    return r;
}

struct hh_report {
    double precision = 1.0;  ///< |returned ∩ true| / |returned|
    double recall = 1.0;     ///< |returned ∩ true| / |true|
    std::size_t num_true = 0;
    std::size_t num_returned = 0;
};

/// Precision/recall of a returned heavy-hitter set against the true
/// φ-heavy items (f_i ≥ phi·N).
template <typename K, typename W>
hh_report evaluate_heavy_hitters(const std::vector<K>& returned,
                                 const exact_counter<K, W>& exact, double phi) {
    // Compare in double so integer truncation of phi*N cannot admit items
    // just below the threshold.
    const double threshold = phi * static_cast<double>(exact.total_weight());
    std::unordered_set<K> truth;
    for (const auto& [id, f] : exact.counts()) {
        if (static_cast<double>(f) >= threshold) {
            truth.insert(id);
        }
    }
    hh_report r;
    r.num_true = truth.size();
    r.num_returned = returned.size();
    std::size_t hit = 0;
    for (const K id : returned) {
        hit += truth.count(id);
    }
    r.precision = returned.empty() ? 1.0
                                   : static_cast<double>(hit) /
                                         static_cast<double>(returned.size());
    r.recall = truth.empty() ? 1.0
                             : static_cast<double>(hit) / static_cast<double>(truth.size());
    return r;
}

}  // namespace freq

#endif  // FREQ_METRICS_ERROR_H
