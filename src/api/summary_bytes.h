#ifndef FREQ_API_SUMMARY_BYTES_H
#define FREQ_API_SUMMARY_BYTES_H

/// \file summary_bytes.h
/// The unified serde envelope: one versioned, policy-tagged wire format that
/// round-trips *any* summary instantiation — plain, time-fading or
/// sliding-window lifetime; u64 or text keys; table- or map-backed core;
/// standalone sketch or engine snapshot — replacing the per-class ad-hoc
/// `serialize()` formats. A 48-byte self-describing header carries the full
/// summary_descriptor, so a receiver can route bytes to the right
/// instantiation (or reject them) before touching the body.
///
/// Wire layout (little-endian, via common/bytes.h):
///
///   header (48 B): magic 'FQEN' u32 | version u8 | key_kind u8 |
///     weight_kind u8 | lifetime u8 | backend u8 | minor_version u8 |
///     algorithm u8 | reserved u8 | max_counters u32 | sample_size u32 |
///     decrement_quantile f64 | seed u64 | decay f64 | window_epochs u32
///   policy state: fading → now u64, inflation f64; windowed → now u64
///   body (algo::paper):
///     non-windowed → offset W | total W | n u32 | n × (key u64, counter W)
///     windowed     → epoch_count u32 | per live non-empty epoch:
///                    abs_epoch u64, then the non-windowed body
///   text keys append the spelling dictionary (minor ≥ 1):
///                    segment_count u32 | per segment:
///                    dict_n u32 | dict_n × (fp u64, len u32, bytes)
///   body (baseline algorithms; see backend_summaries.h):
///     count_min    → [fading clock] | total W | width·depth cells W |
///                    cand_n u32 | cand_n × candidate id u64
///     count_sketch → total u64 | width·depth cells i64 (two's complement) |
///                    cand_n u32 | cand_n × candidate id u64
///     space_saving → [fading clock] | total W | n u32 |
///                    n × (id u64, count W, error W)
///
/// The minor version (formerly the first reserved byte, so minor-0 images
/// are exactly the pre-bump format) versions the layout twice over: minor
/// 0 carried a single unframed text dictionary; minor 1 frames it into
/// *segments* so a sharded engine's per-shard dictionary slices can ship
/// without being unioned first (envelope_save_sharded_text); minor 2 turns
/// header byte 10 into the algorithm tag (algo::paper = 0, the old
/// reserved value, so minor-≤1 images restore as the paper sketch).
/// Readers union all segments (first spelling wins) and re-apply the prune
/// discipline; minor-0/1 images remain restorable.
///
/// Canonical encoding: counter rows are sorted by key and dictionary
/// entries by fingerprint, so save → restore → save is byte-identical (the
/// hash table's slot order, which depends on insertion history, never
/// leaks into the bytes). envelope_save always writes the canonical
/// single-segment union — the multi-segment form is an optimization for
/// shippers that skip the union, and restoring it normalizes back to the
/// canonical image. Weights travel as u64 or IEEE-754 f64 bits per
/// weight_kind. Decoding validates every field before the matching
/// allocation — the §3 merging architecture ships summaries between
/// machines, so envelope bytes are untrusted input.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "baselines/backend_summaries.h"
#include "common/bytes.h"
#include "common/contracts.h"
#include "core/basic_frequent_items.h"
#include "core/fingerprint_frequent_items.h"
#include "core/frequent_items_sketch.h"
#include "core/generic_frequent_items.h"
#include "core/lifetime_policy.h"
#include "core/sketch_config.h"
#include "core/spelling_dictionary.h"
#include "core/string_frequent_items.h"

namespace freq {

// --- the envelope's runtime type tags ----------------------------------------

enum class key_kind : std::uint8_t {
    u64 = 0,   ///< 64-bit integer identifiers (the fast path)
    text = 1,  ///< strings, fingerprinted to 64 bits + spelling dictionary
};

enum class weight_kind : std::uint8_t {
    counts = 0,  ///< std::uint64_t weights (exact integer counts)
    real = 1,    ///< double weights (tf-idf style real values; fading)
};

enum class lifetime_kind : std::uint8_t {
    plain = 0,     ///< weight never ages (the paper's sketch)
    fading = 1,    ///< exponential time-fading via forward decay
    windowed = 2,  ///< sliding window of the last window_epochs ticks
};

enum class backend_kind : std::uint8_t {
    table = 0,  ///< parallel-array counter_table, sampled-quantile decrement
    map = 1,    ///< node-based map, exact-median decrement (Theorem 2 bound)
};

/// The preferred name for the counter-storage axis: builder::storage() takes
/// it, and it frees the word "backend" for the *algorithm* axis below.
using storage = backend_kind;

/// The algorithm axis of the façade: which sketch family maintains the
/// counters. paper is the counter-based sketch this repo reproduces; the
/// other three are the §1.3 baselines promoted to runtime-selectable
/// backends (src/baselines/backend_summaries.h). Wire tag: header byte 10
/// (reserved-zero before minor 2, so legacy images decode as paper).
enum class algo : std::uint8_t {
    paper = 0,         ///< Algorithm 4 counter-based sketch (the default)
    count_min = 1,     ///< Count-Min [CM05]: point-query sketch, no lower bounds
    count_sketch = 2,  ///< Count sketch [CCF02]: unbiased median-of-rows estimates
    space_saving = 3,  ///< Space Saving [MAE05]: exact top-k order, O(log k) updates
};

inline const char* to_string(key_kind k) { return k == key_kind::u64 ? "u64" : "text"; }
inline const char* to_string(weight_kind w) {
    return w == weight_kind::counts ? "counts" : "real";
}
inline const char* to_string(lifetime_kind l) {
    switch (l) {
        case lifetime_kind::plain: return "plain";
        case lifetime_kind::fading: return "fading";
        default: return "windowed";
    }
}
inline const char* to_string(backend_kind b) {
    return b == backend_kind::table ? "table" : "map";
}
inline const char* to_string(algo a) {
    switch (a) {
        case algo::paper: return "paper";
        case algo::count_min: return "count_min";
        case algo::count_sketch: return "count_sketch";
        default: return "space_saving";
    }
}

/// Everything needed to materialize (or reject) a summary instantiation at
/// runtime: the five type tags plus the full sketch_config. Two summaries
/// are merge-compatible exactly when their descriptors compare equal.
struct summary_descriptor {
    key_kind keys = key_kind::u64;
    weight_kind weights = weight_kind::counts;
    lifetime_kind lifetime = lifetime_kind::plain;
    backend_kind backend = backend_kind::table;
    algo algorithm = algo::paper;
    sketch_config sketch{};

    friend bool operator==(const summary_descriptor&, const summary_descriptor&) = default;

    std::string to_string() const {
        return std::string("summary_descriptor(") + freq::to_string(keys) + ", " +
               freq::to_string(weights) + ", " + freq::to_string(lifetime) + ", " +
               freq::to_string(backend) + ", " + freq::to_string(algorithm) +
               ", k=" + std::to_string(sketch.max_counters) + ")";
    }
};

// --- compile-time tags of each summary template ------------------------------

namespace detail {

template <typename W>
constexpr weight_kind weight_kind_of() {
    static_assert(std::is_same_v<W, std::uint64_t> || std::is_same_v<W, double>,
                  "the envelope ships std::uint64_t or double weights only");
    return std::is_same_v<W, double> ? weight_kind::real : weight_kind::counts;
}

template <typename P>
constexpr lifetime_kind lifetime_kind_of() {
    if constexpr (P::windowed) {
        return lifetime_kind::windowed;
    } else if constexpr (P::decaying) {
        return lifetime_kind::fading;
    } else {
        return lifetime_kind::plain;
    }
}

}  // namespace detail

/// Maps a summary type to its envelope tags. Specialized for every summary
/// template the envelope can carry.
template <typename Summary>
struct summary_traits;

template <typename K, typename W, typename P>
struct summary_traits<basic_frequent_items<K, W, P>> {
    static_assert(std::is_same_v<K, std::uint64_t>,
                  "the envelope ships 64-bit keys; reduce wider keys first");
    static constexpr key_kind keys = key_kind::u64;
    static constexpr weight_kind weights = detail::weight_kind_of<W>();
    static constexpr lifetime_kind lifetime = detail::lifetime_kind_of<P>();
    static constexpr backend_kind backend = backend_kind::table;
    static constexpr algo algorithm = algo::paper;
};

template <typename K, typename W>
struct summary_traits<frequent_items_sketch<K, W>>
    : summary_traits<basic_frequent_items<K, W, plain_lifetime>> {};

template <typename W, typename L, typename T, typename D>
struct summary_traits<fingerprint_frequent_items<std::string, W, L, T, D>> {
    static constexpr key_kind keys = key_kind::text;
    static constexpr weight_kind weights = detail::weight_kind_of<W>();
    static constexpr lifetime_kind lifetime = detail::lifetime_kind_of<L>();
    static constexpr backend_kind backend = backend_kind::table;
    static constexpr algo algorithm = algo::paper;
};

template <typename W, typename H, typename E, typename L>
struct summary_traits<generic_frequent_items<std::uint64_t, W, H, E, L>> {
    static constexpr key_kind keys = key_kind::u64;
    static constexpr weight_kind weights = detail::weight_kind_of<W>();
    static constexpr lifetime_kind lifetime = detail::lifetime_kind_of<L>();
    static constexpr backend_kind backend = backend_kind::map;
    static constexpr algo algorithm = algo::paper;
};

// The baseline adapters (src/baselines/backend_summaries.h): u64 keys and
// table-style storage by construction, tagged with their own algorithm.
template <typename W, typename L>
struct summary_traits<count_min_summary<W, L>> {
    static constexpr key_kind keys = key_kind::u64;
    static constexpr weight_kind weights = detail::weight_kind_of<W>();
    static constexpr lifetime_kind lifetime = detail::lifetime_kind_of<L>();
    static constexpr backend_kind backend = backend_kind::table;
    static constexpr algo algorithm = algo::count_min;
};

template <>
struct summary_traits<count_sketch_summary> {
    static constexpr key_kind keys = key_kind::u64;
    static constexpr weight_kind weights = weight_kind::counts;
    static constexpr lifetime_kind lifetime = lifetime_kind::plain;
    static constexpr backend_kind backend = backend_kind::table;
    static constexpr algo algorithm = algo::count_sketch;
};

template <typename W, typename L>
struct summary_traits<space_saving_summary<W, L>> {
    static constexpr key_kind keys = key_kind::u64;
    static constexpr weight_kind weights = detail::weight_kind_of<W>();
    static constexpr lifetime_kind lifetime = detail::lifetime_kind_of<L>();
    static constexpr backend_kind backend = backend_kind::table;
    static constexpr algo algorithm = algo::space_saving;
};

// --- the envelope value type -------------------------------------------------

/// Owning, header-validated envelope bytes. `wrap()` checks the 48-byte
/// header (magic, version, tag ranges, tag cross-consistency) and caches
/// the descriptor; the body is validated by envelope_load / restore_summary
/// when the summary is actually materialized.
class summary_bytes {
public:
    static constexpr std::uint32_t magic = 0x4e455146;  // "FQEN"
    static constexpr std::uint8_t current_version = 1;
    /// Minor format revisions: 1 framed the text dictionary section into
    /// segments, 2 turned header byte 10 (previously reserved-zero) into the
    /// algorithm tag. Each writer emits the *lowest* minor whose layout it
    /// needs — paper/u64 images write 0, paper/text images write 1
    /// (text_dictionary_minor), baseline-algorithm images write 2 — so
    /// paper envelopes stay byte-identical to pre-bump ones and readable by
    /// pre-bump peers in a mixed-version fleet. Readers accept any minor up
    /// to the current one; minor ≤ 1 images decode as algo::paper.
    static constexpr std::uint8_t current_minor_version = 2;
    /// The minor that introduced dictionary-segment framing (what paper
    /// text writers emit).
    static constexpr std::uint8_t text_dictionary_minor = 1;
    static constexpr std::size_t header_size = 48;

    /// Validates the header and takes ownership of \p bytes. Throws
    /// std::invalid_argument / std::out_of_range on malformed headers.
    static summary_bytes wrap(std::vector<std::uint8_t> bytes) {
        byte_reader r(bytes);
        summary_bytes out;
        out.version_ = parse_header(r, out.descriptor_, out.minor_version_);
        out.bytes_ = std::move(bytes);
        return out;
    }

    const std::vector<std::uint8_t>& bytes() const& noexcept { return bytes_; }
    std::vector<std::uint8_t> take() && { return std::move(bytes_); }
    std::size_t size() const noexcept { return bytes_.size(); }

    const summary_descriptor& descriptor() const noexcept { return descriptor_; }
    std::uint8_t version() const noexcept { return version_; }
    std::uint8_t minor_version() const noexcept { return minor_version_; }

    friend bool operator==(const summary_bytes& a, const summary_bytes& b) {
        return a.bytes_ == b.bytes_;
    }

    /// Reads and validates one header from \p r, filling \p d and \p minor.
    /// Returns the format version. Shared by wrap() and the load path so
    /// both enforce identical rules.
    static std::uint8_t parse_header(byte_reader& r, summary_descriptor& d,
                                     std::uint8_t& minor) {
        FREQ_REQUIRE(r.get_u32() == magic, "not a freq summary envelope");
        const std::uint8_t version = r.get_u8();
        FREQ_REQUIRE(version == current_version, "unsupported envelope version");
        const std::uint8_t keys = r.get_u8();
        const std::uint8_t weights = r.get_u8();
        const std::uint8_t lifetime = r.get_u8();
        const std::uint8_t backend = r.get_u8();
        FREQ_REQUIRE(keys <= 1, "envelope key kind out of range");
        FREQ_REQUIRE(weights <= 1, "envelope weight kind out of range");
        FREQ_REQUIRE(lifetime <= 2, "envelope lifetime kind out of range");
        FREQ_REQUIRE(backend <= 1, "envelope backend kind out of range");
        // Minor revisions change the body layout, so an unknown minor
        // cannot be skipped over — reject it.
        minor = r.get_u8();
        FREQ_REQUIRE(minor <= current_minor_version, "unsupported envelope minor version");
        // Byte 10: the algorithm tag (minor ≥ 2). It was a reserved-zero
        // byte before, so legacy images decode as algo::paper and a nonzero
        // value in a minor-≤1 image is still the old "reserved bytes must
        // be zero" error, not a silent reinterpretation.
        const std::uint8_t algorithm = r.get_u8();
        if (minor < 2) {
            FREQ_REQUIRE(algorithm == 0, "envelope reserved bytes must be zero");
        }
        FREQ_REQUIRE(algorithm <= static_cast<std::uint8_t>(algo::space_saving),
                     "envelope algorithm tag out of range");
        FREQ_REQUIRE(r.get_u8() == 0, "envelope reserved bytes must be zero");
        d.keys = static_cast<key_kind>(keys);
        d.weights = static_cast<weight_kind>(weights);
        d.lifetime = static_cast<lifetime_kind>(lifetime);
        d.backend = static_cast<backend_kind>(backend);
        d.algorithm = static_cast<algo>(algorithm);
        d.sketch.max_counters = r.get_u32();
        d.sketch.sample_size = r.get_u32();
        d.sketch.decrement_quantile = r.get_f64();
        d.sketch.seed = r.get_u64();
        d.sketch.decay = r.get_f64();
        d.sketch.window_epochs = r.get_u32();
        FREQ_REQUIRE(d.lifetime != lifetime_kind::fading || d.weights == weight_kind::real,
                     "fading summaries require real weights");
        FREQ_REQUIRE(d.backend != backend_kind::map || d.lifetime != lifetime_kind::windowed,
                     "the map storage has no sliding-window policy");
        FREQ_REQUIRE(d.algorithm == algo::paper ||
                         (d.keys == key_kind::u64 && d.backend == backend_kind::table &&
                          d.lifetime != lifetime_kind::windowed),
                     "baseline algorithms ship u64 keys, table storage and no window");
        FREQ_REQUIRE(d.algorithm != algo::count_sketch ||
                         (d.weights == weight_kind::counts &&
                          d.lifetime == lifetime_kind::plain),
                     "count_sketch envelopes are counts-weighted and plain-lifetime");
        return version;
    }

private:
    summary_bytes() = default;

    std::vector<std::uint8_t> bytes_;
    summary_descriptor descriptor_{};
    std::uint8_t version_ = current_version;
    std::uint8_t minor_version_ = current_minor_version;
};

// --- the codec ---------------------------------------------------------------

/// The one friend through which the envelope reads and restores private
/// summary state (counter tables, offsets, policy clocks). Everything here
/// is an implementation detail of envelope_save / envelope_load.
struct summary_serde_access {
    // -- config access --------------------------------------------------------

    template <typename S>
    static const sketch_config& config_of(const S& s) {
        return s.config();
    }

    // -- weights on the wire --------------------------------------------------

    template <typename W>
    static void put_weight(byte_writer& w, W v) {
        if constexpr (std::is_floating_point_v<W>) {
            w.put_f64(static_cast<double>(v));
        } else {
            w.put_u64(static_cast<std::uint64_t>(v));
        }
    }

    template <typename W>
    static W get_weight(byte_reader& r) {
        if constexpr (std::is_floating_point_v<W>) {
            const double v = r.get_f64();
            FREQ_REQUIRE(std::isfinite(v), "envelope weight is not finite");
            return static_cast<W>(v);
        } else {
            return static_cast<W>(r.get_u64());
        }
    }

    // -- the flat counter body (shared by every non-windowed core) -----------

    /// Writes offset | total | n | sorted (key, counter) rows. Sorting makes
    /// the encoding canonical: the hash table's slot order (a function of
    /// insertion history) never reaches the wire, so save → restore → save
    /// is byte-identical.
    template <typename Core>
    static void put_counters(byte_writer& w, const Core& s) {
        using W = typename Core::weight_type;
        put_weight<W>(w, s.offset_);
        put_weight<W>(w, s.total_weight_);
        std::vector<std::pair<std::uint64_t, W>> rows;
        s.for_each([&](auto key, W c) {
            rows.emplace_back(static_cast<std::uint64_t>(key), c);
        });
        std::sort(rows.begin(), rows.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        w.put_u32(static_cast<std::uint32_t>(rows.size()));
        for (const auto& [key, c] : rows) {
            w.put_u64(key);
            put_weight<W>(w, c);
        }
    }

    /// Reads one flat counter body into an empty core via \p upsert_row.
    /// Rows must be strictly ascending by key (canonical order doubles as
    /// the duplicate check) and positive; count is bounded by capacity
    /// before anything is inserted.
    template <typename W, typename UpsertRow>
    static void get_counters(byte_reader& r, std::uint32_t max_counters, W& offset,
                             W& total_weight, UpsertRow&& upsert_row) {
        const W off = get_weight<W>(r);
        const W total = get_weight<W>(r);
        if constexpr (std::is_floating_point_v<W>) {
            FREQ_REQUIRE(off >= W{0}, "envelope offset is negative");
            FREQ_REQUIRE(total >= W{0}, "envelope total weight is negative");
        }
        const std::uint32_t n = r.get_u32();
        FREQ_REQUIRE(n <= max_counters, "envelope counter count exceeds capacity");
        std::uint64_t prev_key = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint64_t key = r.get_u64();
            FREQ_REQUIRE(i == 0 || key > prev_key,
                         "envelope counter rows must be strictly ascending by key");
            prev_key = key;
            const W c = get_weight<W>(r);
            FREQ_REQUIRE(c > W{0}, "envelope contains a non-positive counter");
            upsert_row(key, c);
        }
        offset = off;
        total_weight = total;
    }

    // -- table-backed u64 core (plain / fading) -------------------------------

    template <typename K, typename W, typename P>
    static void put_summary(byte_writer& w, const basic_frequent_items<K, W, P>& s) {
        if constexpr (P::decaying) {
            w.put_u64(s.policy_.now());
            w.put_f64(s.policy_.inflation());
        }
        put_counters(w, s);
    }

    template <typename K, typename W, typename P>
    static void get_summary(byte_reader& r, basic_frequent_items<K, W, P>& s) {
        if constexpr (P::decaying) {
            const std::uint64_t now = r.get_u64();
            const double inflation = r.get_f64();
            s.policy_.restore(now, inflation);
        }
        get_counters<W>(r, s.cfg_.max_counters, s.offset_, s.total_weight_,
                        [&](std::uint64_t key, W c) {
                            s.table_.upsert(static_cast<K>(key), c);
                        });
    }

    // -- epoch_window ring (the windowed serde the ROADMAP asked for) --------

    template <typename K, typename W>
    static void put_summary(byte_writer& w,
                            const basic_frequent_items<K, W, epoch_window>& s) {
        using windowed = basic_frequent_items<K, W, epoch_window>;
        using epoch_sketch = typename windowed::epoch_sketch;
        const std::uint64_t window = s.ring_.size();
        const std::uint64_t now = s.now_;
        w.put_u64(now);
        // Live epochs in ascending absolute order; empty ones are omitted
        // (decode reconstructs them deterministically from the config).
        const std::uint64_t lo = now + 1 >= window ? now + 1 - window : 0;
        std::vector<std::uint64_t> live;
        for (std::uint64_t a = lo; a <= now; ++a) {
            const epoch_sketch& e = s.ring_[a % window];
            if (s.slot_epoch_[a % window] == a && e.total_weight() > W{0}) {
                live.push_back(a);
            }
        }
        w.put_u32(static_cast<std::uint32_t>(live.size()));
        for (const std::uint64_t a : live) {
            w.put_u64(a);
            put_counters(w, s.ring_[a % window]);
        }
    }

    template <typename K, typename W>
    static void get_summary(byte_reader& r, basic_frequent_items<K, W, epoch_window>& s) {
        using windowed = basic_frequent_items<K, W, epoch_window>;
        using epoch_sketch = typename windowed::epoch_sketch;
        const std::uint64_t now = r.get_u64();
        if (now > 0) {
            s.tick(now);  // relabels the ring to the live epochs of `now`
        }
        const std::uint64_t window = s.ring_.size();
        const std::uint64_t lo = now + 1 >= window ? now + 1 - window : 0;
        const std::uint32_t count = r.get_u32();
        FREQ_REQUIRE(count <= window, "envelope window epoch count exceeds the ring");
        std::uint64_t prev = 0;
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint64_t a = r.get_u64();
            FREQ_REQUIRE(a >= lo && a <= now, "envelope epoch outside the live window");
            FREQ_REQUIRE(i == 0 || a > prev,
                         "envelope epochs must be strictly ascending");
            prev = a;
            epoch_sketch e(s.epoch_cfg(a));
            get_summary(r, e);
            s.ring_[a % window] = std::move(e);
        }
    }

    // -- map-backed core ------------------------------------------------------

    template <typename W, typename H, typename E, typename L>
    static void put_summary(byte_writer& w,
                            const generic_frequent_items<std::uint64_t, W, H, E, L>& s) {
        if constexpr (L::decaying) {
            w.put_u64(s.policy_.now());
            w.put_f64(s.policy_.inflation());
        }
        put_counters(w, s);
    }

    template <typename W, typename H, typename E, typename L>
    static void get_summary(byte_reader& r,
                            generic_frequent_items<std::uint64_t, W, H, E, L>& s) {
        if constexpr (L::decaying) {
            const std::uint64_t now = r.get_u64();
            const double inflation = r.get_f64();
            s.policy_.restore(now, inflation);
        }
        get_counters<W>(r, s.cfg_.max_counters, s.offset_, s.total_weight_,
                        [&](std::uint64_t key, W c) { s.counters_.emplace(key, c); });
    }

    // -- baseline adapters (src/baselines/backend_summaries.h) ----------------

    /// Candidate ids sorted ascending: n | n × id u64. Only the ids reach
    /// the wire — the tracker's keys are rebuilt from the restored cells on
    /// load, so the encoding stays canonical (the tracker's internal heap
    /// order, a function of arrival history, never leaks into the bytes).
    template <typename Tracker>
    static void put_candidates(byte_writer& w, const Tracker& t) {
        std::vector<std::uint64_t> ids;
        ids.reserve(t.size());
        t.for_each_id([&](std::uint64_t id) { ids.push_back(id); });
        std::sort(ids.begin(), ids.end());
        w.put_u32(static_cast<std::uint32_t>(ids.size()));
        for (const std::uint64_t id : ids) {
            w.put_u64(id);
        }
    }

    template <typename NoteId>
    static void get_candidates(byte_reader& r, std::size_t capacity, NoteId&& note) {
        const std::uint32_t n = r.get_u32();
        FREQ_REQUIRE(n <= capacity, "envelope candidate count exceeds capacity");
        std::uint64_t prev = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint64_t id = r.get_u64();
            FREQ_REQUIRE(i == 0 || id > prev,
                         "envelope candidate ids must be strictly ascending");
            prev = id;
            note(id);
        }
    }

    template <typename W, typename L>
    static void put_summary(byte_writer& w, const count_min_summary<W, L>& s) {
        if constexpr (L::decaying) {
            w.put_u64(s.policy_.now());
            w.put_f64(s.policy_.inflation());
        }
        put_weight<W>(w, s.cm_.total_weight());
        for (const W c : s.cm_.cells()) {
            put_weight<W>(w, c);
        }
        put_candidates(w, s.tracker_);
    }

    template <typename W, typename L>
    static void get_summary(byte_reader& r, count_min_summary<W, L>& s) {
        if constexpr (L::decaying) {
            const std::uint64_t now = r.get_u64();
            const double inflation = r.get_f64();
            s.policy_.restore(now, inflation);
        }
        const W total = get_weight<W>(r);
        std::vector<W> cells(s.cm_.cells().size());
        for (W& c : cells) {
            c = get_weight<W>(r);
            if constexpr (std::is_floating_point_v<W>) {
                FREQ_REQUIRE(c >= W{0}, "envelope contains a negative count-min cell");
            }
        }
        if constexpr (std::is_floating_point_v<W>) {
            FREQ_REQUIRE(total >= W{0}, "envelope total weight is negative");
        }
        s.cm_.restore_cells(cells, total);
        get_candidates(r, s.tracker_.capacity(), [&](std::uint64_t id) {
            s.tracker_.note(id, s.cm_.estimate(id));
        });
    }

    static void put_summary(byte_writer& w, const count_sketch_summary& s) {
        w.put_u64(s.cs_.total_weight());
        // Cells are signed; they travel as two's-complement u64 bit images.
        for (const std::int64_t c : s.cs_.cells()) {
            w.put_u64(static_cast<std::uint64_t>(c));
        }
        put_candidates(w, s.tracker_);
    }

    static void get_summary(byte_reader& r, count_sketch_summary& s) {
        const std::uint64_t total = r.get_u64();
        std::vector<std::int64_t> cells(s.cs_.cells().size());
        for (std::int64_t& c : cells) {
            c = static_cast<std::int64_t>(r.get_u64());
        }
        s.cs_.restore_cells(cells, total);
        get_candidates(r, s.tracker_.capacity(), [&](std::uint64_t id) {
            s.tracker_.note(id, s.cs_.estimate(id));
        });
    }

    template <typename W, typename L>
    static void put_summary(byte_writer& w, const space_saving_summary<W, L>& s) {
        using entry = typename space_saving_heap<std::uint64_t, W>::entry;
        if constexpr (L::decaying) {
            w.put_u64(s.policy_.now());
            w.put_f64(s.policy_.inflation());
        }
        put_weight<W>(w, s.ss_.total_weight());
        std::vector<entry> rows;
        rows.reserve(s.ss_.num_counters());
        s.ss_.for_each_entry([&](std::uint64_t id, W count, W error) {
            if (count > W{0}) {
                rows.push_back(entry{id, count, error});
            }
        });
        std::sort(rows.begin(), rows.end(),
                  [](const entry& a, const entry& b) { return a.id < b.id; });
        w.put_u32(static_cast<std::uint32_t>(rows.size()));
        for (const entry& e : rows) {
            w.put_u64(e.id);
            put_weight<W>(w, e.count);
            put_weight<W>(w, e.error);
        }
    }

    template <typename W, typename L>
    static void get_summary(byte_reader& r, space_saving_summary<W, L>& s) {
        using entry = typename space_saving_heap<std::uint64_t, W>::entry;
        if constexpr (L::decaying) {
            const std::uint64_t now = r.get_u64();
            const double inflation = r.get_f64();
            s.policy_.restore(now, inflation);
        }
        const W total = get_weight<W>(r);
        if constexpr (std::is_floating_point_v<W>) {
            FREQ_REQUIRE(total >= W{0}, "envelope total weight is negative");
        }
        const std::uint32_t n = r.get_u32();
        FREQ_REQUIRE(n <= s.ss_.capacity(), "envelope counter count exceeds capacity");
        std::vector<entry> rows;
        rows.reserve(n);
        std::uint64_t prev = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint64_t id = r.get_u64();
            FREQ_REQUIRE(i == 0 || id > prev,
                         "envelope counter rows must be strictly ascending by key");
            prev = id;
            const W count = get_weight<W>(r);
            const W error = get_weight<W>(r);
            FREQ_REQUIRE(count > W{0}, "envelope contains a non-positive counter");
            if constexpr (std::is_floating_point_v<W>) {
                FREQ_REQUIRE(error >= W{0},
                             "envelope space-saving error bound out of range");
            }
            FREQ_REQUIRE(error <= count,
                         "envelope space-saving error bound out of range");
            rows.push_back(entry{id, count, error});
        }
        s.ss_.assign(rows, total);
    }

    // -- text keys: inner summary + spelling dictionary segments --------------

    static constexpr std::uint32_t max_spelling_bytes = 1u << 20;
    /// Segment count bound = the engine's shard-count bound: a per-shard
    /// image can carry at most one segment per shard.
    static constexpr std::uint32_t max_dictionary_segments = 4096;

    /// One canonically-sorted dictionary segment: dict_n | (fp, len, bytes).
    /// Generic over the dictionary backend (heap Items or arena views —
    /// spelling_dictionary.h): both expose spellings convertible to
    /// string_view, and the canonical fingerprint sort makes the emitted
    /// bytes independent of backend and map iteration order.
    template <typename Dict>
    static void put_dictionary_segment(byte_writer& w, const Dict& dict) {
        std::vector<std::pair<std::uint64_t, std::string_view>> entries;
        entries.reserve(dict.size());
        dict.for_each([&](std::uint64_t fp, std::string_view spelling) {
            entries.emplace_back(fp, spelling);
        });
        std::sort(entries.begin(), entries.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        w.put_u32(static_cast<std::uint32_t>(entries.size()));
        for (const auto& [fp, spelling] : entries) {
            w.put_u64(fp);
            w.put_u32(static_cast<std::uint32_t>(spelling.size()));
            w.put_bytes(spelling.data(), spelling.size());
        }
    }

    /// Reads one segment into \p s's dictionary (first spelling per
    /// fingerprint wins across segments — the union rule of the engine's
    /// snapshot merge). Fingerprints must be strictly ascending *within*
    /// the segment (canonical order doubles as the duplicate check), and a
    /// genuine per-source dictionary never exceeds the prune bound.
    template <typename W, typename L, typename T, typename D>
    static void get_dictionary_segment(
        byte_reader& r, fingerprint_frequent_items<std::string, W, L, T, D>& s) {
        const std::uint32_t n = r.get_u32();
        FREQ_REQUIRE(n <= s.dict_.prune_limit() + 1,
                     "envelope dictionary exceeds the prune bound");
        std::uint64_t prev = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint64_t fp = r.get_u64();
            FREQ_REQUIRE(i == 0 || fp > prev,
                         "envelope dictionary must be strictly ascending");
            prev = fp;
            const std::uint32_t len = r.get_u32();
            FREQ_REQUIRE(len <= max_spelling_bytes, "envelope spelling too long");
            FREQ_REQUIRE(len <= r.remaining(), "envelope spelling overruns the buffer");
            std::string spelling(len, '\0');
            r.get_bytes(spelling.data(), len);
            s.dict_.note(fp, std::move(spelling));
        }
    }

    /// Counters-only write (the shard-preserving saver frames the
    /// dictionary itself).
    template <typename W, typename L, typename T, typename D>
    static void put_inner_summary(
        byte_writer& w, const fingerprint_frequent_items<std::string, W, L, T, D>& s) {
        put_summary(w, s.sketch_);
    }

    template <typename W, typename L, typename T, typename D>
    static const D& dict_of(const fingerprint_frequent_items<std::string, W, L, T, D>& s) {
        return s.dict_;
    }

    template <typename W, typename L, typename T, typename D>
    static void put_summary(byte_writer& w,
                            const fingerprint_frequent_items<std::string, W, L, T, D>& s) {
        put_summary(w, s.sketch_);
        w.put_u32(1);  // the canonical image is a single unioned segment
        put_dictionary_segment(w, s.dict_);
    }

    template <typename W, typename L, typename T, typename D>
    static void get_summary(byte_reader& r,
                            fingerprint_frequent_items<std::string, W, L, T, D>& s,
                            std::uint8_t minor) {
        get_summary(r, s.sketch_);
        if (minor == 0) {
            // Legacy (pre-segment) image: a single unframed dictionary.
            get_dictionary_segment(r, s);
            return;
        }
        const std::uint32_t segments = r.get_u32();
        FREQ_REQUIRE(segments <= max_dictionary_segments,
                     "envelope dictionary segment count exceeds the shard bound");
        for (std::uint32_t seg = 0; seg < segments; ++seg) {
            get_dictionary_segment(r, s);
        }
        // A multi-source union can exceed one source's budget; re-apply the
        // owner's prune discipline so restored state matches what the
        // engine's own snapshot merge would have kept.
        if (s.dict_.over_budget()) {
            s.prune();
        }
    }
};

// --- public entry points -----------------------------------------------------

/// Serializes \p s into the unified envelope. Works on any summary the
/// traits above cover — including engine snapshots, which are ordinary
/// summaries of their engine's merged state.
namespace detail {

/// Writes the 48-byte envelope header for \p Summary's tags + \p cfg.
/// Each writer emits the *lowest* minor whose layout it needs — paper/u64
/// images write 0, paper/text images write 1 (segmented dictionary),
/// baseline-algorithm images write 2 (algorithm tag) — so paper envelopes
/// stay readable by pre-bump peers in a mixed-version fleet (the §3
/// architecture ships summaries between machines that upgrade
/// independently).
template <typename Summary>
void put_envelope_header(byte_writer& w, const sketch_config& cfg) {
    using traits = summary_traits<Summary>;
    constexpr std::uint8_t minor =
        traits::algorithm != algo::paper   ? summary_bytes::current_minor_version
        : traits::keys == key_kind::text ? summary_bytes::text_dictionary_minor
                                         : std::uint8_t{0};
    w.reserve(summary_bytes::header_size + 64);
    w.put_u32(summary_bytes::magic);
    w.put_u8(summary_bytes::current_version);
    w.put_u8(static_cast<std::uint8_t>(traits::keys));
    w.put_u8(static_cast<std::uint8_t>(traits::weights));
    w.put_u8(static_cast<std::uint8_t>(traits::lifetime));
    w.put_u8(static_cast<std::uint8_t>(traits::backend));
    w.put_u8(minor);
    w.put_u8(static_cast<std::uint8_t>(traits::algorithm));
    w.put_u8(0);
    w.put_u32(cfg.max_counters);
    w.put_u32(cfg.sample_size);
    w.put_f64(cfg.decrement_quantile);
    w.put_u64(cfg.seed);
    w.put_f64(cfg.decay);
    w.put_u32(cfg.window_epochs);
}

}  // namespace detail

template <typename Summary>
summary_bytes envelope_save(const Summary& s) {
    byte_writer w;
    detail::put_envelope_header<Summary>(w, summary_serde_access::config_of(s));
    summary_serde_access::put_summary(w, s);
    return summary_bytes::wrap(std::move(w).take());
}

/// Shard-preserving save of a sharded text summary: counters come from the
/// folded summary \p folded (the engine's merged snapshot), while the
/// spelling dictionary ships as one segment per shard clone — skipping the
/// writer-side union. Restoring unions the segments (first spelling wins)
/// and normalizes back to the canonical single-segment image on the next
/// save. \p shard_clones views must outlive the call; an empty span writes
/// the canonical image of \p folded instead.
template <typename W, typename L, typename T, typename D>
summary_bytes envelope_save_sharded_text(
    const fingerprint_frequent_items<std::string, W, L, T, D>& folded,
    std::span<const fingerprint_frequent_items<std::string, W, L, T, D>* const>
        shard_clones) {
    using summary_type = fingerprint_frequent_items<std::string, W, L, T, D>;
    if (shard_clones.empty()) {
        return envelope_save(folded);
    }
    FREQ_REQUIRE(shard_clones.size() <= summary_serde_access::max_dictionary_segments,
                 "more shard dictionaries than the envelope's segment bound");
    byte_writer w;
    detail::put_envelope_header<summary_type>(w, summary_serde_access::config_of(folded));
    summary_serde_access::put_inner_summary(w, folded);
    w.put_u32(static_cast<std::uint32_t>(shard_clones.size()));
    for (const auto* clone : shard_clones) {
        summary_serde_access::put_dictionary_segment(w,
                                                     summary_serde_access::dict_of(*clone));
    }
    return summary_bytes::wrap(std::move(w).take());
}

/// Reconstructs a summary of static type \p Summary from envelope bytes.
/// Throws std::invalid_argument when the envelope's tags name a different
/// instantiation. \p max_accepted_counters guards resource consumption for
/// untrusted bytes: an image whose declared capacity exceeds the bound is
/// rejected before any table allocation.
template <typename Summary>
Summary envelope_load(const summary_bytes& b,
                      std::uint32_t max_accepted_counters = 1u << 28) {
    using traits = summary_traits<Summary>;
    const summary_descriptor& d = b.descriptor();
    FREQ_REQUIRE(d.keys == traits::keys && d.weights == traits::weights &&
                     d.lifetime == traits::lifetime && d.backend == traits::backend &&
                     d.algorithm == traits::algorithm,
                 "envelope holds a different summary instantiation");
    FREQ_REQUIRE(d.sketch.max_counters <= max_accepted_counters,
                 "envelope capacity exceeds the caller's acceptance bound");
    byte_reader r(b.bytes());
    summary_descriptor reparsed;  // advances r past the header
    std::uint8_t minor = 0;
    summary_bytes::parse_header(r, reparsed, minor);
    Summary s(d.sketch);
    if constexpr (traits::keys == key_kind::text) {
        // The dictionary-section layout is minor-versioned (segments).
        summary_serde_access::get_summary(r, s, minor);
    } else {
        summary_serde_access::get_summary(r, s);
    }
    FREQ_REQUIRE(r.remaining() == 0, "envelope has trailing bytes");
    return s;
}

/// Convenience overload for raw bytes fresh off the wire.
template <typename Summary>
Summary envelope_load(std::vector<std::uint8_t> bytes,
                      std::uint32_t max_accepted_counters = 1u << 28) {
    return envelope_load<Summary>(summary_bytes::wrap(std::move(bytes)),
                                  max_accepted_counters);
}

}  // namespace freq

#endif  // FREQ_API_SUMMARY_BYTES_H
