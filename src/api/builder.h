#ifndef FREQ_API_BUILDER_H
#define FREQ_API_BUILDER_H

/// \file builder.h
/// The fluent runtime configurator of the façade: `freq::builder` picks the
/// algorithm (the paper's sketch or one of the §1.3 baselines), key type,
/// weight type, k / sketch knobs, lifetime policy (with its decay or window
/// parameters), counter storage and optional engine sharding *at runtime* —
/// from config, flags or a wire descriptor — and materializes the matching
/// template instantiation behind a `freq::summarizer` handle:
///
///   auto s = freq::builder()
///                .text_keys()
///                .max_counters(4096)
///                .fading(0.97)
///                .build();
///   s.update("alice", 3.0);
///   s.tick();
///   for (const auto& row : s.frequent_items(
///            freq::error_mode::no_false_negatives, 0.01 * s.total_weight()))
///       ...
///
/// `restore_summary` is the inverse of summarizer::save(): it reads the
/// envelope's descriptor (api/summary_bytes.h) and rebuilds the right
/// instantiation from bytes alone — the receiving service needs no
/// compile-time knowledge of what the sender ran.
///
/// The algorithm axis selects *what is computed*, the storage axis *how the
/// paper sketch stores counters*:
///
///   auto cm = freq::builder()
///                 .algorithm(freq::algo::count_min)
///                 .max_counters(1024)
///                 .build();
///
/// runs a Count-Min sketch (baselines/backend_summaries.h) behind the same
/// handle — same update()/frequent_items()/save() surface, same sharded
/// engine, same envelope wire format (with an algorithm tag). The baselines
/// count u64 keys in table storage; count_min and space_saving also accept
/// fading(), count_sketch is plain/counts only.
///
/// Unsupported combinations are rejected at build() with a precise message:
/// fading requires real weights, and the map storage has no sliding window
/// and no sharding. Text keys shard like integer ones: the engine counts
/// fingerprints on the ring hot path and each shard owns the spelling
/// dictionary slice for the keys routed to it (engine/stream_engine.h), so
/// `.text_keys().sharded(4)` materializes a concurrent text summarizer
/// whose reports carry full spellings.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/result_set.h"
#include "api/summarizer.h"
#include "api/summary_bytes.h"
#include "baselines/backend_summaries.h"
#include "common/contracts.h"
#include "common/mem.h"
#include "core/basic_frequent_items.h"
#include "core/generic_frequent_items.h"
#include "core/lifetime_policy.h"
#include "core/sketch_config.h"
#include "core/string_frequent_items.h"
#include "engine/stream_engine.h"
#include "hashing/hash.h"
#include "stream/update.h"

namespace freq {

namespace detail {

// --- shared conversions ------------------------------------------------------

template <typename W>
W facade_weight(double w) {
    FREQ_REQUIRE(std::isfinite(w) && w >= 0.0, "weights must be finite and non-negative");
    if constexpr (std::is_floating_point_v<W>) {
        return static_cast<W>(w);
    } else {
        FREQ_REQUIRE(w < 18446744073709551616.0, "weight exceeds the counts range");
        FREQ_REQUIRE(w == std::floor(w), "counts summaries take integer weights");
        return static_cast<W>(w);
    }
}

template <typename W>
W facade_threshold(double t) {
    FREQ_REQUIRE(std::isfinite(t) && t >= 0.0,
                 "thresholds must be finite and non-negative");
    if constexpr (std::is_floating_point_v<W>) {
        return static_cast<W>(t);
    } else {
        // bound > t  ⟺  bound > floor(t) for integer bounds, so flooring
        // preserves the strict-threshold semantics exactly.
        if (t >= 18446744073709551615.0) {
            return ~std::uint64_t{0};
        }
        return static_cast<W>(t);
    }
}

/// Core rows (id-keyed) -> façade rows. The table cores call the key `id`,
/// the map core calls it `item`; both are 64-bit here.
template <typename Rows>
std::vector<result_row> u64_rows(const Rows& in) {
    auto key_of = [](const auto& r) {
        if constexpr (requires { r.id; }) {
            return static_cast<std::uint64_t>(r.id);
        } else {
            return static_cast<std::uint64_t>(r.item);
        }
    };
    std::vector<result_row> out;
    out.reserve(in.size());
    for (const auto& r : in) {
        const std::uint64_t key = key_of(r);
        out.push_back(result_row{key, std::to_string(key),
                                 static_cast<double>(r.estimate),
                                 static_cast<double>(r.lower_bound),
                                 static_cast<double>(r.upper_bound)});
    }
    return out;
}

/// The error envelope a result_set reports: at least the summary's own
/// a-posteriori bound, widened to cover every returned row — a windowed
/// summary answers set queries through an epoch fold (Algorithm 5 per
/// epoch) whose decrements can stretch row envelopes past the point-query
/// bound.
inline double result_error(double summary_error, const std::vector<result_row>& rows) {
    for (const auto& r : rows) {
        summary_error = std::max(summary_error, r.upper_bound - r.lower_bound);
    }
    return summary_error;
}

[[noreturn]] inline void wrong_key_kind(const char* have, const char* got) {
    throw std::invalid_argument(std::string("libfreq: this summarizer has ") + have +
                                " keys; " + got + "-keyed call rejected");
}

/// A feeder over a standalone (unsharded) summary: forwards straight to the
/// impl. Single-threaded like the summary itself.
class standalone_feeder final : public feeder_impl {
public:
    explicit standalone_feeder(summarizer_impl* owner) : owner_(owner) {}
    void push(std::uint64_t id, double weight) override { owner_->update(id, weight); }
    void push(std::string_view item, double weight) override {
        owner_->update(item, weight);
    }
    void flush() override {}

private:
    summarizer_impl* owner_;
};

/// Lifetime-policy clock of a core summary (0 for plain).
template <typename Sketch>
std::uint64_t clock_of(const Sketch& s) {
    using P = typename Sketch::lifetime_policy;
    if constexpr (P::windowed) {
        return s.now();
    } else if constexpr (P::decaying) {
        return s.policy().now();
    } else {
        return 0;
    }
}

/// Two summaries may merge when their tags agree and the policy parameters
/// the template layer insists on (equal decay / equal window) match; seeds
/// and capacities may differ — §3.2 even recommends distinct hash seeds.
inline void require_merge_compatible(const summary_descriptor& a,
                                     const summary_descriptor& b) {
    FREQ_REQUIRE(a.algorithm == b.algorithm && a.keys == b.keys &&
                     a.weights == b.weights && a.lifetime == b.lifetime &&
                     a.backend == b.backend,
                 "merging summarizers requires identical "
                 "algorithm/key/weight/lifetime/storage");
    if (a.lifetime == lifetime_kind::fading) {
        FREQ_REQUIRE(a.sketch.decay == b.sketch.decay,
                     "merging fading summarizers requires equal decay factors");
    }
    if (a.lifetime == lifetime_kind::windowed) {
        FREQ_REQUIRE(a.sketch.window_epochs == b.sketch.window_epochs,
                     "merging windowed summarizers requires equal window sizes");
    }
}

// --- standalone u64-keyed summaries (table- or map-backed) -------------------

/// Wraps any id-keyed core summary (basic_frequent_items of any policy, or
/// the map-backed generic core) behind the erased interface. \p TopItems
/// exists because the map core exposes no top_items(); see map_top_items.
template <typename Sketch>
class u64_summarizer final : public summarizer_impl {
public:
    using W = typename Sketch::weight_type;

    u64_summarizer(summary_descriptor desc, Sketch sketch)
        : desc_(std::move(desc)), sketch_(std::move(sketch)) {}

    const summary_descriptor& descriptor() const noexcept override { return desc_; }
    bool sharded() const noexcept override { return false; }

    void update(std::uint64_t id, double weight) override {
        sketch_.update(id, facade_weight<W>(weight));
    }
    void update(std::string_view, double) override { wrong_key_kind("u64", "text"); }
    void update(std::span<const update64> batch) override {
        if constexpr (std::is_same_v<W, std::uint64_t> && !is_map_backed) {
            sketch_.update(batch);  // the template layer's prefetching span path
        } else {
            for (const auto& u : batch) {
                sketch_.update(u.id, facade_weight<W>(static_cast<double>(u.weight)));
            }
        }
    }
    std::unique_ptr<feeder_impl> make_feeder() override {
        return std::make_unique<standalone_feeder>(this);
    }
    void flush() override {}

    void tick(std::uint64_t epochs) override { sketch_.tick(epochs); }
    std::uint64_t now() const override { return clock_of(sketch_); }

    double estimate(std::uint64_t id) const override {
        return static_cast<double>(sketch_.estimate(id));
    }
    double lower_bound(std::uint64_t id) const override {
        return static_cast<double>(sketch_.lower_bound(id));
    }
    double upper_bound(std::uint64_t id) const override {
        return static_cast<double>(sketch_.upper_bound(id));
    }
    double estimate(std::string_view) const override { wrong_key_kind("u64", "text"); }
    double lower_bound(std::string_view) const override { wrong_key_kind("u64", "text"); }
    double upper_bound(std::string_view) const override { wrong_key_kind("u64", "text"); }

    double total_weight() const override {
        return static_cast<double>(sketch_.total_weight());
    }
    double maximum_error() const override {
        return static_cast<double>(sketch_.maximum_error());
    }
    std::uint32_t num_counters() const override {
        return static_cast<std::uint32_t>(sketch_.num_counters());
    }
    std::uint32_t capacity() const override { return sketch_.capacity(); }
    std::size_t memory_bytes() const override { return sketch_.memory_bytes(); }

    result_set frequent_items(error_mode mode, double threshold) const override {
        auto rows = u64_rows(sketch_.frequent_items(mode, facade_threshold<W>(threshold)));
        const double err = result_error(maximum_error(), rows);
        return result_set(mode, threshold, total_weight(), err, std::move(rows));
    }
    result_set top_items(std::size_t m) const override {
        auto rows = sketch_top_items(m);
        const double err = result_error(maximum_error(), rows);
        return result_set(error_mode::no_false_negatives, 0.0, total_weight(), err,
                          std::move(rows));
    }

    summary_bytes save() override { return envelope_save(sketch_); }

    void merge_from(const summarizer_impl& other) override {
        const auto* peer = dynamic_cast<const u64_summarizer*>(&other);
        FREQ_REQUIRE(peer != nullptr && peer != this,
                     "merge requires a distinct standalone summarizer of the same "
                     "instantiation (snapshot() a sharded one first)");
        require_merge_compatible(desc_, peer->desc_);
        sketch_.merge(peer->sketch_);
    }

    std::unique_ptr<summarizer_impl> snapshot() const override {
        return std::make_unique<u64_summarizer>(desc_, sketch_);
    }

    std::string to_string() const override { return sketch_.to_string(); }

private:
    static constexpr bool is_map_backed =
        summary_traits<Sketch>::backend == backend_kind::map;

    std::vector<result_row> sketch_top_items(std::size_t m) const {
        if constexpr (is_map_backed) {
            // The map core has no top_items(); every tracked item clears an
            // upper-bound threshold of 0, and rows arrive estimate-sorted.
            auto rows = sketch_.frequent_items(error_mode::no_false_negatives, W{0});
            if (rows.size() > m) {
                rows.resize(m);
            }
            return u64_rows(rows);
        } else {
            return u64_rows(sketch_.top_items(m));
        }
    }

    summary_descriptor desc_;
    Sketch sketch_;
};

// --- standalone text-keyed summaries -----------------------------------------

/// Spelled rows (fingerprint-counted cores) -> façade rows: `id` is the
/// 64-bit fingerprint the core actually counted (correct even while a
/// spelling is still "<unknown>"), `item` the human-readable key.
template <typename Rows>
std::vector<result_row> text_rows(const Rows& in) {
    std::vector<result_row> out;
    out.reserve(in.size());
    for (const auto& r : in) {
        out.push_back(result_row{r.fingerprint, r.item, static_cast<double>(r.estimate),
                                 static_cast<double>(r.lower_bound),
                                 static_cast<double>(r.upper_bound)});
    }
    return out;
}

template <typename W, typename L>
class text_summarizer final : public summarizer_impl {
public:
    using sketch_type = string_frequent_items<W, L>;

    text_summarizer(summary_descriptor desc, sketch_type sketch)
        : desc_(std::move(desc)), sketch_(std::move(sketch)) {}

    const summary_descriptor& descriptor() const noexcept override { return desc_; }
    bool sharded() const noexcept override { return false; }

    void update(std::uint64_t, double) override { wrong_key_kind("text", "u64"); }
    void update(std::string_view item, double weight) override {
        sketch_.update(item, facade_weight<W>(weight));
    }
    void update(std::span<const update64>) override { wrong_key_kind("text", "u64"); }
    std::unique_ptr<feeder_impl> make_feeder() override {
        return std::make_unique<standalone_feeder>(this);
    }
    void flush() override {}

    void tick(std::uint64_t epochs) override { sketch_.tick(epochs); }
    std::uint64_t now() const override { return sketch_.now(); }

    double estimate(std::uint64_t) const override { wrong_key_kind("text", "u64"); }
    double lower_bound(std::uint64_t) const override { wrong_key_kind("text", "u64"); }
    double upper_bound(std::uint64_t) const override { wrong_key_kind("text", "u64"); }
    double estimate(std::string_view item) const override {
        return static_cast<double>(sketch_.estimate(item));
    }
    double lower_bound(std::string_view item) const override {
        return static_cast<double>(sketch_.lower_bound(item));
    }
    double upper_bound(std::string_view item) const override {
        return static_cast<double>(sketch_.upper_bound(item));
    }

    double total_weight() const override {
        return static_cast<double>(sketch_.total_weight());
    }
    double maximum_error() const override {
        return static_cast<double>(sketch_.maximum_error());
    }
    std::uint32_t num_counters() const override { return sketch_.num_counters(); }
    std::uint32_t capacity() const override { return sketch_.capacity(); }
    std::size_t memory_bytes() const override { return sketch_.memory_bytes(); }

    result_set frequent_items(error_mode mode, double threshold) const override {
        auto rows =
            text_rows(sketch_.frequent_items(mode, facade_threshold<W>(threshold)));
        const double err = result_error(maximum_error(), rows);
        return result_set(mode, threshold, total_weight(), err, std::move(rows));
    }
    result_set top_items(std::size_t m) const override {
        auto rows = text_rows(sketch_.top_items(m));
        const double err = result_error(maximum_error(), rows);
        return result_set(error_mode::no_false_negatives, 0.0, total_weight(), err,
                          std::move(rows));
    }

    summary_bytes save() override { return envelope_save(sketch_); }

    void merge_from(const summarizer_impl& other) override {
        const auto* peer = dynamic_cast<const text_summarizer*>(&other);
        FREQ_REQUIRE(peer != nullptr && peer != this,
                     "merge requires a distinct standalone summarizer of the same "
                     "instantiation");
        require_merge_compatible(desc_, peer->desc_);
        sketch_.merge(peer->sketch_);
    }

    std::unique_ptr<summarizer_impl> snapshot() const override {
        return std::make_unique<text_summarizer>(desc_, sketch_);
    }

    std::string to_string() const override {
        return "text_summarizer(k=" + std::to_string(sketch_.capacity()) +
               ", counters=" + std::to_string(sketch_.num_counters()) +
               ", N=" + std::to_string(static_cast<double>(sketch_.total_weight())) + ")";
    }

private:
    summary_descriptor desc_;
    sketch_type sketch_;
};

// --- engine-sharded u64-keyed summaries --------------------------------------

template <typename Sketch>
class engine_summarizer final : public summarizer_impl {
public:
    using W = typename Sketch::weight_type;
    using engine_type = stream_engine<std::uint64_t, W, Sketch>;

    engine_summarizer(summary_descriptor desc, const engine_config& cfg)
        : desc_(std::move(desc)), engine_(cfg) {}

    const summary_descriptor& descriptor() const noexcept override { return desc_; }
    bool sharded() const noexcept override { return true; }

    // Ingestion routes through a lazily-created internal producer; queries
    // see what has been applied — call flush() for a stream-complete view,
    // exactly like the raw engine API.
    void update(std::uint64_t id, double weight) override {
        main().push(id, facade_weight<W>(weight));
    }
    void update(std::string_view, double) override { wrong_key_kind("u64", "text"); }
    void update(std::span<const update64> batch) override {
        if constexpr (std::is_same_v<W, std::uint64_t>) {
            main().push(batch);
        } else {
            auto& p = main();
            for (const auto& u : batch) {
                p.push(u.id, facade_weight<W>(static_cast<double>(u.weight)));
            }
        }
    }
    std::unique_ptr<feeder_impl> make_feeder() override {
        return std::make_unique<engine_feeder>(engine_.make_producer());
    }
    void flush() override {
        if (main_.has_value()) {
            main_->flush();
        }
        engine_.flush();
    }

    // An exact epoch boundary for everything this summarizer staged and
    // every feeder already flushed: drain first, then tick — otherwise
    // staged updates would age under the wrong epoch. (Feeders still
    // holding staged runs on other threads follow the raw engine's
    // discipline: their updates belong to the epoch of their flush.)
    void tick(std::uint64_t epochs) override {
        flush();
        engine_.advance_epoch(epochs);
        now_ += epochs;
    }
    std::uint64_t now() const override { return now_; }

    // With the snapshot service on, queries answer from the cached
    // double-buffered view (engine/snapshot_service.h); otherwise each call
    // folds a fresh O(k·S) snapshot on this thread — cache one per query
    // batch through snapshot() when querying many ids without the service.
    void enable_snapshot_service(std::chrono::microseconds interval) override {
        engine_.enable_snapshot_service(interval);
    }
    void disable_snapshot_service() override { engine_.disable_snapshot_service(); }
    bool snapshot_service_enabled() const noexcept override {
        return engine_.snapshot_service_enabled();
    }
    std::uint64_t snapshot_epoch() const override { return engine_.snapshot_epoch(); }

    double estimate(std::uint64_t id) const override {
        return with_view([&](const Sketch& s) {
            return static_cast<double>(s.estimate(id));
        });
    }
    double lower_bound(std::uint64_t id) const override {
        return with_view([&](const Sketch& s) {
            return static_cast<double>(s.lower_bound(id));
        });
    }
    double upper_bound(std::uint64_t id) const override {
        return with_view([&](const Sketch& s) {
            return static_cast<double>(s.upper_bound(id));
        });
    }
    double estimate(std::string_view) const override { wrong_key_kind("u64", "text"); }
    double lower_bound(std::string_view) const override { wrong_key_kind("u64", "text"); }
    double upper_bound(std::string_view) const override { wrong_key_kind("u64", "text"); }

    double total_weight() const override {
        return with_view([](const Sketch& s) {
            return static_cast<double>(s.total_weight());
        });
    }
    double maximum_error() const override {
        return with_view([](const Sketch& s) {
            return static_cast<double>(s.maximum_error());
        });
    }
    std::uint32_t num_counters() const override {
        return with_view([](const Sketch& s) {
            return static_cast<std::uint32_t>(s.num_counters());
        });
    }
    std::uint32_t capacity() const override { return desc_.sketch.max_counters; }
    std::size_t memory_bytes() const override {
        return with_view([&](const Sketch& s) {
            return s.memory_bytes() * engine_.num_shards();
        });
    }

    result_set frequent_items(error_mode mode, double threshold) const override {
        return with_view([&](const Sketch& snap) {
            auto rows =
                u64_rows(snap.frequent_items(mode, facade_threshold<W>(threshold)));
            const double err =
                result_error(static_cast<double>(snap.maximum_error()), rows);
            return result_set(mode, threshold,
                              static_cast<double>(snap.total_weight()), err,
                              std::move(rows));
        });
    }
    result_set top_items(std::size_t m) const override {
        return with_view([&](const Sketch& snap) {
            auto rows = u64_rows(snap.top_items(m));
            const double err =
                result_error(static_cast<double>(snap.maximum_error()), rows);
            return result_set(error_mode::no_false_negatives, 0.0,
                              static_cast<double>(snap.total_weight()), err,
                              std::move(rows));
        });
    }

    // The documented save() contract is a *stream-complete* standalone
    // summary: drain the internal producer and the rings before folding.
    // With the service on, flush() already republished a stream-complete
    // view — serialize from it instead of folding a second time.
    summary_bytes save() override {
        flush();
        if (engine_.snapshot_service_enabled()) {
            return envelope_save(*engine_.acquire_snapshot());
        }
        return envelope_save(engine_.snapshot());
    }

    void merge_from(const summarizer_impl&) override {
        FREQ_REQUIRE(false,
                     "sharded summarizers ingest through feeders; merge their "
                     "snapshot() instead");
    }

    std::unique_ptr<summarizer_impl> snapshot() const override {
        return std::make_unique<u64_summarizer<Sketch>>(desc_, engine_.snapshot());
    }

    std::string to_string() const override {
        const auto st = engine_.stats();
        return "sharded_summarizer(shards=" + std::to_string(engine_.num_shards()) +
               ", k=" + std::to_string(desc_.sketch.max_counters) +
               ", applied=" + std::to_string(st.updates_applied) +
               ", stalls=" + std::to_string(st.ring_full_stalls) + ")";
    }

private:
    class engine_feeder final : public feeder_impl {
    public:
        explicit engine_feeder(typename engine_type::producer p) : producer_(std::move(p)) {}
        void push(std::uint64_t id, double weight) override {
            producer_.push(id, facade_weight<W>(weight));
        }
        void push(std::string_view, double) override { wrong_key_kind("u64", "text"); }
        void flush() override { producer_.flush(); }

    private:
        typename engine_type::producer producer_;
    };

    typename engine_type::producer& main() {
        if (!main_.has_value()) {
            main_.emplace(engine_.make_producer());
        }
        return *main_;
    }

    /// Runs \p f over the freshest consistent view: the cached published
    /// snapshot when the service is on (pinned for the duration of the
    /// call), a fold-on-demand snapshot otherwise.
    template <typename F>
    auto with_view(F&& f) const {
        if (engine_.snapshot_service_enabled()) {
            const auto view = engine_.acquire_snapshot();
            return f(*view);
        }
        const Sketch snap = engine_.snapshot();
        return f(snap);
    }

    summary_descriptor desc_;
    engine_type engine_;
    std::optional<typename engine_type::producer> main_;  ///< scalar-update handle
    std::uint64_t now_ = 0;
};

// --- engine-sharded text-keyed summaries -------------------------------------

/// The sharded text path: producers fingerprint keys and feed the engine's
/// ring hot path, each shard owns its spelling-dictionary slice, and every
/// read view (fold-on-demand or the cached published snapshot) is a full
/// string summary — so estimate("alice") and top_items() answer with
/// spellings straight off the view.
template <typename W, typename L>
class engine_text_summarizer final : public summarizer_impl {
public:
    using sketch_type = string_frequent_items<W, L>;
    using engine_type = stream_engine<std::uint64_t, W, sketch_type>;

    engine_text_summarizer(summary_descriptor desc, const engine_config& cfg)
        : desc_(std::move(desc)), engine_(cfg) {}

    const summary_descriptor& descriptor() const noexcept override { return desc_; }
    bool sharded() const noexcept override { return true; }

    void update(std::uint64_t, double) override { wrong_key_kind("text", "u64"); }
    void update(std::string_view item, double weight) override {
        main().push(item, facade_weight<W>(weight));
    }
    void update(std::span<const update64>) override { wrong_key_kind("text", "u64"); }
    std::unique_ptr<feeder_impl> make_feeder() override {
        return std::make_unique<engine_feeder>(engine_.make_producer());
    }
    void flush() override {
        if (main_.has_value()) {
            main_->flush();
        }
        engine_.flush();
    }

    // Same epoch discipline as the u64 engine summarizer: drain first, then
    // tick, so staged updates age under the epoch they were pushed in.
    void tick(std::uint64_t epochs) override {
        flush();
        engine_.advance_epoch(epochs);
        now_ += epochs;
    }
    std::uint64_t now() const override { return now_; }

    void enable_snapshot_service(std::chrono::microseconds interval) override {
        engine_.enable_snapshot_service(interval);
    }
    void disable_snapshot_service() override { engine_.disable_snapshot_service(); }
    bool snapshot_service_enabled() const noexcept override {
        return engine_.snapshot_service_enabled();
    }
    std::uint64_t snapshot_epoch() const override { return engine_.snapshot_epoch(); }

    double estimate(std::uint64_t) const override { wrong_key_kind("text", "u64"); }
    double lower_bound(std::uint64_t) const override { wrong_key_kind("text", "u64"); }
    double upper_bound(std::uint64_t) const override { wrong_key_kind("text", "u64"); }
    double estimate(std::string_view item) const override {
        return with_view([&](const sketch_type& s) {
            return static_cast<double>(s.estimate(item));
        });
    }
    double lower_bound(std::string_view item) const override {
        return with_view([&](const sketch_type& s) {
            return static_cast<double>(s.lower_bound(item));
        });
    }
    double upper_bound(std::string_view item) const override {
        return with_view([&](const sketch_type& s) {
            return static_cast<double>(s.upper_bound(item));
        });
    }

    double total_weight() const override {
        return with_view([](const sketch_type& s) {
            return static_cast<double>(s.total_weight());
        });
    }
    double maximum_error() const override {
        return with_view([](const sketch_type& s) {
            return static_cast<double>(s.maximum_error());
        });
    }
    std::uint32_t num_counters() const override {
        return with_view([](const sketch_type& s) { return s.num_counters(); });
    }
    std::uint32_t capacity() const override { return desc_.sketch.max_counters; }
    std::size_t memory_bytes() const override {
        return with_view([&](const sketch_type& s) {
            // Counter tables exist once per shard; the view's dictionary is
            // already the *union* of the per-shard slices, so count it once.
            const std::size_t dict = s.dictionary().memory_bytes();
            return (s.memory_bytes() - dict) * engine_.num_shards() + dict;
        });
    }

    result_set frequent_items(error_mode mode, double threshold) const override {
        return with_view([&](const sketch_type& snap) {
            auto rows =
                text_rows(snap.frequent_items(mode, facade_threshold<W>(threshold)));
            const double err =
                result_error(static_cast<double>(snap.maximum_error()), rows);
            return result_set(mode, threshold,
                              static_cast<double>(snap.total_weight()), err,
                              std::move(rows));
        });
    }
    result_set top_items(std::size_t m) const override {
        return with_view([&](const sketch_type& snap) {
            auto rows = text_rows(snap.top_items(m));
            const double err =
                result_error(static_cast<double>(snap.maximum_error()), rows);
            return result_set(error_mode::no_false_negatives, 0.0,
                              static_cast<double>(snap.total_weight()), err,
                              std::move(rows));
        });
    }

    // Stream-complete canonical image (single unioned dictionary segment),
    // byte-identical to what the restored standalone summary re-saves.
    summary_bytes save() override {
        flush();
        if (engine_.snapshot_service_enabled()) {
            return envelope_save(*engine_.acquire_snapshot());
        }
        return envelope_save(engine_.snapshot());
    }

    void merge_from(const summarizer_impl&) override {
        FREQ_REQUIRE(false,
                     "sharded summarizers ingest through feeders; merge their "
                     "snapshot() instead");
    }

    std::unique_ptr<summarizer_impl> snapshot() const override {
        return std::make_unique<text_summarizer<W, L>>(desc_, engine_.snapshot());
    }

    std::string to_string() const override {
        const auto st = engine_.stats();
        return "sharded_text_summarizer(shards=" + std::to_string(engine_.num_shards()) +
               ", k=" + std::to_string(desc_.sketch.max_counters) +
               ", applied=" + std::to_string(st.updates_applied) +
               ", spellings=" + std::to_string(st.spellings_applied) +
               ", stalls=" + std::to_string(st.ring_full_stalls) + ")";
    }

private:
    class engine_feeder final : public feeder_impl {
    public:
        explicit engine_feeder(typename engine_type::producer p) : producer_(std::move(p)) {}
        void push(std::uint64_t, double) override { wrong_key_kind("text", "u64"); }
        void push(std::string_view item, double weight) override {
            producer_.push(item, facade_weight<W>(weight));
        }
        void flush() override { producer_.flush(); }

    private:
        typename engine_type::producer producer_;
    };

    typename engine_type::producer& main() {
        if (!main_.has_value()) {
            main_.emplace(engine_.make_producer());
        }
        return *main_;
    }

    template <typename F>
    auto with_view(F&& f) const {
        if (engine_.snapshot_service_enabled()) {
            const auto view = engine_.acquire_snapshot();
            return f(*view);
        }
        const sketch_type snap = engine_.snapshot();
        return f(snap);
    }

    summary_descriptor desc_;
    engine_type engine_;
    std::optional<typename engine_type::producer> main_;  ///< scalar-update handle
    std::uint64_t now_ = 0;
};

}  // namespace detail

// --- the fluent builder ------------------------------------------------------

class builder {
public:
    // --- key / weight kinds --------------------------------------------------

    builder& keys(key_kind k) {
        keys_ = k;
        return *this;
    }
    builder& u64_keys() { return keys(key_kind::u64); }
    builder& text_keys() { return keys(key_kind::text); }

    /// Weight kind; when unset, counts — promoted to real automatically by
    /// fading(), whose decayed counts are fractional.
    builder& weights(weight_kind w) {
        weights_ = w;
        return *this;
    }
    builder& counts() { return weights(weight_kind::counts); }
    builder& real_weights() { return weights(weight_kind::real); }

    // --- sketch knobs --------------------------------------------------------

    builder& max_counters(std::uint32_t k) {
        sketch_.max_counters = k;
        return *this;
    }
    builder& sample_size(std::uint32_t l) {
        sketch_.sample_size = l;
        return *this;
    }
    builder& decrement_quantile(double q) {
        sketch_.decrement_quantile = q;
        return *this;
    }
    builder& seed(std::uint64_t s) {
        sketch_.seed = s;
        return *this;
    }
    /// Replaces every sketch knob at once (lifetime parameters included;
    /// the lifetime *choice* still comes from plain()/fading()/…).
    builder& config(const sketch_config& cfg) {
        sketch_ = cfg;
        return *this;
    }

    // --- lifetime policy -----------------------------------------------------

    builder& plain() {
        lifetime_ = lifetime_kind::plain;
        return *this;
    }
    /// FDCMSS-style time-fading counts: after t ticks an update counts
    /// weight·ρ^t. Implies real weights unless counts were forced.
    builder& fading(double decay) {
        lifetime_ = lifetime_kind::fading;
        sketch_.decay = decay;
        return *this;
    }
    /// Sliding window of the last \p epochs ticks, evicted exactly.
    builder& sliding_window(std::uint32_t epochs) {
        lifetime_ = lifetime_kind::windowed;
        sketch_.window_epochs = epochs;
        return *this;
    }

    // --- algorithm -----------------------------------------------------------

    /// Which sketch algorithm the summarizer runs (default: the paper's).
    /// The baselines (baselines/backend_summaries.h) count u64 keys in
    /// table storage; count_min and space_saving also support fading(),
    /// count_sketch is plain/counts only. See the file comment.
    builder& algorithm(algo a) {
        algo_ = a;
        return *this;
    }

    // --- counter storage -----------------------------------------------------

    /// How the paper sketch stores counters: `storage::table` (the default
    /// open-addressed array) or `storage::map` (node-map with exact-median
    /// decrements: slower, but carries the deterministic Theorem 2 bound —
    /// u64 keys, no window, no sharding).
    builder& storage(freq::storage s) {
        backend_ = s;
        return *this;
    }
    /// \deprecated Spelling kept for source compatibility; use
    /// `storage(freq::storage::table)`.
    builder& table_backend() { return storage(freq::storage::table); }
    /// \deprecated Spelling kept for source compatibility; use
    /// `storage(freq::storage::map)`.
    builder& map_backend() { return storage(freq::storage::map); }

    // --- engine sharding -----------------------------------------------------

    /// Routes ingestion through the sharded concurrent engine: \p shards
    /// worker-owned sketches fed over SPSC rings by up to \p producers
    /// concurrent feeders. u64 and text keys (text ships fingerprints on
    /// the hot path and a per-shard spelling dictionary on a side lane).
    builder& sharded(std::uint32_t shards, std::uint32_t producers = 1) {
        sharded_ = true;
        engine_.num_shards = shards;
        engine_.num_producers = producers;
        return *this;
    }
    /// Engine tuning knobs wholesale (ring capacity, batch sizes); implies
    /// sharded(). The engine's sketch config is taken from this builder.
    builder& engine(const engine_config& cfg) {
        sharded_ = true;
        engine_ = cfg;
        return *this;
    }

    /// Starts the built summarizer with the async snapshot service on:
    /// queries answer from a cached double-buffered view republished every
    /// \p interval instead of folding per call (see
    /// summarizer::enable_snapshot_service). Requires sharded ingestion.
    builder& snapshot_every(std::chrono::microseconds interval) {
        snapshot_interval_ = interval;
        return *this;
    }

    // --- memory placement ----------------------------------------------------

    /// NUMA shard placement for sharded ingestion (engine_config::numa):
    /// `numa_policy::interleave` pins each shard's worker round-robin
    /// across the host's nodes and constructs the shard's memory there
    /// (first-touch locality). Results never change — only page placement
    /// and worker affinity. No-op for standalone summaries, single-node
    /// hosts and FREQ_NUMA=OFF builds.
    builder& numa(freq::numa_policy p) {
        engine_.numa = p;
        return *this;
    }

    /// Advise transparent huge pages on the summary's large backing
    /// buffers — counter-table arrays, engine rings, spelling arenas.
    /// Applies to sharded and standalone summaries alike; hosts without
    /// THP silently ignore the advice (freq_mem_hugepage_regions_total
    /// counts the regions actually advised).
    builder& hugepages(bool on = true) {
        hugepages_ = on;
        return *this;
    }

    // --- materialization -----------------------------------------------------

    summarizer build() const {
        summary_descriptor d;
        d.algorithm = algo_;
        d.keys = keys_;
        d.lifetime = lifetime_;
        d.backend = backend_;
        d.sketch = sketch_;
        d.weights = weights_.has_value()
                        ? *weights_
                        : (lifetime_ == lifetime_kind::fading ? weight_kind::real
                                                              : weight_kind::counts);
        FREQ_REQUIRE(d.lifetime != lifetime_kind::fading || d.weights == weight_kind::real,
                     "fading summaries need real weights (decayed counts are "
                     "fractional); drop counts() or use real_weights()");
        FREQ_REQUIRE(d.backend != backend_kind::map || d.keys == key_kind::u64,
                     "the map storage takes u64 keys (text keys are table-stored)");
        FREQ_REQUIRE(d.backend != backend_kind::map || d.lifetime != lifetime_kind::windowed,
                     "the map storage has no sliding-window policy; use the table "
                     "storage for windows");
        FREQ_REQUIRE(!sharded_ || d.backend == backend_kind::table,
                     "sharded ingestion requires the table storage");
        if (d.algorithm != algo::paper) {
            FREQ_REQUIRE(d.keys == key_kind::u64,
                         "the baseline algorithms count u64 keys; text keys need "
                         "algorithm(algo::paper)");
            FREQ_REQUIRE(d.backend == backend_kind::table,
                         "the storage axis tunes the paper sketch; the baseline "
                         "algorithms bring their own structures (use storage::table)");
            FREQ_REQUIRE(d.lifetime != lifetime_kind::windowed,
                         "the sliding-window policy is paper-only; count_min and "
                         "space_saving support fading(), count_sketch is plain");
        }
        if (d.algorithm == algo::count_sketch) {
            FREQ_REQUIRE(d.weights == weight_kind::counts &&
                             d.lifetime == lifetime_kind::plain,
                         "count_sketch keeps signed integer cells: counts weights "
                         "and the plain lifetime only");
        }
        FREQ_REQUIRE(!snapshot_interval_.has_value() || sharded_,
                     "snapshot_every() caches the sharded engine's fold; add "
                     ".sharded(...) or drop it for direct standalone reads");
        if (sharded_) {
            engine_config ecfg = engine_;
            ecfg.sketch = d.sketch;
            ecfg.hugepages = ecfg.hugepages || hugepages_;
            // One slot beyond the user's producer budget is reserved for
            // the summarizer's internal scalar-update producer, so calling
            // update() never consumes a feeder slot.
            ecfg.num_producers += 1;
            summarizer s(make_engine(d, ecfg));
            if (snapshot_interval_.has_value()) {
                s.enable_snapshot_service(*snapshot_interval_);
            }
            return s;
        }
        // Standalone summaries get the hugepage half of the hints; NUMA
        // locality is moot (the sketch lives wherever the caller's thread
        // first-touches it).
        return summarizer(make_standalone(d, mem::placement{hugepages_, -1}));
    }

private:
    /// Constructs a sketch, forwarding placement hints to backends that
    /// accept them (the paper-sketch family); config-only backends skip
    /// the hugepage advice.
    template <typename Sketch>
    static Sketch construct_sketch(const sketch_config& cfg, const mem::placement& place) {
        if constexpr (std::is_constructible_v<Sketch, const sketch_config&,
                                              const mem::placement&>) {
            return Sketch(cfg, place);
        } else {
            (void)place;
            return Sketch(cfg);
        }
    }

    template <typename Sketch>
    static std::unique_ptr<detail::summarizer_impl> standalone(
        const summary_descriptor& d, const mem::placement& place) {
        return std::make_unique<detail::u64_summarizer<Sketch>>(
            d, construct_sketch<Sketch>(d.sketch, place));
    }

    template <typename W, typename L>
    static std::unique_ptr<detail::summarizer_impl> text(const summary_descriptor& d,
                                                         const mem::placement& place) {
        return std::make_unique<detail::text_summarizer<W, L>>(
            d, string_frequent_items<W, L>(d.sketch, place));
    }

    template <typename W, typename L>
    static std::unique_ptr<detail::summarizer_impl> map(const summary_descriptor& d,
                                                        const mem::placement& place) {
        using sketch_type = generic_frequent_items<std::uint64_t, W, std::hash<std::uint64_t>,
                                                   std::equal_to<std::uint64_t>, L>;
        return std::make_unique<detail::u64_summarizer<sketch_type>>(
            d, construct_sketch<sketch_type>(d.sketch, place));
    }

    template <typename Sketch>
    static std::unique_ptr<detail::summarizer_impl> engine_impl(const summary_descriptor& d,
                                                                const engine_config& cfg) {
        return std::make_unique<detail::engine_summarizer<Sketch>>(d, cfg);
    }

    template <typename W, typename L>
    static std::unique_ptr<detail::summarizer_impl> engine_text(const summary_descriptor& d,
                                                                const engine_config& cfg) {
        return std::make_unique<detail::engine_text_summarizer<W, L>>(d, cfg);
    }

    /// Baseline-algorithm instantiations (u64 keys, table storage, plain or
    /// — for count_min / space_saving — fading; build() vetted the combo).
    static std::unique_ptr<detail::summarizer_impl> make_baseline(
        const summary_descriptor& d, const mem::placement& place) {
        const bool real = d.weights == weight_kind::real;
        switch (d.algorithm) {
            case algo::count_min:
                if (d.lifetime == lifetime_kind::fading) {
                    return standalone<count_min_summary<double, exponential_fading>>(d, place);
                }
                return real
                           ? standalone<count_min_summary<double, plain_lifetime>>(d, place)
                           : standalone<count_min_summary<std::uint64_t, plain_lifetime>>(d, place);
            case algo::count_sketch:
                return standalone<count_sketch_summary>(d, place);
            default:  // algo::space_saving
                if (d.lifetime == lifetime_kind::fading) {
                    return standalone<space_saving_summary<double, exponential_fading>>(d, place);
                }
                return real ? standalone<space_saving_summary<double, plain_lifetime>>(d, place)
                            : standalone<
                                  space_saving_summary<std::uint64_t, plain_lifetime>>(d, place);
        }
    }

    static std::unique_ptr<detail::summarizer_impl> engine_baseline(
        const summary_descriptor& d, const engine_config& cfg) {
        const bool real = d.weights == weight_kind::real;
        switch (d.algorithm) {
            case algo::count_min:
                if (d.lifetime == lifetime_kind::fading) {
                    return engine_impl<count_min_summary<double, exponential_fading>>(d,
                                                                                      cfg);
                }
                return real ? engine_impl<count_min_summary<double, plain_lifetime>>(d, cfg)
                            : engine_impl<count_min_summary<std::uint64_t, plain_lifetime>>(
                                  d, cfg);
            case algo::count_sketch:
                return engine_impl<count_sketch_summary>(d, cfg);
            default:  // algo::space_saving
                if (d.lifetime == lifetime_kind::fading) {
                    return engine_impl<space_saving_summary<double, exponential_fading>>(
                        d, cfg);
                }
                return real
                           ? engine_impl<space_saving_summary<double, plain_lifetime>>(d, cfg)
                           : engine_impl<
                                 space_saving_summary<std::uint64_t, plain_lifetime>>(d, cfg);
        }
    }

    static std::unique_ptr<detail::summarizer_impl> make_standalone(
        const summary_descriptor& d, const mem::placement& place) {
        if (d.algorithm != algo::paper) {
            return make_baseline(d, place);
        }
        const bool real = d.weights == weight_kind::real;
        switch (d.keys) {
            case key_kind::u64:
                if (d.backend == backend_kind::map) {
                    switch (d.lifetime) {
                        case lifetime_kind::plain:
                            return real ? map<double, plain_lifetime>(d, place)
                                        : map<std::uint64_t, plain_lifetime>(d, place);
                        default:
                            return map<double, exponential_fading>(d, place);
                    }
                }
                switch (d.lifetime) {
                    case lifetime_kind::plain:
                        return real ? standalone<basic_frequent_items<
                                          std::uint64_t, double, plain_lifetime>>(d, place)
                                    : standalone<basic_frequent_items<
                                          std::uint64_t, std::uint64_t, plain_lifetime>>(d, place);
                    case lifetime_kind::fading:
                        return standalone<
                            basic_frequent_items<std::uint64_t, double, exponential_fading>>(
                            d, place);
                    default:
                        return real ? standalone<basic_frequent_items<std::uint64_t, double,
                                                                      epoch_window>>(d, place)
                                    : standalone<basic_frequent_items<
                                          std::uint64_t, std::uint64_t, epoch_window>>(d, place);
                }
            default:
                switch (d.lifetime) {
                    case lifetime_kind::plain:
                        return real ? text<double, plain_lifetime>(d, place)
                                    : text<std::uint64_t, plain_lifetime>(d, place);
                    case lifetime_kind::fading:
                        return text<double, exponential_fading>(d, place);
                    default:
                        return real ? text<double, epoch_window>(d, place)
                                    : text<std::uint64_t, epoch_window>(d, place);
                }
        }
    }

    static std::unique_ptr<detail::summarizer_impl> make_engine(
        const summary_descriptor& d, const engine_config& cfg) {
        if (d.algorithm != algo::paper) {
            return engine_baseline(d, cfg);
        }
        const bool real = d.weights == weight_kind::real;
        if (d.keys == key_kind::text) {
            switch (d.lifetime) {
                case lifetime_kind::plain:
                    return real ? engine_text<double, plain_lifetime>(d, cfg)
                                : engine_text<std::uint64_t, plain_lifetime>(d, cfg);
                case lifetime_kind::fading:
                    return engine_text<double, exponential_fading>(d, cfg);
                default:
                    return real ? engine_text<double, epoch_window>(d, cfg)
                                : engine_text<std::uint64_t, epoch_window>(d, cfg);
            }
        }
        switch (d.lifetime) {
            case lifetime_kind::plain:
                return real
                           ? engine_impl<basic_frequent_items<std::uint64_t, double,
                                                              plain_lifetime>>(d, cfg)
                           : engine_impl<basic_frequent_items<std::uint64_t, std::uint64_t,
                                                              plain_lifetime>>(d, cfg);
            case lifetime_kind::fading:
                return engine_impl<basic_frequent_items<std::uint64_t, double,
                                                        exponential_fading>>(d, cfg);
            default:
                return real ? engine_impl<basic_frequent_items<std::uint64_t, double,
                                                               epoch_window>>(d, cfg)
                            : engine_impl<basic_frequent_items<std::uint64_t, std::uint64_t,
                                                               epoch_window>>(d, cfg);
        }
    }

    sketch_config sketch_{};
    engine_config engine_{};
    algo algo_ = algo::paper;
    key_kind keys_ = key_kind::u64;
    std::optional<weight_kind> weights_;
    lifetime_kind lifetime_ = lifetime_kind::plain;
    backend_kind backend_ = backend_kind::table;
    bool sharded_ = false;
    bool hugepages_ = false;
    std::optional<std::chrono::microseconds> snapshot_interval_;
};

// --- envelope -> summarizer --------------------------------------------------

/// Materializes a standalone summarizer from envelope bytes — the inverse
/// of summarizer::save(). The instantiation is chosen by the envelope's
/// descriptor at runtime; \p max_accepted_counters bounds allocations for
/// untrusted bytes (see envelope_load).
inline summarizer restore_summary(const summary_bytes& b,
                                  std::uint32_t max_accepted_counters = 1u << 28) {
    const summary_descriptor& d = b.descriptor();
    const bool real = d.weights == weight_kind::real;
    auto u64_impl = [&](auto tag) -> std::unique_ptr<detail::summarizer_impl> {
        using sketch_type = typename decltype(tag)::type;
        return std::make_unique<detail::u64_summarizer<sketch_type>>(
            d, envelope_load<sketch_type>(b, max_accepted_counters));
    };
    auto text_impl = [&](auto tag) -> std::unique_ptr<detail::summarizer_impl> {
        using sketch_type = typename decltype(tag)::type;
        return std::make_unique<detail::text_summarizer<
            typename sketch_type::weight_type, typename sketch_type::lifetime_policy>>(
            d, envelope_load<sketch_type>(b, max_accepted_counters));
    };
    // The algorithm tag routes first: baseline envelopes are always
    // u64-keyed and table-stored (parse_header enforced the combination).
    if (d.algorithm != algo::paper) {
        switch (d.algorithm) {
            case algo::count_min:
                if (d.lifetime == lifetime_kind::fading) {
                    return summarizer(u64_impl(
                        std::type_identity<count_min_summary<double, exponential_fading>>{}));
                }
                return summarizer(
                    real ? u64_impl(std::type_identity<
                                    count_min_summary<double, plain_lifetime>>{})
                         : u64_impl(std::type_identity<
                                    count_min_summary<std::uint64_t, plain_lifetime>>{}));
            case algo::count_sketch:
                return summarizer(u64_impl(std::type_identity<count_sketch_summary>{}));
            default:  // algo::space_saving
                if (d.lifetime == lifetime_kind::fading) {
                    return summarizer(u64_impl(std::type_identity<
                                               space_saving_summary<double,
                                                                    exponential_fading>>{}));
                }
                return summarizer(
                    real ? u64_impl(std::type_identity<
                                    space_saving_summary<double, plain_lifetime>>{})
                         : u64_impl(std::type_identity<
                                    space_saving_summary<std::uint64_t, plain_lifetime>>{}));
        }
    }
    if (d.keys == key_kind::u64 && d.backend == backend_kind::map) {
        switch (d.lifetime) {
            case lifetime_kind::plain:
                return summarizer(
                    real ? u64_impl(std::type_identity<generic_frequent_items<
                                        std::uint64_t, double, std::hash<std::uint64_t>,
                                        std::equal_to<std::uint64_t>, plain_lifetime>>{})
                         : u64_impl(std::type_identity<generic_frequent_items<
                                        std::uint64_t, std::uint64_t,
                                        std::hash<std::uint64_t>,
                                        std::equal_to<std::uint64_t>, plain_lifetime>>{}));
            default:
                return summarizer(
                    u64_impl(std::type_identity<generic_frequent_items<
                                 std::uint64_t, double, std::hash<std::uint64_t>,
                                 std::equal_to<std::uint64_t>, exponential_fading>>{}));
        }
    }
    if (d.keys == key_kind::u64) {
        switch (d.lifetime) {
            case lifetime_kind::plain:
                return summarizer(
                    real ? u64_impl(std::type_identity<basic_frequent_items<
                                        std::uint64_t, double, plain_lifetime>>{})
                         : u64_impl(std::type_identity<basic_frequent_items<
                                        std::uint64_t, std::uint64_t, plain_lifetime>>{}));
            case lifetime_kind::fading:
                return summarizer(u64_impl(
                    std::type_identity<basic_frequent_items<std::uint64_t, double,
                                                            exponential_fading>>{}));
            default:
                return summarizer(
                    real ? u64_impl(std::type_identity<basic_frequent_items<
                                        std::uint64_t, double, epoch_window>>{})
                         : u64_impl(std::type_identity<basic_frequent_items<
                                        std::uint64_t, std::uint64_t, epoch_window>>{}));
        }
    }
    switch (d.lifetime) {
        case lifetime_kind::plain:
            return summarizer(
                real ? text_impl(
                           std::type_identity<string_frequent_items<double, plain_lifetime>>{})
                     : text_impl(std::type_identity<
                                 string_frequent_items<std::uint64_t, plain_lifetime>>{}));
        case lifetime_kind::fading:
            return summarizer(text_impl(
                std::type_identity<string_frequent_items<double, exponential_fading>>{}));
        default:
            return summarizer(
                real ? text_impl(
                           std::type_identity<string_frequent_items<double, epoch_window>>{})
                     : text_impl(std::type_identity<
                                 string_frequent_items<std::uint64_t, epoch_window>>{}));
    }
}

/// Convenience overload for raw bytes fresh off the wire.
inline summarizer restore_summary(std::vector<std::uint8_t> bytes,
                                  std::uint32_t max_accepted_counters = 1u << 28) {
    return restore_summary(summary_bytes::wrap(std::move(bytes)), max_accepted_counters);
}

}  // namespace freq

#endif  // FREQ_API_BUILDER_H
