#ifndef FREQ_API_SUMMARIZER_H
#define FREQ_API_SUMMARIZER_H

/// \file summarizer.h
/// The runtime-configurable façade over the template layer: a `summarizer`
/// is a type-erased handle to any summary instantiation — key type, weight
/// type, lifetime policy, storage backend and optional engine sharding are
/// all *runtime* choices made by `freq::builder` (api/builder.h) — behind a
/// small-vtable interface a service can hold in config-driven code.
///
/// The contract mirrors the template layer one-to-one, so nothing is lost
/// behind the erasure:
///   * update()/tick() ingest and age exactly like the underlying summary;
///     weights cross the boundary as double (u64 counts are exact to 2^53).
///   * frequent_items(error_mode, threshold) answers threshold-mode queries
///     under either §1.2 guarantee and returns a `result_set` carrying the
///     N / error-envelope metadata needed to interpret the rows.
///   * save() emits the unified serde envelope (api/summary_bytes.h);
///     restore_summary (api/builder.h) materializes the right instantiation
///     from bytes alone.
///   * make_feeder() hands out concurrent ingestion handles: one feeder per
///     thread, backed by real engine producers when the summarizer is
///     sharded (and by the summary itself, for single-threaded use, when
///     not).
///
/// Zero-overhead users keep the template layer (see freq.h for the
/// boundary): the façade costs one virtual dispatch per call, which the
/// batched update(span) path amortizes to nothing — BENCH_api.json records
/// the measured gap.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "api/result_set.h"
#include "api/summary_bytes.h"
#include "common/contracts.h"
#include "obs/pipeline_metrics.h"
#include "obs/registry.h"
#include "stream/update.h"

namespace freq {

namespace detail {

/// The erased ingestion handle behind summarizer::feeder.
struct feeder_impl {
    virtual ~feeder_impl() = default;
    virtual void push(std::uint64_t id, double weight) = 0;
    virtual void push(std::string_view item, double weight) = 0;
    virtual void flush() = 0;
};

/// The erased summary behind summarizer. One concrete subclass exists per
/// (key kind × weight kind × lifetime × backend × engine) instantiation the
/// builder can materialize (api/builder.h).
struct summarizer_impl {
    virtual ~summarizer_impl() = default;

    virtual const summary_descriptor& descriptor() const noexcept = 0;
    virtual bool sharded() const noexcept = 0;

    // --- ingestion (single-threaded; feeders for concurrency) ---------------
    virtual void update(std::uint64_t id, double weight) = 0;
    virtual void update(std::string_view item, double weight) = 0;
    virtual void update(std::span<const update64> batch) = 0;
    virtual std::unique_ptr<feeder_impl> make_feeder() = 0;
    virtual void flush() = 0;

    // --- lifetime -----------------------------------------------------------
    virtual void tick(std::uint64_t epochs) = 0;
    virtual std::uint64_t now() const = 0;

    // --- cached read path (engine-backed summarizers only) -------------------
    // Default: standalone summaries answer queries directly from their own
    // state — there is no fold to cache — so enabling is rejected and the
    // service reads as off.
    virtual void enable_snapshot_service(std::chrono::microseconds) {
        FREQ_REQUIRE(false,
                     "the snapshot service caches the sharded engine's fold; this "
                     "summarizer is standalone — build it with .sharded(...)");
    }
    virtual void disable_snapshot_service() {}
    virtual bool snapshot_service_enabled() const noexcept { return false; }
    virtual std::uint64_t snapshot_epoch() const { return 0; }

    // --- point queries ------------------------------------------------------
    virtual double estimate(std::uint64_t id) const = 0;
    virtual double estimate(std::string_view item) const = 0;
    virtual double lower_bound(std::uint64_t id) const = 0;
    virtual double lower_bound(std::string_view item) const = 0;
    virtual double upper_bound(std::uint64_t id) const = 0;
    virtual double upper_bound(std::string_view item) const = 0;
    virtual double total_weight() const = 0;
    virtual double maximum_error() const = 0;
    virtual std::uint32_t num_counters() const = 0;
    virtual std::uint32_t capacity() const = 0;
    virtual std::size_t memory_bytes() const = 0;

    // --- set queries --------------------------------------------------------
    virtual result_set frequent_items(error_mode mode, double threshold) const = 0;
    virtual result_set top_items(std::size_t m) const = 0;

    // --- serde / merge / snapshot -------------------------------------------
    // save() is non-const: an engine-backed summary drains its staged
    // updates first so the bytes are stream-complete.
    virtual summary_bytes save() = 0;
    virtual void merge_from(const summarizer_impl& other) = 0;
    virtual std::unique_ptr<summarizer_impl> snapshot() const = 0;

    virtual std::string to_string() const = 0;
};

}  // namespace detail

/// A movable, type-erased frequent-items summary. Construct one with
/// freq::builder (api/builder.h) or freq::restore_summary; a
/// default-constructed summarizer is empty and only valid() / assignment
/// may be called on it.
class summarizer {
public:
    /// A single-threaded ingestion handle; distinct feeders may run on
    /// distinct threads concurrently. For a sharded summarizer each feeder
    /// wraps a real engine producer (wait-free SPSC hand-off); for a
    /// standalone one it forwards to the summary and concurrency must be
    /// external. Destruction flushes; feeders must not outlive their
    /// summarizer.
    class feeder {
    public:
        explicit feeder(std::unique_ptr<detail::feeder_impl> impl)
            : impl_(std::move(impl)) {}

        void push(std::uint64_t id, double weight = 1.0) {
            impl_->push(id, weight);
            obs::pipeline().facade_updates.add(1);
        }
        void push(std::string_view item, double weight = 1.0) {
            impl_->push(item, weight);
            obs::pipeline().facade_updates.add(1);
        }

        /// Makes everything pushed so far visible to queries (for a sharded
        /// summarizer: published to the shard rings; pair with
        /// summarizer::flush() for an applied-barrier).
        void flush() { impl_->flush(); }

    private:
        std::unique_ptr<detail::feeder_impl> impl_;
    };

    summarizer() = default;
    explicit summarizer(std::unique_ptr<detail::summarizer_impl> impl)
        : impl_(std::move(impl)) {}

    summarizer(summarizer&&) noexcept = default;
    summarizer& operator=(summarizer&&) noexcept = default;
    summarizer(const summarizer&) = delete;
    summarizer& operator=(const summarizer&) = delete;

    bool valid() const noexcept { return impl_ != nullptr; }

    /// The runtime type tags + config this summarizer was built with.
    const summary_descriptor& descriptor() const { return checked().descriptor(); }

    /// Whether ingestion runs through the sharded concurrent engine.
    bool sharded() const { return checked().sharded(); }

    // --- ingestion -----------------------------------------------------------

    /// Processes one weighted update. Single-threaded (use feeders for
    /// concurrent ingestion). Throws when the key kind does not match the
    /// summary (u64 update on a text summary and vice versa).
    void update(std::uint64_t id, double weight = 1.0) {
        checked().update(id, weight);
        obs::pipeline().facade_updates.add(1);
    }
    void update(std::string_view item, double weight = 1.0) {
        checked().update(item, weight);
        obs::pipeline().facade_updates.add(1);
    }

    /// Batched fast path — forwards whole runs to the template layer's
    /// span ingest, amortizing the virtual dispatch (and the telemetry
    /// bookkeeping: one counter add per batch) to one call per batch.
    void update(std::span<const update64> batch) {
        checked().update(batch);
        obs::pipeline().facade_updates.add(batch.size());
    }

    /// Concurrent ingestion handle (see feeder).
    feeder make_feeder() { return feeder(checked().make_feeder()); }

    /// Barrier: everything already pushed (and flushed) by feeders is
    /// applied before this returns. No-op for standalone summaries.
    void flush() { checked().flush(); }

    // --- lifetime ------------------------------------------------------------

    /// Advances the lifetime policy's logical clock (decay step for fading,
    /// window rotation for windowed, no-op for plain).
    void tick(std::uint64_t epochs = 1) { checked().tick(epochs); }

    /// Current logical clock (0 for plain summaries).
    std::uint64_t now() const { return checked().now(); }

    // --- cached read path ----------------------------------------------------

    /// Opt-in for sharded summarizers: starts the engine's background
    /// snapshot publisher (engine/snapshot_service.h) so point and set
    /// queries answer from a cached double-buffered view — a pointer
    /// acquire instead of an O(k·S) fold per call — at a staleness bounded
    /// by \p interval. flush() and tick() republish synchronously, so the
    /// flush-then-query discipline still observes everything flushed.
    /// Throws for standalone summarizers (their reads are already direct).
    void enable_snapshot_service(std::chrono::microseconds interval) {
        checked().enable_snapshot_service(interval);
    }

    /// Returns reads to fold-on-demand. No-op when the service is off or
    /// the summarizer is standalone.
    void disable_snapshot_service() { checked().disable_snapshot_service(); }

    /// Whether queries are currently served from the cached view.
    bool snapshot_service_enabled() const { return checked().snapshot_service_enabled(); }

    /// Publish sequence number of the cached view (0 when the service is
    /// off): strictly increases with every publish, so two reads with equal
    /// epochs observed the same consistent fold.
    std::uint64_t snapshot_epoch() const { return checked().snapshot_epoch(); }

    // --- point queries -------------------------------------------------------

    double estimate(std::uint64_t id) const {
        obs::scoped_timer t(obs::pipeline().facade_estimate_latency_ns);
        return checked().estimate(id);
    }
    double estimate(std::string_view item) const {
        obs::scoped_timer t(obs::pipeline().facade_estimate_latency_ns);
        return checked().estimate(item);
    }
    double lower_bound(std::uint64_t id) const { return checked().lower_bound(id); }
    double lower_bound(std::string_view item) const { return checked().lower_bound(item); }
    double upper_bound(std::uint64_t id) const { return checked().upper_bound(id); }
    double upper_bound(std::string_view item) const { return checked().upper_bound(item); }

    /// N — total (policy-aged) weight summarized so far.
    double total_weight() const { return checked().total_weight(); }

    /// The a-posteriori error envelope: every estimate is within this of
    /// the truth, and threshold queries are exact outside a band this wide.
    double maximum_error() const { return checked().maximum_error(); }

    std::uint32_t num_counters() const { return checked().num_counters(); }
    std::uint32_t capacity() const { return checked().capacity(); }
    std::size_t memory_bytes() const { return checked().memory_bytes(); }

    // --- threshold-mode set queries ------------------------------------------

    /// All items whose chosen bound strictly exceeds \p threshold, sorted by
    /// descending estimate, with the metadata needed to interpret them (see
    /// result_set). With mode = no_false_negatives and threshold = φ·N this
    /// returns every (φ, ε)-heavy hitter.
    result_set frequent_items(error_mode mode, double threshold) const {
        obs::scoped_timer t(obs::pipeline().facade_frequent_items_latency_ns);
        return checked().frequent_items(mode, threshold);
    }

    /// Threshold-free overload using maximum_error() — the tightest
    /// threshold for which the chosen guarantee is meaningful.
    result_set frequent_items(error_mode mode) const {
        obs::scoped_timer t(obs::pipeline().facade_frequent_items_latency_ns);
        return checked().frequent_items(mode, checked().maximum_error());
    }

    /// The (up to) m largest estimates in descending order. No threshold
    /// guarantee: ranks within maximum_error() of each other may swap.
    result_set top_items(std::size_t m) const {
        obs::scoped_timer t(obs::pipeline().facade_top_items_latency_ns);
        return checked().top_items(m);
    }

    // --- serde / merge / snapshot --------------------------------------------

    /// Serializes the current state into the unified envelope. For a
    /// sharded summarizer this flushes and snapshots first, so the bytes
    /// are a stream-complete standalone summary.
    summary_bytes save() const { return checked().save(); }

    /// Algorithm 5 across the façade: folds \p other into this summary.
    /// Both must be standalone with equal descriptors (a sharded summarizer
    /// merges by snapshotting — see snapshot()).
    void merge(const summarizer& other) {
        FREQ_REQUIRE(other.valid(), "cannot merge an empty summarizer");
        checked().merge_from(*other.impl_);
    }

    /// A consistent point-in-time standalone copy: for a sharded summarizer
    /// the engine's merged snapshot, otherwise a plain copy. The result is
    /// always mergeable and saveable.
    summarizer snapshot() const { return summarizer(checked().snapshot()); }

    std::string to_string() const {
        return valid() ? impl_->to_string() : std::string("summarizer(empty)");
    }

    // --- telemetry -----------------------------------------------------------

    /// Point-in-time copy of the process-wide telemetry registry
    /// (obs/registry.h): every instrument family the pipeline exports —
    /// ring, shard, sketch-maintenance, spelling, snapshot-service and
    /// façade layers — renderable as Prometheus text exposition
    /// (.to_prometheus()) or JSON (.to_json()). Instruments are
    /// process-lifetime totals shared by every summarizer; callable on an
    /// empty summarizer too. Empty when built with -DFREQ_OBS_OFF.
    static obs::registry_snapshot telemetry() { return obs::registry::global().collect(); }

private:
    detail::summarizer_impl& checked() const {
        FREQ_REQUIRE(impl_ != nullptr, "operation on an empty summarizer");
        return *impl_;
    }

    std::unique_ptr<detail::summarizer_impl> impl_;
};

}  // namespace freq

#endif  // FREQ_API_SUMMARIZER_H
