#ifndef FREQ_API_RESULT_SET_H
#define FREQ_API_RESULT_SET_H

/// \file result_set.h
/// The façade's query result: a self-describing view over a threshold-mode
/// heavy-hitter query. Where the template layer returns bare rows, a
/// result_set also carries the metadata needed to *interpret* them — which
/// error mode answered the query, the threshold it was run against, the
/// stream weight N it is relative to, and the summary's a-posteriori error
/// envelope — so a service endpoint can serialize the answer (or render a
/// UI) without holding a reference back to the summary.
///
/// Error-mode semantics (§1.2's (φ, ε) guarantee; the same contract Apache
/// DataSketches exposes):
///
///   no_false_positives — items whose *lower* bound clears the threshold.
///       Every returned item truly exceeds it; near-threshold items may be
///       missed (misses are confined to (threshold − max_error, threshold]).
///   no_false_negatives — items whose *upper* bound clears the threshold.
///       Every item truly above it is returned; some returned items may
///       actually sit in (threshold − max_error, threshold].

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/sketch_config.h"

namespace freq {

/// The façade's name for the query error mode. Identical to the template
/// layer's error_type — `error_mode::no_false_positives` and
/// `error_type::no_false_positives` interconvert freely.
using error_mode = error_type;

/// One reported heavy hitter, with the key spelled both ways: `id` is the
/// 64-bit key (or the fingerprint, for text summaries) and `item` is the
/// human-readable form (decimal digits for u64 keys, the spelling for text
/// keys). Weights are presented as double across the façade; u64 counts are
/// exact up to 2^53.
struct result_row {
    std::uint64_t id = 0;
    std::string item;
    double estimate = 0.0;     ///< §2.3.1 hybrid estimate (= upper bound)
    double lower_bound = 0.0;  ///< never exceeds the true frequency
    double upper_bound = 0.0;  ///< never below the true frequency
};

/// An immutable set of heavy-hitter rows plus the query's error envelope.
class result_set {
public:
    result_set() = default;

    result_set(error_mode mode, double threshold, double total_weight, double max_error,
               std::vector<result_row> rows)
        : rows_(std::move(rows)),
          threshold_(threshold),
          total_weight_(total_weight),
          max_error_(max_error),
          mode_(mode) {}

    // --- rows (sorted by descending estimate) --------------------------------

    const std::vector<result_row>& rows() const noexcept { return rows_; }
    std::size_t size() const noexcept { return rows_.size(); }
    bool empty() const noexcept { return rows_.empty(); }
    const result_row& operator[](std::size_t i) const noexcept { return rows_[i]; }
    auto begin() const noexcept { return rows_.begin(); }
    auto end() const noexcept { return rows_.end(); }

    // --- interpretation metadata ---------------------------------------------

    /// Which guarantee this result was computed under.
    error_mode mode() const noexcept { return mode_; }

    /// The absolute-weight threshold the query ran against.
    double threshold() const noexcept { return threshold_; }

    /// The threshold as a fraction φ of the stream weight (0 when N = 0).
    double phi() const noexcept {
        return total_weight_ > 0.0 ? threshold_ / total_weight_ : 0.0;
    }

    /// N — the summary's total (policy-aged) stream weight at query time.
    double total_weight() const noexcept { return total_weight_; }

    /// The query's a-posteriori error envelope: every row's upper_bound −
    /// lower_bound is at most this, and the mode's possible misses / extras
    /// are confined to (threshold − maximum_error, threshold]. At least the
    /// summary's own bound; windowed summaries answer set queries through
    /// an epoch fold that can widen row envelopes, which is reflected here.
    double maximum_error() const noexcept { return max_error_; }

    std::string to_string() const {
        return std::string("result_set(") +
               (mode_ == error_mode::no_false_positives ? "no_false_positives"
                                                        : "no_false_negatives") +
               ", rows=" + std::to_string(rows_.size()) +
               ", threshold=" + std::to_string(threshold_) +
               ", N=" + std::to_string(total_weight_) +
               ", max_error=" + std::to_string(max_error_) + ")";
    }

private:
    std::vector<result_row> rows_;
    double threshold_ = 0.0;
    double total_weight_ = 0.0;
    double max_error_ = 0.0;
    error_mode mode_ = error_mode::no_false_negatives;
};

}  // namespace freq

#endif  // FREQ_API_RESULT_SET_H
