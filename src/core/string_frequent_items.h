#ifndef FREQ_CORE_STRING_FREQUENT_ITEMS_H
#define FREQ_CORE_STRING_FREQUENT_ITEMS_H

/// \file string_frequent_items.h
/// Frequent items over string identifiers — the tf-idf / text-mining use
/// case of §1.2 (real-valued weights over words) and the closest analogue of
/// Apache DataSketches' generic frequent_items_sketch<std::string>.
///
/// Strings are fingerprinted to 64 bits (FNV-1a) so the hot path runs on the
/// same parallel-array table as the integer sketch; a side dictionary
/// remembers the spelling of currently-tracked fingerprints so results are
/// human-readable. The dictionary is pruned lazily whenever it grows past
/// 4x the sketch capacity, keeping memory O(k · avg string length).
///
/// Fingerprint collisions merge two strings' counts; at 64 bits the chance
/// any pair among k tracked items collides is ~k²/2⁶⁵ (≈1e-11 for k = 2¹⁵),
/// the standard trade DataSketches also makes for string keys.
///
/// The adapter is a thin layer over the policy-templated core: pick a
/// Lifetime (core/lifetime_policy.h) to get plain, time-fading or
/// sliding-window semantics over the same fingerprint + dictionary scheme —
/// e.g. string_frequent_items<double, exponential_fading> for fading word
/// counts. The plain default is the pre-policy sketch, unchanged.

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/basic_frequent_items.h"
#include "core/frequent_items_sketch.h"
#include "core/lifetime_policy.h"
#include "hashing/hash.h"

namespace freq {

template <typename W = double, typename Lifetime = plain_lifetime>
class string_frequent_items {
    /// The plain instantiation routes through frequent_items_sketch so the
    /// serialization-capable type stays reachable; other lifetimes sit on
    /// the policy core directly.
    using inner_sketch =
        std::conditional_t<std::is_same_v<Lifetime, plain_lifetime>,
                           frequent_items_sketch<std::uint64_t, W>,
                           basic_frequent_items<std::uint64_t, W, Lifetime>>;

public:
    using weight_type = W;
    using lifetime_policy = Lifetime;

    struct row {
        std::string item;
        W estimate;
        W lower_bound;
        W upper_bound;
    };

    explicit string_frequent_items(std::uint32_t max_counters, std::uint64_t seed = 0)
        : string_frequent_items(sketch_config{.max_counters = max_counters, .seed = seed}) {}

    /// Full-config constructor — needed to reach the lifetime knobs
    /// (sketch_config::decay / window_epochs).
    explicit string_frequent_items(const sketch_config& cfg) : sketch_(cfg) {
        // Prune headroom must cover every simultaneously trackable
        // fingerprint: a windowed sketch tracks up to k per live epoch, so a
        // per-epoch-k threshold would leave the dictionary permanently over
        // budget and re-scan it on nearly every update.
        const std::uint64_t trackable =
            static_cast<std::uint64_t>(cfg.max_counters) *
            (Lifetime::windowed ? cfg.window_epochs : 1u);
        prune_limit_ = 4ull * trackable;
        dict_.reserve(cfg.max_counters * 2);
    }

    void update(std::string_view item, W weight = W{1}) {
        const std::uint64_t fp = fnv1a64(item);
        sketch_.update(fp, weight);
        // Remember the spelling while the item is tracked. Known spellings
        // skip the tracked-check entirely, and admission can only have
        // happened in the current epoch, so a windowed sketch probes one
        // epoch table, not all window_epochs of them (an id tracked only in
        // an older epoch got its dictionary entry when that epoch admitted
        // it, and prune() removes window-wide-untracked fingerprints only).
        if (!dict_.contains(fp) && tracked_now(fp)) {
            dict_.emplace(fp, item);
            if (dict_.size() > prune_limit_) {
                prune();
            }
        }
    }

    /// Advances the lifetime policy's logical clock (no-op for plain).
    void tick(std::uint64_t epochs = 1) { sketch_.tick(epochs); }

    /// Current logical clock (ticks since construction; 0 for plain).
    std::uint64_t now() const noexcept {
        if constexpr (Lifetime::windowed) {
            return sketch_.now();
        } else if constexpr (Lifetime::decaying) {
            return sketch_.policy().now();
        } else {
            return 0;
        }
    }

    /// Algorithm 5 for string summaries: merges the fingerprint sketches
    /// (policy-aware — clocks align, windows fold epoch-wise) and unions
    /// the spelling dictionaries, pruning if the union overflows.
    void merge(const string_frequent_items& other) {
        sketch_.merge(other.sketch_);
        for (const auto& [fp, spelling] : other.dict_) {
            dict_.try_emplace(fp, spelling);
        }
        if (dict_.size() > prune_limit_) {
            prune();
        }
    }

    W estimate(std::string_view item) const { return sketch_.estimate(fnv1a64(item)); }
    W lower_bound(std::string_view item) const { return sketch_.lower_bound(fnv1a64(item)); }
    W upper_bound(std::string_view item) const { return sketch_.upper_bound(fnv1a64(item)); }
    W maximum_error() const noexcept { return sketch_.maximum_error(); }
    W total_weight() const noexcept { return sketch_.total_weight(); }
    std::uint32_t capacity() const noexcept { return sketch_.capacity(); }
    std::uint32_t num_counters() const noexcept { return sketch_.num_counters(); }

    /// Heavy hitters with their spellings, sorted by descending estimate.
    std::vector<row> frequent_items(error_type et, W threshold) const {
        std::vector<row> out;
        for (const auto& r : sketch_.frequent_items(et, threshold)) {
            const auto it = dict_.find(r.id);
            // Tracked items always have a dictionary entry (inserted on the
            // update that admitted them and pruned only when untracked).
            out.push_back(row{it != dict_.end() ? it->second : std::string("<unknown>"),
                              r.estimate, r.lower_bound, r.upper_bound});
        }
        return out;
    }

    std::vector<row> frequent_items(error_type et) const {
        return frequent_items(et, sketch_.maximum_error());
    }

    /// The (up to) m tracked items with the largest estimates, spelled out,
    /// in descending order — same contract as the core sketch's top_items.
    std::vector<row> top_items(std::size_t m) const {
        std::vector<row> out;
        for (const auto& r : sketch_.top_items(m)) {
            const auto it = dict_.find(r.id);
            out.push_back(row{it != dict_.end() ? it->second : std::string("<unknown>"),
                              r.estimate, r.lower_bound, r.upper_bound});
        }
        return out;
    }

    /// Sketch bytes plus dictionary footprint (keys + string storage).
    std::size_t memory_bytes() const noexcept {
        std::size_t dict_bytes = 0;
        for (const auto& [fp, s] : dict_) {
            dict_bytes += sizeof(fp) + sizeof(std::string) + s.capacity();
        }
        return sketch_.memory_bytes() + dict_bytes;
    }

private:
    friend struct summary_serde_access;

    /// Whether the most recent update for \p fp can have admitted it — the
    /// current epoch for a windowed sketch, the whole table otherwise.
    bool tracked_now(std::uint64_t fp) const {
        if constexpr (Lifetime::windowed) {
            return sketch_.current_epoch().lower_bound(fp) > W{0};
        } else {
            return sketch_.lower_bound(fp) > W{0};
        }
    }

    void prune() {
        for (auto it = dict_.begin(); it != dict_.end();) {
            if (sketch_.lower_bound(it->first) == W{0}) {
                it = dict_.erase(it);
            } else {
                ++it;
            }
        }
    }

    inner_sketch sketch_;
    std::unordered_map<std::uint64_t, std::string> dict_;
    std::uint64_t prune_limit_ = 0;  ///< 4x the simultaneously trackable ids
};

}  // namespace freq

#endif  // FREQ_CORE_STRING_FREQUENT_ITEMS_H
