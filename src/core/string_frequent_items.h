#ifndef FREQ_CORE_STRING_FREQUENT_ITEMS_H
#define FREQ_CORE_STRING_FREQUENT_ITEMS_H

/// \file string_frequent_items.h
/// Frequent items over string identifiers — the tf-idf / text-mining use
/// case of §1.2 (real-valued weights over words) and the closest analogue of
/// Apache DataSketches' generic frequent_items_sketch<std::string>.
///
/// Since the fingerprint/dictionary split (see
/// core/fingerprint_frequent_items.h) this is an alias: strings are
/// FNV-1a-fingerprinted to 64 bits so the hot path runs on the same
/// parallel-array table as the integer sketch, and a detachable
/// spelling_dictionary remembers the spelling of currently-tracked
/// fingerprints so results are human-readable. The split is what lets text
/// keys ingest through the sharded engine: fixed-size fingerprint records
/// ride the SPSC rings while each shard owns the dictionary slice for the
/// keys routed to it (engine/stream_engine.h).
///
/// Pick a Lifetime (core/lifetime_policy.h) to get plain, time-fading or
/// sliding-window semantics over the same fingerprint + dictionary scheme —
/// e.g. string_frequent_items<double, exponential_fading> for fading word
/// counts. The plain default keeps the pre-split behavior, unchanged.

#include <string>

#include "core/fingerprint_frequent_items.h"
#include "core/lifetime_policy.h"

namespace freq {

template <typename W = double, typename Lifetime = plain_lifetime>
using string_frequent_items = fingerprint_frequent_items<std::string, W, Lifetime>;

}  // namespace freq

#endif  // FREQ_CORE_STRING_FREQUENT_ITEMS_H
