#ifndef FREQ_CORE_SKETCH_CONFIG_H
#define FREQ_CORE_SKETCH_CONFIG_H

/// \file sketch_config.h
/// Tuning knobs of the frequent-items sketch (Algorithm 4 of the paper).

#include <cstdint>

namespace freq {

/// How heavy-hitter extraction trades false positives against false
/// negatives (§1.2's (φ, ε) guarantee; same contract as Apache DataSketches).
enum class error_type {
    /// Return only items whose *lower* bound clears the threshold: every
    /// returned item is a true heavy hitter, but some true heavy hitters
    /// near the threshold may be missed.
    no_false_positives,
    /// Return every item whose *upper* bound clears the threshold: all true
    /// heavy hitters are returned, plus possibly a few near-threshold items.
    no_false_negatives,
};

/// Configuration of frequent_items_sketch.
///
/// The defaults reproduce the paper's deployed configuration: decrement by
/// the **median** (quantile 0.5) of **l = 1024** sampled counters (§2.3.2).
/// Setting decrement_quantile = 0 yields the SMIN variant; intermediate
/// values trace out the Fig. 3 speed/error tradeoff curve.
struct sketch_config {
    /// k — maximum number of tracked counters. The backing table allocates
    /// ceil_pow2(4k/3) slots of 18 bytes each (§2.3.3).
    std::uint32_t max_counters = 1024;

    /// q ∈ [0, 1): which sample quantile DecrementCounters() subtracts.
    /// 0.5 = SMED (the paper's algorithm), 0 = SMIN.
    double decrement_quantile = 0.5;

    /// l — number of counters sampled (with replacement) per decrement.
    /// The paper's numerical analysis fixes 1024 (§2.3.2).
    std::uint32_t sample_size = 1024;

    /// Seeds both the table hash and the counter-sampling PRNG. Two sketches
    /// constructed with different seeds use independent hash functions,
    /// which §3.2's note recommends for merging.
    std::uint64_t seed = 0;

    // --- lifetime-policy knobs (see core/lifetime_policy.h) -----------------
    // Ignored by the plain policy, so every pre-policy construction site and
    // designated initializer keeps its exact meaning.

    /// ρ ∈ (0, 1] — per-tick survival factor for the exponential_fading
    /// policy (FDCMSS-style time-fading counts): after t ticks an update
    /// contributes weight·ρ^t. 1.0 disables fading.
    double decay = 1.0;

    /// Ring size (number of epoch sub-summaries) for the epoch_window
    /// policy: queries cover the current epoch plus the window_epochs − 1
    /// preceding ones; older epochs are evicted exactly.
    std::uint32_t window_epochs = 4;

    /// Field-wise equality — the compatibility check of the runtime façade
    /// (api/builder.h): summaries merge only when their configs agree.
    friend bool operator==(const sketch_config&, const sketch_config&) = default;
};

}  // namespace freq

#endif  // FREQ_CORE_SKETCH_CONFIG_H
