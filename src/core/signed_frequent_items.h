#ifndef FREQ_CORE_SIGNED_FREQUENT_ITEMS_H
#define FREQ_CORE_SIGNED_FREQUENT_ITEMS_H

/// \file signed_frequent_items.h
/// Deletion support via sketch pairing — the construction described in the
/// §1.3 Note of the paper: run one counter-based summary over the positive
/// updates and a second over the absolute values of the negative updates;
/// estimate f_i as the difference of the two estimates. By the triangle
/// inequality the error is the sum of the two sketches' errors, i.e.
/// proportional to Σ|Δ_j| instead of Σ Δ_j — suitable whenever deletions
/// are a modest fraction of traffic (the strict turnstile regime where
/// counter-based summaries can still beat linear sketches).

#include <cstdint>
#include <type_traits>

#include "common/contracts.h"
#include "core/frequent_items_sketch.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::int64_t>
class signed_frequent_items {
    static_assert(std::is_signed_v<W>, "signed_frequent_items needs a signed weight type");
    using magnitude = std::conditional_t<std::is_floating_point_v<W>, W, std::uint64_t>;

public:
    using key_type = K;
    using weight_type = W;

    explicit signed_frequent_items(std::uint32_t max_counters, std::uint64_t seed = 0)
        : inserts_(sketch_config{.max_counters = max_counters, .seed = seed}),
          deletes_(sketch_config{.max_counters = max_counters, .seed = seed + 1}) {}

    /// Processes (id, weight) where weight may be negative (a deletion).
    void update(K id, W weight) {
        if (weight >= W{0}) {
            inserts_.update(id, static_cast<magnitude>(weight));
        } else {
            deletes_.update(id, static_cast<magnitude>(-weight));
        }
    }

    /// f̂_i = positive estimate − negative estimate (may be negative due to
    /// estimation error even when the true frequency is non-negative).
    W estimate(K id) const {
        return static_cast<W>(inserts_.estimate(id)) - static_cast<W>(deletes_.estimate(id));
    }

    W lower_bound(K id) const {
        return static_cast<W>(inserts_.lower_bound(id)) -
               static_cast<W>(deletes_.upper_bound(id));
    }

    W upper_bound(K id) const {
        return static_cast<W>(inserts_.upper_bound(id)) -
               static_cast<W>(deletes_.lower_bound(id));
    }

    /// Combined error bound: the sum of both sketches' maximum errors
    /// (triangle inequality, §1.3 Note).
    W maximum_error() const {
        return static_cast<W>(inserts_.maximum_error()) +
               static_cast<W>(deletes_.maximum_error());
    }

    /// Net stream weight N = Σ Δ_j; gross weight is Σ |Δ_j|.
    W net_weight() const {
        return static_cast<W>(inserts_.total_weight()) -
               static_cast<W>(deletes_.total_weight());
    }
    magnitude gross_weight() const {
        return inserts_.total_weight() + deletes_.total_weight();
    }

    void merge(const signed_frequent_items& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        inserts_.merge(other.inserts_);
        deletes_.merge(other.deletes_);
    }

    std::size_t memory_bytes() const noexcept {
        return inserts_.memory_bytes() + deletes_.memory_bytes();
    }

    const frequent_items_sketch<K, magnitude>& insert_sketch() const noexcept {
        return inserts_;
    }
    const frequent_items_sketch<K, magnitude>& delete_sketch() const noexcept {
        return deletes_;
    }

private:
    frequent_items_sketch<K, magnitude> inserts_;
    frequent_items_sketch<K, magnitude> deletes_;
};

}  // namespace freq

#endif  // FREQ_CORE_SIGNED_FREQUENT_ITEMS_H
