#ifndef FREQ_CORE_SIGNED_FREQUENT_ITEMS_H
#define FREQ_CORE_SIGNED_FREQUENT_ITEMS_H

/// \file signed_frequent_items.h
/// Deletion support via sketch pairing — the construction described in the
/// §1.3 Note of the paper: run one counter-based summary over the positive
/// updates and a second over the absolute values of the negative updates;
/// estimate f_i as the difference of the two estimates. By the triangle
/// inequality the error is the sum of the two sketches' errors, i.e.
/// proportional to Σ|Δ_j| instead of Σ Δ_j — suitable whenever deletions
/// are a modest fraction of traffic (the strict turnstile regime where
/// counter-based summaries can still beat linear sketches).
///
/// A thin adapter over the policy-templated core: the Lifetime parameter
/// (core/lifetime_policy.h) applies the same aging to both halves of the
/// pair, so e.g. signed_frequent_items<K, double, exponential_fading> gives
/// time-fading net counts with the pairing argument intact (the triangle
/// inequality holds per tick).

#include <cstdint>
#include <type_traits>

#include "common/contracts.h"
#include "core/basic_frequent_items.h"
#include "core/frequent_items_sketch.h"
#include "core/lifetime_policy.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::int64_t,
          typename Lifetime = plain_lifetime>
class signed_frequent_items {
    static_assert(std::is_signed_v<W>, "signed_frequent_items needs a signed weight type");
    using magnitude = std::conditional_t<std::is_floating_point_v<W>, W, std::uint64_t>;
    /// Plain pairs keep the serialization-capable sketch type; other
    /// lifetimes sit on the policy core directly.
    using inner_sketch = std::conditional_t<std::is_same_v<Lifetime, plain_lifetime>,
                                            frequent_items_sketch<K, magnitude>,
                                            basic_frequent_items<K, magnitude, Lifetime>>;

public:
    using key_type = K;
    using weight_type = W;
    using lifetime_policy = Lifetime;

    explicit signed_frequent_items(std::uint32_t max_counters, std::uint64_t seed = 0)
        : signed_frequent_items(sketch_config{.max_counters = max_counters, .seed = seed}) {}

    /// Full-config constructor — needed to reach the lifetime knobs
    /// (sketch_config::decay / window_epochs).
    explicit signed_frequent_items(const sketch_config& cfg)
        : inserts_(cfg), deletes_(shifted_seed(cfg)) {}

    /// Processes (id, weight) where weight may be negative (a deletion).
    void update(K id, W weight) {
        if (weight >= W{0}) {
            inserts_.update(id, static_cast<magnitude>(weight));
        } else {
            deletes_.update(id, static_cast<magnitude>(-weight));
        }
    }

    /// Advances both halves' logical clocks together (no-op for plain).
    void tick(std::uint64_t epochs = 1) {
        inserts_.tick(epochs);
        deletes_.tick(epochs);
    }

    /// f̂_i = positive estimate − negative estimate (may be negative due to
    /// estimation error even when the true frequency is non-negative).
    W estimate(K id) const {
        return static_cast<W>(inserts_.estimate(id)) - static_cast<W>(deletes_.estimate(id));
    }

    W lower_bound(K id) const {
        return static_cast<W>(inserts_.lower_bound(id)) -
               static_cast<W>(deletes_.upper_bound(id));
    }

    W upper_bound(K id) const {
        return static_cast<W>(inserts_.upper_bound(id)) -
               static_cast<W>(deletes_.lower_bound(id));
    }

    /// Combined error bound: the sum of both sketches' maximum errors
    /// (triangle inequality, §1.3 Note).
    W maximum_error() const {
        return static_cast<W>(inserts_.maximum_error()) +
               static_cast<W>(deletes_.maximum_error());
    }

    /// Net stream weight N = Σ Δ_j; gross weight is Σ |Δ_j|.
    W net_weight() const {
        return static_cast<W>(inserts_.total_weight()) -
               static_cast<W>(deletes_.total_weight());
    }
    magnitude gross_weight() const {
        return inserts_.total_weight() + deletes_.total_weight();
    }

    void merge(const signed_frequent_items& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        inserts_.merge(other.inserts_);
        deletes_.merge(other.deletes_);
    }

    std::size_t memory_bytes() const noexcept {
        return inserts_.memory_bytes() + deletes_.memory_bytes();
    }

    const inner_sketch& insert_sketch() const noexcept { return inserts_; }
    const inner_sketch& delete_sketch() const noexcept { return deletes_; }

private:
    /// The delete half runs with seed + 1 so the pair's tables use
    /// independent hash functions (same convention as before the policy
    /// layer).
    static sketch_config shifted_seed(sketch_config cfg) {
        cfg.seed += 1;
        return cfg;
    }

    inner_sketch inserts_;
    inner_sketch deletes_;
};

}  // namespace freq

#endif  // FREQ_CORE_SIGNED_FREQUENT_ITEMS_H
