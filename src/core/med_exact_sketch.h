#ifndef FREQ_CORE_MED_EXACT_SKETCH_H
#define FREQ_CORE_MED_EXACT_SKETCH_H

/// \file med_exact_sketch.h
/// Algorithm 3 of the paper — the "initial proposal" MED: the Reduce-By-
/// Median-Counter extension of Misra-Gries, which decrements by the *exact*
/// k*-th largest counter value (k* = k/2 by default) computed with
/// Quickselect over a scratch copy of all counters.
///
/// The paper keeps this algorithm for exposition and then abandons it for
/// SMED (Algorithm 4) because of two concrete costs, both deliberately
/// preserved here so the ablation bench can measure them (§2.2):
///  * an extra k words of scratch space during every DecrementCounters(),
///    nearly doubling peak memory;
///  * an extra full pass over the summary per decrement to find the k*-th
///    largest counter.
///
/// Its compensating virtue is determinism: Theorem 2's error bound
///     0 ≤ f_i − lower_bound(i) ≤ N^res(j) / (k* − j)   for all j < k*
/// holds unconditionally (no sampling failure probability), which the test
/// suite exercises directly.

#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.h"
#include "select/quickselect.h"
#include "stream/update.h"
#include "table/counter_table.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t>
class med_exact_sketch {
public:
    using key_type = K;
    using weight_type = W;

    /// \param max_counters  k
    /// \param rank          k* — decrement by the k*-th largest counter
    ///                      (counting multiplicity); defaults to k/2.
    explicit med_exact_sketch(std::uint32_t max_counters, std::uint32_t rank = 0,
                              std::uint64_t seed = 0)
        : table_(max_counters, seed),
          rank_(rank == 0 ? std::max<std::uint32_t>(1, max_counters / 2) : rank) {
        FREQ_REQUIRE(max_counters >= 1, "sketch needs at least one counter");
        FREQ_REQUIRE(rank_ >= 1 && rank_ <= max_counters, "k* must be in [1, k]");
        scratch_.reserve(max_counters);
    }

    void update(K id, W weight) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        total_weight_ += weight;
        ingest(id, weight);
    }

    void update(K id) { update(id, W{1}); }

    void consume(const update_stream<K, W>& stream) {
        for (const auto& u : stream) {
            update(u.id, u.weight);
        }
    }

    /// Offset hybrid estimate, as in frequent_items_sketch (§2.3.1).
    W estimate(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? *c + offset_ : W{0};
    }

    /// The Algorithm 3 estimate: the raw counter (never exceeds f_i).
    W lower_bound(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? *c : W{0};
    }

    W upper_bound(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? *c + offset_ : offset_;
    }

    W maximum_error() const noexcept { return offset_; }
    W total_weight() const noexcept { return total_weight_; }
    std::uint32_t num_counters() const noexcept { return table_.size(); }
    std::uint32_t capacity() const noexcept { return table_.capacity(); }
    std::uint32_t rank() const noexcept { return rank_; }
    std::uint64_t num_decrements() const noexcept { return num_decrements_; }

    /// Table bytes plus the scratch buffer Algorithm 3 needs — the §2.2
    /// "extra k words" show up here, unlike in frequent_items_sketch.
    std::size_t memory_bytes() const noexcept {
        return table_.memory_bytes() + scratch_.capacity() * sizeof(W);
    }

    template <typename F>
    void for_each(F&& f) const {
        table_.for_each(std::forward<F>(f));
    }

    /// Algorithm 5 applied to MED — Theorem 5's setting.
    void merge(const med_exact_sketch& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        const W combined_weight = total_weight_ + other.total_weight_;
        other.table_.for_each([&](K id, W c) { ingest(id, c); });
        offset_ += other.offset_;
        total_weight_ = combined_weight;
    }

private:
    void ingest(K id, W weight) {
        if (W* c = table_.find(id)) {
            *c += weight;
            return;
        }
        if (!table_.full()) {
            table_.upsert(id, weight);
            return;
        }
        const W cstar = decrement_counters();
        if (weight > cstar) {
            table_.upsert(id, weight - cstar);
        }
    }

    /// Lines 15-20 of Algorithm 3: c_{k*} = the k*-th largest counter value,
    /// found by Quickselect over a scratch copy (the extra pass + extra k
    /// words the paper calls out in §2.2).
    W decrement_counters() {
        scratch_.clear();
        table_.for_each([&](K, W c) { scratch_.push_back(c); });
        FREQ_EXPECTS(scratch_.size() == table_.capacity());
        const W cstar = quickselect_largest(std::span<W>(scratch_), rank_ - 1);
        FREQ_ENSURES(cstar > W{0});
        table_.decrement_all(cstar);
        offset_ += cstar;
        ++num_decrements_;
        return cstar;
    }

    counter_table<K, W> table_;
    std::uint32_t rank_;
    std::vector<W> scratch_;
    W offset_{0};
    W total_weight_{0};
    std::uint64_t num_decrements_ = 0;
};

}  // namespace freq

#endif  // FREQ_CORE_MED_EXACT_SKETCH_H
