#ifndef FREQ_CORE_BASIC_FREQUENT_ITEMS_H
#define FREQ_CORE_BASIC_FREQUENT_ITEMS_H

/// \file basic_frequent_items.h
/// The shared counter-maintenance core of every frequent-items summary in
/// this codebase: Algorithm 4's claim/increment/decrement-by-sampled-median
/// loop, the O(L) purge, and the O(k) in-place merge of Algorithm 5 — written
/// once over counter_table and parameterized by a LifetimePolicy
/// (lifetime_policy.h) that decides how tracked weight ages:
///
///   basic_frequent_items<K, W, plain_lifetime>     — the paper's sketch;
///       every policy hook compiles away, so this is bit-identical (same RNG
///       consumption, same table state) to the pre-policy implementation.
///   basic_frequent_items<K, W, exponential_fading> — FDCMSS-style
///       time-fading counts via forward decay; requires a floating-point W.
///   basic_frequent_items<K, W, epoch_window>       — sliding window as a
///       ring of plain sub-summaries (partial specialization below) with
///       O(k·window) merge-on-query and exact epoch eviction.
///
/// frequent_items_sketch derives from the plain instantiation and adds
/// serialization; string/signed adapters choose their policy per template
/// parameter; the sharded engine (engine/stream_engine.h) is templated on
/// the sketch type, so all three lifetimes ingest through the same
/// SPSC-ring/batched-drain path.

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "core/counter_maintenance.h"
#include "core/lifetime_policy.h"
#include "obs/pipeline_metrics.h"
#include "core/sketch_config.h"
#include "random/xoshiro.h"
#include "select/quickselect.h"
#include "stream/update.h"
#include "table/counter_table.h"

namespace freq {

/// Raw-state accessor of the versioned serde envelope (api/summary_bytes.h):
/// the one friend through which serialization reads and restores counter
/// tables, offsets and policy clocks without widening the public surface.
struct summary_serde_access;

template <typename K = std::uint64_t, typename W = std::uint64_t,
          typename LifetimePolicy = plain_lifetime>
class basic_frequent_items {
    static_assert(!LifetimePolicy::windowed,
                  "epoch_window instantiates the ring specialization below");
    static_assert(!LifetimePolicy::decaying || std::is_floating_point_v<W>,
                  "exponential_fading requires a floating-point weight type "
                  "(decayed counts are fractional)");

public:
    using key_type = K;
    using weight_type = W;
    using lifetime_policy = LifetimePolicy;

    /// One reported heavy hitter (see frequent_items()).
    struct row {
        K id;
        W estimate;     ///< §2.3.1 hybrid estimate (= upper bound for tracked items)
        W lower_bound;  ///< raw counter: never exceeds the true frequency
        W upper_bound;  ///< counter + offset: never below the true frequency

        friend bool operator==(const row&, const row&) = default;
    };

    /// Sketch with k = \p max_counters and the paper's default policy
    /// (sample median of l = 1024, i.e. SMED).
    explicit basic_frequent_items(std::uint32_t max_counters)
        : basic_frequent_items(sketch_config{.max_counters = max_counters}) {}

    /// \p place carries the memory-placement hints of common/mem.h straight
    /// into the counter_table allocation (huge-page advice before first
    /// fault; NUMA locality via construction on a pinned thread). Hints
    /// never affect results and are not part of merge compatibility.
    explicit basic_frequent_items(const sketch_config& cfg,
                                  const mem::placement& place = {})
        : cfg_(cfg),
          table_(cfg.max_counters, cfg.seed, place),
          rng_(mix64(cfg.seed ^ 0xa076'1d64'78bd'642fULL)) {
        FREQ_REQUIRE(cfg.max_counters >= 1, "sketch needs at least one counter");
        FREQ_REQUIRE(cfg.decrement_quantile >= 0.0 && cfg.decrement_quantile < 1.0,
                     "decrement quantile must be in [0, 1)");
        // The upper bound keeps hostile serialized images (untrusted input in
        // the §3 merging architecture) from driving huge allocations.
        FREQ_REQUIRE(cfg.sample_size >= 1 && cfg.sample_size <= (1u << 20),
                     "sample size must be in [1, 2^20]");
        sample_buf_.resize(cfg.sample_size);
        policy_.configure(cfg);
    }

    /// Re-applies placement hints to the backing table (see counter_table).
    void apply_placement(const mem::placement& place) noexcept {
        table_.apply_placement(place);
    }

    // --- stream ingestion ---------------------------------------------------

    /// Processes the weighted update (id, weight). Amortized O(1).
    /// weight = 0 is a no-op; negative weights are rejected (§1.3's note:
    /// handle deletions with a second sketch, not negative updates).
    void update(K id, W weight) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        if constexpr (LifetimePolicy::decaying) {
            weight = static_cast<W>(weight * policy_.inflation());
        }
        total_weight_ += weight;
        ingest(id, weight);
    }

    /// Unit-weight convenience overload.
    void update(K id) { update(id, W{1}); }

    /// Batched fast path: processes a whole run of updates with the
    /// per-call bookkeeping hoisted out of the loop — total weight
    /// accumulates in a register and is folded into the sketch once, and
    /// table probes run in blocks through counter_table::find_batch, which
    /// issues every home-slot prefetch for a block up front and then group-
    /// probes each key (four slots per compare under the SIMD layout), so
    /// the block's cache misses overlap instead of serializing. Tracked
    /// keys — the overwhelming case on heavy-hitter workloads — then bump
    /// their counter through the already-resolved pointer; misses take the
    /// ordinary ingest path. Semantically identical to calling
    /// update(id, weight) for each element in order (same table state, same
    /// RNG consumption); this is the path the sharded engine's workers
    /// drain ring batches through.
    void update(std::span<const freq::update<K, W>> batch) {
        // Validate the whole batch before touching any state, so a rejected
        // weight cannot leave the sketch with counters not yet reflected in
        // total_weight_ (the element-wise path validates-then-mutates per
        // element; this keeps the all-or-nothing boundary at the batch).
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            for (const auto& u : batch) {
                FREQ_REQUIRE(u.weight >= W{0}, "update weights must be non-negative");
            }
        }
        static constexpr std::size_t block = 16;
        const std::size_t n = batch.size();
        W added{0};
        std::array<K, block> ids;
        std::array<W*, block> hits;
        for (std::size_t base = 0; base < n; base += block) {
            const std::size_t m = std::min(block, n - base);
            for (std::size_t j = 0; j < m; ++j) {
                ids[j] = batch[base + j].id;
            }
            table_.find_batch(ids.data(), m, hits.data());
            // One probe-length sample per block keeps the histogram honest
            // about clustering without a per-item record on the hot path.
            for (std::size_t j = 0; j < m; ++j) {
                if (hits[j] != nullptr) {
                    obs::pipeline().table_probe_length.record(
                        table_.probe_length_of(hits[j]) - 1u);
                    break;
                }
            }
            // The resolved pointers stay valid across upserts (the table
            // never reallocates) but not across a decrement round, which
            // compacts entries in place — fall back to ingest() for the
            // rest of the block if one fires.
            const std::uint64_t decs = num_decrements_;
            for (std::size_t j = 0; j < m; ++j) {
                W weight = batch[base + j].weight;
                if (weight == W{0}) {
                    continue;
                }
                if constexpr (LifetimePolicy::decaying) {
                    weight = static_cast<W>(weight * policy_.inflation());
                }
                added += weight;
                W* c = hits[j];
                if (c != nullptr && num_decrements_ == decs) {
                    *c += weight;
                } else {
                    ingest(ids[j], weight);
                }
            }
        }
        total_weight_ += added;
    }

    void consume(const update_stream<K, W>& stream) {
        update(std::span<const freq::update<K, W>>(stream.data(), stream.size()));
    }

    // --- lifetime ------------------------------------------------------------

    /// Advances the policy's logical clock by \p epochs ticks. A no-op for
    /// the plain policy; O(1) per single tick for exponential_fading
    /// (amortizing the rare O(L) renormalization pass), and one O(L) pass
    /// total for a bulk jump of any size.
    void tick(std::uint64_t epochs = 1) {
        if constexpr (LifetimePolicy::decaying) {
            if (epochs == 0) {
                return;
            }
            if (epochs == 1) {
                if (policy_.tick()) {
                    renormalize();
                }
                return;
            }
            // Bulk jump (catch-up after idle, merge clock alignment): fold
            // the landmark rebase and the rho^epochs decay into one O(L)
            // pass — per-tick looping would renormalize O(epochs / 40)
            // times, and separate rebase + decay passes would sweep twice.
            const double rebase = policy_.renormalize();
            policy_.jump(epochs);
            const double factor =
                rebase * std::pow(policy_.decay(), static_cast<double>(epochs));
            if (!(factor > 0.0)) {
                // rho^epochs underflowed: every counter decays below any
                // representable weight.
                table_.clear();
                offset_ = W{0};
                total_weight_ = W{0};
            } else if (factor < 1.0) {
                table_.scale_all(factor);
                offset_ = static_cast<W>(offset_ * factor);
                total_weight_ = static_cast<W>(total_weight_ * factor);
            }
        } else {
            (void)epochs;
        }
    }

    const LifetimePolicy& policy() const noexcept { return policy_; }

    // --- queries -------------------------------------------------------------

    /// The §2.3.1 hybrid estimate: c(i) + offset when tracked, else 0 — in
    /// decayed units under a fading policy.
    W estimate(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? present(*c + offset_) : W{0};
    }

    /// Never exceeds the true (policy-aged) frequency f_i.
    W lower_bound(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? present(*c) : W{0};
    }

    /// Never below the true (policy-aged) frequency f_i.
    W upper_bound(K id) const {
        const W* c = table_.find(id);
        return present(c != nullptr ? *c + offset_ : offset_);
    }

    /// The accumulated offset: an a-posteriori bound on the error of any
    /// estimate (upper_bound − lower_bound ≤ maximum_error() always).
    W maximum_error() const noexcept { return present(offset_); }

    /// N — total weight of all processed updates (including merged streams);
    /// the total *decayed* weight under a fading policy.
    W total_weight() const noexcept { return present(total_weight_); }

    std::uint32_t num_counters() const noexcept { return table_.size(); }
    std::uint32_t capacity() const noexcept { return table_.capacity(); }
    bool empty() const noexcept { return table_.empty(); }
    const sketch_config& config() const noexcept { return cfg_; }

    /// Bytes of counter storage (the equal-space comparisons of §4.3 budget
    /// on this figure; the sample buffer is excluded as the paper's space
    /// accounting counts summary state, and the buffer is O(l) = O(1)).
    std::size_t memory_bytes() const noexcept { return table_.memory_bytes(); }

    /// Storage cost for a hypothetical sketch with k counters — used by the
    /// benches to size algorithms for equal-space comparisons.
    static std::size_t bytes_for(std::uint32_t k) noexcept {
        return counter_table<K, W>::bytes_for(k);
    }

    /// Number of DecrementCounters() executions so far (instrumentation:
    /// Lemma 3 / Theorem 3 assert this is O(n/k)).
    std::uint64_t num_decrements() const noexcept { return num_decrements_; }

    /// All items whose bound (chosen by \p et) strictly exceeds \p threshold,
    /// sorted by descending estimate. With et = no_false_negatives and
    /// threshold = φ·N this returns every (φ, ε)-heavy hitter (§1.2).
    std::vector<row> frequent_items(error_type et, W threshold) const {
        std::vector<row> out;
        table_.for_each([&](K id, W c) {
            const W lb = present(c);
            const W ub = present(c + offset_);
            const W bound = et == error_type::no_false_positives ? lb : ub;
            if (bound > threshold) {
                out.push_back(row{id, ub, lb, ub});
            }
        });
        std::sort(out.begin(), out.end(),
                  [](const row& a, const row& b) { return a.estimate > b.estimate; });
        return out;
    }

    /// Threshold-free overload using maximum_error() as the threshold, the
    /// tightest value for which the chosen guarantee is meaningful.
    std::vector<row> frequent_items(error_type et) const {
        return frequent_items(et, maximum_error());
    }

    /// The (up to) m tracked items with the largest estimates, in descending
    /// order — the "top talkers" convenience query. No threshold guarantee:
    /// ranks within maximum_error() of each other may be swapped relative to
    /// the true ordering.
    std::vector<row> top_items(std::size_t m) const {
        std::vector<row> out;
        out.reserve(table_.size());
        table_.for_each([&](K id, W c) {
            out.push_back(row{id, present(c + offset_), present(c), present(c + offset_)});
        });
        std::sort(out.begin(), out.end(),
                  [](const row& a, const row& b) { return a.estimate > b.estimate; });
        if (out.size() > m) {
            out.resize(m);
        }
        return out;
    }

    /// Visits every tracked (id, raw_counter) pair. Raw counters are in
    /// storage units: for a fading policy divide by policy().inflation() to
    /// obtain decayed values (the bound accessors do this for you).
    template <typename F>
    void for_each(F&& f) const {
        table_.for_each(std::forward<F>(f));
    }

    // --- merging (Algorithm 5) -----------------------------------------------

    /// Merges \p other into this sketch: each of the other summary's raw
    /// counters becomes one weighted update here, iterated from a random
    /// slot (§3.2's note — front-to-back iteration with a shared hash
    /// function would overpopulate the front of this table), then offsets
    /// add. O(k) time, no allocation, arbitrary aggregation trees supported
    /// (Theorem 5). Under a fading policy the two summaries are first
    /// aligned on the later logical clock, so the merged sketch is exactly
    /// the fading summary of the interleaved streams.
    void merge(const basic_frequent_items& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        if constexpr (LifetimePolicy::decaying) {
            FREQ_REQUIRE(policy_.decay() == other.policy_.decay(),
                         "merging fading sketches requires equal decay factors");
            if (other.policy_.now() > policy_.now()) {
                tick(other.policy_.now() - policy_.now());
            }
            const double f = policy_.align_factor(other.policy_);
            const W combined_weight =
                total_weight_ + static_cast<W>(other.total_weight_ * f);
            if (!other.table_.empty()) {
                const auto start =
                    static_cast<std::uint32_t>(rng_.below(other.table_.num_slots()));
                other.table_.for_each_from(start, [&](K id, W c) {
                    const W v = static_cast<W>(c * f);
                    if (v > W{0}) {
                        ingest(id, v);
                    }
                });
            }
            offset_ += static_cast<W>(other.offset_ * f);
            total_weight_ = combined_weight;
        } else {
            const W combined_weight = total_weight_ + other.total_weight_;
            if (!other.table_.empty()) {
                const auto start =
                    static_cast<std::uint32_t>(rng_.below(other.table_.num_slots()));
                other.table_.for_each_from(start, [&](K id, W c) { ingest(id, c); });
            }
            offset_ += other.offset_;
            total_weight_ = combined_weight;
        }
    }

    /// Builds a summary directly from raw (id, counter) rows, bypassing the
    /// update path — the §3.1 merge baselines (merge_baselines.h) compute
    /// the merged counter set themselves. Rows must hold distinct ids and
    /// positive counters (at most cfg.max_counters), all in RAW storage
    /// units; under a fading policy the (now, inflation) pair names the
    /// landmark those units are relative to.
    static basic_frequent_items from_raw(const sketch_config& cfg,
                                         std::span<const std::pair<K, W>> rows, W offset,
                                         W total_weight, std::uint64_t now = 0,
                                         double inflation = 1.0) {
        FREQ_REQUIRE(rows.size() <= cfg.max_counters,
                     "from_raw row count exceeds sketch capacity");
        basic_frequent_items s(cfg);
        if constexpr (LifetimePolicy::decaying) {
            s.policy_.restore(now, inflation);
        } else {
            FREQ_REQUIRE(now == 0 && inflation == 1.0,
                         "plain summaries carry no lifetime clock");
        }
        for (const auto& [id, c] : rows) {
            FREQ_REQUIRE(c > W{0}, "from_raw counters must be positive");
            FREQ_REQUIRE(s.table_.find(id) == nullptr, "from_raw ids must be distinct");
            s.table_.upsert(id, c);
        }
        s.offset_ = offset;
        s.total_weight_ = total_weight;
        return s;
    }

    /// One-line human-readable summary (examples / debugging).
    std::string to_string() const {
        return "basic_frequent_items(k=" + std::to_string(cfg_.max_counters) +
               ", counters=" + std::to_string(table_.size()) +
               ", N=" + std::to_string(static_cast<double>(total_weight())) +
               ", max_error=" + std::to_string(static_cast<double>(maximum_error())) +
               ", decrements=" + std::to_string(num_decrements_) + ")";
    }

protected:
    friend struct summary_serde_access;

    /// Storage-units value -> query-units value (identity for plain).
    W present(W stored) const noexcept {
        if constexpr (LifetimePolicy::decaying) {
            return static_cast<W>(stored / policy_.inflation());
        } else {
            return stored;
        }
    }

    /// Algorithm 4's Update(), minus N bookkeeping (merge() feeds raw
    /// counters through this path without double-counting stream weight).
    /// The admission skeleton is the shared claim_or_reduce; only the c*
    /// selection (sampled quantile over table slots) lives here.
    void ingest(K id, W weight) {
        detail::claim_or_reduce(table_, id, weight, [&] { return decrement_counters(); });
    }

    /// Algorithm 4's DecrementCounters(): sample l live counters with
    /// replacement, subtract the configured sample quantile from every
    /// counter, and drop the non-positive ones. Returns c*.
    W decrement_counters() {
        const std::uint32_t slots = table_.num_slots();
        for (auto& sample : sample_buf_) {
            std::uint32_t s;
            do {
                s = static_cast<std::uint32_t>(rng_.below(slots));
            } while (!table_.slot_occupied(s));
            sample = table_.slot_value(s);
        }
        const W cstar = quickselect_quantile(std::span<W>(sample_buf_), cfg_.decrement_quantile);
        FREQ_ENSURES(cstar > W{0});
        const std::uint32_t evicted = table_.decrement_all(cstar);
        obs::pipeline().sketch_evictions.add(evicted);
        offset_ += cstar;
        ++num_decrements_;
        return cstar;
    }

    /// Forward-decay landmark rebase: O(L), runs once every ~2^40-fold of
    /// accumulated inflation.
    void renormalize() {
        const double factor = policy_.renormalize();
        table_.scale_all(factor);
        offset_ = static_cast<W>(offset_ * factor);
        total_weight_ = static_cast<W>(total_weight_ * factor);
        obs::pipeline().sketch_renormalizations.add(1);
    }

    sketch_config cfg_;
    counter_table<K, W> table_;
    xoshiro256ss rng_;
    std::vector<W> sample_buf_;
    W offset_{0};
    W total_weight_{0};
    std::uint64_t num_decrements_ = 0;
    [[no_unique_address]] LifetimePolicy policy_{};
};

/// ---------------------------------------------------------------------------
/// epoch_window specialization: a ring of sketch_config::window_epochs plain
/// cores, one per logical tick. update() lands in the current epoch; tick()
/// rotates the ring, evicting the epoch that falls out of the window exactly
/// (the "summary per 1-hour period" deployment of §3, with the deque that
/// examples/rolling_window.cpp used to hand-roll now behind the sketch API).
/// Point queries sum per-epoch bounds in O(window); set queries (and engine
/// snapshots) fold the live epochs with the O(k) Algorithm 5 merge.
/// ---------------------------------------------------------------------------
template <typename K, typename W>
class basic_frequent_items<K, W, epoch_window> {
public:
    using key_type = K;
    using weight_type = W;
    using lifetime_policy = epoch_window;
    using epoch_sketch = basic_frequent_items<K, W, plain_lifetime>;
    using row = typename epoch_sketch::row;

    explicit basic_frequent_items(std::uint32_t max_counters)
        : basic_frequent_items(sketch_config{.max_counters = max_counters}) {}

    explicit basic_frequent_items(const sketch_config& cfg,
                                  const mem::placement& place = {})
        : cfg_(cfg), place_(place) {
        FREQ_REQUIRE(cfg.window_epochs >= 1, "epoch_window needs at least one epoch");
        FREQ_REQUIRE(cfg.window_epochs <= 4096, "epoch_window ring limited to 4096 epochs");
        ring_.reserve(cfg.window_epochs);
        slot_epoch_.reserve(cfg.window_epochs);
        for (std::uint32_t e = 0; e < cfg.window_epochs; ++e) {
            ring_.emplace_back(epoch_cfg(e), place_);
            slot_epoch_.push_back(e);
        }
    }

    /// Placement applies to every live epoch and to epochs the ring rotates
    /// in later (tick() constructs them with the stored hints).
    void apply_placement(const mem::placement& place) noexcept {
        place_ = place;
        for (auto& e : ring_) {
            e.apply_placement(place);
        }
    }

    // --- stream ingestion ----------------------------------------------------

    void update(K id, W weight) { current().update(id, weight); }
    void update(K id) { current().update(id); }
    void update(std::span<const freq::update<K, W>> batch) { current().update(batch); }

    void consume(const update_stream<K, W>& stream) { current().consume(stream); }

    // --- lifetime ------------------------------------------------------------

    /// Closes the current epoch and opens a fresh one, evicting the epoch
    /// that slides out of the window. O(1) amortized per tick (the evicted
    /// slot's table is re-allocated, not swept); a jump of >= window epochs
    /// replaces the whole ring — O(window), never O(epochs).
    void tick(std::uint64_t epochs = 1) {
        const std::uint64_t window = ring_.size();
        if (epochs >= window) {
            // Every live epoch slides out: reset each slot to its absolute
            // epoch in the new window directly.
            now_ += epochs;
            for (std::uint64_t a = now_ + 1 - window; a <= now_; ++a) {
                const std::uint32_t slot = static_cast<std::uint32_t>(a % window);
                ring_[slot] = epoch_sketch(epoch_cfg(a), place_);
                slot_epoch_[slot] = a;
            }
            return;
        }
        for (std::uint64_t e = 0; e < epochs; ++e) {
            ++now_;
            const std::uint32_t slot = static_cast<std::uint32_t>(now_ % ring_.size());
            if (slot_epoch_[slot] != now_) {
                ring_[slot] = epoch_sketch(epoch_cfg(now_), place_);
                slot_epoch_[slot] = now_;
            }
        }
    }

    /// Current absolute epoch number (ticks since construction).
    std::uint64_t now() const noexcept { return now_; }

    /// The sub-summary receiving updates this epoch — O(1) access for
    /// callers (e.g. the string adapter's dictionary admission check) that
    /// only care about state this epoch could have changed.
    const epoch_sketch& current_epoch() const noexcept {
        return ring_[static_cast<std::uint32_t>(now_ % ring_.size())];
    }
    std::uint32_t window_epochs() const noexcept {
        return static_cast<std::uint32_t>(ring_.size());
    }

    // --- queries (over the whole window) -------------------------------------

    /// Epoch sub-streams partition the window's stream, so per-epoch bounds
    /// sum to valid window bounds (the Theorem 5 argument, degenerately).
    W estimate(K id) const {
        W sum{0};
        for (const auto& e : ring_) {
            sum += e.estimate(id);
        }
        return sum;
    }

    W lower_bound(K id) const {
        W sum{0};
        for (const auto& e : ring_) {
            sum += e.lower_bound(id);
        }
        return sum;
    }

    W upper_bound(K id) const {
        W sum{0};
        for (const auto& e : ring_) {
            sum += e.upper_bound(id);
        }
        return sum;
    }

    /// Sum of live epoch offsets — the window analogue of the a-posteriori
    /// error bound.
    W maximum_error() const noexcept {
        W sum{0};
        for (const auto& e : ring_) {
            sum += e.maximum_error();
        }
        return sum;
    }

    /// Total weight currently inside the window (evicted epochs excluded).
    W total_weight() const noexcept {
        W sum{0};
        for (const auto& e : ring_) {
            sum += e.total_weight();
        }
        return sum;
    }

    /// Counters held across live epochs (an id tracked in several epochs
    /// counts once per epoch).
    std::uint32_t num_counters() const noexcept {
        std::uint32_t sum = 0;
        for (const auto& e : ring_) {
            sum += e.num_counters();
        }
        return sum;
    }

    std::uint32_t capacity() const noexcept { return cfg_.max_counters; }
    bool empty() const noexcept { return total_weight() == W{0}; }
    const sketch_config& config() const noexcept { return cfg_; }

    std::size_t memory_bytes() const noexcept {
        std::size_t sum = 0;
        for (const auto& e : ring_) {
            sum += e.memory_bytes();
        }
        return sum;
    }

    std::uint64_t num_decrements() const noexcept {
        std::uint64_t sum = 0;
        for (const auto& e : ring_) {
            sum += e.num_decrements();
        }
        return sum;
    }

    /// Folds the live epochs into one plain summary of the window's stream
    /// (O(k·window), Algorithm 5 per epoch) — the handle for set queries and
    /// for shipping a window summary elsewhere.
    epoch_sketch summarize() const {
        sketch_config scratch = cfg_;
        scratch.seed = cfg_.seed ^ 0x5769'6e64'6f77'5371ULL;  // independent table hash
        epoch_sketch out(scratch);
        for (const auto& e : ring_) {
            if (!e.empty()) {
                out.merge(e);
            }
        }
        return out;
    }

    std::vector<row> frequent_items(error_type et, W threshold) const {
        return summarize().frequent_items(et, threshold);
    }

    std::vector<row> frequent_items(error_type et) const {
        return summarize().frequent_items(et);
    }

    std::vector<row> top_items(std::size_t m) const { return summarize().top_items(m); }

    /// Visits every (id, raw_counter) pair of every live epoch; ids tracked
    /// in several epochs are visited once per epoch.
    template <typename F>
    void for_each(F&& f) const {
        for (const auto& e : ring_) {
            e.for_each(f);
        }
    }

    // --- merging -------------------------------------------------------------

    /// Epoch-aligned merge: epochs with the same absolute number fold
    /// together (Algorithm 5); \p other's epochs that have already slid out
    /// of this sketch's window are dropped — exactly what eviction would
    /// have done. The engine's snapshot uses this to combine windowed shards
    /// even when a tick lands between two shard clones.
    void merge(const basic_frequent_items& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        FREQ_REQUIRE(ring_.size() == other.ring_.size(),
                     "merging windowed sketches requires equal window sizes");
        if (other.now_ > now_) {
            tick(other.now_ - now_);
        }
        const std::uint64_t window = ring_.size();
        const std::uint64_t lo_this = now_ + 1 >= window ? now_ + 1 - window : 0;
        const std::uint64_t lo_other =
            other.now_ + 1 >= window ? other.now_ + 1 - window : 0;
        for (std::uint64_t a = std::max(lo_this, lo_other); a <= other.now_; ++a) {
            const auto& src = other.ring_[a % window];
            if (!src.empty()) {
                ring_[a % window].merge(src);
            }
        }
    }

    std::string to_string() const {
        return "windowed_frequent_items(k=" + std::to_string(cfg_.max_counters) +
               ", window=" + std::to_string(ring_.size()) +
               ", epoch=" + std::to_string(now_) +
               ", N=" + std::to_string(static_cast<double>(total_weight())) +
               ", max_error=" + std::to_string(static_cast<double>(maximum_error())) + ")";
    }

private:
    friend struct summary_serde_access;

    epoch_sketch& current() noexcept {
        return ring_[static_cast<std::uint32_t>(now_ % ring_.size())];
    }

    /// Per-epoch config: each absolute epoch gets its own seed so epoch
    /// tables use independent hash functions (§3.2's merge note — the query
    /// path merges epochs constantly).
    sketch_config epoch_cfg(std::uint64_t epoch) const {
        sketch_config c = cfg_;
        c.seed = cfg_.seed + 0x9e37'79b9'7f4a'7c15ULL * epoch;
        return c;
    }

    sketch_config cfg_;
    mem::placement place_;  ///< hints for epochs the ring rotates in later
    std::vector<epoch_sketch> ring_;       ///< slot e holds absolute epoch slot_epoch_[e]
    std::vector<std::uint64_t> slot_epoch_;
    std::uint64_t now_ = 0;
};

/// Ergonomic spellings of the non-plain instantiations.
template <typename K = std::uint64_t, typename W = double>
using fading_frequent_items = basic_frequent_items<K, W, exponential_fading>;

template <typename K = std::uint64_t, typename W = std::uint64_t>
using windowed_frequent_items = basic_frequent_items<K, W, epoch_window>;

}  // namespace freq

#endif  // FREQ_CORE_BASIC_FREQUENT_ITEMS_H
