#ifndef FREQ_CORE_COUNTER_MAINTENANCE_H
#define FREQ_CORE_COUNTER_MAINTENANCE_H

/// \file counter_maintenance.h
/// The one maintenance step every counter-based summary in this codebase
/// shares — Algorithm 4's Update() skeleton: increment the item's counter if
/// tracked, claim a free counter if one exists, otherwise reduce every
/// counter by some c* and admit the remainder when it is positive.
///
/// The variants differ only in storage (parallel-array counter_table vs.
/// node-based map) and in how c* is chosen (sampled quantile vs. exact
/// median) — both are injected, so the admission logic exists exactly once.
///
/// Each reduce() invocation is also counted on the process-wide telemetry
/// registry (freq_sketch_decrement_rounds_total): decrement rounds are the
/// O(k) maintenance events that dominate worst-case update cost, so their
/// rate is the first thing to look at when ingest throughput dips.

#include "obs/pipeline_metrics.h"

namespace freq::detail {

/// \param store   counter storage providing find(id) -> W* (nullptr when
///                untracked), full(), and upsert(id, w) for absent ids.
/// \param reduce  invoked only when the store is full; must subtract some
///                c* > 0 from every counter, erase the non-positive ones,
///                and return c*.
template <typename Store, typename K, typename W, typename Reduce>
void claim_or_reduce(Store& store, const K& id, W weight, Reduce&& reduce) {
    if (W* c = store.find(id)) {
        *c += weight;
        return;
    }
    if (!store.full()) {
        store.upsert(id, weight);
        return;
    }
    obs::pipeline().sketch_decrement_rounds.add(1);
    const W cstar = reduce();
    if (weight > cstar) {
        store.upsert(id, weight - cstar);
    }
}

}  // namespace freq::detail

#endif  // FREQ_CORE_COUNTER_MAINTENANCE_H
