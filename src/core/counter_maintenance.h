#ifndef FREQ_CORE_COUNTER_MAINTENANCE_H
#define FREQ_CORE_COUNTER_MAINTENANCE_H

/// \file counter_maintenance.h
/// Two layers of the backend contract live here.
///
/// `sketch_backend` is the concept every runtime-selectable algorithm of
/// the façade models: the paper's counter-based cores
/// (basic_frequent_items and its policy instantiations) and the §1.3
/// baselines promoted by backend_summaries.h (count_min / count_sketch /
/// space_saving). The engine's shards, the snapshot service and the
/// type-erased summarizer program against exactly this surface, so a new
/// algorithm plugs in by modeling the concept — nothing downstream
/// changes.
///
/// `claim_or_reduce` is the one maintenance step every *counter-based*
/// summary shares — Algorithm 4's Update() skeleton: increment the item's
/// counter if tracked, claim a free counter if one exists, otherwise
/// reduce every counter by some c* and admit the remainder when it is
/// positive. The variants differ only in storage (parallel-array
/// counter_table vs. node-based map) and in how c* is chosen (sampled
/// quantile vs. exact median) — both are injected, so the admission logic
/// exists exactly once.
///
/// Each reduce() invocation is also counted on the process-wide telemetry
/// registry (freq_sketch_decrement_rounds_total): decrement rounds are the
/// O(k) maintenance events that dominate worst-case update cost, so their
/// rate is the first thing to look at when ingest throughput dips.

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "core/sketch_config.h"
#include "obs/pipeline_metrics.h"
#include "stream/update.h"

namespace freq {

/// The backend concept of the façade: one runtime-selectable sketch
/// algorithm. Models are constructible from a sketch_config (which maps
/// max_counters / seed / decay onto the algorithm's own knobs),
/// copy-constructible (engine shards clone for snapshots), ingest scalar
/// and batched updates, advance lifetime clocks via tick(), merge with a
/// same-type peer, and answer the full query surface: point brackets,
/// global error bound, threshold and top-m enumeration, and capacity /
/// memory introspection. Save/restore rides along via the summary_bytes
/// envelope (summary_traits + summary_serde_access specializations), which
/// every façade-reachable model provides.
template <typename S>
concept sketch_backend =
    std::copy_constructible<S> && std::constructible_from<S, const sketch_config&> &&
    requires(S s, const S cs, typename S::key_type id, typename S::weight_type w,
             std::span<const update<typename S::key_type, typename S::weight_type>> batch,
             std::uint64_t epochs, error_type mode, std::size_t m) {
        typename S::key_type;
        typename S::weight_type;
        typename S::lifetime_policy;
        s.update(id, w);
        s.update(batch);
        s.tick(epochs);
        s.merge(cs);
        { cs.estimate(id) } -> std::convertible_to<typename S::weight_type>;
        { cs.lower_bound(id) } -> std::convertible_to<typename S::weight_type>;
        { cs.upper_bound(id) } -> std::convertible_to<typename S::weight_type>;
        { cs.total_weight() } -> std::convertible_to<typename S::weight_type>;
        { cs.maximum_error() } -> std::convertible_to<typename S::weight_type>;
        { cs.num_counters() } -> std::convertible_to<std::size_t>;
        { cs.capacity() } -> std::convertible_to<std::size_t>;
        { cs.memory_bytes() } -> std::convertible_to<std::size_t>;
        cs.frequent_items(mode, w);
        cs.top_items(m);
        { cs.config() } -> std::convertible_to<const sketch_config&>;
        { cs.to_string() } -> std::convertible_to<std::string>;
    };

namespace detail {

/// True when \p S declares `static constexpr bool merge_requires_equal_seeds
/// = true` — the linear-sketch opt-out from the engine's per-shard seed
/// perturbation. Cellwise merge (count_min / count_sketch) only composes
/// across shards when every shard hashes with the *same* seed; that is
/// sound for them because shards partition the key space, so equal seeds
/// never double-count. Counter-based backends keep perturbed seeds (their
/// merge is row-wise, and decorrelated decrement sampling helps).
template <typename S>
concept declares_equal_seed_merge = requires {
    { S::merge_requires_equal_seeds } -> std::convertible_to<bool>;
};

template <typename S>
inline constexpr bool merge_requires_equal_seeds_v = [] {
    if constexpr (declares_equal_seed_merge<S>) {
        return static_cast<bool>(S::merge_requires_equal_seeds);
    } else {
        return false;
    }
}();

}  // namespace detail

}  // namespace freq

namespace freq::detail {

/// \param store   counter storage providing find(id) -> W* (nullptr when
///                untracked), full(), and upsert(id, w) for absent ids.
/// \param reduce  invoked only when the store is full; must subtract some
///                c* > 0 from every counter, erase the non-positive ones,
///                and return c*.
template <typename Store, typename K, typename W, typename Reduce>
void claim_or_reduce(Store& store, const K& id, W weight, Reduce&& reduce) {
    if (W* c = store.find(id)) {
        *c += weight;
        return;
    }
    if (!store.full()) {
        store.upsert(id, weight);
        return;
    }
    obs::pipeline().sketch_decrement_rounds.add(1);
    const W cstar = reduce();
    if (weight > cstar) {
        store.upsert(id, weight - cstar);
    }
}

}  // namespace freq::detail

#endif  // FREQ_CORE_COUNTER_MAINTENANCE_H
