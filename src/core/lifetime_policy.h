#ifndef FREQ_CORE_LIFETIME_POLICY_H
#define FREQ_CORE_LIFETIME_POLICY_H

/// \file lifetime_policy.h
/// Lifetime policies for the shared counter-maintenance core
/// (basic_frequent_items): how tracked weight ages as the stream's logical
/// clock advances. The counter engine is written once; a policy decides what
/// a counter *means* over time.
///
///  * plain_lifetime — weight never ages. Bit-identical to the paper's
///    Algorithm 4 sketch: every policy hook compiles away.
///  * exponential_fading — time-fading counts (Cafaro et al., FDCMSS): after
///    t ticks an update of weight w counts w·ρ^t. Implemented by *forward
///    decay* (Cormode et al.): arrivals are scaled UP by the inverse decay
///    accumulated so far, so ticking is O(1) — no per-counter timestamps and
///    no decay sweep — and stored counters stay mutually comparable. Queries
///    scale back down; a rare O(k) renormalization pass rebases the landmark
///    before the inflation factor loses floating-point headroom.
///  * epoch_window — sliding window of the last `window_epochs` ticks, kept
///    as a ring of plain sub-summaries (the §3 "summary per 1-hour period"
///    deployment); eviction drops expired epochs exactly.
///
/// plain_lifetime and exponential_fading instantiate the primary
/// basic_frequent_items template (one counter_table); epoch_window selects
/// its partial specialization (ring of plain cores, merge-on-query).

#include <cmath>
#include <cstdint>

#include "common/contracts.h"
#include "core/sketch_config.h"

namespace freq {

/// Weight never ages; every hook is a no-op the optimizer deletes.
struct plain_lifetime {
    static constexpr bool decaying = false;
    static constexpr bool windowed = false;

    void configure(const sketch_config&) noexcept {}
};

/// Forward-decay bookkeeping for time-fading counts. Stored counters are in
/// "landmark units": an arrival of weight w at tick t is stored as
/// w·ρ^{−(t−base)}, so the true decayed value at the current tick is always
/// stored·ρ^{now−base} = stored / inflation(). All stored values share the
/// landmark, which keeps the decrement/purge/merge machinery untouched.
class exponential_fading {
public:
    static constexpr bool decaying = true;
    static constexpr bool windowed = false;

    /// Renormalize once arrivals are inflated by 2^40: doubles keep ~53 bits
    /// of mantissa, so counters retain ≥ 13 bits of headroom over any
    /// realistic weight range between rebasing passes.
    static constexpr double renorm_threshold = 1099511627776.0;  // 2^40

    void configure(const sketch_config& cfg) {
        FREQ_REQUIRE(cfg.decay > 0.0 && cfg.decay <= 1.0,
                     "exponential_fading decay factor must be in (0, 1]");
        decay_ = cfg.decay;
    }

    double decay() const noexcept { return decay_; }
    std::uint64_t now() const noexcept { return now_; }

    /// Multiplier taking a value in landmark units to its decayed value at
    /// the current tick (and its inverse scales arrivals in).
    double inflation() const noexcept { return inflation_; }

    /// Advances the logical clock one tick. Returns true when the caller
    /// must renormalize its stored values (multiply them by renormalize()).
    bool tick() noexcept {
        ++now_;
        inflation_ /= decay_;
        return inflation_ > renorm_threshold;
    }

    /// Rebases the landmark to the current tick and returns the factor the
    /// caller must apply to every stored value (counters, offset, total).
    double renormalize() noexcept {
        const double factor = 1.0 / inflation_;
        inflation_ = 1.0;
        return factor;
    }

    /// Bulk clock advance after a renormalize(): the caller applies the
    /// ρ^n decay to its stored values directly, so inflation stays at the
    /// fresh landmark.
    void jump(std::uint64_t epochs) noexcept { now_ += epochs; }

    /// Restores a serialized clock (api/summary_bytes.h). The stored
    /// counters a caller loads alongside must be in the landmark units this
    /// (now, inflation) pair defines.
    void restore(std::uint64_t now, double inflation) {
        FREQ_REQUIRE(std::isfinite(inflation) && inflation >= 1.0,
                     "fading clock inflation must be finite and >= 1");
        now_ = now;
        inflation_ = inflation;
    }

    /// Factor converting \p other's stored values into this sketch's
    /// landmark units. Precondition: now() >= other.now() (the caller ticks
    /// itself forward first) and equal decay factors.
    double align_factor(const exponential_fading& other) const noexcept {
        return inflation_ * std::pow(decay_, static_cast<double>(now_ - other.now_)) /
               other.inflation_;
    }

private:
    double decay_ = 1.0;
    double inflation_ = 1.0;
    std::uint64_t now_ = 0;
};

/// Tag selecting the sliding-window specialization of basic_frequent_items:
/// a ring of sketch_config::window_epochs plain sub-summaries, one per tick.
struct epoch_window {
    static constexpr bool decaying = false;
    static constexpr bool windowed = true;
};

}  // namespace freq

#endif  // FREQ_CORE_LIFETIME_POLICY_H
