#ifndef FREQ_CORE_FINGERPRINT_FREQUENT_ITEMS_H
#define FREQ_CORE_FINGERPRINT_FREQUENT_ITEMS_H

/// \file fingerprint_frequent_items.h
/// Frequent items over any key kind via fingerprinting: the counting
/// substrate runs on 64-bit fingerprints (the same policy-templated
/// parallel-array core as the integer sketch — core/basic_frequent_items.h
/// + core/lifetime_policy.h) while a detachable spelling_dictionary
/// remembers the original keys of currently-tracked fingerprints so
/// results are reported in the caller's vocabulary.
///
/// This is the split the sharded engine needs: the hot path ships
/// fixed-size (fingerprint, weight) records through the SPSC rings, the
/// spellings travel once per key on a side channel, each shard owns the
/// dictionary slice for the fingerprints routed to it, and snapshot merge
/// unions slices (merge() below). Standalone use composes the same two
/// halves in one object — `string_frequent_items` (string keys, the tf-idf
/// use case of §1.2) is now an alias of this template, unchanged in API.
///
/// Fingerprint collisions merge two keys' counts; at 64 bits the chance any
/// pair among k tracked items collides is ~k²/2⁶⁵ (≈1e-11 for k = 2¹⁵) —
/// the standard trade DataSketches also makes for non-integer keys.
///
/// Key kinds plug in through `key_fingerprint_traits<Item>`: strings get a
/// stable FNV-1a fingerprint and string_view call surfaces; other types
/// default to a mixed std::hash (process-stable only — specialize the
/// traits with a portable fingerprint before shipping envelopes across
/// machines, exactly like DataSketches' serde-vs-hash distinction).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mem.h"
#include "core/basic_frequent_items.h"
#include "core/frequent_items_sketch.h"
#include "core/lifetime_policy.h"
#include "core/sketch_config.h"
#include "core/spelling_dictionary.h"
#include "hashing/hash.h"
#include "stream/update.h"

namespace freq {

/// How a key kind maps into the fingerprint-counted core: the view type its
/// call surfaces take, the 64-bit fingerprint, and how to materialize an
/// owned Item from a view (for the spelling dictionary).
template <typename Item>
struct key_fingerprint_traits {
    using view_type = const Item&;

    /// Default fingerprint: std::hash widened through a finalizing mixer.
    /// Stable within a process — good enough for in-memory summaries and
    /// single-process engines; specialize with a portable hash (as the
    /// std::string specialization does) before shipping envelopes between
    /// machines.
    static std::uint64_t fingerprint(const Item& v) {
        return murmur_mix64(static_cast<std::uint64_t>(std::hash<Item>{}(v)) ^
                            0x4669'6e67'6572'7072ULL);
    }

    static const Item& materialize(const Item& v) { return v; }
};

template <>
struct key_fingerprint_traits<std::string> {
    using view_type = std::string_view;

    /// FNV-1a: byte-stable across processes and machines, so string-keyed
    /// envelopes merge correctly anywhere.
    static std::uint64_t fingerprint(std::string_view v) noexcept { return fnv1a64(v); }

    static std::string materialize(std::string_view v) { return std::string(v); }
};

template <typename Item, typename W = double, typename Lifetime = plain_lifetime,
          typename Traits = key_fingerprint_traits<Item>,
          typename Dict = spelling_dictionary<Item>>
class fingerprint_frequent_items {
    /// The plain instantiation routes through frequent_items_sketch so the
    /// serialization-capable type stays reachable; other lifetimes sit on
    /// the policy core directly.
    using inner_sketch =
        std::conditional_t<std::is_same_v<Lifetime, plain_lifetime>,
                           frequent_items_sketch<std::uint64_t, W>,
                           basic_frequent_items<std::uint64_t, W, Lifetime>>;

public:
    using item_type = Item;
    using item_view = typename Traits::view_type;
    using key_traits = Traits;
    using weight_type = W;
    using lifetime_policy = Lifetime;
    /// Defaults to the arena backend for strings, the heap backend for
    /// other item types; tests pin the heap backend explicitly to hold the
    /// two to bit-identical envelopes (spelling_dictionary.h).
    using dictionary_type = Dict;

    struct row {
        Item item;
        W estimate;
        W lower_bound;
        W upper_bound;
        std::uint64_t fingerprint = 0;
    };

    explicit fingerprint_frequent_items(std::uint32_t max_counters, std::uint64_t seed = 0)
        : fingerprint_frequent_items(
              sketch_config{.max_counters = max_counters, .seed = seed}) {}

    /// Full-config constructor — needed to reach the lifetime knobs
    /// (sketch_config::decay / window_epochs). \p place threads the memory
    /// hints of common/mem.h into both halves: the counting table's backing
    /// arrays and the spelling dictionary's byte arena.
    explicit fingerprint_frequent_items(const sketch_config& cfg,
                                        const mem::placement& place = {})
        : sketch_(cfg, place) {
        // The dictionary budget must cover every simultaneously trackable
        // fingerprint: a windowed sketch tracks up to k per live epoch.
        dict_.configure(static_cast<std::uint64_t>(cfg.max_counters) *
                        (Lifetime::windowed ? cfg.window_epochs : 1u));
        dict_.set_placement(place);
    }

    /// Re-applies placement hints to table arrays and future arena blocks.
    void apply_placement(const mem::placement& place) noexcept {
        sketch_.apply_placement(place);
        dict_.set_placement(place);
    }

    /// The key's position in the 64-bit fingerprint space the counting core
    /// (and the engine's shard routing) operates on.
    static std::uint64_t fingerprint(item_view item) { return Traits::fingerprint(item); }

    // --- ingestion (keyed path: count + remember the spelling) ---------------

    void update(item_view item, W weight = W{1}) {
        const std::uint64_t fp = Traits::fingerprint(item);
        sketch_.update(fp, weight);
        // Remember the spelling while the item is tracked. Known spellings
        // skip the tracked-check entirely, and admission can only have
        // happened in the current epoch, so a windowed sketch probes one
        // epoch table, not all window_epochs of them (an id tracked only in
        // an older epoch got its dictionary entry when that epoch admitted
        // it, and prune keeps window-wide-tracked fingerprints).
        if (!dict_.contains(fp) && tracked_now(fp)) {
            if (dict_.note(fp, Traits::materialize(item))) {
                prune();
            }
        }
    }

    // --- ingestion (fingerprint path: the engine's hot lane) -----------------

    /// Batched fingerprint ingest — the span fast path the sharded engine's
    /// workers drain ring batches through. Counts only; spellings arrive
    /// separately through note_spelling() (the shard's side channel).
    void update(std::span<const freq::update<std::uint64_t, W>> batch) {
        sketch_.update(batch);
    }

    /// Attaches a spelling to \p fp. Insertion is unconditional (first
    /// writer wins): on the engine a spelling can arrive before the counts
    /// that admit its fingerprint, so it waits in the dictionary and is
    /// swept only when the dictionary overflows its budget while the
    /// fingerprint is untracked. Producers re-send spellings when their
    /// recently-sent filter evicts, so a sweep is never permanent for a key
    /// that keeps appearing.
    template <typename V>
    void note_spelling(std::uint64_t fp, V&& item) {
        if (dict_.note(fp, std::forward<V>(item))) {
            prune();
        }
    }

    // --- lifetime ------------------------------------------------------------

    /// Advances the lifetime policy's logical clock (no-op for plain).
    void tick(std::uint64_t epochs = 1) { sketch_.tick(epochs); }

    /// Current logical clock (ticks since construction; 0 for plain).
    std::uint64_t now() const noexcept {
        if constexpr (Lifetime::windowed) {
            return sketch_.now();
        } else if constexpr (Lifetime::decaying) {
            return sketch_.policy().now();
        } else {
            return 0;
        }
    }

    // --- merging (Algorithm 5 + dictionary union) ----------------------------

    /// Merges the fingerprint sketches (policy-aware — clocks align,
    /// windows fold epoch-wise) and unions the spelling dictionaries,
    /// pruning if the union overflows. This is how the engine's snapshot
    /// folds per-shard dictionary slices into one reportable summary.
    void merge(const fingerprint_frequent_items& other) {
        sketch_.merge(other.sketch_);
        if (dict_.merge_union(other.dict_)) {
            prune();
        }
    }

    // --- queries -------------------------------------------------------------

    W estimate(item_view item) const { return sketch_.estimate(Traits::fingerprint(item)); }
    W lower_bound(item_view item) const {
        return sketch_.lower_bound(Traits::fingerprint(item));
    }
    W upper_bound(item_view item) const {
        return sketch_.upper_bound(Traits::fingerprint(item));
    }
    W maximum_error() const noexcept { return sketch_.maximum_error(); }
    W total_weight() const noexcept { return sketch_.total_weight(); }
    std::uint32_t capacity() const noexcept { return sketch_.capacity(); }
    std::uint32_t num_counters() const noexcept { return sketch_.num_counters(); }
    const sketch_config& config() const noexcept { return sketch_.config(); }

    /// Heavy hitters with their spellings, sorted by descending estimate.
    std::vector<row> frequent_items(error_type et, W threshold) const {
        return spell_rows(sketch_.frequent_items(et, threshold));
    }

    std::vector<row> frequent_items(error_type et) const {
        return frequent_items(et, sketch_.maximum_error());
    }

    /// The (up to) m tracked items with the largest estimates, spelled out,
    /// in descending order — same contract as the core sketch's top_items.
    std::vector<row> top_items(std::size_t m) const {
        return spell_rows(sketch_.top_items(m));
    }

    /// The identification half: spellings of currently-relevant
    /// fingerprints (read-only; the engine serializes per-shard slices).
    const dictionary_type& dictionary() const noexcept { return dict_; }

    /// Sketch bytes plus dictionary footprint (keys + item storage).
    std::size_t memory_bytes() const noexcept {
        return sketch_.memory_bytes() + dict_.memory_bytes();
    }

    /// One-line human-readable summary (examples / debugging).
    std::string to_string() const {
        return "fingerprint_frequent_items(k=" + std::to_string(capacity()) +
               ", counters=" + std::to_string(num_counters()) +
               ", spellings=" + std::to_string(dict_.size()) +
               ", N=" + std::to_string(static_cast<double>(total_weight())) + ")";
    }

private:
    friend struct summary_serde_access;

    /// Whether the most recent update for \p fp can have admitted it — the
    /// current epoch for a windowed sketch, the whole table otherwise.
    bool tracked_now(std::uint64_t fp) const {
        if constexpr (Lifetime::windowed) {
            return sketch_.current_epoch().lower_bound(fp) > W{0};
        } else {
            return sketch_.lower_bound(fp) > W{0};
        }
    }

    void prune() {
        dict_.prune([this](std::uint64_t fp) { return sketch_.lower_bound(fp) > W{0}; });
    }

    template <typename Rows>
    std::vector<row> spell_rows(const Rows& in) const {
        std::vector<row> out;
        out.reserve(in.size());
        for (const auto& r : in) {
            // Heap backend: const Item*. Arena backend: const string_view*
            // into the arena — either way an Item is materialized per row.
            const auto* spelling = dict_.find(r.id);
            out.push_back(row{spelling != nullptr ? Item(*spelling) : unknown_item(),
                              r.estimate, r.lower_bound, r.upper_bound, r.id});
        }
        return out;
    }

    /// Placeholder for a tracked fingerprint whose spelling is (not yet)
    /// known — the count is still correct, only the identification lags.
    static Item unknown_item() {
        if constexpr (std::is_same_v<Item, std::string>) {
            return std::string("<unknown>");
        } else {
            return Item{};
        }
    }

    inner_sketch sketch_;
    dictionary_type dict_;
};

}  // namespace freq

#endif  // FREQ_CORE_FINGERPRINT_FREQUENT_ITEMS_H
