#ifndef FREQ_CORE_PARALLEL_SUMMARIZE_H
#define FREQ_CORE_PARALLEL_SUMMARIZE_H

/// \file parallel_summarize.h
/// The §3 "parallel and distributed" scenario as a library utility: a large
/// in-memory stream is partitioned across worker threads, each thread builds
/// an independent summary of its contiguous chunk, and the summaries merge
/// (Algorithm 5) into one. Because merging is order-insensitive with respect
/// to validity (Theorem 5 holds for any aggregation tree), the partitioning
/// is arbitrary — contiguous chunks maximize per-thread locality.
///
/// Each worker gets a distinct hash seed (base seed + worker index), which
/// both avoids the §3.2 shared-hash merge hazard and makes the workers'
/// tables statistically independent.

#include <cstdint>
#include <thread>
#include <vector>

#include "common/contracts.h"
#include "core/frequent_items_sketch.h"
#include "stream/update.h"

namespace freq {

/// Summarizes \p stream with \p num_workers threads, each running an
/// independent sketch with \p cfg capacity, then merges pairwise into one
/// summary (balanced tree). The result is a valid summary of the entire
/// stream with the usual merged-error bound (Theorem 5).
template <typename K, typename W>
frequent_items_sketch<K, W> parallel_summarize(const update_stream<K, W>& stream,
                                               const sketch_config& cfg,
                                               unsigned num_workers) {
    FREQ_REQUIRE(num_workers >= 1, "need at least one worker");
    const std::size_t n = stream.size();
    const auto workers = static_cast<std::size_t>(num_workers);

    std::vector<frequent_items_sketch<K, W>> parts;
    parts.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        sketch_config local = cfg;
        local.seed = cfg.seed + w;
        parts.emplace_back(local);
    }

    {
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            threads.emplace_back([&, w] {
                const std::size_t begin = n * w / workers;
                const std::size_t end = n * (w + 1) / workers;
                for (std::size_t i = begin; i < end; ++i) {
                    parts[w].update(stream[i].id, stream[i].weight);
                }
            });
        }
        for (auto& t : threads) {
            t.join();
        }
    }

    // Balanced pairwise merge; strides double each round.
    for (std::size_t stride = 1; stride < workers; stride *= 2) {
        for (std::size_t i = 0; i + stride < workers; i += 2 * stride) {
            parts[i].merge(parts[i + stride]);
        }
    }
    return std::move(parts.front());
}

}  // namespace freq

#endif  // FREQ_CORE_PARALLEL_SUMMARIZE_H
