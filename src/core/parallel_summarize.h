#ifndef FREQ_CORE_PARALLEL_SUMMARIZE_H
#define FREQ_CORE_PARALLEL_SUMMARIZE_H

/// \file parallel_summarize.h
/// The §3 "parallel and distributed" scenario as a library utility, now a
/// thin wrapper over the sharded ingestion engine (engine/stream_engine.h):
/// the in-memory stream is pushed through one producer handle, the engine's
/// workers build per-shard summaries concurrently, and snapshot() folds them
/// with the Algorithm 5 merge into one summary of the entire stream
/// (Theorem 5 holds for any aggregation tree, so the key-partitioning the
/// engine applies is as valid as the old contiguous chunking).
///
/// Each shard gets a distinct sketch seed (base seed + shard index), which
/// both avoids the §3.2 shared-hash merge hazard and makes the shards'
/// tables statistically independent. With num_workers == 1 the result is
/// bit-identical to a sequential frequent_items_sketch over the stream.

#include <span>

#include "common/contracts.h"
#include "core/frequent_items_sketch.h"
#include "engine/stream_engine.h"
#include "stream/update.h"

namespace freq {

/// Summarizes \p stream with \p num_workers engine shards, each running an
/// independent sketch with \p cfg capacity, then merges the shard summaries
/// into one. The result is a valid summary of the entire stream with the
/// usual merged-error bound (Theorem 5).
template <typename K, typename W>
frequent_items_sketch<K, W> parallel_summarize(const update_stream<K, W>& stream,
                                               const sketch_config& cfg,
                                               unsigned num_workers) {
    FREQ_REQUIRE(num_workers >= 1, "need at least one worker");
    engine_config ecfg;
    ecfg.num_shards = num_workers;
    ecfg.num_producers = 1;
    ecfg.sketch = cfg;
    stream_engine<K, W> engine(ecfg);
    {
        auto producer = engine.make_producer();
        producer.push(std::span<const update<K, W>>(stream.data(), stream.size()));
        producer.flush();
    }
    engine.flush();
    auto result = engine.snapshot();
    engine.stop();
    return result;
}

}  // namespace freq

#endif  // FREQ_CORE_PARALLEL_SUMMARIZE_H
