#ifndef FREQ_CORE_GENERIC_FREQUENT_ITEMS_H
#define FREQ_CORE_GENERIC_FREQUENT_ITEMS_H

/// \file generic_frequent_items.h
/// Frequent items over arbitrary item types — the shape of Apache
/// DataSketches' `frequent_items_sketch<T>`, for identifiers that do not
/// reduce to 64-bit integers (tuples, flow 5-tuples, arbitrary structs).
///
/// Same algorithm family as the core sketch, different storage trade:
/// counters live in a `std::unordered_map<T, W>`, and DecrementCounters()
/// subtracts the *exact* median of all counters (Algorithm 3 with k* = k/2)
/// rather than a sampled quantile — with a node-based map the decrement
/// pass already touches every entry, so the extra Quickselect pass the
/// paper optimizes away (§2.2) is no longer the bottleneck, and exactness
/// buys the deterministic Theorem 2 bound:
///     0 ≤ f_i − lower_bound(i) ≤ N^res(j)/(k/2 − j)   for all j < k/2.
///
/// Use `frequent_items_sketch` (64-bit keys) or `string_frequent_items`
/// (fingerprinted strings) when they fit — they are several times faster.
/// Arbitrary key types that can tolerate 64-bit fingerprint identification
/// now also have a fast route: `fingerprint_frequent_items<Item, ...>`
/// (core/fingerprint_frequent_items.h) runs them on the table-backed core
/// and through the sharded engine; this map-backed core remains the choice
/// when exact key identity or the deterministic Theorem 2 bound matters.
///
/// The claim/increment/reduce admission step is the shared skeleton of
/// core/counter_maintenance.h (the same loop the counter_table-backed core
/// runs), and the map-backed core takes the same LifetimePolicy parameter
/// (core/lifetime_policy.h) as basic_frequent_items: plain_lifetime keeps
/// the historical behavior bit-identically, exponential_fading ages counts
/// by forward decay (tick() is O(1); queries divide by the accumulated
/// inflation). epoch_window is a counter_table-ring construction and is not
/// offered here — use the table-backed core for sliding windows.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/contracts.h"
#include "core/counter_maintenance.h"
#include "core/lifetime_policy.h"
#include "core/sketch_config.h"
#include "select/quickselect.h"

namespace freq {

struct summary_serde_access;

template <typename T, typename W = std::uint64_t, typename Hash = std::hash<T>,
          typename Equal = std::equal_to<T>, typename Lifetime = plain_lifetime>
class generic_frequent_items {
    static_assert(!Lifetime::windowed,
                  "epoch_window is a counter_table ring construction; use "
                  "basic_frequent_items<K, W, epoch_window> for sliding windows");
    static_assert(!Lifetime::decaying || std::is_floating_point_v<W>,
                  "exponential_fading requires a floating-point weight type "
                  "(decayed counts are fractional)");

public:
    using item_type = T;
    using weight_type = W;
    using lifetime_policy = Lifetime;

    struct row {
        T item;
        W estimate;
        W lower_bound;
        W upper_bound;
    };

    explicit generic_frequent_items(std::uint32_t max_counters)
        : generic_frequent_items(sketch_config{.max_counters = max_counters}) {}

    /// Full-config constructor — needed to reach the lifetime knobs
    /// (sketch_config::decay). The sampling knobs (sample_size,
    /// decrement_quantile) do not apply: this core decrements by the exact
    /// median.
    explicit generic_frequent_items(const sketch_config& cfg) : cfg_(cfg) {
        FREQ_REQUIRE(cfg.max_counters >= 1, "sketch needs at least one counter");
        policy_.configure(cfg);
        counters_.reserve(cfg.max_counters + 1);
        scratch_.reserve(cfg.max_counters);
    }

    void update(const T& item, W weight = W{1}) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        if constexpr (Lifetime::decaying) {
            weight = static_cast<W>(weight * policy_.inflation());
        }
        total_weight_ += weight;
        ingest(item, weight);
    }

    /// Advances the policy's logical clock (no-op for plain; same contract
    /// as basic_frequent_items::tick, including the single-pass bulk jump).
    void tick(std::uint64_t epochs = 1) {
        if constexpr (Lifetime::decaying) {
            if (epochs == 0) {
                return;
            }
            if (epochs == 1) {
                if (policy_.tick()) {
                    renormalize();
                }
                return;
            }
            const double rebase = policy_.renormalize();
            policy_.jump(epochs);
            const double factor =
                rebase * std::pow(policy_.decay(), static_cast<double>(epochs));
            if (!(factor > 0.0)) {
                counters_.clear();
                offset_ = W{0};
                total_weight_ = W{0};
            } else if (factor < 1.0) {
                scale_all(factor);
            }
        } else {
            (void)epochs;
        }
    }

    const Lifetime& policy() const noexcept { return policy_; }

    W estimate(const T& item) const {
        const auto it = counters_.find(item);
        return it == counters_.end() ? W{0} : present(it->second + offset_);
    }

    W lower_bound(const T& item) const {
        const auto it = counters_.find(item);
        return it == counters_.end() ? W{0} : present(it->second);
    }

    W upper_bound(const T& item) const {
        const auto it = counters_.find(item);
        return present(it == counters_.end() ? offset_ : it->second + offset_);
    }

    W maximum_error() const noexcept { return present(offset_); }
    W total_weight() const noexcept { return present(total_weight_); }
    std::uint32_t capacity() const noexcept { return cfg_.max_counters; }
    std::size_t num_counters() const noexcept { return counters_.size(); }
    std::uint64_t num_decrements() const noexcept { return num_decrements_; }
    const sketch_config& config() const noexcept { return cfg_; }

    /// Approximate footprint of the counter map (node-based storage: per
    /// entry one node of key + counter + bucket pointer).
    std::size_t memory_bytes() const noexcept {
        return counters_.bucket_count() * sizeof(void*) +
               counters_.size() * (sizeof(std::pair<const T, W>) + 2 * sizeof(void*));
    }

    std::vector<row> frequent_items(error_type et, W threshold) const {
        std::vector<row> out;
        for (const auto& [item, c] : counters_) {
            const W lb = present(c);
            const W ub = present(c + offset_);
            const W bound = et == error_type::no_false_positives ? lb : ub;
            if (bound > threshold) {
                out.push_back(row{item, ub, lb, ub});
            }
        }
        std::sort(out.begin(), out.end(),
                  [](const row& a, const row& b) { return a.estimate > b.estimate; });
        return out;
    }

    std::vector<row> frequent_items(error_type et) const {
        return frequent_items(et, maximum_error());
    }

    /// Visits every tracked (item, raw_counter) pair. Raw counters are in
    /// storage units: under a fading policy divide by policy().inflation()
    /// for decayed values (the bound accessors do this for you).
    template <typename F>
    void for_each(F&& f) const {
        for (const auto& [item, c] : counters_) {
            f(item, c);
        }
    }

    /// Algorithm 5, generically: feed the other summary's counters through
    /// update(), then add offsets. std::unordered_map iteration order is
    /// hash-driven, which provides the §3.2 iteration-order randomization
    /// for free when the maps are differently sized or seeded. Under a
    /// fading policy the summaries are first aligned on the later logical
    /// clock, exactly as in basic_frequent_items::merge.
    void merge(const generic_frequent_items& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        if constexpr (Lifetime::decaying) {
            FREQ_REQUIRE(policy_.decay() == other.policy_.decay(),
                         "merging fading sketches requires equal decay factors");
            if (other.policy_.now() > policy_.now()) {
                tick(other.policy_.now() - policy_.now());
            }
            const double f = policy_.align_factor(other.policy_);
            const W combined_weight =
                total_weight_ + static_cast<W>(other.total_weight_ * f);
            for (const auto& [item, c] : other.counters_) {
                const W v = static_cast<W>(c * f);
                if (v > W{0}) {
                    ingest(item, v);
                }
            }
            offset_ += static_cast<W>(other.offset_ * f);
            total_weight_ = combined_weight;
        } else {
            const W combined_weight = total_weight_ + other.total_weight_;
            for (const auto& [item, c] : other.counters_) {
                ingest(item, c);
            }
            offset_ += other.offset_;
            total_weight_ = combined_weight;
        }
    }

    /// One-line human-readable summary (examples / debugging).
    std::string to_string() const {
        return "generic_frequent_items(k=" + std::to_string(cfg_.max_counters) +
               ", counters=" + std::to_string(counters_.size()) +
               ", N=" + std::to_string(static_cast<double>(total_weight())) +
               ", max_error=" + std::to_string(static_cast<double>(maximum_error())) + ")";
    }

private:
    friend struct summary_serde_access;

    /// Storage-units value -> query-units value (identity for plain).
    W present(W stored) const noexcept {
        if constexpr (Lifetime::decaying) {
            return static_cast<W>(stored / policy_.inflation());
        } else {
            return stored;
        }
    }

    /// Adapts the node-based map to the storage concept of the shared
    /// maintenance skeleton (core/counter_maintenance.h): find / full /
    /// upsert-of-absent-id.
    struct map_store {
        std::unordered_map<T, W, Hash, Equal>& counters;
        std::uint32_t max_counters;

        W* find(const T& item) {
            const auto it = counters.find(item);
            return it == counters.end() ? nullptr : &it->second;
        }
        bool full() const { return counters.size() >= max_counters; }
        void upsert(const T& item, W weight) { counters.emplace(item, weight); }
    };

    void ingest(const T& item, W weight) {
        map_store store{counters_, cfg_.max_counters};
        detail::claim_or_reduce(store, item, weight, [&] { return decrement_counters(); });
    }

    W decrement_counters() {
        scratch_.clear();
        for (const auto& [item, c] : counters_) {
            scratch_.push_back(c);
        }
        const W cstar = quickselect_largest(std::span<W>(scratch_),
                                            std::max<std::size_t>(1, scratch_.size() / 2) - 1);
        for (auto it = counters_.begin(); it != counters_.end();) {
            if (it->second <= cstar) {
                it = counters_.erase(it);
            } else {
                it->second -= cstar;
                ++it;
            }
        }
        offset_ += cstar;
        ++num_decrements_;
        FREQ_ENSURES(cstar > W{0});
        return cstar;
    }

    /// Forward-decay landmark rebase over the map — the node-based analogue
    /// of counter_table::scale_all.
    void renormalize() { scale_all(policy_.renormalize()); }

    void scale_all(double factor) {
        for (auto it = counters_.begin(); it != counters_.end();) {
            it->second = static_cast<W>(it->second * factor);
            if (it->second > W{0}) {
                ++it;
            } else {
                it = counters_.erase(it);  // underflowed below representability
            }
        }
        offset_ = static_cast<W>(offset_ * factor);
        total_weight_ = static_cast<W>(total_weight_ * factor);
    }

    sketch_config cfg_;
    std::unordered_map<T, W, Hash, Equal> counters_;
    std::vector<W> scratch_;
    W offset_{0};
    W total_weight_{0};
    std::uint64_t num_decrements_ = 0;
    [[no_unique_address]] Lifetime policy_{};
};

/// Ergonomic spelling of the fading map-backed core.
template <typename T, typename W = double, typename Hash = std::hash<T>,
          typename Equal = std::equal_to<T>>
using fading_generic_frequent_items =
    generic_frequent_items<T, W, Hash, Equal, exponential_fading>;

}  // namespace freq

#endif  // FREQ_CORE_GENERIC_FREQUENT_ITEMS_H
