#ifndef FREQ_CORE_GENERIC_FREQUENT_ITEMS_H
#define FREQ_CORE_GENERIC_FREQUENT_ITEMS_H

/// \file generic_frequent_items.h
/// Frequent items over arbitrary item types — the shape of Apache
/// DataSketches' `frequent_items_sketch<T>`, for identifiers that do not
/// reduce to 64-bit integers (tuples, flow 5-tuples, arbitrary structs).
///
/// Same algorithm family as the core sketch, different storage trade:
/// counters live in a `std::unordered_map<T, W>`, and DecrementCounters()
/// subtracts the *exact* median of all counters (Algorithm 3 with k* = k/2)
/// rather than a sampled quantile — with a node-based map the decrement
/// pass already touches every entry, so the extra Quickselect pass the
/// paper optimizes away (§2.2) is no longer the bottleneck, and exactness
/// buys the deterministic Theorem 2 bound:
///     0 ≤ f_i − lower_bound(i) ≤ N^res(j)/(k/2 − j)   for all j < k/2.
///
/// Use `frequent_items_sketch` (64-bit keys) or `string_frequent_items`
/// (fingerprinted strings) when they fit — they are several times faster.
///
/// The claim/increment/reduce admission step is the shared skeleton of
/// core/counter_maintenance.h (the same loop the counter_table-backed core
/// runs); only the storage (node map) and the c* selection (exact median)
/// differ here.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/contracts.h"
#include "core/counter_maintenance.h"
#include "core/sketch_config.h"
#include "select/quickselect.h"

namespace freq {

template <typename T, typename W = std::uint64_t, typename Hash = std::hash<T>,
          typename Equal = std::equal_to<T>>
class generic_frequent_items {
public:
    using item_type = T;
    using weight_type = W;

    struct row {
        T item;
        W estimate;
        W lower_bound;
        W upper_bound;
    };

    explicit generic_frequent_items(std::uint32_t max_counters)
        : max_counters_(max_counters) {
        FREQ_REQUIRE(max_counters >= 1, "sketch needs at least one counter");
        counters_.reserve(max_counters + 1);
        scratch_.reserve(max_counters);
    }

    void update(const T& item, W weight = W{1}) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        total_weight_ += weight;
        ingest(item, weight);
    }

    W estimate(const T& item) const {
        const auto it = counters_.find(item);
        return it == counters_.end() ? W{0} : it->second + offset_;
    }

    W lower_bound(const T& item) const {
        const auto it = counters_.find(item);
        return it == counters_.end() ? W{0} : it->second;
    }

    W upper_bound(const T& item) const {
        const auto it = counters_.find(item);
        return it == counters_.end() ? offset_ : it->second + offset_;
    }

    W maximum_error() const noexcept { return offset_; }
    W total_weight() const noexcept { return total_weight_; }
    std::uint32_t capacity() const noexcept { return max_counters_; }
    std::size_t num_counters() const noexcept { return counters_.size(); }
    std::uint64_t num_decrements() const noexcept { return num_decrements_; }

    std::vector<row> frequent_items(error_type et, W threshold) const {
        std::vector<row> out;
        for (const auto& [item, c] : counters_) {
            const W bound = et == error_type::no_false_positives ? c : c + offset_;
            if (bound > threshold) {
                out.push_back(row{item, c + offset_, c, c + offset_});
            }
        }
        std::sort(out.begin(), out.end(),
                  [](const row& a, const row& b) { return a.estimate > b.estimate; });
        return out;
    }

    std::vector<row> frequent_items(error_type et) const {
        return frequent_items(et, offset_);
    }

    template <typename F>
    void for_each(F&& f) const {
        for (const auto& [item, c] : counters_) {
            f(item, c);
        }
    }

    /// Algorithm 5, generically: feed the other summary's counters through
    /// update(), then add offsets. std::unordered_map iteration order is
    /// hash-driven, which provides the §3.2 iteration-order randomization
    /// for free when the maps are differently sized or seeded.
    void merge(const generic_frequent_items& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        const W combined_weight = total_weight_ + other.total_weight_;
        for (const auto& [item, c] : other.counters_) {
            ingest(item, c);
        }
        offset_ += other.offset_;
        total_weight_ = combined_weight;
    }

private:
    /// Adapts the node-based map to the storage concept of the shared
    /// maintenance skeleton (core/counter_maintenance.h): find / full /
    /// upsert-of-absent-id.
    struct map_store {
        std::unordered_map<T, W, Hash, Equal>& counters;
        std::uint32_t max_counters;

        W* find(const T& item) {
            const auto it = counters.find(item);
            return it == counters.end() ? nullptr : &it->second;
        }
        bool full() const { return counters.size() >= max_counters; }
        void upsert(const T& item, W weight) { counters.emplace(item, weight); }
    };

    void ingest(const T& item, W weight) {
        map_store store{counters_, max_counters_};
        detail::claim_or_reduce(store, item, weight, [&] { return decrement_counters(); });
    }

    W decrement_counters() {
        scratch_.clear();
        for (const auto& [item, c] : counters_) {
            scratch_.push_back(c);
        }
        const W cstar = quickselect_largest(std::span<W>(scratch_),
                                            std::max<std::size_t>(1, scratch_.size() / 2) - 1);
        for (auto it = counters_.begin(); it != counters_.end();) {
            if (it->second <= cstar) {
                it = counters_.erase(it);
            } else {
                it->second -= cstar;
                ++it;
            }
        }
        offset_ += cstar;
        ++num_decrements_;
        FREQ_ENSURES(cstar > W{0});
        return cstar;
    }

    std::uint32_t max_counters_;
    std::unordered_map<T, W, Hash, Equal> counters_;
    std::vector<W> scratch_;
    W offset_{0};
    W total_weight_{0};
    std::uint64_t num_decrements_ = 0;
};

}  // namespace freq

#endif  // FREQ_CORE_GENERIC_FREQUENT_ITEMS_H
