#ifndef FREQ_CORE_FREQUENT_ITEMS_SKETCH_H
#define FREQ_CORE_FREQUENT_ITEMS_SKETCH_H

/// \file frequent_items_sketch.h
/// The paper's primary contribution: the Reduce-By-Sample-Median (SMED)
/// extension of Misra-Gries to weighted streams — Algorithm 4 plus the §2.3
/// implementation details — with the O(k) in-place merge of Algorithm 5.
///
/// Summary of the algorithm:
///  * k counters live in a linear-probing hash table (counter_table).
///  * update(i, Δ): increment i's counter, or claim a free counter, or — if
///    all k counters are live — run DecrementCounters(): sample l counters,
///    take the q-quantile c* of the sample (q = 0.5 by default), subtract c*
///    from every counter, discard the non-positive ones, and give i a
///    counter of Δ − c* when Δ > c*. Amortized O(1) per update (Theorem 3).
///  * Estimates use the §2.3.1 offset hybrid: `offset` accumulates all c*
///    values, tracked items report c(i) + offset (the SS-style aggressive
///    estimate, exact for items never evicted), untracked items report 0
///    (the MG-style estimate, exact for items never seen).
///  * merge(other): feed the other summary's raw counters through update()
///    starting at a random slot, then add its offset (Algorithm 5 +
///    Theorem 5). In place, O(k), zero allocation.
///
/// Accuracy (Theorem 4): with q = 0.5 and l = 1024, for any j < k/3,
///     0 ≤ f_i − lower_bound(i) ≤ N^res(j) / (0.33·k − j)
/// with probability ≥ 1 − 1.5e-8 for streams of length up to 1e20 (§2.3.2).
///
/// The maintenance loop itself — claim/increment/decrement-by-sample-median,
/// purge, merge — lives in the policy-templated core
/// (core/basic_frequent_items.h); this class is the plain-lifetime
/// instantiation (bit-identical to the pre-policy implementation) plus the
/// portable serialization and raw-row construction the merge architecture
/// uses. Time-fading and sliding-window lifetimes are the same core under
/// exponential_fading / epoch_window (see core/lifetime_policy.h).

#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/contracts.h"
#include "core/basic_frequent_items.h"
#include "core/sketch_config.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t>
class frequent_items_sketch : public basic_frequent_items<K, W, plain_lifetime> {
    using base = basic_frequent_items<K, W, plain_lifetime>;

public:
    using key_type = K;
    using weight_type = W;
    using row = typename base::row;

    /// Sketch with k = \p max_counters and the paper's default policy
    /// (sample median of l = 1024, i.e. SMED).
    explicit frequent_items_sketch(std::uint32_t max_counters) : base(max_counters) {}

    explicit frequent_items_sketch(const sketch_config& cfg,
                                   const mem::placement& place = {})
        : base(cfg, place) {}

    // --- serialization ---------------------------------------------------------

    /// Portable little-endian encoding; stable across platforms.
    std::vector<std::uint8_t> serialize() const {
        byte_writer w;
        const sketch_config& cfg = this->config();
        w.reserve(48 + static_cast<std::size_t>(this->num_counters()) * (sizeof(K) + 8));
        w.put_u32(serde_magic);
        w.put_u8(serde_version);
        w.put_u8(sizeof(K));
        w.put_u8(weight_code());
        w.put_u8(0);  // reserved flags
        w.put_u32(cfg.max_counters);
        w.put_u32(cfg.sample_size);
        w.put_f64(cfg.decrement_quantile);
        w.put_u64(cfg.seed);
        put_weight(w, this->offset_);
        put_weight(w, this->total_weight_);
        w.put_u32(this->num_counters());
        this->for_each([&](K id, W c) {
            w.put_u64(static_cast<std::uint64_t>(id));
            put_weight(w, c);
        });
        return std::move(w).take();
    }

    /// Reconstructs a sketch from bytes. \p max_accepted_counters guards
    /// resource consumption when the bytes are untrusted (the §3 merging
    /// architecture ships sketches across machines): an image whose declared
    /// capacity exceeds the bound is rejected *before* any table allocation,
    /// so hostile input cannot force multi-gigabyte allocations.
    static frequent_items_sketch deserialize(const std::uint8_t* data, std::size_t size,
                                             std::uint32_t max_accepted_counters = 1u << 28) {
        byte_reader r(data, size);
        FREQ_REQUIRE(r.get_u32() == serde_magic, "not a frequent_items_sketch image");
        FREQ_REQUIRE(r.get_u8() == serde_version, "unsupported sketch serialization version");
        FREQ_REQUIRE(r.get_u8() == sizeof(K), "sketch image has a different key width");
        FREQ_REQUIRE(r.get_u8() == weight_code(), "sketch image has a different weight type");
        r.get_u8();  // reserved
        sketch_config cfg;
        cfg.max_counters = r.get_u32();
        FREQ_REQUIRE(cfg.max_counters <= max_accepted_counters,
                     "sketch image capacity exceeds the caller's acceptance bound");
        cfg.sample_size = r.get_u32();
        cfg.decrement_quantile = r.get_f64();
        cfg.seed = r.get_u64();
        frequent_items_sketch s(cfg);
        s.offset_ = get_weight(r);
        s.total_weight_ = get_weight(r);
        const std::uint32_t n = r.get_u32();
        FREQ_REQUIRE(n <= cfg.max_counters, "sketch image counter count exceeds capacity");
        for (std::uint32_t i = 0; i < n; ++i) {
            const K id = static_cast<K>(r.get_u64());
            const W c = get_weight(r);
            FREQ_REQUIRE(c > W{0}, "sketch image contains a non-positive counter");
            FREQ_REQUIRE(s.table_.find(id) == nullptr, "sketch image contains a duplicate id");
            s.table_.upsert(id, c);
        }
        return s;
    }

    static frequent_items_sketch deserialize(const std::vector<std::uint8_t>& bytes) {
        return deserialize(bytes.data(), bytes.size());
    }

    /// Builds a sketch directly from raw (id, counter) rows, bypassing the
    /// update path — used by the §3.1 merge baselines, which compute the
    /// merged counter set themselves. Rows must hold distinct ids and
    /// positive counters, and there must be at most cfg.max_counters of them.
    static frequent_items_sketch from_raw(const sketch_config& cfg,
                                          std::span<const std::pair<K, W>> rows, W offset,
                                          W total_weight) {
        FREQ_REQUIRE(rows.size() <= cfg.max_counters,
                     "from_raw row count exceeds sketch capacity");
        frequent_items_sketch s(cfg);
        for (const auto& [id, c] : rows) {
            FREQ_REQUIRE(c > W{0}, "from_raw counters must be positive");
            FREQ_REQUIRE(s.table_.find(id) == nullptr, "from_raw ids must be distinct");
            s.table_.upsert(id, c);
        }
        s.offset_ = offset;
        s.total_weight_ = total_weight;
        return s;
    }

    /// One-line human-readable summary (examples / debugging).
    std::string to_string() const {
        return "frequent_items_sketch(k=" + std::to_string(this->config().max_counters) +
               ", counters=" + std::to_string(this->num_counters()) +
               ", N=" + std::to_string(static_cast<double>(this->total_weight())) +
               ", max_error=" + std::to_string(static_cast<double>(this->maximum_error())) +
               ", decrements=" + std::to_string(this->num_decrements()) + ")";
    }

private:
    static constexpr std::uint32_t serde_magic = 0x4b535146;  // "FQSK"
    static constexpr std::uint8_t serde_version = 1;

    static constexpr std::uint8_t weight_code() {
        return std::is_floating_point_v<W> ? 1 : 0;
    }

    static void put_weight(byte_writer& w, W v) {
        if constexpr (std::is_floating_point_v<W>) {
            w.put_f64(static_cast<double>(v));
        } else {
            w.put_u64(static_cast<std::uint64_t>(v));
        }
    }

    static W get_weight(byte_reader& r) {
        if constexpr (std::is_floating_point_v<W>) {
            return static_cast<W>(r.get_f64());
        } else {
            return static_cast<W>(r.get_u64());
        }
    }
};

/// The deployed configuration (k counters, sample median): SMED of §4.
template <typename K = std::uint64_t, typename W = std::uint64_t>
frequent_items_sketch<K, W> make_smed(std::uint32_t k, std::uint64_t seed = 0) {
    return frequent_items_sketch<K, W>(
        sketch_config{.max_counters = k, .decrement_quantile = 0.5, .seed = seed});
}

/// The sample-minimum variant: SMIN of §4 (slow but nearly RBMC-accurate).
template <typename K = std::uint64_t, typename W = std::uint64_t>
frequent_items_sketch<K, W> make_smin(std::uint32_t k, std::uint64_t seed = 0) {
    return frequent_items_sketch<K, W>(
        sketch_config{.max_counters = k, .decrement_quantile = 0.0, .seed = seed});
}

}  // namespace freq

#endif  // FREQ_CORE_FREQUENT_ITEMS_SKETCH_H
