#ifndef FREQ_CORE_FREQUENT_ITEMS_SKETCH_H
#define FREQ_CORE_FREQUENT_ITEMS_SKETCH_H

/// \file frequent_items_sketch.h
/// The paper's primary contribution: the Reduce-By-Sample-Median (SMED)
/// extension of Misra-Gries to weighted streams — Algorithm 4 plus the §2.3
/// implementation details — with the O(k) in-place merge of Algorithm 5.
///
/// Summary of the algorithm:
///  * k counters live in a linear-probing hash table (counter_table).
///  * update(i, Δ): increment i's counter, or claim a free counter, or — if
///    all k counters are live — run DecrementCounters(): sample l counters,
///    take the q-quantile c* of the sample (q = 0.5 by default), subtract c*
///    from every counter, discard the non-positive ones, and give i a
///    counter of Δ − c* when Δ > c*. Amortized O(1) per update (Theorem 3).
///  * Estimates use the §2.3.1 offset hybrid: `offset` accumulates all c*
///    values, tracked items report c(i) + offset (the SS-style aggressive
///    estimate, exact for items never evicted), untracked items report 0
///    (the MG-style estimate, exact for items never seen).
///  * merge(other): feed the other summary's raw counters through update()
///    starting at a random slot, then add its offset (Algorithm 5 +
///    Theorem 5). In place, O(k), zero allocation.
///
/// Accuracy (Theorem 4): with q = 0.5 and l = 1024, for any j < k/3,
///     0 ≤ f_i − lower_bound(i) ≤ N^res(j) / (0.33·k − j)
/// with probability ≥ 1 − 1.5e-8 for streams of length up to 1e20 (§2.3.2).

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bytes.h"
#include "common/contracts.h"
#include "core/sketch_config.h"
#include "random/xoshiro.h"
#include "select/quickselect.h"
#include "stream/update.h"
#include "table/counter_table.h"

namespace freq {

template <typename K = std::uint64_t, typename W = std::uint64_t>
class frequent_items_sketch {
public:
    using key_type = K;
    using weight_type = W;

    /// One reported heavy hitter (see frequent_items()).
    struct row {
        K id;
        W estimate;     ///< §2.3.1 hybrid estimate (= upper bound for tracked items)
        W lower_bound;  ///< raw counter: never exceeds the true frequency
        W upper_bound;  ///< counter + offset: never below the true frequency

        friend bool operator==(const row&, const row&) = default;
    };

    /// Sketch with k = \p max_counters and the paper's default policy
    /// (sample median of l = 1024, i.e. SMED).
    explicit frequent_items_sketch(std::uint32_t max_counters)
        : frequent_items_sketch(sketch_config{.max_counters = max_counters}) {}

    explicit frequent_items_sketch(const sketch_config& cfg)
        : cfg_(cfg),
          table_(cfg.max_counters, cfg.seed),
          rng_(mix64(cfg.seed ^ 0xa076'1d64'78bd'642fULL)) {
        FREQ_REQUIRE(cfg.max_counters >= 1, "sketch needs at least one counter");
        FREQ_REQUIRE(cfg.decrement_quantile >= 0.0 && cfg.decrement_quantile < 1.0,
                     "decrement quantile must be in [0, 1)");
        // The upper bound keeps hostile serialized images (untrusted input in
        // the §3 merging architecture) from driving huge allocations.
        FREQ_REQUIRE(cfg.sample_size >= 1 && cfg.sample_size <= (1u << 20),
                     "sample size must be in [1, 2^20]");
        sample_buf_.resize(cfg.sample_size);
    }

    // --- stream ingestion ---------------------------------------------------

    /// Processes the weighted update (id, weight). Amortized O(1).
    /// weight = 0 is a no-op; negative weights are rejected (§1.3's note:
    /// handle deletions with a second sketch, not negative updates).
    void update(K id, W weight) {
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            FREQ_REQUIRE(weight >= W{0}, "update weights must be non-negative");
        }
        if (weight == W{0}) {
            return;
        }
        total_weight_ += weight;
        ingest(id, weight);
    }

    /// Unit-weight convenience overload.
    void update(K id) { update(id, W{1}); }

    /// Batched fast path: processes a whole run of updates with the
    /// per-call bookkeeping hoisted out of the loop — total weight
    /// accumulates in a register and is folded into the sketch once, and
    /// table probes are software-pipelined by prefetching a few items
    /// ahead (counter_table::prefetch). Semantically identical to calling
    /// update(id, weight) for each element in order; this is the path the
    /// sharded engine's workers drain ring batches through.
    void update(std::span<const freq::update<K, W>> batch) {
        // Validate the whole batch before touching any state, so a rejected
        // weight cannot leave the sketch with counters not yet reflected in
        // total_weight_ (the element-wise path validates-then-mutates per
        // element; this keeps the all-or-nothing boundary at the batch).
        if constexpr (std::is_signed_v<W> || std::is_floating_point_v<W>) {
            for (const auto& u : batch) {
                FREQ_REQUIRE(u.weight >= W{0}, "update weights must be non-negative");
            }
        }
        static constexpr std::size_t lookahead = 8;
        const std::size_t n = batch.size();
        W added{0};
        for (std::size_t i = 0; i < n; ++i) {
            if (i + lookahead < n) {
                table_.prefetch(batch[i + lookahead].id);
            }
            const K id = batch[i].id;
            const W weight = batch[i].weight;
            if (weight == W{0}) {
                continue;
            }
            added += weight;
            ingest(id, weight);
        }
        total_weight_ += added;
    }

    void consume(const update_stream<K, W>& stream) {
        update(std::span<const freq::update<K, W>>(stream.data(), stream.size()));
    }

    // --- queries -------------------------------------------------------------

    /// The §2.3.1 hybrid estimate: c(i) + offset when tracked, else 0.
    W estimate(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? *c + offset_ : W{0};
    }

    /// Never exceeds the true frequency f_i.
    W lower_bound(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? *c : W{0};
    }

    /// Never below the true frequency f_i.
    W upper_bound(K id) const {
        const W* c = table_.find(id);
        return c != nullptr ? *c + offset_ : offset_;
    }

    /// The accumulated offset: an a-posteriori bound on the error of any
    /// estimate (upper_bound − lower_bound ≤ maximum_error() always).
    W maximum_error() const noexcept { return offset_; }

    /// N — total weight of all processed updates (including merged streams).
    W total_weight() const noexcept { return total_weight_; }

    std::uint32_t num_counters() const noexcept { return table_.size(); }
    std::uint32_t capacity() const noexcept { return table_.capacity(); }
    bool empty() const noexcept { return table_.empty(); }
    const sketch_config& config() const noexcept { return cfg_; }

    /// Bytes of counter storage (the equal-space comparisons of §4.3 budget
    /// on this figure; the sample buffer is excluded as the paper's space
    /// accounting counts summary state, and the buffer is O(l) = O(1)).
    std::size_t memory_bytes() const noexcept { return table_.memory_bytes(); }

    /// Storage cost for a hypothetical sketch with k counters — used by the
    /// benches to size algorithms for equal-space comparisons.
    static std::size_t bytes_for(std::uint32_t k) noexcept {
        return counter_table<K, W>::bytes_for(k);
    }

    /// Number of DecrementCounters() executions so far (instrumentation:
    /// Lemma 3 / Theorem 3 assert this is O(n/k)).
    std::uint64_t num_decrements() const noexcept { return num_decrements_; }

    /// All items whose bound (chosen by \p et) strictly exceeds \p threshold,
    /// sorted by descending estimate. With et = no_false_negatives and
    /// threshold = φ·N this returns every (φ, ε)-heavy hitter (§1.2).
    std::vector<row> frequent_items(error_type et, W threshold) const {
        std::vector<row> out;
        table_.for_each([&](K id, W c) {
            const W lb = c;
            const W ub = c + offset_;
            const W bound = et == error_type::no_false_positives ? lb : ub;
            if (bound > threshold) {
                out.push_back(row{id, ub, lb, ub});
            }
        });
        std::sort(out.begin(), out.end(),
                  [](const row& a, const row& b) { return a.estimate > b.estimate; });
        return out;
    }

    /// Threshold-free overload using maximum_error() as the threshold, the
    /// tightest value for which the chosen guarantee is meaningful.
    std::vector<row> frequent_items(error_type et) const {
        return frequent_items(et, offset_);
    }

    /// The (up to) m tracked items with the largest estimates, in descending
    /// order — the "top talkers" convenience query. No threshold guarantee:
    /// ranks within maximum_error() of each other may be swapped relative to
    /// the true ordering.
    std::vector<row> top_items(std::size_t m) const {
        std::vector<row> out;
        out.reserve(table_.size());
        table_.for_each([&](K id, W c) { out.push_back(row{id, c + offset_, c, c + offset_}); });
        std::sort(out.begin(), out.end(),
                  [](const row& a, const row& b) { return a.estimate > b.estimate; });
        if (out.size() > m) {
            out.resize(m);
        }
        return out;
    }

    /// Visits every tracked (id, raw_counter) pair.
    template <typename F>
    void for_each(F&& f) const {
        table_.for_each(std::forward<F>(f));
    }

    // --- merging (Algorithm 5) -----------------------------------------------

    /// Merges \p other into this sketch: each of the other summary's raw
    /// counters becomes one weighted update here, iterated from a random
    /// slot (§3.2's note — front-to-back iteration with a shared hash
    /// function would overpopulate the front of this table), then offsets
    /// add. O(k) time, no allocation, arbitrary aggregation trees supported
    /// (Theorem 5).
    void merge(const frequent_items_sketch& other) {
        FREQ_REQUIRE(&other != this, "cannot merge a sketch into itself");
        const W combined_weight = total_weight_ + other.total_weight_;
        if (!other.table_.empty()) {
            const auto start =
                static_cast<std::uint32_t>(rng_.below(other.table_.num_slots()));
            other.table_.for_each_from(start, [&](K id, W c) { ingest(id, c); });
        }
        offset_ += other.offset_;
        total_weight_ = combined_weight;
    }

    // --- serialization ---------------------------------------------------------

    /// Portable little-endian encoding; stable across platforms.
    std::vector<std::uint8_t> serialize() const {
        byte_writer w;
        w.reserve(48 + static_cast<std::size_t>(table_.size()) * (sizeof(K) + 8));
        w.put_u32(serde_magic);
        w.put_u8(serde_version);
        w.put_u8(sizeof(K));
        w.put_u8(weight_code());
        w.put_u8(0);  // reserved flags
        w.put_u32(cfg_.max_counters);
        w.put_u32(cfg_.sample_size);
        w.put_f64(cfg_.decrement_quantile);
        w.put_u64(cfg_.seed);
        put_weight(w, offset_);
        put_weight(w, total_weight_);
        w.put_u32(table_.size());
        table_.for_each([&](K id, W c) {
            w.put_u64(static_cast<std::uint64_t>(id));
            put_weight(w, c);
        });
        return std::move(w).take();
    }

    /// Reconstructs a sketch from bytes. \p max_accepted_counters guards
    /// resource consumption when the bytes are untrusted (the §3 merging
    /// architecture ships sketches across machines): an image whose declared
    /// capacity exceeds the bound is rejected *before* any table allocation,
    /// so hostile input cannot force multi-gigabyte allocations.
    static frequent_items_sketch deserialize(const std::uint8_t* data, std::size_t size,
                                             std::uint32_t max_accepted_counters = 1u << 28) {
        byte_reader r(data, size);
        FREQ_REQUIRE(r.get_u32() == serde_magic, "not a frequent_items_sketch image");
        FREQ_REQUIRE(r.get_u8() == serde_version, "unsupported sketch serialization version");
        FREQ_REQUIRE(r.get_u8() == sizeof(K), "sketch image has a different key width");
        FREQ_REQUIRE(r.get_u8() == weight_code(), "sketch image has a different weight type");
        r.get_u8();  // reserved
        sketch_config cfg;
        cfg.max_counters = r.get_u32();
        FREQ_REQUIRE(cfg.max_counters <= max_accepted_counters,
                     "sketch image capacity exceeds the caller's acceptance bound");
        cfg.sample_size = r.get_u32();
        cfg.decrement_quantile = r.get_f64();
        cfg.seed = r.get_u64();
        frequent_items_sketch s(cfg);
        s.offset_ = get_weight(r);
        s.total_weight_ = get_weight(r);
        const std::uint32_t n = r.get_u32();
        FREQ_REQUIRE(n <= cfg.max_counters, "sketch image counter count exceeds capacity");
        for (std::uint32_t i = 0; i < n; ++i) {
            const K id = static_cast<K>(r.get_u64());
            const W c = get_weight(r);
            FREQ_REQUIRE(c > W{0}, "sketch image contains a non-positive counter");
            FREQ_REQUIRE(s.table_.find(id) == nullptr, "sketch image contains a duplicate id");
            s.table_.upsert(id, c);
        }
        return s;
    }

    static frequent_items_sketch deserialize(const std::vector<std::uint8_t>& bytes) {
        return deserialize(bytes.data(), bytes.size());
    }

    /// Builds a sketch directly from raw (id, counter) rows, bypassing the
    /// update path — used by the §3.1 merge baselines, which compute the
    /// merged counter set themselves. Rows must hold distinct ids and
    /// positive counters, and there must be at most cfg.max_counters of them.
    static frequent_items_sketch from_raw(const sketch_config& cfg,
                                          std::span<const std::pair<K, W>> rows, W offset,
                                          W total_weight) {
        FREQ_REQUIRE(rows.size() <= cfg.max_counters,
                     "from_raw row count exceeds sketch capacity");
        frequent_items_sketch s(cfg);
        for (const auto& [id, c] : rows) {
            FREQ_REQUIRE(c > W{0}, "from_raw counters must be positive");
            FREQ_REQUIRE(s.table_.find(id) == nullptr, "from_raw ids must be distinct");
            s.table_.upsert(id, c);
        }
        s.offset_ = offset;
        s.total_weight_ = total_weight;
        return s;
    }

    /// One-line human-readable summary (examples / debugging).
    std::string to_string() const {
        return "frequent_items_sketch(k=" + std::to_string(cfg_.max_counters) +
               ", counters=" + std::to_string(table_.size()) +
               ", N=" + std::to_string(static_cast<double>(total_weight_)) +
               ", max_error=" + std::to_string(static_cast<double>(offset_)) +
               ", decrements=" + std::to_string(num_decrements_) + ")";
    }

private:
    static constexpr std::uint32_t serde_magic = 0x4b535146;  // "FQSK"
    static constexpr std::uint8_t serde_version = 1;

    static constexpr std::uint8_t weight_code() {
        return std::is_floating_point_v<W> ? 1 : 0;
    }

    static void put_weight(byte_writer& w, W v) {
        if constexpr (std::is_floating_point_v<W>) {
            w.put_f64(static_cast<double>(v));
        } else {
            w.put_u64(static_cast<std::uint64_t>(v));
        }
    }

    static W get_weight(byte_reader& r) {
        if constexpr (std::is_floating_point_v<W>) {
            return static_cast<W>(r.get_f64());
        } else {
            return static_cast<W>(r.get_u64());
        }
    }

    /// Algorithm 4's Update(), minus N bookkeeping (merge() feeds raw
    /// counters through this path without double-counting stream weight).
    void ingest(K id, W weight) {
        if (W* c = table_.find(id)) {
            *c += weight;
            return;
        }
        if (!table_.full()) {
            table_.upsert(id, weight);
            return;
        }
        const W cstar = decrement_counters();
        if (weight > cstar) {
            table_.upsert(id, weight - cstar);
        }
    }

    /// Algorithm 4's DecrementCounters(): sample l live counters with
    /// replacement, subtract the configured sample quantile from every
    /// counter, and drop the non-positive ones. Returns c*.
    W decrement_counters() {
        const std::uint32_t slots = table_.num_slots();
        for (auto& sample : sample_buf_) {
            std::uint32_t s;
            do {
                s = static_cast<std::uint32_t>(rng_.below(slots));
            } while (!table_.slot_occupied(s));
            sample = table_.slot_value(s);
        }
        const W cstar = quickselect_quantile(std::span<W>(sample_buf_), cfg_.decrement_quantile);
        FREQ_ENSURES(cstar > W{0});
        table_.decrement_all(cstar);
        offset_ += cstar;
        ++num_decrements_;
        return cstar;
    }

    sketch_config cfg_;
    counter_table<K, W> table_;
    xoshiro256ss rng_;
    std::vector<W> sample_buf_;
    W offset_{0};
    W total_weight_{0};
    std::uint64_t num_decrements_ = 0;
};

/// The deployed configuration (k counters, sample median): SMED of §4.
template <typename K = std::uint64_t, typename W = std::uint64_t>
frequent_items_sketch<K, W> make_smed(std::uint32_t k, std::uint64_t seed = 0) {
    return frequent_items_sketch<K, W>(
        sketch_config{.max_counters = k, .decrement_quantile = 0.5, .seed = seed});
}

/// The sample-minimum variant: SMIN of §4 (slow but nearly RBMC-accurate).
template <typename K = std::uint64_t, typename W = std::uint64_t>
frequent_items_sketch<K, W> make_smin(std::uint32_t k, std::uint64_t seed = 0) {
    return frequent_items_sketch<K, W>(
        sketch_config{.max_counters = k, .decrement_quantile = 0.0, .seed = seed});
}

}  // namespace freq

#endif  // FREQ_CORE_FREQUENT_ITEMS_SKETCH_H
