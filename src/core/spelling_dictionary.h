#ifndef FREQ_CORE_SPELLING_DICTIONARY_H
#define FREQ_CORE_SPELLING_DICTIONARY_H

/// \file spelling_dictionary.h
/// The detachable identification half of a fingerprint-counted summary.
///
/// The paper's sketch is key-type-agnostic: it counts 64-bit identifiers
/// and needs the original key only to *report* items. Splitting that
/// identification state into its own component lets the counting substrate
/// run anywhere fingerprints flow — a standalone adapter keeps one
/// dictionary next to its sketch, while the sharded engine gives each shard
/// the dictionary slice for the fingerprints routed to it and unions slices
/// at snapshot-merge time (the same counting/identification separation
/// FDCMSS-style systems and witness-reporting schemes make).
///
/// Memory discipline (unchanged from the original string adapter): the map
/// holds at most prune_limit = 4 × (simultaneously trackable fingerprints)
/// entries; overflowing triggers a prune() sweep that drops every spelling
/// whose fingerprint the counting core no longer tracks. Because tracked
/// fingerprints survive sweeps, the footprint is O(k · avg key size) while
/// admission churn stays amortized O(1) per note().
///
/// Storage backends (the UseArena template switch):
///
///   * heap (any Item, and the envelope-parity reference for strings) —
///     the map owns Item values directly, one heap node per spelling.
///   * arena (std::string only, the default for strings) — spelling bytes
///     live contiguously in a per-dictionary bump arena (common/mem.h) and
///     the map holds string_views into it. prune() rebuilds the survivors
///     into a fresh arena, so churny streams never fragment; the arena
///     inherits the owner's mem::placement hints (huge pages, and NUMA
///     locality via construction on the pinned shard worker).
///
/// Both backends expose the same surface: for_each passes spellings as
/// values convertible to std::string_view, find() returns a pointer whose
/// dereference converts likewise, and the envelope writer canonically sorts
/// by fingerprint — so the two backends produce bit-identical envelopes for
/// identical logical contents (tests/test_spelling_arena.cpp holds the
/// project to that).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/contracts.h"
#include "common/mem.h"

namespace freq {

template <typename Item = std::string, bool UseArena = std::is_same_v<Item, std::string>>
class spelling_dictionary;

// --- heap backend (the original adapter; any Item type) ----------------------

template <typename Item, bool UseArena>
class spelling_dictionary {
public:
    using item_type = Item;

    spelling_dictionary() = default;

    /// Sizes the prune budget: \p trackable is the number of fingerprints
    /// the counting core can track simultaneously (k, or k · window_epochs
    /// for a windowed core — a per-epoch budget would leave the dictionary
    /// permanently over limit and re-sweep on nearly every note()).
    explicit spelling_dictionary(std::uint64_t trackable) { configure(trackable); }

    void configure(std::uint64_t trackable) {
        FREQ_REQUIRE(trackable >= 1, "spelling dictionary needs a positive budget");
        prune_limit_ = 4ull * trackable;
        // Modest upfront reservation only: a windowed sharded config can make
        // the *budget* large (k · window per shard), but sparse streams
        // should not pay the worst-case bucket array before any key arrives.
        map_.reserve(static_cast<std::size_t>(
            trackable < (1ull << 14) ? 2 * trackable : (1ull << 15)));
    }

    /// Placement hints are meaningful only for the arena backend; the heap
    /// backend accepts and ignores them so owners stay backend-generic.
    void set_placement(const mem::placement&) noexcept {}

    bool contains(std::uint64_t fp) const { return map_.contains(fp); }

    /// The spelling of \p fp, or nullptr when unknown (never tracked, or
    /// pruned while untracked).
    const Item* find(std::uint64_t fp) const {
        const auto it = map_.find(fp);
        return it == map_.end() ? nullptr : &it->second;
    }

    /// Remembers \p item as the spelling of \p fp (first writer wins — the
    /// fingerprint determines the spelling up to 64-bit collisions). Returns
    /// true when the dictionary is over budget and due for a prune(); the
    /// owner supplies the tracked-predicate, so the sweep stays here while
    /// the liveness notion stays with the counting core.
    template <typename V>
    bool note(std::uint64_t fp, V&& item) {
        map_.try_emplace(fp, std::forward<V>(item));
        return map_.size() > prune_limit_;
    }

    /// Drops every spelling whose fingerprint \p tracked rejects. O(size).
    template <typename TrackedPred>
    void prune(TrackedPred&& tracked) {
        for (auto it = map_.begin(); it != map_.end();) {
            if (tracked(it->first)) {
                ++it;
            } else {
                it = map_.erase(it);
            }
        }
    }

    /// Unions \p other's spellings into this dictionary (Algorithm 5's
    /// identification half). Returns true when the union overflowed the
    /// budget and a prune() is due.
    bool merge_union(const spelling_dictionary& other) {
        for (const auto& [fp, spelling] : other.map_) {
            map_.try_emplace(fp, spelling);
        }
        return map_.size() > prune_limit_;
    }

    std::size_t size() const noexcept { return map_.size(); }
    bool empty() const noexcept { return map_.empty(); }

    /// 4 × the simultaneously trackable fingerprints (see configure()).
    std::uint64_t prune_limit() const noexcept { return prune_limit_; }
    bool over_budget() const noexcept { return map_.size() > prune_limit_; }

    /// Visits every (fingerprint, spelling) pair in unspecified order.
    template <typename F>
    void for_each(F&& f) const {
        for (const auto& [fp, spelling] : map_) {
            f(fp, spelling);
        }
    }

    /// Keys + node overhead + owned string storage (strings report their
    /// heap capacity; other item types their object size).
    std::size_t memory_bytes() const noexcept {
        std::size_t bytes = map_.bucket_count() * sizeof(void*);
        for (const auto& [fp, item] : map_) {
            bytes += sizeof(fp) + sizeof(Item) + 2 * sizeof(void*);
            if constexpr (std::is_same_v<Item, std::string>) {
                bytes += item.capacity();
            }
        }
        return bytes;
    }

private:
    std::unordered_map<std::uint64_t, Item> map_;
    std::uint64_t prune_limit_ = 4;  ///< 4 × simultaneously trackable fingerprints
};

// --- arena backend (std::string spellings in a bump arena) -------------------

template <>
class spelling_dictionary<std::string, true> {
public:
    using item_type = std::string;

    spelling_dictionary() = default;
    explicit spelling_dictionary(std::uint64_t trackable) { configure(trackable); }

    /// Deep copies rebuild into a private arena, so copies are independent
    /// (sketch clones and merges rely on value semantics).
    spelling_dictionary(const spelling_dictionary& other)
        : block_bytes_(other.block_bytes_),
          arena_(other.block_bytes_, other.arena_.hints()),
          prune_limit_(other.prune_limit_) {
        map_.reserve(other.map_.size());
        for (const auto& [fp, view] : other.map_) {
            map_.emplace(fp, arena_.store(view));
        }
    }

    /// Copy-assign rewinds the existing arena instead of replacing it, so a
    /// steady-state clone-into cycle (the engine's incremental snapshot
    /// fold) reuses the same hot block.
    spelling_dictionary& operator=(const spelling_dictionary& other) {
        if (this != &other) {
            prune_limit_ = other.prune_limit_;
            block_bytes_ = other.block_bytes_;
            map_.clear();
            arena_.reset();
            arena_.set_hints(other.arena_.hints());
            for (const auto& [fp, view] : other.map_) {
                map_.emplace(fp, arena_.store(view));
            }
        }
        return *this;
    }

    spelling_dictionary(spelling_dictionary&&) = default;
    spelling_dictionary& operator=(spelling_dictionary&&) = default;
    ~spelling_dictionary() = default;

    void configure(std::uint64_t trackable) {
        FREQ_REQUIRE(trackable >= 1, "spelling dictionary needs a positive budget");
        prune_limit_ = 4ull * trackable;
        map_.reserve(static_cast<std::size_t>(
            trackable < (1ull << 14) ? 2 * trackable : (1ull << 15)));
        // Scale the arena block to the budget (~24 spelling bytes per entry
        // to start; doubling growth covers longer keys) so a tiny
        // dictionary's footprint stays tiny — the same proportionality the
        // heap backend gets from per-string allocation.
        block_bytes_ = block_bytes_for(prune_limit_);
        const mem::placement hints = arena_.hints();
        arena_ = mem::arena(block_bytes_, hints);
    }

    /// Future arena blocks pick up the hints (huge-page advice); NUMA
    /// locality comes from first-touch on the constructing/pinned thread.
    void set_placement(const mem::placement& hints) noexcept { arena_.set_hints(hints); }

    bool contains(std::uint64_t fp) const { return map_.contains(fp); }

    /// The spelling of \p fp as a view into the arena, or nullptr when
    /// unknown. The pointer is stable; the viewed bytes live until the next
    /// prune() rebuild or clear.
    const std::string_view* find(std::uint64_t fp) const {
        const auto it = map_.find(fp);
        return it == map_.end() ? nullptr : &it->second;
    }

    /// First-writer-wins note(), same contract as the heap backend; the
    /// spelling bytes are copied into the arena only on actual insertion.
    template <typename V>
    bool note(std::uint64_t fp, V&& item) {
        const auto [it, inserted] = map_.try_emplace(fp);
        if (inserted) {
            it->second = arena_.store(std::string_view(item));
        }
        return map_.size() > prune_limit_;
    }

    /// Drops untracked spellings and rebuilds the survivors into a fresh
    /// arena — churny streams never fragment the byte storage, and the old
    /// arena's pages return to the OS in one release. O(size + bytes).
    template <typename TrackedPred>
    void prune(TrackedPred&& tracked) {
        mem::arena fresh(block_bytes_, arena_.hints());
        for (auto it = map_.begin(); it != map_.end();) {
            if (tracked(it->first)) {
                it->second = fresh.store(it->second);
                ++it;
            } else {
                it = map_.erase(it);
            }
        }
        arena_ = std::move(fresh);
    }

    bool merge_union(const spelling_dictionary& other) {
        for (const auto& [fp, view] : other.map_) {
            const auto [it, inserted] = map_.try_emplace(fp);
            if (inserted) {
                it->second = arena_.store(view);
            }
        }
        return map_.size() > prune_limit_;
    }

    std::size_t size() const noexcept { return map_.size(); }
    bool empty() const noexcept { return map_.empty(); }
    std::uint64_t prune_limit() const noexcept { return prune_limit_; }
    bool over_budget() const noexcept { return map_.size() > prune_limit_; }

    /// Visits every (fingerprint, spelling) pair in unspecified order; the
    /// spelling parameter is a std::string_view into the arena.
    template <typename F>
    void for_each(F&& f) const {
        for (const auto& [fp, view] : map_) {
            f(fp, view);
        }
    }

    /// Map overhead plus the arena's reserved block bytes.
    std::size_t memory_bytes() const noexcept {
        return map_.bucket_count() * sizeof(void*) +
               map_.size() * (sizeof(std::uint64_t) + sizeof(std::string_view) +
                              2 * sizeof(void*)) +
               arena_.bytes_reserved();
    }

    /// Arena introspection for tests and benches.
    std::size_t arena_bytes_used() const noexcept { return arena_.bytes_used(); }
    std::size_t arena_bytes_reserved() const noexcept { return arena_.bytes_reserved(); }

private:
    static std::size_t block_bytes_for(std::uint64_t prune_limit) noexcept {
        const std::uint64_t want = prune_limit * 24;
        if (want < 4096) {
            return 4096;
        }
        if (want > mem::arena::default_block_bytes) {
            return mem::arena::default_block_bytes;
        }
        return static_cast<std::size_t>(want);
    }

    std::unordered_map<std::uint64_t, std::string_view> map_;
    std::size_t block_bytes_ = 4096;
    mem::arena arena_{4096};
    std::uint64_t prune_limit_ = 4;
};

}  // namespace freq

#endif  // FREQ_CORE_SPELLING_DICTIONARY_H
