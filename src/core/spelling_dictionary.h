#ifndef FREQ_CORE_SPELLING_DICTIONARY_H
#define FREQ_CORE_SPELLING_DICTIONARY_H

/// \file spelling_dictionary.h
/// The detachable identification half of a fingerprint-counted summary.
///
/// The paper's sketch is key-type-agnostic: it counts 64-bit identifiers
/// and needs the original key only to *report* items. Splitting that
/// identification state into its own component lets the counting substrate
/// run anywhere fingerprints flow — a standalone adapter keeps one
/// dictionary next to its sketch, while the sharded engine gives each shard
/// the dictionary slice for the fingerprints routed to it and unions slices
/// at snapshot-merge time (the same counting/identification separation
/// FDCMSS-style systems and witness-reporting schemes make).
///
/// Memory discipline (unchanged from the original string adapter): the map
/// holds at most prune_limit = 4 × (simultaneously trackable fingerprints)
/// entries; overflowing triggers a prune() sweep that drops every spelling
/// whose fingerprint the counting core no longer tracks. Because tracked
/// fingerprints survive sweeps, the footprint is O(k · avg key size) while
/// admission churn stays amortized O(1) per note().

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/contracts.h"

namespace freq {

template <typename Item = std::string>
class spelling_dictionary {
public:
    using item_type = Item;

    spelling_dictionary() = default;

    /// Sizes the prune budget: \p trackable is the number of fingerprints
    /// the counting core can track simultaneously (k, or k · window_epochs
    /// for a windowed core — a per-epoch budget would leave the dictionary
    /// permanently over limit and re-sweep on nearly every note()).
    explicit spelling_dictionary(std::uint64_t trackable) { configure(trackable); }

    void configure(std::uint64_t trackable) {
        FREQ_REQUIRE(trackable >= 1, "spelling dictionary needs a positive budget");
        prune_limit_ = 4ull * trackable;
        // Modest upfront reservation only: a windowed sharded config can make
        // the *budget* large (k · window per shard), but sparse streams
        // should not pay the worst-case bucket array before any key arrives.
        map_.reserve(static_cast<std::size_t>(
            trackable < (1ull << 14) ? 2 * trackable : (1ull << 15)));
    }

    bool contains(std::uint64_t fp) const { return map_.contains(fp); }

    /// The spelling of \p fp, or nullptr when unknown (never tracked, or
    /// pruned while untracked).
    const Item* find(std::uint64_t fp) const {
        const auto it = map_.find(fp);
        return it == map_.end() ? nullptr : &it->second;
    }

    /// Remembers \p item as the spelling of \p fp (first writer wins — the
    /// fingerprint determines the spelling up to 64-bit collisions). Returns
    /// true when the dictionary is over budget and due for a prune(); the
    /// owner supplies the tracked-predicate, so the sweep stays here while
    /// the liveness notion stays with the counting core.
    template <typename V>
    bool note(std::uint64_t fp, V&& item) {
        map_.try_emplace(fp, std::forward<V>(item));
        return map_.size() > prune_limit_;
    }

    /// Drops every spelling whose fingerprint \p tracked rejects. O(size).
    template <typename TrackedPred>
    void prune(TrackedPred&& tracked) {
        for (auto it = map_.begin(); it != map_.end();) {
            if (tracked(it->first)) {
                ++it;
            } else {
                it = map_.erase(it);
            }
        }
    }

    /// Unions \p other's spellings into this dictionary (Algorithm 5's
    /// identification half). Returns true when the union overflowed the
    /// budget and a prune() is due.
    bool merge_union(const spelling_dictionary& other) {
        for (const auto& [fp, spelling] : other.map_) {
            map_.try_emplace(fp, spelling);
        }
        return map_.size() > prune_limit_;
    }

    std::size_t size() const noexcept { return map_.size(); }
    bool empty() const noexcept { return map_.empty(); }

    /// 4 × the simultaneously trackable fingerprints (see configure()).
    std::uint64_t prune_limit() const noexcept { return prune_limit_; }
    bool over_budget() const noexcept { return map_.size() > prune_limit_; }

    /// Visits every (fingerprint, spelling) pair in unspecified order.
    template <typename F>
    void for_each(F&& f) const {
        for (const auto& [fp, spelling] : map_) {
            f(fp, spelling);
        }
    }

    /// Keys + node overhead + owned string storage (strings report their
    /// heap capacity; other item types their object size).
    std::size_t memory_bytes() const noexcept {
        std::size_t bytes = map_.bucket_count() * sizeof(void*);
        for (const auto& [fp, item] : map_) {
            bytes += sizeof(fp) + sizeof(Item) + 2 * sizeof(void*);
            if constexpr (std::is_same_v<Item, std::string>) {
                bytes += item.capacity();
            }
        }
        return bytes;
    }

private:
    std::unordered_map<std::uint64_t, Item> map_;
    std::uint64_t prune_limit_ = 4;  ///< 4 × simultaneously trackable fingerprints
};

}  // namespace freq

#endif  // FREQ_CORE_SPELLING_DICTIONARY_H
