#ifndef FREQ_HASHING_HASH_H
#define FREQ_HASHING_HASH_H

/// \file hash.h
/// Integer mixers and byte-string fingerprints.
///
/// The counter table (src/table) maps 64-bit identifiers to slots with a
/// seeded finalizer-style mixer: identifiers in real traces (IPv4 addresses,
/// user ids) are highly structured, so the raw low bits must never be used
/// as a slot index. All mixers here are bijective on 64 bits, which keeps
/// fingerprint collisions impossible for 64-bit keys.

#include <cstdint>
#include <string_view>

namespace freq {

/// Fmix64 finalizer from MurmurHash3 — fast, well-dispersed, bijective.
constexpr std::uint64_t murmur_mix64(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/// SplitMix64 step: advances \p state and returns a mixed 64-bit value.
/// Used both as a mixer and to expand a single seed into PRNG state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Stateless SplitMix64-style finalizer of a single value.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Seeded table hash: mixes \p key with \p seed so distinct sketches can
/// use independent hash functions (required by the merge procedure's
/// randomization note in §3.2 of the paper).
constexpr std::uint64_t table_hash(std::uint64_t key, std::uint64_t seed) noexcept {
    return murmur_mix64(key + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// FNV-1a over bytes; used to fingerprint string identifiers into the
/// 64-bit key space the high-performance table operates on.
constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace freq

#endif  // FREQ_HASHING_HASH_H
