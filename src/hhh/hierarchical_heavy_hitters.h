#ifndef FREQ_HHH_HIERARCHICAL_HEAVY_HITTERS_H
#define FREQ_HHH_HIERARCHICAL_HEAVY_HITTERS_H

/// \file hierarchical_heavy_hitters.h
/// Hierarchical heavy hitters (HHH) over IPv4 source prefixes — the
/// application the paper names first among uses of its sketch as a
/// subroutine (§1.2, §6; Mitzenmacher, Steinke & Thaler [18], who built the
/// same scheme on MHE — we substitute the paper's faster sketch, which is
/// precisely the §6 "future work" integration).
///
/// Structure: one frequent-items sketch per prefix level (default the
/// byte-boundary levels /32, /24, /16, /8, /0). Every packet updates each
/// level with its masked source address. A query walks levels from the most
/// specific upward and reports a prefix as an HHH when its *conditioned*
/// count — its estimate minus the estimates of already-reported HHH
/// descendants — clears φ·N. This is the discounted heuristic of [18]:
/// false negatives are possible near the threshold but every reported
/// prefix genuinely carries the claimed conditioned traffic up to sketch
/// error.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "core/frequent_items_sketch.h"
#include "net/ipv4.h"

namespace freq::hhh {

class hierarchical_heavy_hitters {
public:
    struct config {
        /// Prefix lengths, any subset of [0, 32]; stored sorted descending
        /// (most specific first).
        std::vector<unsigned> levels = {32, 24, 16, 8};
        std::uint32_t counters_per_level = 1024;  ///< k for each level's sketch
        std::uint64_t seed = 0;
    };

    struct hhh_row {
        std::uint32_t prefix;       ///< masked address
        unsigned prefix_len;
        std::uint64_t estimate;     ///< sketch estimate of the full prefix traffic
        std::uint64_t conditioned;  ///< estimate minus reported descendants

        std::string to_string() const { return net::format_prefix(prefix, prefix_len); }
    };

    explicit hierarchical_heavy_hitters(config cfg) : cfg_(std::move(cfg)) {
        FREQ_REQUIRE(!cfg_.levels.empty(), "need at least one prefix level");
        std::sort(cfg_.levels.begin(), cfg_.levels.end(), std::greater<>());
        for (const unsigned l : cfg_.levels) {
            FREQ_REQUIRE(l <= 32, "IPv4 prefix level must be <= 32");
            sketches_.emplace_back(sketch_config{
                .max_counters = cfg_.counters_per_level,
                .seed = cfg_.seed + l + 1,
            });
        }
        FREQ_REQUIRE(std::adjacent_find(cfg_.levels.begin(), cfg_.levels.end()) ==
                         cfg_.levels.end(),
                     "prefix levels must be distinct");
    }

    /// Feeds one packet: every level's sketch sees the masked address.
    void update(std::uint32_t src_ip, std::uint64_t weight) {
        if (weight == 0) {
            return;
        }
        total_weight_ += weight;
        for (std::size_t i = 0; i < cfg_.levels.size(); ++i) {
            sketches_[i].update(net::prefix_of(src_ip, cfg_.levels[i]), weight);
        }
    }

    std::uint64_t total_weight() const noexcept { return total_weight_; }

    /// All levels' sketch bytes — the HHH memory cost is levels × sketch.
    std::size_t memory_bytes() const noexcept {
        std::size_t b = 0;
        for (const auto& s : sketches_) {
            b += s.memory_bytes();
        }
        return b;
    }

    /// Hierarchical heavy hitters at threshold φ (fraction of total traffic),
    /// most specific prefixes first.
    std::vector<hhh_row> query(double phi) const {
        FREQ_REQUIRE(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
        const auto threshold =
            static_cast<std::uint64_t>(phi * static_cast<double>(total_weight_));
        std::vector<hhh_row> out;
        // Walk levels most-specific-first, discounting reported descendants.
        for (std::size_t i = 0; i < cfg_.levels.size(); ++i) {
            const unsigned level = cfg_.levels[i];
            const auto candidates =
                sketches_[i].frequent_items(error_type::no_false_negatives, threshold);
            for (const auto& cand : candidates) {
                const auto prefix = static_cast<std::uint32_t>(cand.id);
                std::uint64_t discount = 0;
                for (const auto& r : out) {
                    if (r.prefix_len > level &&
                        net::prefix_of(r.prefix, level) == prefix) {
                        discount += r.estimate;
                    }
                }
                const std::uint64_t cond =
                    cand.estimate > discount ? cand.estimate - discount : 0;
                if (cond > threshold) {
                    out.push_back(hhh_row{prefix, level, cand.estimate, cond});
                }
            }
        }
        return out;
    }

    /// Direct access to one level's sketch (diagnostics, tests).
    const frequent_items_sketch<std::uint64_t, std::uint64_t>& level_sketch(
        std::size_t i) const {
        FREQ_REQUIRE(i < sketches_.size(), "level index out of range");
        return sketches_[i];
    }

    const config& cfg() const noexcept { return cfg_; }

private:
    config cfg_;
    std::vector<frequent_items_sketch<std::uint64_t, std::uint64_t>> sketches_;
    std::uint64_t total_weight_ = 0;
};

}  // namespace freq::hhh

#endif  // FREQ_HHH_HIERARCHICAL_HEAVY_HITTERS_H
