/// Figure 1 reproduction: runtime comparison of SMED, SMIN, RBMC and MHE on
/// the packet-trace workload, in both the equal-space and equal-counters
/// regimes of §4.3.
///
/// Paper claims to reproduce (shape, not absolute numbers):
///  * SMED is fastest everywhere;
///  * SMED vs MHE:  5.5x-8.7x faster (equal space);
///  * SMED vs SMIN: 6.5x-30x faster;
///  * SMED vs RBMC: 20x-70x faster;
///  * gaps shrink as the number of counters k grows (§4.2).

#include <cstdio>
#include <vector>

#include "baselines/rbmc.h"
#include "baselines/space_saving_heap.h"
#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"
#include "metrics/space.h"

namespace {

using namespace freq;
using namespace freq::bench;

using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;
using mhe_u64 = space_saving_heap<std::uint64_t, std::uint64_t>;
using rbmc_u64 = rbmc<std::uint64_t, std::uint64_t>;

struct run_result {
    double seconds;
    std::size_t bytes;
    std::uint32_t k;
};

run_result run_smed(const update_stream<std::uint64_t, std::uint64_t>& s, std::uint32_t k,
                    double quantile) {
    sketch_u64 algo(sketch_config{.max_counters = k, .decrement_quantile = quantile, .seed = 1});
    const double t = time_consume(algo, s);
    return {t, algo.memory_bytes(), k};
}

run_result run_rbmc(const update_stream<std::uint64_t, std::uint64_t>& s, std::uint32_t k) {
    rbmc_u64 algo(k, /*seed=*/1);
    const double t = time_consume(algo, s);
    return {t, algo.memory_bytes(), k};
}

run_result run_mhe(const update_stream<std::uint64_t, std::uint64_t>& s, std::uint32_t k) {
    mhe_u64 algo(k, /*seed=*/1);
    const double t = time_consume(algo, s);
    return {t, algo.memory_bytes(), k};
}

}  // namespace

int main() {
    const auto stream = caida_stream();
    print_stream_stats(stream, "caida-like(fig1)");
    const double n = static_cast<double>(stream.size());

    const std::vector<std::uint32_t> ks = {1024, 2048, 4096, 8192, 16384};

    // ---- equal-counters panel (bottom of Fig. 1) ---------------------------
    print_header("Figure 1 (equal counters): runtime seconds / (updates per second)",
                 "        k        SMED        SMIN        RBMC         MHE   MHE/SMED  SMIN/SMED  RBMC/SMED");
    bool smed_fastest = true;
    double ratio_mhe_min = 1e30, ratio_mhe_max = 0;
    std::vector<double> rbmc_ratios;
    std::vector<run_result> smed_runs, smin_runs, rbmc_runs;
    for (const auto k : ks) {
        const auto smed = run_smed(stream, k, 0.5);
        const auto smin = run_smed(stream, k, 0.0);
        const auto rb = run_rbmc(stream, k);
        const auto mh = run_mhe(stream, k);
        std::printf("%9u  %10.3f  %10.3f  %10.3f  %10.3f  %9.2f  %9.2f  %9.2f\n", k,
                    smed.seconds, smin.seconds, rb.seconds, mh.seconds,
                    mh.seconds / smed.seconds, smin.seconds / smed.seconds,
                    rb.seconds / smed.seconds);
        smed_fastest = smed_fastest && smed.seconds <= smin.seconds &&
                       smed.seconds <= rb.seconds && smed.seconds <= mh.seconds;
        ratio_mhe_min = std::min(ratio_mhe_min, mh.seconds / smed.seconds);
        ratio_mhe_max = std::max(ratio_mhe_max, mh.seconds / smed.seconds);
        rbmc_ratios.push_back(rb.seconds / smed.seconds);
        smed_runs.push_back(smed);
        smin_runs.push_back(smin);
        rbmc_runs.push_back(rb);
    }

    // ---- equal-space panel (top of Fig. 1) --------------------------------
    // SMED/SMIN/RBMC share the byte model, so their equal-counters timings
    // carry over; only MHE must be re-sized (and re-run) to the byte budget.
    print_header("Figure 1 (equal space): byte budget = SMED(k); MHE sized to the same bytes",
                 "    bytes(K)   k(SMED)    k(MHE)        SMED        SMIN        RBMC         MHE   MHE/SMED");
    double equal_space_mhe_min = 1e30;
    for (std::size_t i = 0; i < ks.size(); ++i) {
        const auto k = ks[i];
        const std::size_t budget = sketch_u64::bytes_for(k);
        const auto k_mhe = max_counters_within(budget, mhe_u64::bytes_for);
        const auto& smed = smed_runs[i];
        const auto& smin = smin_runs[i];
        const auto& rb = rbmc_runs[i];
        const auto mh = run_mhe(stream, k_mhe);
        std::printf("%12zu  %8u  %8u  %10.3f  %10.3f  %10.3f  %10.3f  %9.2f\n", budget / 1024,
                    k, k_mhe, smed.seconds, smin.seconds, rb.seconds, mh.seconds,
                    mh.seconds / smed.seconds);
        equal_space_mhe_min = std::min(equal_space_mhe_min, mh.seconds / smed.seconds);
    }

    std::printf("\nThroughput at k=4096: SMED %.1f M updates/s\n",
                n / run_smed(stream, 4096, 0.5).seconds / 1e6);

    // ---- qualitative checks -------------------------------------------------
    std::printf("\n");
    bool ok = true;
    ok &= check(smed_fastest, "SMED is the fastest algorithm at every k (Fig. 1)");
    // The paper's 5.5x-8.7x MHE claim is for the equal-space comparison
    // ("For an equal amount of space, SMED was faster than MHE by ...").
    ok &= check(equal_space_mhe_min > 1.5,
                "MHE is substantially slower than SMED at equal space (paper: 5.5x-8.7x)");
    (void)ratio_mhe_min;
    ok &= check(*std::min_element(rbmc_ratios.begin(), rbmc_ratios.end()) > 3.0,
                "RBMC is several times slower than SMED at every k (paper: 20x-70x)");
    // Note: the paper reports the SMED advantage *shrinking* as k grows
    // (§4.2); on this substrate the RBMC/SMED ratio instead grows with k,
    // consistent with RBMC paying O(k) per miss while SMED's decrement is
    // amortized O(1) — see EXPERIMENTS.md for the discussion. The ratio
    // trend is printed above so either behaviour is visible.
    return ok ? 0 : 1;
}
