#ifndef FREQ_BENCH_BENCH_COMMON_H
#define FREQ_BENCH_BENCH_COMMON_H

/// \file bench_common.h
/// Shared plumbing for the figure-reproduction harnesses: workload
/// construction (the §4.1 CAIDA-substitute stream and the §4.5 Zipf merge
/// workload), wall-clock timing, environment-based scaling, and fixed-width
/// table printing so each binary emits the same rows/series as the paper's
/// figures.
///
/// Scaling: FREQ_BENCH_SCALE (default 1.0) multiplies stream lengths.
/// The paper used n = 126.2M updates; the default here is 8M, which is
/// enough for the speed ratios and error orderings to stabilize (see
/// EXPERIMENTS.md). Set FREQ_BENCH_SCALE=16 to approximate the paper's n.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "obs/instruments.h"
#include "stream/exact_counter.h"
#include "stream/generators.h"
#include "stream/update.h"

namespace freq::bench {

// --- heap-allocation counting ------------------------------------------------

namespace detail {
/// Process-wide allocation counters, fed by the replacement operator
/// new/delete defined at the bottom of this header. Relaxed atomics: the
/// benches read deltas between phase boundaries on one thread; worker
/// threads' allocations land eventually (the phases join their workers
/// before reading).
inline std::atomic<std::uint64_t> alloc_count{0};
inline std::atomic<std::uint64_t> alloc_bytes{0};

inline void note_alloc(std::size_t n) noexcept {
    alloc_count.fetch_add(1, std::memory_order_relaxed);
    alloc_bytes.fetch_add(n, std::memory_order_relaxed);
}
}  // namespace detail

/// Heap allocations observed during one bench phase: construct at the
/// phase's start, read the deltas when it ends. Counts allocations, not
/// live bytes — frees are deliberately ignored, because the question the
/// benches ask is "how much allocator traffic does this phase generate",
/// and a phase that churns a million short-lived nodes should not report
/// zero.
class alloc_phase {
public:
    alloc_phase() { reset(); }

    void reset() {
        start_count_ = detail::alloc_count.load(std::memory_order_relaxed);
        start_bytes_ = detail::alloc_bytes.load(std::memory_order_relaxed);
    }

    std::uint64_t count() const {
        return detail::alloc_count.load(std::memory_order_relaxed) - start_count_;
    }
    std::uint64_t bytes() const {
        return detail::alloc_bytes.load(std::memory_order_relaxed) - start_bytes_;
    }

    /// Appends `"<prefix>alloc_count": ..., "<prefix>alloc_bytes": ..."`
    /// (no trailing comma) to an open JSON stream — same shape as
    /// latency_recorder::write_json_fields. bench_delta.py treats both
    /// fields as lower-is-better.
    void write_json_fields(std::FILE* json, const char* prefix) const {
        std::fprintf(json, "\"%salloc_count\": %llu, \"%salloc_bytes\": %llu", prefix,
                     static_cast<unsigned long long>(count()), prefix,
                     static_cast<unsigned long long>(bytes()));
    }

private:
    std::uint64_t start_count_ = 0;
    std::uint64_t start_bytes_ = 0;
};

inline double scale_factor() {
    const char* env = std::getenv("FREQ_BENCH_SCALE");
    if (env == nullptr) {
        return 1.0;
    }
    const double s = std::atof(env);
    return s > 0.0 ? s : 1.0;
}

inline std::uint64_t scaled(std::uint64_t base) {
    return static_cast<std::uint64_t>(static_cast<double>(base) * scale_factor());
}

/// The §4.1 evaluation stream (CAIDA substitute; see DESIGN.md §1):
/// ~8M packets over ~500k source IPs, weights = packet size in bits.
inline update_stream<std::uint64_t, std::uint64_t> caida_stream(std::uint64_t seed = 2016) {
    caida_like_generator gen({
        .num_updates = scaled(8'000'000),
        .num_flows = scaled(500'000),
        .alpha = 1.1,
        .seed = seed,
    });
    return gen.generate();
}

/// The §4.5 merge workload: Zipf(1.05) ids, uniform weights in [1, 10000].
inline update_stream<std::uint64_t, std::uint64_t> zipf_merge_stream(std::uint64_t n,
                                                                     std::uint64_t seed) {
    zipf_stream_generator gen({
        .num_updates = n,
        .num_distinct = std::max<std::uint64_t>(n / 4, 16),
        .alpha = 1.05,
        .min_weight = 1,
        .max_weight = 10'000,
        .seed = seed,
    });
    return gen.generate();
}

class stopwatch {
public:
    stopwatch() : start_(clock::now()) {}
    void reset() { start_ = clock::now(); }
    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Runs a full stream through an algorithm and returns wall seconds.
template <typename Algo>
double time_consume(Algo& algo, const update_stream<std::uint64_t, std::uint64_t>& stream) {
    stopwatch sw;
    for (const auto& u : stream) {
        algo.update(u.id, u.weight);
    }
    return sw.seconds();
}

/// Per-iteration latency series for the hand-rolled benches, built on
/// obs::basic_histogram — deliberately the *basic_* implementation, which
/// stays real even under -DFREQ_OBS_OFF, so BENCH_*.json tail statistics
/// never go dark with telemetry compiled out. Record seconds per iteration
/// (or per chunk), then emit mean/p50/p99/max so scripts/bench_delta.py can
/// warn on tail regressions, not just mean shifts (its lower-is-better
/// heuristic matches the *_s suffix).
class latency_recorder {
public:
    void record_seconds(double s) {
        hist_.record(s <= 0.0 ? 0
                               : static_cast<std::uint64_t>(s * 1e9));  // ns buckets
    }

    struct summary {
        std::uint64_t iterations = 0;
        double mean_s = 0.0;
        double p50_s = 0.0;
        double p99_s = 0.0;
        double max_s = 0.0;
    };

    summary summarize() const {
        const obs::histogram_snapshot s = hist_.snap();
        summary out;
        out.iterations = s.count;
        out.mean_s = s.mean() / 1e9;
        out.p50_s = s.quantile(0.50) / 1e9;
        out.p99_s = s.quantile(0.99) / 1e9;
        out.max_s = static_cast<double>(s.max) / 1e9;
        return out;
    }

    /// Appends `"<prefix>p50_s": ..., "<prefix>p99_s": ...` (no trailing
    /// comma) to an open JSON stream — the shape every BENCH_*.json uses.
    void write_json_fields(std::FILE* json, const char* prefix) const {
        const summary s = summarize();
        std::fprintf(json, "\"%sp50_s\": %.6g, \"%sp99_s\": %.6g", prefix, s.p50_s,
                     prefix, s.p99_s);
    }

private:
    obs::basic_histogram hist_;
};

/// Drives \p step over [0, n) in ~\p num_chunks contiguous chunks, timing
/// each chunk into \p rec. step(offset, take) must process exactly
/// [offset, offset + take). The per-chunk clock reads are two steady_clock
/// calls per chunk — noise next to any chunk worth measuring.
template <typename Step>
void record_chunks(std::size_t n, std::size_t num_chunks, latency_recorder& rec,
                   Step&& step) {
    const std::size_t chunk = std::max<std::size_t>(1, n / std::max<std::size_t>(1, num_chunks));
    std::size_t done = 0;
    while (done < n) {
        const std::size_t take = std::min(chunk, n - done);
        stopwatch sw;
        step(done, take);
        rec.record_seconds(sw.seconds());
        done += take;
    }
}

inline void print_header(const std::string& title, const std::string& columns) {
    std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
}

/// Qualitative reproduction check: prints PASS/FAIL with the claim text so
/// bench_output.txt doubles as the experiment record.
inline bool check(bool ok, const std::string& claim) {
    std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
    return ok;
}

/// Stream statistics banner (the §4.1 dataset-properties table).
inline void print_stream_stats(const update_stream<std::uint64_t, std::uint64_t>& stream,
                               const std::string& name) {
    exact_counter<std::uint64_t, std::uint64_t> exact;
    for (const auto& u : stream) {
        exact.update(u.id, u.weight);
    }
    std::printf("stream %-18s n=%llu  N=%.4g  distinct=%zu  mean_weight=%.1f\n",
                name.c_str(), static_cast<unsigned long long>(exact.num_updates()),
                static_cast<double>(exact.total_weight()), exact.num_distinct(),
                static_cast<double>(exact.total_weight()) /
                    static_cast<double>(std::max<std::uint64_t>(1, exact.num_updates())));
}

}  // namespace freq::bench

// --- replacement global allocation functions ---------------------------------
// Every bench binary is a single translation unit including this header
// exactly once, so defining the replaceable allocation functions here is
// ODR-safe and hooks *all* heap traffic of the process — libfreq's, the
// standard library's, the workload's — into the counters above. Disable
// with -DFREQ_BENCH_NO_ALLOC_HOOK (e.g. for a TU that links something with
// its own replacement).
#ifndef FREQ_BENCH_NO_ALLOC_HOOK

void* operator new(std::size_t n) {
    freq::bench::detail::note_alloc(n);
    if (void* p = std::malloc(n != 0 ? n : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void* operator new(std::size_t n, std::align_val_t al) {
    freq::bench::detail::note_alloc(n);
    const std::size_t a = std::max(static_cast<std::size_t>(al), sizeof(void*));
    void* p = nullptr;
    // posix_memalign over std::aligned_alloc: no size-multiple-of-alignment
    // requirement, and glibc frees both with plain free().
    if (posix_memalign(&p, a, n != 0 ? n : 1) != 0) {
        throw std::bad_alloc();
    }
    return p;
}

void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
    freq::bench::detail::note_alloc(n);
    return std::malloc(n != 0 ? n : 1);
}

void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
    return ::operator new(n, t);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // FREQ_BENCH_NO_ALLOC_HOOK

#endif  // FREQ_BENCH_BENCH_COMMON_H
