/// Google-benchmark micro-benchmarks for the §2.3.3 counter table itself:
/// hit and miss lookups, upserts, batched probes and the
/// decrement-and-compact pass, at small (L1-resident) and large
/// (cache-straining) capacities. These are the per-operation costs that make
/// Fig. 1's throughput possible.
///
/// Every operation runs twice — against the group-probe layout
/// (counter_table<..., true>, the default when common/simd.h finds an ISA)
/// and against the plain scalar probe loop (counter_table<..., false>) — and
/// main() writes the paired times and speedups to BENCH_table.json. The
/// acceptance gate is "the SIMD layout is not slower than scalar" (within
/// noise) on the cache-resident sizes; when no ISA is compiled in the two
/// layouts run the same code and the gate passes trivially.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/simd.h"
#include "random/xoshiro.h"
#include "table/counter_table.h"

namespace {

using namespace freq;

bench::alloc_phase g_allocs;  // heap traffic of the whole run

template <bool UseSimd>
using table_t = counter_table<std::uint64_t, std::uint64_t, UseSimd>;

std::vector<std::uint64_t> resident_keys(std::uint32_t k, std::uint64_t seed) {
    xoshiro256ss rng(seed);
    std::vector<std::uint64_t> keys;
    keys.reserve(k);
    for (std::uint32_t i = 0; i < k; ++i) {
        keys.push_back(rng());
    }
    return keys;
}

template <bool UseSimd>
table_t<UseSimd> filled_table(const std::vector<std::uint64_t>& keys,
                              std::uint64_t weight = 100) {
    table_t<UseSimd> t(static_cast<std::uint32_t>(keys.size()), 1);
    for (const auto key : keys) {
        t.upsert(key, weight);
    }
    return t;
}

template <bool UseSimd>
void BM_FindHit(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto keys = resident_keys(k, 1);
    const auto t = filled_table<UseSimd>(keys);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.find(keys[i]));
        i = (i + 1) % keys.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <bool UseSimd>
void BM_FindMiss(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto t = filled_table<UseSimd>(resident_keys(k, 1));
    xoshiro256ss rng(99);
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.find(rng() | 1ULL));  // almost surely absent
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <bool UseSimd>
void BM_FindBatch16(benchmark::State& state) {
    // The block shape the batched sketch update feeds through find_batch:
    // 16 keys, ~half hits, prefetches issued up front.
    constexpr std::size_t block = 16;
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto keys = resident_keys(k, 1);
    auto t = filled_table<UseSimd>(keys);
    xoshiro256ss rng(7);
    std::vector<std::uint64_t> probe(block * 1024);
    for (std::size_t i = 0; i < probe.size(); ++i) {
        probe[i] = rng.below(2) == 0 ? keys[rng.below(keys.size())] : (rng() | 1ULL);
    }
    std::uint64_t* results[block];
    std::size_t off = 0;
    for (auto _ : state) {
        t.find_batch(probe.data() + off, block, results);
        benchmark::DoNotOptimize(results[0]);
        off = (off + block) % probe.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * block);
}

template <bool UseSimd>
void BM_UpsertExisting(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto keys = resident_keys(k, 1);
    auto t = filled_table<UseSimd>(keys);
    std::size_t i = 0;
    for (auto _ : state) {
        t.upsert(keys[i], 1);
        i = (i + 1) % keys.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <bool UseSimd>
void BM_DecrementAll(benchmark::State& state) {
    // Counters start huge so repeated decrements never evict: the sweep runs
    // the survivors-only path (the group subtract under the SIMD layout)
    // without a rebuild between iterations. The rare refill re-arms it.
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto keys = resident_keys(k, 1);
    auto t = filled_table<UseSimd>(keys, std::uint64_t{1} << 40);
    for (auto _ : state) {
        if (t.size() < k) {
            state.PauseTiming();
            t = filled_table<UseSimd>(keys, std::uint64_t{1} << 40);
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(t.decrement_all(50));
    }
    // One decrement touches all L slots; report per-counter cost.
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}

template <bool UseSimd>
void BM_DecrementAllEvicting(benchmark::State& state) {
    // The other extreme: every pass erases ~1/8 of the counters, so the
    // sweep keeps leaving clusters dirty and re-placing survivors.
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto keys = resident_keys(k, 1);
    xoshiro256ss rng(13);
    auto seed_values = [&](table_t<UseSimd>& t) {
        t.clear();
        for (const auto key : keys) {
            t.upsert(key, 50 * (1 + rng.below(8)));
        }
    };
    table_t<UseSimd> t(k, 1);
    seed_values(t);
    for (auto _ : state) {
        if (t.size() < k / 2) {
            state.PauseTiming();
            seed_values(t);
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(t.decrement_all(50));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}

template <bool UseSimd>
void BM_FillToCapacity(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto keys = resident_keys(k, 1);
    for (auto _ : state) {
        table_t<UseSimd> t(k, 1);
        for (const auto key : keys) {
            t.upsert(key, 1);
        }
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}

/// Captures per-iteration wall seconds of every run so main() can compute
/// the SIMD/scalar pairings after the normal console report. Benchmarks run
/// with repetitions and the *minimum* per-iteration time is kept — the
/// robust estimator on shared machines, where a background process can
/// easily inflate a single repetition by more than the 10% gate tolerance.
class capture_reporter : public benchmark::ConsoleReporter {
public:
    void ReportRuns(const std::vector<Run>& runs) override {
        for (const auto& r : runs) {
            if (r.run_type == Run::RT_Aggregate || r.iterations <= 0) {
                continue;
            }
            const double s =
                r.real_accumulated_time / static_cast<double>(r.iterations);
            std::string name = r.benchmark_name();
            if (const auto pos = name.find("/repeats:"); pos != std::string::npos) {
                name.resize(pos);
            }
            const auto [it, inserted] = seconds_.try_emplace(std::move(name), s);
            if (!inserted && s < it->second) {
                it->second = s;
            }
        }
        ConsoleReporter::ReportRuns(runs);
    }

    const std::map<std::string, double>& seconds() const { return seconds_; }

private:
    std::map<std::string, double> seconds_;
};

/// Emits BENCH_table.json with one point per (operation, capacity) pair and
/// the simd/scalar time ratio. Gate: on the cache-resident capacities the
/// group layout must not be slower than the scalar loop beyond noise
/// (<= 10%); speedup itself is reported, not gated, so the file stays honest
/// on hardware where 4-lane compares buy little.
void write_table_json(const std::map<std::string, double>& s) {
    struct op {
        const char* name;   ///< benchmark function name
        bool gated;         ///< participates in the not-slower acceptance
    };
    constexpr op ops[] = {
        {"BM_FindHit", true},        {"BM_FindMiss", true},
        {"BM_FindBatch16", true},    {"BM_UpsertExisting", true},
        {"BM_DecrementAll", true},   {"BM_DecrementAllEvicting", true},
        {"BM_FillToCapacity", false},
    };
    constexpr int sizes[] = {1024, 65536, 1 << 20};
    constexpr double gate_ratio = 1.10;  // simd_s / scalar_s upper bound
    bool pass = true;
    bool any = false;
    std::string points;
    char line[512];
    for (const auto& o : ops) {
        for (const int k : sizes) {
            const auto simd_it =
                s.find(std::string(o.name) + "<true>/" + std::to_string(k));
            const auto scalar_it =
                s.find(std::string(o.name) + "<false>/" + std::to_string(k));
            if (simd_it == s.end() || scalar_it == s.end()) {
                continue;
            }
            any = true;
            const double ratio = simd_it->second / scalar_it->second;
            const bool gated = o.gated && k <= 65536;  // L2-resident sizes only
            if (gated) {
                pass = pass && ratio <= gate_ratio;
            }
            std::snprintf(line, sizeof(line),
                          "%s\n    {\"op\": \"%s\", \"k\": %d, "
                          "\"scalar_s\": %.9f, \"simd_s\": %.9f, "
                          "\"speedup\": %.3f, \"gated\": %s}",
                          points.empty() ? "" : ",", o.name, k, scalar_it->second,
                          simd_it->second, scalar_it->second / simd_it->second,
                          gated ? "true" : "false");
            points += line;
            std::printf("[%s] %s/%d: scalar %.2f ns, simd %.2f ns, speedup %.3fx\n",
                        !gated ? "INFO" : (ratio <= gate_ratio ? "PASS" : "FAIL"),
                        o.name, k, scalar_it->second * 1e9, simd_it->second * 1e9,
                        scalar_it->second / simd_it->second);
        }
    }
    if (!any) {
        return;  // filtered run: leave any previous BENCH_table.json alone
    }
    FILE* json = std::fopen("BENCH_table.json", "w");
    if (json == nullptr) {
        return;
    }
    std::fprintf(json,
                 "{\n  \"bench\": \"counter_table_simd\",\n"
                 "  \"isa\": \"%s\",\n  \"simd_compiled\": %s,\n",
                 simd::isa_name(), simd::compiled ? "true" : "false");
    std::fprintf(json, "  ");
    g_allocs.write_json_fields(json, "");
    std::fprintf(json, ",\n");
    std::fprintf(json,
                 "  \"points\": [%s\n  ],\n"
                 "  \"acceptance\": {\"simd_not_slower_than_scalar\": %s}\n}\n",
                 points.c_str(), pass ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_table.json (isa=%s)\n", simd::isa_name());
}

}  // namespace

// Three repetitions per benchmark; capture_reporter keeps the fastest one.
#define FREQ_TABLE_BENCH(fn)                                                  \
    BENCHMARK_TEMPLATE(fn, true)                                              \
        ->Arg(1024)->Arg(65536)->Arg(1 << 20)->Repetitions(3);                \
    BENCHMARK_TEMPLATE(fn, false)                                             \
        ->Arg(1024)->Arg(65536)->Arg(1 << 20)->Repetitions(3)

FREQ_TABLE_BENCH(BM_FindHit);
FREQ_TABLE_BENCH(BM_FindMiss);
FREQ_TABLE_BENCH(BM_FindBatch16);
FREQ_TABLE_BENCH(BM_UpsertExisting);
BENCHMARK_TEMPLATE(BM_DecrementAll, true)
    ->Arg(1024)->Arg(65536)->Arg(1 << 20)->Repetitions(3)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_DecrementAll, false)
    ->Arg(1024)->Arg(65536)->Arg(1 << 20)->Repetitions(3)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_DecrementAllEvicting, true)
    ->Arg(1024)->Arg(65536)->Repetitions(3)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_DecrementAllEvicting, false)
    ->Arg(1024)->Arg(65536)->Repetitions(3)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_FillToCapacity, true)
    ->Arg(1024)->Arg(65536)->Repetitions(3)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_FillToCapacity, false)
    ->Arg(1024)->Arg(65536)->Repetitions(3)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
    g_allocs.reset();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    capture_reporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    write_table_json(reporter.seconds());
    return 0;
}
