/// Google-benchmark micro-benchmarks for the §2.3.3 counter table itself:
/// hit and miss lookups, upserts, and the decrement-and-compact pass, at
/// small (L1-resident) and large (cache-straining) capacities. These are
/// the per-operation costs that make Fig. 1's throughput possible.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "random/xoshiro.h"
#include "table/counter_table.h"

namespace {

using namespace freq;
using table_u64 = counter_table<std::uint64_t, std::uint64_t>;

std::vector<std::uint64_t> resident_keys(std::uint32_t k, std::uint64_t seed) {
    xoshiro256ss rng(seed);
    std::vector<std::uint64_t> keys;
    keys.reserve(k);
    for (std::uint32_t i = 0; i < k; ++i) {
        keys.push_back(rng());
    }
    return keys;
}

table_u64 filled_table(const std::vector<std::uint64_t>& keys) {
    table_u64 t(static_cast<std::uint32_t>(keys.size()), 1);
    for (const auto key : keys) {
        t.upsert(key, 100);
    }
    return t;
}

void BM_FindHit(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto keys = resident_keys(k, 1);
    const auto t = filled_table(keys);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.find(keys[i]));
        i = (i + 1) % keys.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FindMiss(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto t = filled_table(resident_keys(k, 1));
    xoshiro256ss rng(99);
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.find(rng() | 1ULL));  // almost surely absent
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_UpsertExisting(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto keys = resident_keys(k, 1);
    auto t = filled_table(keys);
    std::size_t i = 0;
    for (auto _ : state) {
        t.upsert(keys[i], 1);
        i = (i + 1) % keys.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_DecrementAll(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto keys = resident_keys(k, 1);
    for (auto _ : state) {
        state.PauseTiming();
        auto t = filled_table(keys);  // decrement consumes the table
        state.ResumeTiming();
        benchmark::DoNotOptimize(t.decrement_all(50));
    }
    // One decrement touches all L slots; report per-slot cost via counters.
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}

void BM_FillToCapacity(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto keys = resident_keys(k, 1);
    for (auto _ : state) {
        table_u64 t(k, 1);
        for (const auto key : keys) {
            t.upsert(key, 1);
        }
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}

}  // namespace

BENCHMARK(BM_FindHit)->Arg(1024)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_FindMiss)->Arg(1024)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_UpsertExisting)->Arg(1024)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_DecrementAll)->Arg(1024)->Arg(65536)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FillToCapacity)->Arg(1024)->Arg(65536)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
