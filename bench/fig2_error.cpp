/// Figure 2 reproduction: maximum estimate error of SMED, SMIN, RBMC and MHE
/// on the packet-trace workload, equal-space and equal-counters panels.
///
/// Paper claims to reproduce (shape):
///  * equal space: SMED error is 18%-29% above MHE's; never more than 2.5x
///    RBMC/SMIN's;
///  * equal counters: RBMC, MHE and SMIN have indistinguishable max error
///    (RBMC(k) is isomorphic to MHE(k+1), §1.4), SMED is the outlier;
///  * doubling SMED's counters overcomes the gap while keeping it fastest;
///  * error shrinks as k grows for every algorithm (§4.2).

#include <cstdio>
#include <vector>

#include "baselines/rbmc.h"
#include "baselines/space_saving_heap.h"
#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"
#include "metrics/error.h"
#include "metrics/space.h"
#include "stream/exact_counter.h"

namespace {

using namespace freq;
using namespace freq::bench;

using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;
using mhe_u64 = space_saving_heap<std::uint64_t, std::uint64_t>;
using rbmc_u64 = rbmc<std::uint64_t, std::uint64_t>;

double smed_error(const update_stream<std::uint64_t, std::uint64_t>& s,
                  const exact_counter<std::uint64_t, std::uint64_t>& exact, std::uint32_t k,
                  double quantile) {
    sketch_u64 algo(sketch_config{.max_counters = k, .decrement_quantile = quantile, .seed = 1});
    algo.consume(s);
    return evaluate_errors(algo, exact).max_error;
}

double rbmc_error(const update_stream<std::uint64_t, std::uint64_t>& s,
                  const exact_counter<std::uint64_t, std::uint64_t>& exact, std::uint32_t k) {
    rbmc_u64 algo(k, 1);
    algo.consume(s);
    return evaluate_errors(algo, exact).max_error;
}

double mhe_error(const update_stream<std::uint64_t, std::uint64_t>& s,
                 const exact_counter<std::uint64_t, std::uint64_t>& exact, std::uint32_t k) {
    mhe_u64 algo(k, 1);
    algo.consume(s);
    return evaluate_errors(algo, exact).max_error;
}

}  // namespace

int main() {
    const auto stream = caida_stream();
    print_stream_stats(stream, "caida-like(fig2)");
    exact_counter<std::uint64_t, std::uint64_t> exact;
    for (const auto& u : stream) {
        exact.update(u.id, u.weight);
    }

    const std::vector<std::uint32_t> ks = {1024, 2048, 4096, 8192, 16384};

    // ---- equal-counters panel (bottom of Fig. 2) ---------------------------
    print_header("Figure 2 (equal counters): maximum estimate error",
                 "        k          SMED          SMIN          RBMC           MHE   SMED/SMIN   MHE/SMIN");
    std::vector<double> smed_by_k, smin_by_k, mhe_by_k;
    bool baselines_indistinguishable = true;
    bool error_shrinks = true;
    double prev_smed = 1e300;
    for (const auto k : ks) {
        const double e_smed = smed_error(stream, exact, k, 0.5);
        const double e_smin = smed_error(stream, exact, k, 0.0);
        const double e_rbmc = rbmc_error(stream, exact, k);
        const double e_mhe = mhe_error(stream, exact, k);
        std::printf("%9u  %12.4g  %12.4g  %12.4g  %12.4g  %10.2f  %10.2f\n", k, e_smed,
                    e_smin, e_rbmc, e_mhe, e_smed / e_smin, e_mhe / e_smin);
        smed_by_k.push_back(e_smed);
        smin_by_k.push_back(e_smin);
        mhe_by_k.push_back(e_mhe);
        // "Indistinguishable" in the figure = within a few tens of percent.
        baselines_indistinguishable &= e_rbmc < 1.5 * e_smin && e_smin < 1.5 * e_rbmc;
        error_shrinks &= e_smed < prev_smed;
        prev_smed = e_smed;
    }

    // ---- equal-space panel (top of Fig. 2) ---------------------------------
    // SMED/SMIN errors carry over from the equal-counters runs (same byte
    // model); only MHE is re-sized to the byte budget.
    print_header("Figure 2 (equal space): byte budget = SMED(k)",
                 "    bytes(K)   k(SMED)    k(MHE)          SMED          SMIN           MHE   SMED/MHE");
    double worst_smed_vs_mhe = 0;
    double worst_smed_vs_smin = 0;
    for (std::size_t i = 0; i < ks.size(); ++i) {
        const auto k = ks[i];
        const std::size_t budget = sketch_u64::bytes_for(k);
        const auto k_mhe = max_counters_within(budget, mhe_u64::bytes_for);
        const double e_smed = smed_by_k[i];
        const double e_smin = smin_by_k[i];
        const double e_mhe = mhe_error(stream, exact, k_mhe);
        std::printf("%12zu  %8u  %8u  %12.4g  %12.4g  %12.4g  %9.2f\n", budget / 1024, k,
                    k_mhe, e_smed, e_smin, e_mhe, e_smed / e_mhe);
        worst_smed_vs_mhe = std::max(worst_smed_vs_mhe, e_smed / e_mhe);
        worst_smed_vs_smin = std::max(worst_smed_vs_smin, e_smed / e_smin);
    }

    // ---- the "overcome by doubling k" observation --------------------------
    print_header("Figure 2 follow-up: SMED with 2x counters vs baselines at k",
                 "        k   SMED(2k)       SMIN(k)        MHE(k)");
    bool doubling_wins = true;
    for (std::size_t i = 0; i < ks.size(); ++i) {
        const auto k = ks[i];
        const double e_smed2 = smed_error(stream, exact, 2 * k, 0.5);
        const double e_smin = smin_by_k[i];
        const double e_mhe = mhe_by_k[i];
        std::printf("%9u  %10.4g  %12.4g  %12.4g\n", k, e_smed2, e_smin, e_mhe);
        doubling_wins &= e_smed2 <= e_smin && e_smed2 <= e_mhe;
    }

    std::printf("\n");
    bool ok = true;
    ok &= check(error_shrinks, "SMED max error decreases monotonically in k (§4.2)");
    ok &= check(baselines_indistinguishable,
                "RBMC and SMIN max errors are near-identical (Fig. 2 omits RBMC for this reason)");
    ok &= check(worst_smed_vs_smin <= 3.0,
                "SMED max error is never more than ~2.5x SMIN/RBMC (paper: <= 2.5x)");
    ok &= check(doubling_wins,
                "Doubling SMED's counters overcomes the baselines' accuracy edge (§4.3)");
    return ok ? 0 : 1;
}
