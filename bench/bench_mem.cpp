/// \file bench_mem.cpp
/// Memory-locality harness for the common/mem.h subsystem (ISSUE 10):
///
///   A. arena vs heap spelling storage — the same string stream through the
///      arena-backed dictionary (the string default) and the heap-backed
///      one, comparing wall time and allocator traffic. Keys are long
///      enough to defeat SSO, so the heap path pays one allocation per
///      distinct spelling while the arena path bump-allocates into mmap'd
///      blocks the operator-new hook never sees.
///   B. allocation-free snapshot folds — a loaded incremental engine folded
///      repeatedly into one reused target sketch; after warmup both the
///      nothing-changed reuse path and the dirty-shard path must perform
///      zero heap allocations per fold.
///   C. placement on/off ingest throughput — the same u64 stream through a
///      default engine and one with hugepages + interleave requested. On
///      single-node or low-core hosts (this includes most CI containers)
///      the comparison is informational: gated=false in the JSON, and
///      bench_delta.py skips gated acceptance leaves.
///
/// Emits BENCH_mem.json. Placement never affects results, so phase A also
/// cross-checks that both backends report the same top-10.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/mem.h"
#include "core/fingerprint_frequent_items.h"
#include "core/string_frequent_items.h"
#include "engine/stream_engine.h"
#include "random/xoshiro.h"
#include "random/zipf.h"
#include "stream/generators.h"

namespace {

using namespace freq;

constexpr std::uint32_t k = 1024;

// --- phase A: arena vs heap spelling storage ---------------------------------

/// Heap-backed twin of the string default: same traits, same fingerprints,
/// only the dictionary storage differs (spelling_dictionary.h pins the two
/// to bit-identical envelopes; tests/test_spelling_arena.cpp enforces it).
using heap_string_sketch =
    fingerprint_frequent_items<std::string, std::uint64_t, plain_lifetime,
                               key_fingerprint_traits<std::string>,
                               spelling_dictionary<std::string, false>>;
using arena_string_sketch = string_frequent_items<std::uint64_t>;

/// Zipf-ranked keys padded past every SSO threshold (libstdc++ keeps 15
/// bytes inline) so heap spelling storage costs a real allocation each.
std::vector<std::string> make_keys(std::size_t distinct) {
    std::vector<std::string> keys;
    keys.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "flow:v6:%012zu:padding-for-sso-escape",
                      i);
        keys.emplace_back(buf);
    }
    return keys;
}

struct spelling_run {
    double seconds = 0.0;
    std::uint64_t alloc_count = 0;
    std::uint64_t alloc_bytes = 0;
    std::vector<std::string> top10;
};

template <typename Sketch>
spelling_run run_spelling(const std::vector<std::string>& keys,
                          const std::vector<std::uint32_t>& order) {
    spelling_run r;
    Sketch sketch(sketch_config{.max_counters = k, .seed = 7});
    bench::alloc_phase allocs;
    bench::stopwatch sw;
    for (const std::uint32_t idx : order) {
        sketch.update(keys[idx], 1);
    }
    r.seconds = sw.seconds();
    r.alloc_count = allocs.count();
    r.alloc_bytes = allocs.bytes();
    for (const auto& row : sketch.top_items(10)) {
        r.top10.push_back(row.item);
    }
    return r;
}

// --- phase B: allocation-free snapshot folds ---------------------------------

struct fold_run {
    std::uint64_t repeat_allocs = 0;  ///< folds with nothing dirty
    std::uint64_t dirty_allocs = 0;   ///< folds after fresh pushes
    double dirty_fold_s = 0.0;        ///< mean seconds per dirty fold
};

fold_run run_folds(const update_stream<std::uint64_t, std::uint64_t>& stream) {
    engine_config cfg;
    cfg.num_shards = 2;
    cfg.num_producers = 1;
    cfg.sketch = sketch_config{.max_counters = k, .seed = 1};
    cfg.incremental_snapshots = true;
    stream_engine<> engine(cfg);

    auto producer = engine.make_producer();
    producer.push(std::span<const update64>(stream.data(), stream.size()));
    producer.flush();
    engine.flush();

    // Repushes reuse ids already resident in the tables so steady-state
    // folds never grow a vector — the ISSUE-10 claim is about allocator
    // traffic per fold, not about table growth.
    const std::size_t repush = std::min<std::size_t>(stream.size(), 4096);

    stream_engine<>::sketch_type out(sketch_config{.max_counters = k, .seed = 1});
    for (int warm = 0; warm < 3; ++warm) {
        producer.push(std::span<const update64>(stream.data(), repush));
        producer.flush();
        engine.flush();
        engine.snapshot_into(out);
    }
    engine.snapshot_into(out);  // warm the nothing-dirty reuse path too

    fold_run r;
    constexpr int rounds = 16;
    {
        bench::alloc_phase allocs;
        for (int i = 0; i < rounds; ++i) {
            engine.snapshot_into(out);
        }
        r.repeat_allocs = allocs.count();
    }
    {
        bench::alloc_phase allocs;
        bench::stopwatch sw;
        for (int i = 0; i < rounds; ++i) {
            producer.push(std::span<const update64>(stream.data(), repush));
            producer.flush();
            engine.flush();
            engine.snapshot_into(out);
        }
        r.dirty_fold_s = sw.seconds() / rounds;
        r.dirty_allocs = allocs.count();
    }
    engine.stop();
    return r;
}

// --- phase C: placement on/off ingest throughput -----------------------------

double time_engine_ingest(const update_stream<std::uint64_t, std::uint64_t>& stream,
                          bool place) {
    engine_config cfg;
    cfg.num_shards = 2;
    cfg.num_producers = 1;
    cfg.sketch = sketch_config{.max_counters = k, .seed = 1};
    if (place) {
        cfg.hugepages = true;
        cfg.numa = numa_policy::interleave;
    }
    stream_engine<> engine(cfg);
    bench::stopwatch sw;
    {
        auto producer = engine.make_producer();
        producer.push(std::span<const update64>(stream.data(), stream.size()));
        producer.flush();
    }
    engine.flush();
    const double s = sw.seconds();
    engine.stop();
    return s;
}

}  // namespace

int main() {
    const unsigned hw = std::thread::hardware_concurrency();
    const mem::topology& topo = mem::host_topology();
    std::printf("mem bench: numa_compiled=%d nodes=%zu thp=%d hugepool=%zu "
                "hardware_threads=%u\n",
                mem::numa_compiled ? 1 : 0, topo.num_nodes(),
                topo.thp_available ? 1 : 0, topo.explicit_hugepage_bytes, hw);

    // --- phase A -------------------------------------------------------------
    const std::size_t distinct = static_cast<std::size_t>(bench::scaled(50'000));
    const std::size_t n_strings = static_cast<std::size_t>(bench::scaled(2'000'000));
    const std::vector<std::string> keys = make_keys(distinct);
    std::vector<std::uint32_t> order;
    order.reserve(n_strings);
    {
        zipf_distribution zipf(distinct, 1.1);
        xoshiro256ss rng(42);
        for (std::size_t i = 0; i < n_strings; ++i) {
            order.push_back(static_cast<std::uint32_t>(zipf(rng) - 1));
        }
    }

    bench::print_header("arena vs heap spelling storage",
                        "backend        seconds     mups    alloc_count    alloc_MB");
    const spelling_run heap = run_spelling<heap_string_sketch>(keys, order);
    const spelling_run arena = run_spelling<arena_string_sketch>(keys, order);
    for (const auto* r : {&heap, &arena}) {
        std::printf("%-12s %9.3f %8.2f %14" PRIu64 " %11.2f\n",
                    r == &heap ? "heap" : "arena", r->seconds,
                    static_cast<double>(n_strings) / r->seconds / 1e6,
                    r->alloc_count, static_cast<double>(r->alloc_bytes) / 1e6);
    }
    const bool same_top = heap.top10 == arena.top10;
    const bool arena_fewer = arena.alloc_count <= heap.alloc_count;
    bench::check(same_top, "arena and heap dictionaries agree on the top-10");
    bench::check(arena_fewer,
                 "arena spelling ingest allocates no more than the heap backend");

    // --- phase B -------------------------------------------------------------
    const std::uint64_t n_u64 = bench::scaled(1'000'000);
    zipf_stream_generator gen({.num_updates = n_u64,
                               .num_distinct = n_u64 / 10,
                               .alpha = 1.1,
                               .min_weight = 1,
                               .max_weight = 100,
                               .seed = 2024});
    const auto stream = gen.generate();
    const fold_run folds = run_folds(stream);
    bench::print_header("allocation-free snapshot folds",
                        "path               allocs/16 folds   fold_s");
    std::printf("reuse (clean)    %17" PRIu64 "        -\n", folds.repeat_allocs);
    std::printf("incremental      %17" PRIu64 " %8.6f\n", folds.dirty_allocs,
                folds.dirty_fold_s);
    const bool zero_reuse = folds.repeat_allocs == 0;
    const bool zero_dirty = folds.dirty_allocs == 0;
    bench::check(zero_reuse, "nothing-dirty snapshot_into performs zero allocations");
    bench::check(zero_dirty,
                 "steady-state incremental snapshot_into performs zero allocations");

    // --- phase C -------------------------------------------------------------
    const double plain_s = time_engine_ingest(stream, false);
    const double placed_s = time_engine_ingest(stream, true);
    // A real placement win needs real placement: multiple NUMA nodes and
    // enough cores that pinning does not fight the scheduler. Containers
    // with one node / few threads report the numbers but do not gate.
    const bool gated = topo.multi_node() && hw >= 4 && mem::numa_compiled;
    const bool placed_ok = placed_s <= plain_s * 1.20;
    bench::print_header("placement on/off engine ingest",
                        "config           seconds     mups");
    std::printf("default        %9.3f %8.2f\n", plain_s,
                static_cast<double>(n_u64) / plain_s / 1e6);
    std::printf("placed         %9.3f %8.2f\n", placed_s,
                static_cast<double>(n_u64) / placed_s / 1e6);
    if (gated) {
        bench::check(placed_ok, "placement-enabled ingest within 20% of default");
    } else {
        std::printf("[info] placement comparison informational "
                    "(nodes=%zu hardware_threads=%u)\n",
                    topo.num_nodes(), hw);
    }

    FILE* json = std::fopen("BENCH_mem.json", "w");
    if (json != nullptr) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"memory_locality\",\n");
        std::fprintf(json,
                     "  \"topology\": {\"numa_compiled\": %s, \"nodes\": %zu, "
                     "\"thp_available\": %s, \"explicit_hugepage_bytes\": %zu},\n",
                     mem::numa_compiled ? "true" : "false", topo.num_nodes(),
                     topo.thp_available ? "true" : "false",
                     topo.explicit_hugepage_bytes);
        std::fprintf(json, "  \"hardware_threads\": %u,\n", hw);
        std::fprintf(json,
                     "  \"spelling\": {\"n\": %zu, \"distinct\": %zu, "
                     "\"heap\": {\"seconds\": %.6g, ",
                     n_strings, distinct, heap.seconds);
        std::fprintf(json, "\"alloc_count\": %" PRIu64 ", \"alloc_bytes\": %" PRIu64
                     "},\n",
                     heap.alloc_count, heap.alloc_bytes);
        std::fprintf(json,
                     "              \"arena\": {\"seconds\": %.6g, \"alloc_count\": "
                     "%" PRIu64 ", \"alloc_bytes\": %" PRIu64 "}},\n",
                     arena.seconds, arena.alloc_count, arena.alloc_bytes);
        std::fprintf(json,
                     "  \"folds\": {\"rounds\": 16, \"reuse_alloc_count\": %" PRIu64
                     ", \"incremental_alloc_count\": %" PRIu64
                     ", \"incremental_fold_s\": %.6g},\n",
                     folds.repeat_allocs, folds.dirty_allocs, folds.dirty_fold_s);
        std::fprintf(json,
                     "  \"placement\": {\"default_seconds\": %.6g, "
                     "\"placed_seconds\": %.6g, \"gated\": %s},\n",
                     plain_s, placed_s, gated ? "true" : "false");
        std::fprintf(json,
                     "  \"mem_metrics\": {\"hugepage_regions\": %" PRIu64
                     ", \"arena_reserved_bytes\": %" PRIu64
                     ", \"arena_resets\": %" PRIu64 "},\n",
                     obs::pipeline().mem_hugepage_regions.value(),
                     obs::pipeline().mem_arena_reserved_bytes.value(),
                     obs::pipeline().mem_arena_resets.value());
        std::fprintf(json,
                     "  \"acceptance\": {\"same_top10\": %s, "
                     "\"arena_allocs_le_heap\": %s, \"reuse_fold_zero_alloc\": %s, "
                     "\"incremental_fold_zero_alloc\": %s, \"gated\": %s, "
                     "\"placement_within_20pct\": %s}\n",
                     same_top ? "true" : "false", arena_fewer ? "true" : "false",
                     zero_reuse ? "true" : "false", zero_dirty ? "true" : "false",
                     gated ? "true" : "false", placed_ok ? "true" : "false");
        std::fprintf(json, "}\n");
        std::fclose(json);
        std::printf("wrote BENCH_mem.json\n");
    }
    return 0;
}
