/// Ablation: Algorithm 3 (MED — exact k*-th largest via Quickselect over a
/// scratch copy) vs Algorithm 4 (SMED — sampled median). §2.2 names the two
/// costs of Algorithm 3 that motivated the final design: the extra pass over
/// the summary per decrement, and the extra k words of scratch. This bench
/// measures both, plus the accuracy each buys.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"
#include "core/med_exact_sketch.h"
#include "metrics/error.h"
#include "stream/exact_counter.h"

int main() {
    using namespace freq;
    using namespace freq::bench;

    caida_like_generator gen({
        .num_updates = scaled(4'000'000),
        .num_flows = scaled(400'000),
        .alpha = 1.1,
        .seed = 2016,
    });
    const auto stream = gen.generate();
    exact_counter<std::uint64_t, std::uint64_t> exact;
    for (const auto& u : stream) {
        exact.update(u.id, u.weight);
    }

    print_header("Algorithm 3 (MED) vs Algorithm 4 (SMED)",
                 "        k   algo        seconds    max_error   decrements   memory_bytes");
    bool ok = true;
    for (const std::uint32_t k : {1024u, 4096u, 16384u}) {
        med_exact_sketch<std::uint64_t, std::uint64_t> med(k);
        stopwatch sw;
        med.consume(stream);
        const double t_med = sw.seconds();
        const double e_med = evaluate_errors(med, exact).max_error;
        std::printf("%9u   %-8s  %9.3f  %11.4g  %11llu  %13zu\n", k, "MED", t_med, e_med,
                    static_cast<unsigned long long>(med.num_decrements()),
                    med.memory_bytes());

        frequent_items_sketch<std::uint64_t, std::uint64_t> smed(
            sketch_config{.max_counters = k, .seed = 1});
        sw.reset();
        smed.consume(stream);
        const double t_smed = sw.seconds();
        const double e_smed = evaluate_errors(smed, exact).max_error;
        std::printf("%9u   %-8s  %9.3f  %11.4g  %11llu  %13zu\n", k, "SMED", t_smed, e_smed,
                    static_cast<unsigned long long>(smed.num_decrements()),
                    smed.memory_bytes());

        ok &= check(smed.memory_bytes() < med.memory_bytes(),
                    "k=" + std::to_string(k) +
                        ": SMED avoids Algorithm 3's extra k words of scratch (§2.2)");
        // Speed crossover: at k <= l (= 1024 samples) the rejection-sampled
        // median costs as much as MED's exact sequential scan, so SMED's
        // speed edge only appears for k >> l — assert it there.
        if (k >= 4096) {
            ok &= check(t_smed <= t_med * 1.10,
                        "k=" + std::to_string(k) + ": SMED is at least as fast as MED (k >> l)");
        }
        ok &= check(e_smed <= e_med * 2.0 && e_med <= e_smed * 2.0,
                    "k=" + std::to_string(k) + ": sampling the median costs little accuracy");
    }
    return ok ? 0 : 1;
}
