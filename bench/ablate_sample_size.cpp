/// Ablation: the sample size l. The paper fixes l = 1024 via a numerical
/// failure-probability calculation (§2.3.2) but never measures the cost of
/// the choice. This sweep shows (a) update throughput is nearly flat in l —
/// the sample is only touched once per ~k/2 updates — and (b) small samples
/// increase the variance of c*, which shows up as occasional error spikes;
/// l = 1024 buys the certified tail probability at negligible speed cost.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"
#include "metrics/error.h"
#include "stream/exact_counter.h"

int main() {
    using namespace freq;
    using namespace freq::bench;

    caida_like_generator gen({
        .num_updates = scaled(4'000'000),
        .num_flows = scaled(400'000),
        .alpha = 1.1,
        .seed = 2016,
    });
    const auto stream = gen.generate();
    exact_counter<std::uint64_t, std::uint64_t> exact;
    for (const auto& u : stream) {
        exact.update(u.id, u.weight);
    }

    constexpr std::uint32_t k = 4096;
    print_header("Sample size ablation (k = 4096, q = 0.5)",
                 "        l     seconds    max_error   decrements");
    double t_16 = 0;
    double t_1024 = 0;
    bool ok = true;
    for (const std::uint32_t l : {16u, 64u, 256u, 1024u, 4096u}) {
        frequent_items_sketch<std::uint64_t, std::uint64_t> s(
            sketch_config{.max_counters = k, .sample_size = l, .seed = 1});
        stopwatch sw;
        s.consume(stream);
        const double secs = sw.seconds();
        const double err = evaluate_errors(s, exact).max_error;
        std::printf("%9u  %10.3f  %11.4g  %11llu\n", l, secs, err,
                    static_cast<unsigned long long>(s.num_decrements()));
        if (l == 16) {
            t_16 = secs;
        }
        if (l == 1024) {
            t_1024 = secs;
        }
    }
    std::printf("\n");
    ok &= check(t_1024 < t_16 * 1.6,
                "l = 1024 costs little over l = 16 (sampling is off the hot path)");
    return ok ? 0 : 1;
}
