/// Lifetime-policy bench: plain vs exponential-fading vs epoch-window shards
/// on a Zipf(1.1) stream whose hot set *drifts* — each epoch rotates the
/// rank->id mapping, so yesterday's heavy hitters go cold. All three
/// policies ingest through the same sharded engine (identical ring/drain
/// path); the figure of merit is ingest throughput plus top-100 recall
/// against the *recent* (policy-appropriate) ground truth:
///
///   plain    — recall vs the last-window truth exposes how a lifetime-less
///              sketch clings to stale hot items;
///   fading   — vs exact exponentially-decayed counts;
///   windowed — vs exact counts over the last `window` epochs.
///
/// Emits a table on stdout and machine-readable BENCH_decay.json (archived
/// by CI next to BENCH_engine.json).
///
///   build/bench_decay               # FREQ_BENCH_SCALE scales the stream

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "core/basic_frequent_items.h"
#include "core/frequent_items_sketch.h"
#include "core/lifetime_policy.h"
#include "engine/stream_engine.h"
#include "random/xoshiro.h"
#include "random/zipf.h"

namespace {

using namespace freq;

constexpr std::uint32_t k = 4096;
constexpr std::uint32_t num_shards = 2;
constexpr int epochs = 8;
constexpr std::uint32_t window = 3;
constexpr double rho = 0.5;
constexpr std::size_t topn = 100;

struct policy_result {
    std::string name;
    double seconds = 0.0;
    double recall = 0.0;
    double total_weight = 0.0;
    bench::latency_recorder::summary lat{};  ///< per-chunk ingest latency tail
};

/// Top-n ids of an exact (id -> weight) map.
std::vector<std::uint64_t> exact_topn(
    const std::unordered_map<std::uint64_t, double>& counts, std::size_t n) {
    std::vector<std::pair<std::uint64_t, double>> rows(counts.begin(), counts.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < std::min(n, rows.size()); ++i) {
        out.push_back(rows[i].first);
    }
    return out;
}

double recall_against(const std::vector<std::uint64_t>& sketch_ids,
                      const std::vector<std::uint64_t>& truth) {
    const std::unordered_set<std::uint64_t> got(sketch_ids.begin(), sketch_ids.end());
    std::size_t hit = 0;
    for (const auto id : truth) {
        hit += got.count(id);
    }
    return truth.empty() ? 1.0 : static_cast<double>(hit) / static_cast<double>(truth.size());
}

/// Runs one policy's engine over the epoch-sliced stream, ticking at each
/// epoch boundary, and returns wall seconds + the merged snapshot's top-n.
template <typename Sketch, typename W>
std::pair<double, std::vector<std::uint64_t>> run_engine(
    const std::vector<update_stream<std::uint64_t, std::uint64_t>>& epochs_traffic,
    const sketch_config& scfg, double* total_weight_out,
    bench::latency_recorder* rec) {
    engine_config cfg;
    cfg.num_shards = num_shards;
    cfg.sketch = scfg;
    stream_engine<std::uint64_t, W, Sketch> engine(cfg);
    bench::stopwatch sw;
    {
        auto producer = engine.make_producer();
        for (std::size_t e = 0; e < epochs_traffic.size(); ++e) {
            const auto& epoch_stream = epochs_traffic[e];
            // ~8 timed chunks per epoch feed the per-run latency tail.
            bench::record_chunks(epoch_stream.size(), 8, *rec,
                                 [&](std::size_t off, std::size_t take) {
                                     for (std::size_t i = off; i < off + take; ++i) {
                                         producer.push(epoch_stream[i].id,
                                                       static_cast<W>(
                                                           epoch_stream[i].weight));
                                     }
                                 });
            producer.flush();
            engine.flush();
            if (e + 1 < epochs_traffic.size()) {
                engine.advance_epoch();
            }
        }
    }
    const double s = sw.seconds();
    const auto snap = engine.snapshot();
    *total_weight_out = static_cast<double>(snap.total_weight());
    std::vector<std::uint64_t> ids;
    for (const auto& r : snap.top_items(topn)) {
        ids.push_back(r.id);
    }
    return {s, ids};
}

}  // namespace

int main() {
    bench::alloc_phase allocs;  // heap traffic of the whole run
    const std::uint64_t n = bench::scaled(4'000'000);
    const std::uint64_t per_epoch = n / epochs;
    const std::uint64_t distinct = std::max<std::uint64_t>(n / 10, 1'000);
    // Rotating the zipf rank->id map by distinct/epochs per epoch replaces
    // roughly the whole hot set over the run.
    const std::uint64_t drift = distinct / epochs;

    std::printf("decay bench: n=%llu zipf(1.1) distinct=%llu epochs=%d drift=%llu "
                "rho=%.2f window=%u shards=%u k=%u\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(distinct), epochs,
                static_cast<unsigned long long>(drift), rho, window, num_shards, k);

    // Epoch-sliced traffic with a drifting hot set, plus exact references.
    std::vector<update_stream<std::uint64_t, std::uint64_t>> traffic(epochs);
    std::unordered_map<std::uint64_t, double> exact_decayed;
    std::unordered_map<std::uint64_t, double> exact_window;
    std::vector<std::unordered_map<std::uint64_t, double>> per_epoch_counts(epochs);
    xoshiro256ss rng(4242);
    zipf_distribution zipf(distinct, 1.1);
    for (int e = 0; e < epochs; ++e) {
        traffic[e].reserve(per_epoch);
        for (std::uint64_t i = 0; i < per_epoch; ++i) {
            const std::uint64_t rank = zipf(rng);
            const std::uint64_t id =
                1 + (rank - 1 + drift * static_cast<std::uint64_t>(e)) % distinct;
            const std::uint64_t w = rng.between(1, 100);
            traffic[e].push_back({id, w});
            exact_decayed[id] += static_cast<double>(w);
            per_epoch_counts[e][id] += static_cast<double>(w);
        }
        if (e + 1 < epochs) {
            for (auto& [id, c] : exact_decayed) {
                c *= rho;
            }
        }
    }
    for (int e = epochs - static_cast<int>(window); e < epochs; ++e) {
        for (const auto& [id, w] : per_epoch_counts[e]) {
            exact_window[id] += w;
        }
    }
    const auto decayed_top = exact_topn(exact_decayed, topn);
    const auto window_top = exact_topn(exact_window, topn);

    std::vector<policy_result> results;

    {
        policy_result r{.name = "plain"};
        bench::latency_recorder rec;
        auto [s, ids] = run_engine<frequent_items_sketch<std::uint64_t, std::uint64_t>,
                                   std::uint64_t>(
            traffic, sketch_config{.max_counters = k, .seed = 1}, &r.total_weight, &rec);
        r.seconds = s;
        r.lat = rec.summarize();
        // Plain has no lifetime: score it against the recent-window truth to
        // expose the drift lag (its recall vs all-time truth is the plain
        // engine bench's territory).
        r.recall = recall_against(ids, window_top);
        results.push_back(r);
    }
    {
        policy_result r{.name = "fading"};
        bench::latency_recorder rec;
        auto [s, ids] =
            run_engine<fading_frequent_items<std::uint64_t, double>, double>(
                traffic, sketch_config{.max_counters = k, .seed = 1, .decay = rho},
                &r.total_weight, &rec);
        r.seconds = s;
        r.lat = rec.summarize();
        r.recall = recall_against(ids, decayed_top);
        results.push_back(r);
    }
    {
        policy_result r{.name = "windowed"};
        bench::latency_recorder rec;
        auto [s, ids] =
            run_engine<windowed_frequent_items<std::uint64_t, std::uint64_t>,
                       std::uint64_t>(
                traffic,
                sketch_config{.max_counters = k, .seed = 1, .window_epochs = window},
                &r.total_weight, &rec);
        r.seconds = s;
        r.lat = rec.summarize();
        r.recall = recall_against(ids, window_top);
        results.push_back(r);
    }

    bench::print_header("lifetime policies on a drifting hot set",
                        "policy      Mupd/s   top-100 recall   total weight");
    for (const auto& r : results) {
        std::printf("%-10s %7.2f %16.2f %14.4g\n", r.name.c_str(),
                    static_cast<double>(n) / r.seconds / 1e6, r.recall, r.total_weight);
    }

    // The lifetime policies must track the drifting hot set materially
    // better than the lifetime-less sketch.
    bench::check(results[1].recall >= results[0].recall + 0.1,
                 "fading recall beats plain-vs-recent-truth by >= 0.1");
    bench::check(results[2].recall >= results[0].recall + 0.1,
                 "windowed recall beats plain-vs-recent-truth by >= 0.1");
    bench::check(results[1].recall >= 0.8, "fading top-100 recall >= 0.8");
    bench::check(results[2].recall >= 0.8, "windowed top-100 recall >= 0.8");

    FILE* json = std::fopen("BENCH_decay.json", "w");
    if (json != nullptr) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"lifetime_policies\",\n");
        std::fprintf(json, "  ");
        allocs.write_json_fields(json, "");
        std::fprintf(json, ",\n");
        std::fprintf(json,
                     "  \"stream\": {\"n\": %llu, \"alpha\": 1.1, \"distinct\": %llu, "
                     "\"epochs\": %d, \"drift_per_epoch\": %llu},\n",
                     static_cast<unsigned long long>(n),
                     static_cast<unsigned long long>(distinct), epochs,
                     static_cast<unsigned long long>(drift));
        std::fprintf(json,
                     "  \"config\": {\"k\": %u, \"shards\": %u, \"decay\": %.2f, "
                     "\"window_epochs\": %u},\n",
                     k, num_shards, rho, window);
        std::fprintf(json, "  \"policies\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            std::fprintf(json,
                         "    {\"policy\": \"%s\", \"mups\": %.3f, "
                         "\"top100_recall\": %.4f, \"total_weight\": %.6g, "
                         "\"chunk_p50_s\": %.6g, \"chunk_p99_s\": %.6g}%s\n",
                         r.name.c_str(), static_cast<double>(n) / r.seconds / 1e6,
                         r.recall, r.total_weight, r.lat.p50_s, r.lat.p99_s,
                         i + 1 < results.size() ? "," : "");
        }
        std::fprintf(json, "  ]\n}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_decay.json\n");
    }
    return 0;
}
