/// Figure 4 reproduction: merge speed of Algorithm 5 against the Agarwal et
/// al. sort-based merge (ACH+13) and the Quickselect variant (Hoa61), §4.5.
///
/// Workload (§4.5): 50 pairs of sketches, each of capacity k, pre-filled
/// with synthetic streams — item ids Zipf(alpha = 1.05), weights uniform in
/// [1, 10000].
///
/// Paper claims to reproduce (shape):
///  * ours is up to 8.6x-10x faster than ACH+13, growing with k;
///  * ours is 1.9x-2.26x faster than Hoa61;
///  * error difference is within a few percent;
///  * ours needs no scratch space; the alternatives allocate ~2.5x more.

#include <cstdio>
#include <vector>

#include "baselines/merge_baselines.h"
#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"
#include "metrics/error.h"
#include "stream/exact_counter.h"

namespace {

using namespace freq;
using namespace freq::bench;

using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;

constexpr int num_pairs = 50;  // §4.5

std::vector<sketch_u64> make_filled_sketches(std::uint32_t k, int count) {
    std::vector<sketch_u64> out;
    out.reserve(count);
    // Fill each sketch deep past capacity so merges exercise the overflow
    // path and the fill-time offset dominates the merge-time decrements, as
    // in the paper's setup ("filled up the sketches" before merging).
    const std::uint64_t fill = 24ULL * k;
    for (int i = 0; i < count; ++i) {
        sketch_u64 s(sketch_config{.max_counters = k, .seed = static_cast<std::uint64_t>(i)});
        s.consume(zipf_merge_stream(fill, 1000 + i));
        out.push_back(std::move(s));
    }
    return out;
}

}  // namespace

int main() {
    const std::vector<std::uint32_t> ks = {1024, 2048, 4096, 8192, 16384};

    print_header("Figure 4: seconds to merge 50 pairs of k-counter sketches",
                 "        k        ours      Hoa61     ACH+13   ACH/ours   Hoa/ours   scratch_bytes(base)  scratch(ours)");
    bool ok = true;
    std::vector<double> ach_ratios;
    for (const auto k : ks) {
        const auto base = make_filled_sketches(k, 2 * num_pairs);

        // Ours (Algorithm 5): merge mutates the target, so work on copies;
        // copy cost is excluded by pre-copying outside the timed region.
        std::vector<sketch_u64> ours_targets;
        ours_targets.reserve(num_pairs);
        for (int i = 0; i < num_pairs; ++i) {
            ours_targets.push_back(base[2 * i]);
        }
        stopwatch sw;
        for (int i = 0; i < num_pairs; ++i) {
            ours_targets[i].merge(base[2 * i + 1]);
        }
        const double t_ours = sw.seconds();

        sw.reset();
        for (int i = 0; i < num_pairs; ++i) {
            const auto merged = hoa61_merge(base[2 * i], base[2 * i + 1]);
            (void)merged;
        }
        const double t_hoa = sw.seconds();

        sw.reset();
        for (int i = 0; i < num_pairs; ++i) {
            const auto merged = ach_sort_merge(base[2 * i], base[2 * i + 1]);
            (void)merged;
        }
        const double t_ach = sw.seconds();

        std::printf("%9u  %10.4f  %9.4f  %9.4f  %9.2f  %9.2f  %20zu  %13d\n", k, t_ours,
                    t_hoa, t_ach, t_ach / t_ours, t_hoa / t_ours,
                    merge_scratch_bytes(k, k), 0);
        ach_ratios.push_back(t_ach / t_ours);

        // Error agreement (paper: the realized estimate error of the merged
        // summaries differs by at most a few percent). Rebuild the first
        // pair while recording ground truth, merge both ways, and compare
        // max estimate error against the exact counts of the union stream.
        exact_counter<std::uint64_t, std::uint64_t> exact;
        sketch_u64 a(sketch_config{.max_counters = k, .seed = 0});
        sketch_u64 b(sketch_config{.max_counters = k, .seed = 1});
        for (const auto& u : zipf_merge_stream(24ULL * k, 1000)) {
            a.update(u.id, u.weight);
            exact.update(u.id, u.weight);
        }
        for (const auto& u : zipf_merge_stream(24ULL * k, 1001)) {
            b.update(u.id, u.weight);
            exact.update(u.id, u.weight);
        }
        const auto ach = ach_sort_merge(a, b);
        auto mine = a;
        mine.merge(b);
        const double e_ours = evaluate_errors(mine, exact).max_error;
        const double e_ach = evaluate_errors(ach, exact).max_error;
        const double err_ratio = e_ours / std::max(1.0, e_ach);
        std::printf("          max estimate error: ours %.4g vs ACH+13 %.4g (ratio %.2f)\n",
                    e_ours, e_ach, err_ratio);
        ok &= check(err_ratio > 0.5 && err_ratio < 1.5,
                    "k=" + std::to_string(k) +
                        ": merged estimate error comparable to ACH+13 (paper: within 2.5%)");
    }

    std::printf("\n");
    ok &= check(*std::min_element(ach_ratios.begin(), ach_ratios.end()) > 1.0,
                "Algorithm 5 beats the ACH+13 sort merge at every k");
    ok &= check(ach_ratios.back() >= ach_ratios.front(),
                "the advantage over ACH+13 grows with sketch size (Fig. 4 trend)");
    return ok ? 0 : 1;
}
