/// The algorithm axis of the façade, raced head-to-head: the same Zipf
/// stream runs through builder().algorithm(...) for the paper's sketch and
/// the three baseline backends (count_min, count_sketch, space_saving), all
/// behind the identical summarizer handle — so the comparison measures the
/// algorithms, not their plumbing. Reported per algorithm: per-update
/// ingest rate and top-100 recall against exact ground truth.
///
/// Acceptance (the paper's core speed claim, §4.2-§4.4 in façade form):
/// the paper sketch must be the fastest of the four at equal k. Gated on
/// machines with >= 4 hardware threads; below that the check degrades to
/// an explicit [INFO] line like the other benches.
///
///   build/bench_backends            # FREQ_BENCH_SCALE scales the stream

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "api/builder.h"
#include "bench/bench_common.h"
#include "stream/exact_counter.h"

namespace {

using namespace freq;

constexpr std::uint32_t k_counters = 2048;
constexpr std::size_t k_top = 100;

struct backend_result {
    const char* name;
    double mups;
    double recall;
    double max_error;
    std::size_t bytes;
};

}  // namespace

int main() {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::uint64_t n = bench::scaled(4'000'000);
    const auto stream = bench::zipf_merge_stream(n, /*seed=*/2017);
    bench::print_stream_stats(stream, "zipf(1.05)");

    bench::alloc_phase allocs;  // heap traffic of the measured region

    // Exact top-100 ground truth for the recall column.
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.consume(stream);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> truth(exact.counts().begin(),
                                                               exact.counts().end());
    std::sort(truth.begin(), truth.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::unordered_set<std::uint64_t> heavy;
    for (std::size_t i = 0; i < k_top && i < truth.size(); ++i) {
        heavy.insert(truth[i].first);
    }

    bench::print_header(
        "one stream, four algorithms behind builder().algorithm(...)",
        "algorithm         M upd/s   top-100 recall     max_error        KiB");

    const struct {
        algo a;
        const char* name;
    } specs[] = {{algo::paper, "paper"},
                 {algo::count_min, "count_min"},
                 {algo::count_sketch, "count_sketch"},
                 {algo::space_saving, "space_saving"}};

    std::vector<backend_result> results;
    double sink = 0.0;  // defeat dead-code elimination on query results
    for (const auto& spec : specs) {
        auto s = builder().algorithm(spec.a).max_counters(k_counters).seed(1).build();
        bench::stopwatch sw;
        s.update(std::span<const update64>(stream.data(), stream.size()));
        const double seconds = sw.seconds();

        std::size_t found = 0;
        const auto top = s.top_items(k_top);
        for (const auto& r : top) {
            found += heavy.contains(r.id);
            sink += r.estimate;
        }
        const backend_result res{
            spec.name, static_cast<double>(stream.size()) / seconds / 1e6,
            static_cast<double>(found) / static_cast<double>(heavy.size()),
            s.maximum_error(), s.memory_bytes() / 1024};
        results.push_back(res);
        std::printf("%-15s %9.2f %16.3f %13.4g %10zu\n", res.name, res.mups, res.recall,
                    res.max_error, res.bytes);
    }
    if (sink == 0xdeadbeef) {
        std::printf("impossible %f\n", sink);
    }

    const double paper_mups = results[0].mups;
    bool fastest = true;
    for (std::size_t i = 1; i < results.size(); ++i) {
        fastest = fastest && paper_mups >= results[i].mups;
    }
    if (hw >= 4) {
        bench::check(fastest,
                     "the paper sketch ingests fastest of the four algorithms at equal k");
    } else {
        std::printf("[INFO] paper sketch %s the fastest of the four — informational "
                    "only: %u hardware thread(s) < 4 required for the gate\n",
                    fastest ? "is" : "is NOT", hw);
    }

    FILE* json = std::fopen("BENCH_backends.json", "w");
    if (json != nullptr) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"backends\",\n");
        std::fprintf(json,
                     "  \"stream\": {\"n\": %llu, \"alpha\": 1.05, \"k\": %u, "
                     "\"top\": %zu},\n",
                     static_cast<unsigned long long>(stream.size()), k_counters, k_top);
        std::fprintf(json, "  \"hardware_threads\": %u,\n", hw);
        std::fprintf(json, "  ");
        allocs.write_json_fields(json, "");
        std::fprintf(json, ",\n");
        std::fprintf(json,
                     "  \"acceptance\": {\"target\": \"paper fastest of four\", "
                     "\"gated\": %s, \"met\": %s},\n",
                     hw >= 4 ? "true" : "false", fastest ? "true" : "false");
        std::fprintf(json, "  \"algorithms\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            std::fprintf(json,
                         "    {\"name\": \"%s\", \"mups\": %.3f, \"recall\": %.4f, "
                         "\"max_error\": %.6g, \"kib\": %zu}%s\n",
                         r.name, r.mups, r.recall, r.max_error, r.bytes,
                         i + 1 < results.size() ? "," : "");
        }
        std::fprintf(json, "  ]\n");
        std::fprintf(json, "}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_backends.json\n");
    }
    return 0;
}
