/// Figure 3 reproduction: runtime and maximum error of the sketch as a
/// function of the decrement quantile (the §4.4 speed/error tradeoff sweep
/// over "fifty total variations, ranging from the 0th quantile to the 98th").
///
/// Paper claims to reproduce (shape):
///  * runtime drops steeply from q = 0 (SMIN) to q = 0.5 (SMED), then shows
///    diminishing returns (q = 0.98 only 20-30% faster than q = 0.2);
///  * error grows slowly up to q ≈ 0.7, then shoots up;
///  * the sample median (q = 0.5) is an attractive point on the curve.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"
#include "metrics/error.h"
#include "stream/exact_counter.h"

namespace {

using namespace freq;
using namespace freq::bench;

using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;

struct sweep_point {
    double quantile;
    double seconds;
    double max_error;
};

}  // namespace

int main() {
    // A shorter stream than Figs. 1-2: the sweep runs 50 quantiles x 3 k's,
    // and the low quantiles are deliberately slow (that is the finding).
    caida_like_generator gen({
        .num_updates = scaled(2'000'000),
        .num_flows = scaled(200'000),
        .alpha = 1.1,
        .seed = 2016,
    });
    const auto stream = gen.generate();
    print_stream_stats(stream, "caida-like(fig3)");
    exact_counter<std::uint64_t, std::uint64_t> exact;
    for (const auto& u : stream) {
        exact.update(u.id, u.weight);
    }

    const std::vector<std::uint32_t> ks = {1024, 4096, 16384};
    bool ok = true;
    for (const auto k : ks) {
        print_header("Figure 3 sweep, k = " + std::to_string(k),
                     " quantile     seconds    max_error");
        std::vector<sweep_point> points;
        for (int q100 = 0; q100 <= 98; q100 += 2) {  // 50 variations (§4.4)
            const double q = q100 / 100.0;
            sketch_u64 algo(
                sketch_config{.max_counters = k, .decrement_quantile = q, .seed = 1});
            stopwatch sw;
            algo.consume(stream);
            const double secs = sw.seconds();
            const double err = evaluate_errors(algo, exact).max_error;
            points.push_back({q, secs, err});
            std::printf("%9.2f  %10.3f  %11.4g\n", q, secs, err);
        }
        auto at = [&](double q) {
            for (const auto& p : points) {
                if (p.quantile >= q - 1e-9) {
                    return p;
                }
            }
            return points.back();
        };
        const auto smin = at(0.0);
        const auto q20 = at(0.20);
        const auto smed = at(0.50);
        const auto q70 = at(0.70);
        const auto q98 = at(0.98);
        std::printf("\n[k=%u] SMIN/SMED time ratio: %.1fx; q98 vs q20 speedup: %.2fx; "
                    "error growth q0->q70: %.2fx, q70->q98: %.2fx\n",
                    k, smin.seconds / smed.seconds, q20.seconds / q98.seconds,
                    q70.max_error / std::max(1.0, smin.max_error),
                    q98.max_error / std::max(1.0, q70.max_error));
        ok &= check(smin.seconds > 2.0 * smed.seconds,
                    "k=" + std::to_string(k) +
                        ": runtime drops steeply from the 0th quantile (SMIN) to the median (SMED)");
        // Diminishing returns = the speed curve flattens at high quantiles
        // (the paper quantifies it as q98 being only 20-30% faster than q20
        // at its scale; the robust cross-substrate form is a flat tail).
        const auto q80 = at(0.80);
        ok &= check(q98.seconds < q20.seconds && q80.seconds / q98.seconds < 1.5,
                    "k=" + std::to_string(k) +
                        ": diminishing returns beyond low quantiles (flat tail past q~0.8)");
        ok &= check(q98.max_error > q70.max_error && q70.max_error < 4.0 * smin.max_error,
                    "k=" + std::to_string(k) +
                        ": error grows slowly to q~0.7 then accelerates (Fig. 3 middle/bottom)");
    }
    return ok ? 0 : 1;
}
