/// Google-benchmark micro-benchmarks for the three merge procedures at a
/// fixed sketch size — the per-merge numbers underlying Fig. 4 — plus
/// serialization round-trip cost (relevant to the §3 query-time merging
/// scenario, where summaries are loaded from storage before merging).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "baselines/merge_baselines.h"
#include "core/frequent_items_sketch.h"
#include "stream/generators.h"

namespace {

using namespace freq;

using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;

sketch_u64 filled_sketch(std::uint32_t k, std::uint64_t seed) {
    sketch_u64 s(sketch_config{.max_counters = k, .seed = seed});
    zipf_stream_generator gen({
        .num_updates = 6ULL * k,
        .num_distinct = std::max<std::uint64_t>(3ULL * k, 16),
        .alpha = 1.05,
        .min_weight = 1,
        .max_weight = 10'000,
        .seed = seed + 77,
    });
    s.consume(gen.generate());
    return s;
}

void BM_OurMerge(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto a = filled_sketch(k, 1);
    const auto b = filled_sketch(k, 2);
    for (auto _ : state) {
        state.PauseTiming();
        auto target = a;  // merge mutates; copy outside the timed region
        state.ResumeTiming();
        target.merge(b);
        benchmark::DoNotOptimize(target);
    }
}

void BM_AchSortMerge(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto a = filled_sketch(k, 1);
    const auto b = filled_sketch(k, 2);
    for (auto _ : state) {
        auto merged = ach_sort_merge(a, b);
        benchmark::DoNotOptimize(merged);
    }
}

void BM_Hoa61Merge(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto a = filled_sketch(k, 1);
    const auto b = filled_sketch(k, 2);
    for (auto _ : state) {
        auto merged = hoa61_merge(a, b);
        benchmark::DoNotOptimize(merged);
    }
}

void BM_SerializeDeserialize(benchmark::State& state) {
    const auto k = static_cast<std::uint32_t>(state.range(0));
    const auto s = filled_sketch(k, 3);
    for (auto _ : state) {
        const auto bytes = s.serialize();
        auto restored = sketch_u64::deserialize(bytes);
        benchmark::DoNotOptimize(restored);
    }
}

}  // namespace

BENCHMARK(BM_OurMerge)->Arg(1024)->Arg(4096)->Arg(16384)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AchSortMerge)->Arg(1024)->Arg(4096)->Arg(16384)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Hoa61Merge)->Arg(1024)->Arg(4096)->Arg(16384)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SerializeDeserialize)->Arg(1024)->Arg(16384)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
