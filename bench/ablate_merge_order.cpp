/// Ablation: the §3.2 merge-iteration note. When two summaries share a hash
/// function and the source's counters are fed front-to-back, the early
/// updates land in the same region of the target table and lengthen probe
/// runs ("overpopulate the front"). Algorithm 5 as implemented starts the
/// iteration at a random slot. This bench measures merge time for both
/// orders with shared seeds, and with independent seeds for reference.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"

namespace {

using namespace freq;
using namespace freq::bench;

using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;

std::vector<sketch_u64> filled(std::uint32_t k, int count, bool shared_seed) {
    std::vector<sketch_u64> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i) {
        const std::uint64_t seed = shared_seed ? 7 : static_cast<std::uint64_t>(i);
        sketch_u64 s(sketch_config{.max_counters = k, .seed = seed});
        s.consume(zipf_merge_stream(6ULL * k, 500 + i));
        out.push_back(std::move(s));
    }
    return out;
}

/// Front-to-back merge: what a naive implementation would do.
void naive_merge(sketch_u64& target, const sketch_u64& source) {
    source.for_each([&](std::uint64_t id, std::uint64_t c) { target.update(id, c); });
    // (offset/total-weight bookkeeping omitted: this ablation times the
    // counter-feeding loop, which is where the §3.2 hazard lives.)
}

}  // namespace

int main() {
    constexpr std::uint32_t k = 16384;
    constexpr int pairs = 50;
    print_header("Merge iteration-order ablation (k = 16384, 50 pairs)",
                 "configuration                          seconds");

    double results[3] = {};
    const char* names[3] = {"shared seed, front-to-back", "shared seed, random start",
                            "independent seeds, random start"};
    for (int mode = 0; mode < 3; ++mode) {
        const bool shared = mode < 2;
        auto sketches = filled(k, 2 * pairs, shared);
        std::vector<sketch_u64> targets;
        targets.reserve(pairs);
        for (int i = 0; i < pairs; ++i) {
            targets.push_back(sketches[2 * i]);
        }
        stopwatch sw;
        for (int i = 0; i < pairs; ++i) {
            if (mode == 0) {
                naive_merge(targets[i], sketches[2 * i + 1]);
            } else {
                targets[i].merge(sketches[2 * i + 1]);
            }
        }
        results[mode] = sw.seconds();
        std::printf("%-36s  %8.4f\n", names[mode], results[mode]);
    }

    std::printf("\nfront-to-back / random-start (shared seed): %.2fx\n",
                results[0] / results[1]);
    // The hazard is probe clustering; random start should never be slower.
    return check(results[1] <= results[0] * 1.15,
                 "random-start iteration avoids the §3.2 front-overpopulation penalty")
               ? 0
               : 1;
}
