/// Line-rate trace replay through the network-telemetry subsystem
/// (src/telemetry/): the CAIDA-substitute stream is replayed at maximum
/// rate (a) into one plain sharded engine summarizer and (b) into the
/// 4-level hhh_summarizer, whose every record fans out to /32–/8 sharded
/// level engines. Reported per sink: sustained records/sec, per-level
/// updates/sec and p50/p99 chunk tails (telemetry::replay measures every
/// 64k-record chunk).
///
/// Acceptance: HHH ingest, counted in per-level updates/sec (4 level
/// updates per record — the apples-to-apples unit, since the plain sink
/// performs exactly one update per record), must sustain >= 0.9x the plain
/// sharded-engine update rate. Gated on machines with >= 4 hardware
/// threads; below that the check degrades to an explicit [INFO] line like
/// the other engine benches.
///
/// A query phase (conditioned-count HHH walk + certified entropy interval
/// from the same trace) is timed and reported informationally.
///
///   build/bench_hhh            # FREQ_BENCH_SCALE scales the stream

#include <cstdint>
#include <cstdio>
#include <thread>
#include <utility>

#include "bench/bench_common.h"
#include "telemetry/entropy_monitor.h"
#include "telemetry/hhh_summarizer.h"
#include "telemetry/trace_replay.h"

namespace {

using namespace freq;

constexpr std::uint32_t k_counters = 2048;
constexpr std::uint32_t k_shards = 2;
constexpr unsigned k_levels = 4;

}  // namespace

int main() {
    bench::alloc_phase allocs;  // heap traffic of the whole run
    const unsigned hw = std::thread::hardware_concurrency();
    timed_trace trace;
    trace.updates = bench::caida_stream();
    const std::uint64_t n = trace.updates.size();
    bench::print_stream_stats(trace.updates, "caida-like");

    bench::print_header("trace replay: plain sharded engine vs 4-level HHH",
                        "sink                    records/s      updates/s   p50(ms)   p99(ms)");

    // (a) plain sharded engine: one update per record.
    builder plain_b;
    plain_b.u64_keys().max_counters(k_counters).seed(1).sharded(k_shards);
    summarizer plain = plain_b.build();
    const telemetry::replay_report plain_rep = telemetry::replay_into(plain, trace);
    const double plain_updates_per_sec = plain_rep.records_per_sec;
    std::printf("%-22s %11.3g M %11.3g M %9.3f %9.3f\n", "engine(2 shards)",
                plain_rep.records_per_sec / 1e6, plain_updates_per_sec / 1e6,
                plain_rep.chunk_p50_s * 1e3, plain_rep.chunk_p99_s * 1e3);

    // (b) hhh_summarizer: four per-level updates per record.
    telemetry::hhh_config cfg;
    cfg.counters_per_level = k_counters;
    cfg.seed = 1;
    cfg.shards = k_shards;
    telemetry::hhh_summarizer monitor(std::move(cfg));
    const telemetry::replay_report hhh_rep = telemetry::replay_into(monitor, trace);
    const double hhh_updates_per_sec = hhh_rep.records_per_sec * k_levels;
    std::printf("%-22s %11.3g M %11.3g M %9.3f %9.3f\n", "hhh(4 levels x 2)",
                hhh_rep.records_per_sec / 1e6, hhh_updates_per_sec / 1e6,
                hhh_rep.chunk_p50_s * 1e3, hhh_rep.chunk_p99_s * 1e3);

    const double update_ratio =
        plain_updates_per_sec > 0.0 ? hhh_updates_per_sec / plain_updates_per_sec : 0.0;
    std::printf("\nHHH per-update ingest ratio vs plain engine: %.2fx\n", update_ratio);

    // Query phase: the conditioned-count walk over all four levels, plus a
    // certified entropy interval over the same trace — informational.
    bench::stopwatch query_sw;
    const auto rows = monitor.query(0.01);
    const double query_s = query_sw.seconds();
    std::printf("hhh query(phi=1%%): %zu rows in %.3f ms\n", rows.size(), query_s * 1e3);

    telemetry::entropy_monitor ent(telemetry::entropy_monitor_config{
        .max_counters = k_counters, .seed = 1, .shards = k_shards});
    const telemetry::replay_report ent_rep = telemetry::replay_into(ent, trace);
    bench::stopwatch ent_sw;
    const telemetry::entropy_interval h = ent.estimate();
    const double entropy_query_s = ent_sw.seconds();
    std::printf("entropy: [%.3f, %.3f] bits (point %.3f) in %.3f ms; ingest %.3g M rec/s\n",
                h.lower, h.upper, h.point, entropy_query_s * 1e3,
                ent_rep.records_per_sec / 1e6);

    // Defeat dead-code elimination on the query results.
    double sink = h.point + monitor.total_weight();
    for (const auto& r : rows) sink += r.conditioned;
    if (sink == 0xdeadbeef) std::printf("impossible %f\n", sink);

    const bool accepted = update_ratio >= 0.9;
    if (hw >= 4) {
        bench::check(accepted,
                     "4-level HHH ingest sustains >= 0.9x the plain sharded-engine "
                     "per-update rate");
    } else {
        std::printf("[INFO] HHH per-update ratio %.2fx %s the 0.9x acceptance target — "
                    "informational only: %u hardware thread(s) < 4 required for the "
                    "gate\n",
                    update_ratio, accepted ? "meets" : "misses", hw);
    }

    FILE* json = std::fopen("BENCH_hhh.json", "w");
    if (json != nullptr) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"hhh_replay\",\n");
        std::fprintf(json,
                     "  \"stream\": {\"n\": %llu, \"alpha\": 1.1, \"k\": %u, "
                     "\"shards_per_level\": %u, \"levels\": %u},\n",
                     static_cast<unsigned long long>(n), k_counters, k_shards, k_levels);
        std::fprintf(json, "  \"hardware_threads\": %u,\n", hw);
        std::fprintf(json, "  ");
        allocs.write_json_fields(json, "");
        std::fprintf(json, ",\n");
        std::fprintf(json,
                     "  \"acceptance\": {\"target_update_ratio\": 0.9, \"gated\": %s, "
                     "\"met\": %s},\n",
                     hw >= 4 ? "true" : "false", accepted ? "true" : "false");
        std::fprintf(json,
                     "  \"plain\": {\"mups\": %.3f, \"records_per_sec\": %.0f, "
                     "\"chunk_p50_s\": %.6g, \"chunk_p99_s\": %.6g},\n",
                     plain_updates_per_sec / 1e6, plain_rep.records_per_sec,
                     plain_rep.chunk_p50_s, plain_rep.chunk_p99_s);
        std::fprintf(json,
                     "  \"hhh\": {\"mups\": %.3f, \"records_per_sec\": %.0f, "
                     "\"chunk_p50_s\": %.6g, \"chunk_p99_s\": %.6g, "
                     "\"update_ratio_speedup\": %.3f},\n",
                     hhh_updates_per_sec / 1e6, hhh_rep.records_per_sec,
                     hhh_rep.chunk_p50_s, hhh_rep.chunk_p99_s, update_ratio);
        std::fprintf(json,
                     "  \"query\": {\"hhh_rows\": %zu, \"hhh_query_seconds\": %.6g, "
                     "\"entropy_query_seconds\": %.6g},\n",
                     rows.size(), query_s, entropy_query_s);
        std::fprintf(json,
                     "  \"entropy\": {\"records_per_sec\": %.0f, \"lower_bits\": %.4f, "
                     "\"upper_bits\": %.4f}\n",
                     ent_rep.records_per_sec, h.lower, h.upper);
        std::fprintf(json, "}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_hhh.json\n");
    }
    return 0;
}
