/// Google-benchmark micro-benchmarks: per-update cost of every algorithm on
/// two stream mixes — hit-heavy (skewed Zipf: most updates increment an
/// existing counter) and miss-heavy (near-uniform: most updates hit the
/// overflow path). These are the per-operation numbers underlying Fig. 1.
///
/// Also measures the runtime façade's type-erasure cost (src/api/): the
/// same hit-heavy ingest through freq::summarizer vs the direct template
/// path, per-call and batched, recorded in BENCH_api.json with a <= 15%
/// acceptance gate on the batched path (the one the engine and any serious
/// loader uses; the per-call numbers are informational).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/builder.h"
#include "bench/bench_common.h"
#include "baselines/rbmc.h"
#include "baselines/space_saving_heap.h"
#include "baselines/stream_summary.h"
#include "core/frequent_items_sketch.h"
#include "core/string_frequent_items.h"
#include "stream/generators.h"

namespace {

using namespace freq;

bench::alloc_phase g_allocs;  // heap traffic of the whole run

update_stream<std::uint64_t, std::uint64_t> mix_stream(bool hit_heavy) {
    zipf_stream_generator gen({
        .num_updates = 1'000'000,
        .num_distinct = hit_heavy ? 10'000u : 1'000'000u,
        .alpha = hit_heavy ? 1.3 : 0.2,
        .min_weight = 1,
        .max_weight = 1'000,
        .seed = hit_heavy ? 11u : 22u,
    });
    return gen.generate();
}

const auto& stream_for(bool hit_heavy) {
    static const auto hits = mix_stream(true);
    static const auto misses = mix_stream(false);
    return hit_heavy ? hits : misses;
}

template <typename Algo, typename... Args>
void run_updates(benchmark::State& state, bool hit_heavy, Args... args) {
    const auto& stream = stream_for(hit_heavy);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        Algo algo(k, args...);
        for (const auto& u : stream) {
            algo.update(u.id, u.weight);
        }
        benchmark::DoNotOptimize(algo);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

void BM_SmedHitHeavy(benchmark::State& state) {
    const auto& stream = stream_for(true);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        frequent_items_sketch<std::uint64_t, std::uint64_t> s(
            sketch_config{.max_counters = k, .seed = 1});
        s.consume(stream);
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

void BM_SmedMissHeavy(benchmark::State& state) {
    const auto& stream = stream_for(false);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        frequent_items_sketch<std::uint64_t, std::uint64_t> s(
            sketch_config{.max_counters = k, .seed = 1});
        s.consume(stream);
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

void BM_MheHitHeavy(benchmark::State& state) {
    run_updates<space_saving_heap<std::uint64_t, std::uint64_t>>(state, true);
}

void BM_MheMissHeavy(benchmark::State& state) {
    run_updates<space_saving_heap<std::uint64_t, std::uint64_t>>(state, false);
}

void BM_RbmcHitHeavy(benchmark::State& state) {
    run_updates<rbmc<std::uint64_t, std::uint64_t>>(state, true);
}

void BM_SslUnitHitHeavy(benchmark::State& state) {
    // SSL takes unit updates only; feed the id sequence.
    const auto& stream = stream_for(true);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        stream_summary<std::uint64_t> s(k);
        for (const auto& u : stream) {
            s.update(u.id);
        }
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

// --- façade vs direct template path (the BENCH_api.json series) --------------

/// Direct per-call baseline: the same element-wise loop the façade's scalar
/// update erases (BM_SmedHitHeavy is the batched baseline via consume()).
void BM_DirectLoopHitHeavy(benchmark::State& state) {
    const auto& stream = stream_for(true);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        frequent_items_sketch<std::uint64_t, std::uint64_t> s(
            sketch_config{.max_counters = k, .seed = 1});
        for (const auto& u : stream) {
            s.update(u.id, u.weight);
        }
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

void BM_FacadeBatchHitHeavy(benchmark::State& state) {
    const auto& stream = stream_for(true);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        auto s = builder().max_counters(k).seed(1).build();
        s.update(std::span<const update64>(stream.data(), stream.size()));
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

void BM_FacadeLoopHitHeavy(benchmark::State& state) {
    const auto& stream = stream_for(true);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        auto s = builder().max_counters(k).seed(1).build();
        for (const auto& u : stream) {
            s.update(u.id, static_cast<double>(u.weight));
        }
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

// --- text keys: façade vs direct string sketch -------------------------------

/// Pre-built word stream so the string-construction cost stays out of the
/// measurement (both contenders see identical std::string_view keys).
const std::vector<std::pair<std::string, double>>& text_stream_for() {
    static const auto words = [] {
        const auto& ids = stream_for(true);
        std::vector<std::pair<std::string, double>> out;
        out.reserve(ids.size());
        for (const auto& u : ids) {
            out.emplace_back("w" + std::to_string(u.id), static_cast<double>(u.weight));
        }
        return out;
    }();
    return words;
}

void BM_DirectTextLoop(benchmark::State& state) {
    const auto& words = text_stream_for();
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        string_frequent_items<double> s(sketch_config{.max_counters = k, .seed = 1});
        for (const auto& [word, w] : words) {
            s.update(word, w);
        }
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(words.size()));
}

void BM_FacadeTextLoop(benchmark::State& state) {
    const auto& words = text_stream_for();
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        auto s = builder().text_keys().real_weights().max_counters(k).seed(1).build();
        for (const auto& [word, w] : words) {
            s.update(std::string_view(word), w);
        }
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(words.size()));
}

/// Captures per-iteration wall seconds of every run so main() can compute
/// the façade/direct ratios after the normal console report.
class capture_reporter : public benchmark::ConsoleReporter {
public:
    void ReportRuns(const std::vector<Run>& runs) override {
        for (const auto& r : runs) {
            if (r.iterations > 0) {
                seconds_[r.benchmark_name()] =
                    r.real_accumulated_time / static_cast<double>(r.iterations);
            }
        }
        ConsoleReporter::ReportRuns(runs);
    }

    const std::map<std::string, double>& seconds() const { return seconds_; }

private:
    std::map<std::string, double> seconds_;
};

/// Telemetry-overhead baseline (src/obs/ instrumented vs compiled out).
/// CI runs the -DFREQ_OBS_OFF build of this binary first, then points
/// FREQ_OBS_BASELINE_JSON at the BENCH_api.json it wrote; the instrumented
/// run parses the batched-façade seconds back out of that file (the point
/// lines this same source emitted, so the sscanf format below is authoritative)
/// and self-gates the delta at <= 3%.
std::map<int, double> read_obs_baseline() {
    std::map<int, double> facade_batch_s;
    const char* path = std::getenv("FREQ_OBS_BASELINE_JSON");
    if (path == nullptr) {
        return facade_batch_s;
    }
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) {
        std::printf("[INFO] FREQ_OBS_BASELINE_JSON=%s not readable; skipping the "
                    "telemetry-overhead series\n",
                    path);
        return facade_batch_s;
    }
    char buf[1024];
    while (std::fgets(buf, sizeof(buf), f) != nullptr) {
        int k = 0;
        double direct = 0.0;
        double facade = 0.0;
        if (std::sscanf(buf,
                        " {\"k\": %d, \"direct_batch_s\": %lf, "
                        "\"facade_batch_s\": %lf",
                        &k, &direct, &facade) == 3) {
            facade_batch_s[k] = facade;
        }
    }
    std::fclose(f);
    return facade_batch_s;
}

/// Emits BENCH_api.json when both façade series and their baselines ran.
/// Under a --benchmark_filter that excludes them, nothing is written and a
/// BENCH_api.json from a previous full run is left untouched.
void write_api_json(const std::map<std::string, double>& s) {
    constexpr double gate_pct = 15.0;
    bool pass = true;
    std::string points;
    char line[512];
    for (const int k : {1024, 16384}) {
        const auto key = [&](const char* name) {
            return std::string(name) + "/" + std::to_string(k);
        };
        const auto db = s.find(key("BM_SmedHitHeavy"));
        const auto fb = s.find(key("BM_FacadeBatchHitHeavy"));
        const auto dl = s.find(key("BM_DirectLoopHitHeavy"));
        const auto fl = s.find(key("BM_FacadeLoopHitHeavy"));
        if (db == s.end() || fb == s.end() || dl == s.end() || fl == s.end()) {
            continue;
        }
        const double batch_pct = 100.0 * (fb->second - db->second) / db->second;
        const double loop_pct = 100.0 * (fl->second - dl->second) / dl->second;
        pass = pass && batch_pct <= gate_pct;
        std::snprintf(line, sizeof(line),
                      "%s\n    {\"k\": %d, \"direct_batch_s\": %.6f, "
                      "\"facade_batch_s\": %.6f, \"batch_overhead_pct\": %.2f, "
                      "\"direct_loop_s\": %.6f, \"facade_loop_s\": %.6f, "
                      "\"loop_overhead_pct\": %.2f}",
                      points.empty() ? "" : ",", k, db->second, fb->second, batch_pct,
                      dl->second, fl->second, loop_pct);
        points += line;
        std::printf("[%s] facade batched ingest overhead at k=%d: %.2f%% (gate %.0f%%; "
                    "per-call loop: %.2f%%)\n",
                    batch_pct <= gate_pct ? "PASS" : "FAIL", k, batch_pct, gate_pct,
                    loop_pct);
    }
    if (points.empty()) {
        return;
    }
    // Text-key series (informational, no gate): the façade's string update
    // erases one virtual call around the same fingerprint + dictionary work.
    std::string text_point;
    const auto dt = s.find("BM_DirectTextLoop/1024");
    const auto ft = s.find("BM_FacadeTextLoop/1024");
    if (dt != s.end() && ft != s.end()) {
        const double text_pct = 100.0 * (ft->second - dt->second) / dt->second;
        std::snprintf(line, sizeof(line),
                      ",\n  \"text\": {\"k\": 1024, \"direct_loop_s\": %.6f, "
                      "\"facade_loop_s\": %.6f, \"loop_overhead_pct\": %.2f}",
                      dt->second, ft->second, text_pct);
        text_point = line;
        std::printf("[INFO] facade text per-call overhead at k=1024: %.2f%% "
                    "(informational)\n",
                    text_pct);
    }
    // Instrumented-vs-FREQ_OBS_OFF batched-update series (src/obs/ hot-path
    // cost). Only materializes when a baseline file is supplied, i.e. on the
    // instrumented half of CI's two-build overhead step.
    std::string obs_points;
    std::string obs_accept;
    const std::map<int, double> obs_base = read_obs_baseline();
    if (!obs_base.empty()) {
        constexpr double obs_gate_pct = 3.0;
        bool obs_pass = true;
        for (const int k : {1024, 16384}) {
            const auto fb = s.find("BM_FacadeBatchHitHeavy/" + std::to_string(k));
            const auto base = obs_base.find(k);
            if (fb == s.end() || base == obs_base.end()) {
                continue;
            }
            const double pct =
                100.0 * (fb->second - base->second) / base->second;
            obs_pass = obs_pass && pct <= obs_gate_pct;
            std::snprintf(line, sizeof(line),
                          "%s\n    {\"k\": %d, \"obs_off_batch_s\": %.6f, "
                          "\"instrumented_batch_s\": %.6f, \"overhead_pct\": %.2f}",
                          obs_points.empty() ? "" : ",", k, base->second, fb->second,
                          pct);
            obs_points += line;
            std::printf("[%s] telemetry batched-update overhead at k=%d: %.2f%% "
                        "(instrumented vs FREQ_OBS_OFF, gate %.0f%%)\n",
                        pct <= obs_gate_pct ? "PASS" : "FAIL", k, pct, obs_gate_pct);
        }
        if (!obs_points.empty()) {
            obs_points = ",\n  \"obs\": [" + obs_points + "\n  ]";
            obs_accept = std::string(", \"obs_batch_overhead_le_3pct\": ") +
                         (obs_pass ? "true" : "false");
        }
    }
#ifdef FREQ_OBS_OFF
    const char* obs_off = "true";
#else
    const char* obs_off = "false";
#endif
    FILE* json = std::fopen("BENCH_api.json", "w");
    if (json == nullptr) {
        return;
    }
    std::fprintf(json,
                 "{\n  \"bench\": \"api_facade_overhead\",\n"
                 "  \"stream\": \"hit_heavy_zipf_1M\",\n  \"obs_off\": %s,\n",
                 obs_off);
    std::fprintf(json, "  ");
    g_allocs.write_json_fields(json, "");
    std::fprintf(json, ",\n");
    std::fprintf(json,
                 "  \"points\": [%s\n  ],\n"
                 "  \"acceptance\": {\"batch_overhead_le_15pct\": %s%s}%s%s\n}\n",
                 points.c_str(), pass ? "true" : "false", obs_accept.c_str(),
                 text_point.c_str(), obs_points.c_str());
    std::fclose(json);
    std::printf("wrote BENCH_api.json\n");
}

}  // namespace

BENCHMARK(BM_SmedHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SmedMissHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MheHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MheMissHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RbmcHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SslUnitHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DirectLoopHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FacadeBatchHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FacadeLoopHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DirectTextLoop)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FacadeTextLoop)->Arg(1024)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
    g_allocs.reset();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    capture_reporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    write_api_json(reporter.seconds());
    return 0;
}
