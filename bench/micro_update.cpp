/// Google-benchmark micro-benchmarks: per-update cost of every algorithm on
/// two stream mixes — hit-heavy (skewed Zipf: most updates increment an
/// existing counter) and miss-heavy (near-uniform: most updates hit the
/// overflow path). These are the per-operation numbers underlying Fig. 1.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "baselines/rbmc.h"
#include "baselines/space_saving_heap.h"
#include "baselines/stream_summary.h"
#include "core/frequent_items_sketch.h"
#include "stream/generators.h"

namespace {

using namespace freq;

update_stream<std::uint64_t, std::uint64_t> mix_stream(bool hit_heavy) {
    zipf_stream_generator gen({
        .num_updates = 1'000'000,
        .num_distinct = hit_heavy ? 10'000u : 1'000'000u,
        .alpha = hit_heavy ? 1.3 : 0.2,
        .min_weight = 1,
        .max_weight = 1'000,
        .seed = hit_heavy ? 11u : 22u,
    });
    return gen.generate();
}

const auto& stream_for(bool hit_heavy) {
    static const auto hits = mix_stream(true);
    static const auto misses = mix_stream(false);
    return hit_heavy ? hits : misses;
}

template <typename Algo, typename... Args>
void run_updates(benchmark::State& state, bool hit_heavy, Args... args) {
    const auto& stream = stream_for(hit_heavy);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        Algo algo(k, args...);
        for (const auto& u : stream) {
            algo.update(u.id, u.weight);
        }
        benchmark::DoNotOptimize(algo);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

void BM_SmedHitHeavy(benchmark::State& state) {
    const auto& stream = stream_for(true);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        frequent_items_sketch<std::uint64_t, std::uint64_t> s(
            sketch_config{.max_counters = k, .seed = 1});
        s.consume(stream);
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

void BM_SmedMissHeavy(benchmark::State& state) {
    const auto& stream = stream_for(false);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        frequent_items_sketch<std::uint64_t, std::uint64_t> s(
            sketch_config{.max_counters = k, .seed = 1});
        s.consume(stream);
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

void BM_MheHitHeavy(benchmark::State& state) {
    run_updates<space_saving_heap<std::uint64_t, std::uint64_t>>(state, true);
}

void BM_MheMissHeavy(benchmark::State& state) {
    run_updates<space_saving_heap<std::uint64_t, std::uint64_t>>(state, false);
}

void BM_RbmcHitHeavy(benchmark::State& state) {
    run_updates<rbmc<std::uint64_t, std::uint64_t>>(state, true);
}

void BM_SslUnitHitHeavy(benchmark::State& state) {
    // SSL takes unit updates only; feed the id sequence.
    const auto& stream = stream_for(true);
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        stream_summary<std::uint64_t> s(k);
        for (const auto& u : stream) {
            s.update(u.id);
        }
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stream.size()));
}

}  // namespace

BENCHMARK(BM_SmedHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SmedMissHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MheHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MheMissHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RbmcHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SslUnitHitHeavy)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
