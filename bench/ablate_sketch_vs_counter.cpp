/// Reproduction of the §1.3 remark: "They found that counter-based
/// algorithms perform significantly better in terms of space, speed, and
/// accuracy than quantile and sketching algorithms, **a finding that we
/// confirmed in our own initial experiments**."
///
/// This harness is that initial experiment: at an equal byte budget, race
/// the paper's counter-based sketch (SMED) against the two canonical linear
/// sketches (Count-Min, with and without conservative updates, and Count
/// sketch) and Lossy Counting on the packet workload, reporting update
/// throughput and maximum point-query error.

#include <cstdio>

#include "baselines/count_min_sketch.h"
#include "baselines/count_sketch.h"
#include "baselines/gk_quantiles.h"
#include "baselines/lossy_counting.h"
#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"
#include "metrics/error.h"
#include "stream/exact_counter.h"

int main() {
    using namespace freq;
    using namespace freq::bench;

    caida_like_generator gen({
        .num_updates = scaled(4'000'000),
        .num_flows = scaled(400'000),
        .alpha = 1.1,
        .seed = 2016,
    });
    const auto stream = gen.generate();
    print_stream_stats(stream, "caida-like(s-v-c)");
    exact_counter<std::uint64_t, std::uint64_t> exact;
    for (const auto& u : stream) {
        exact.update(u.id, u.weight);
    }
    const double n = static_cast<double>(stream.size());

    constexpr std::uint32_t k = 4096;
    using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;
    const std::size_t budget = sketch_u64::bytes_for(k);  // 96 KiB

    print_header("Counter-based vs linear sketches at equal space (" +
                     std::to_string(budget / 1024) + " KiB)",
                 "algorithm            seconds   M-updates/s     max_error   bytes");

    struct row {
        const char* name;
        double seconds;
        double max_error;
        std::size_t bytes;
    };
    std::vector<row> rows;

    {
        sketch_u64 algo(sketch_config{.max_counters = k, .seed = 1});
        stopwatch sw;
        algo.consume(stream);
        rows.push_back({"SMED (ours)", sw.seconds(), evaluate_errors(algo, exact).max_error,
                        algo.memory_bytes()});
    }
    {
        // Same byte budget: width*depth*8 = budget, depth 4.
        const auto width = static_cast<std::uint32_t>(budget / (4 * sizeof(std::uint64_t)) / 2);
        count_min_sketch<std::uint64_t, std::uint64_t> algo(
            {.width = width, .depth = 4, .conservative = false, .seed = 1});
        stopwatch sw;
        algo.consume(stream);
        rows.push_back({"CountMin d=4", sw.seconds(), evaluate_errors(algo, exact).max_error,
                        algo.memory_bytes()});
    }
    {
        const auto width = static_cast<std::uint32_t>(budget / (4 * sizeof(std::uint64_t)) / 2);
        count_min_sketch<std::uint64_t, std::uint64_t> algo(
            {.width = width, .depth = 4, .conservative = true, .seed = 1});
        stopwatch sw;
        algo.consume(stream);
        rows.push_back({"CountMin cons.", sw.seconds(),
                        evaluate_errors(algo, exact).max_error, algo.memory_bytes()});
    }
    {
        const auto width = static_cast<std::uint32_t>(budget / (5 * sizeof(std::int64_t)) / 2);
        count_sketch<std::uint64_t> algo({.width = width, .depth = 5, .seed = 1});
        stopwatch sw;
        algo.consume(stream);
        rows.push_back({"CountSketch d=5", sw.seconds(),
                        evaluate_errors(algo, exact).max_error, algo.memory_bytes()});
    }
    {
        // Lossy counting sized so its *steady-state* entry count costs about
        // the same budget (32 bytes/entry model).
        lossy_counting<std::uint64_t> algo(1.0 / static_cast<double>(k / 4));
        stopwatch sw;
        algo.consume(stream);
        rows.push_back({"LossyCounting", sw.seconds(), evaluate_errors(algo, exact).max_error,
                        algo.memory_bytes()});
    }

    for (const auto& r : rows) {
        std::printf("%-18s  %8.3f  %12.2f  %12.4g  %6zu KiB\n", r.name, r.seconds,
                    n / r.seconds / 1e6, r.max_error, r.bytes / 1024);
    }

    std::printf("\nNote: plain CountMin's update is a handful of unconditional array adds, so\n"
                "its raw update rate can exceed SMED's — but at equal space it pays 3-6x the\n"
                "error, cannot *identify* heavy hitters without an auxiliary candidate\n"
                "structure (which costs the space the counter-based algorithm already spends),\n"
                "and its conservative-update repair forfeits the speed edge. That composite\n"
                "is the §1.3 finding.\n");
    bool ok = true;
    const auto& smed = rows[0];
    ok &= check(smed.max_error < rows[1].max_error && smed.max_error < rows[2].max_error &&
                    smed.max_error < rows[3].max_error && smed.max_error < rows[4].max_error,
                "counter-based SMED is the most accurate at equal space (§1.3)");
    bool pareto = true;
    for (std::size_t i = 1; i < rows.size(); ++i) {
        pareto &= !(rows[i].seconds < smed.seconds && rows[i].max_error < smed.max_error);
    }
    ok &= check(pareto,
                "no alternative Pareto-dominates SMED (none is both faster and more accurate)");
    ok &= check(smed.seconds < rows[4].seconds,
                "SMED is far faster than Lossy Counting, the classic counter-based alternative");

    // --- the quantile-algorithm class (unit updates only: GK has no
    // weighted form, itself §1.3 evidence for the counter-based approach).
    // Compete on packet *counts* over a shortened stream — GK pays O(log s)
    // ordered-insert work per update and is far slower.
    const std::size_t unit_n = std::min<std::size_t>(stream.size(), scaled(1'000'000));
    print_header("Quantile class (GK) vs counter class on unit updates, n = " +
                     std::to_string(unit_n),
                 "algorithm            seconds   M-updates/s     max_error");
    exact_counter<std::uint64_t, std::uint64_t> unit_exact;
    for (std::size_t i = 0; i < unit_n; ++i) {
        unit_exact.update(stream[i].id, 1);
    }
    double t_smed_unit;
    double e_smed_unit;
    {
        sketch_u64 algo(sketch_config{.max_counters = k, .seed = 2});
        stopwatch sw;
        for (std::size_t i = 0; i < unit_n; ++i) {
            algo.update(stream[i].id, 1);
        }
        t_smed_unit = sw.seconds();
        e_smed_unit = evaluate_errors(algo, unit_exact).max_error;
        std::printf("%-18s  %8.3f  %12.2f  %12.4g\n", "SMED (unit)", t_smed_unit,
                    static_cast<double>(unit_n) / t_smed_unit / 1e6, e_smed_unit);
    }
    {
        gk_quantiles<std::uint64_t> gk(0.002);
        stopwatch sw;
        for (std::size_t i = 0; i < unit_n; ++i) {
            gk.update(stream[i].id);
        }
        const double t_gk = sw.seconds();
        double e_gk = 0;
        for (const auto& [id, f] : unit_exact.counts()) {
            e_gk = std::max(e_gk, std::abs(static_cast<double>(gk.estimate(id)) -
                                           static_cast<double>(f)));
        }
        std::printf("%-18s  %8.3f  %12.2f  %12.4g   (%zu tuples, %zu KiB)\n", "GK quantiles",
                    t_gk, static_cast<double>(unit_n) / t_gk / 1e6, e_gk, gk.num_tuples(),
                    gk.memory_bytes() / 1024);
        ok &= check(t_smed_unit < t_gk,
                    "counter-based SMED is faster than the GK quantile summary (§1.3)");
    }
    return ok ? 0 : 1;
}
