/// Ablation: how much of SMED's speed comes from the §2.3.3 parallel-array
/// linear-probing table (vs the algorithm itself)? We re-implement the same
/// SMED logic on std::unordered_map — the "natural way to implement" a
/// counter set (§1.3.2) — and race the two on the packet workload.
///
/// The node-based map costs an allocation per insert, pointer-chasing per
/// lookup, and a full rehash-unfriendly iteration per decrement; the paper's
/// design wins on every count. This quantifies the DESIGN.md claim that the
/// table is a load-bearing design choice, not an implementation detail.

#include <cstdio>
#include <span>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"
#include "select/quickselect.h"

namespace {

using namespace freq;
using namespace freq::bench;

/// SMED with identical policy but counters in std::unordered_map. Sampling
/// for the quantile uses the first l entries in iteration order —
/// unordered_map iteration order is hash-driven and effectively arbitrary,
/// which is the closest analogue of random sampling available without
/// auxiliary state.
class smed_on_unordered_map {
public:
    explicit smed_on_unordered_map(std::uint32_t k, std::uint32_t sample_size = 1024)
        : k_(k), sample_size_(sample_size) {
        counters_.reserve(k + 1);
        sample_.reserve(sample_size);
    }

    void update(std::uint64_t id, std::uint64_t weight) {
        const auto it = counters_.find(id);
        if (it != counters_.end()) {
            it->second += weight;
            return;
        }
        if (counters_.size() < k_) {
            counters_.emplace(id, weight);
            return;
        }
        const std::uint64_t cstar = decrement();
        if (weight > cstar) {
            counters_.emplace(id, weight - cstar);
        }
    }

    std::uint64_t num_decrements() const { return num_decrements_; }

private:
    std::uint64_t decrement() {
        sample_.clear();
        for (const auto& [id, c] : counters_) {
            sample_.push_back(c);
            if (sample_.size() == sample_size_) {
                break;
            }
        }
        const std::uint64_t cstar =
            quickselect_quantile(std::span<std::uint64_t>(sample_), 0.5);
        for (auto it = counters_.begin(); it != counters_.end();) {
            if (it->second <= cstar) {
                it = counters_.erase(it);
            } else {
                it->second -= cstar;
                ++it;
            }
        }
        ++num_decrements_;
        return cstar;
    }

    std::uint32_t k_;
    std::uint32_t sample_size_;
    std::unordered_map<std::uint64_t, std::uint64_t> counters_;
    std::vector<std::uint64_t> sample_;
    std::uint64_t num_decrements_ = 0;
};

}  // namespace

int main() {
    const auto stream = caida_stream();
    const double n = static_cast<double>(stream.size());
    print_stream_stats(stream, "caida-like(ablate)");

    print_header("Table backend ablation (same SMED policy, different storage)",
                 "        k   parallel-array(s)   unordered_map(s)   speedup");
    bool ok = true;
    for (const std::uint32_t k : {1024u, 4096u, 16384u}) {
        frequent_items_sketch<std::uint64_t, std::uint64_t> fast(
            sketch_config{.max_counters = k, .seed = 1});
        const double t_fast = time_consume(fast, stream);

        smed_on_unordered_map slow(k);
        stopwatch sw;
        for (const auto& u : stream) {
            slow.update(u.id, u.weight);
        }
        const double t_slow = sw.seconds();

        std::printf("%9u  %18.3f  %17.3f  %8.2fx\n", k, t_fast, t_slow, t_slow / t_fast);
        // At k <= l the two implementations sample the decrement quantile
        // very differently (random rejection probes vs a sequential bucket
        // walk), which confounds the storage comparison; assert the backend
        // claim where decrements are rare and the hot path dominates.
        if (k >= 4096) {
            ok &= check(t_fast < t_slow,
                        "k=" + std::to_string(k) + ": the paper's table beats unordered_map");
        }
    }
    std::printf("Throughput with parallel-array table at k=4096: measured above; n=%.0f\n", n);
    return ok ? 0 : 1;
}
