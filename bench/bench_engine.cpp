/// Sharded-engine ingest throughput: one producer thread pushes a Zipf(1.1)
/// stream through stream_engine at 1/2/4/8 shards, against two
/// single-threaded baselines — element-wise frequent_items_sketch::update
/// (the pre-engine ingestion path) and the batched update(span) fast path.
///
/// Emits a table on stdout and machine-readable BENCH_engine.json in the
/// working directory (wired into CI). Acceptance target: 4 shards >= 2x the
/// element-wise single-thread baseline on a machine with >= 4 cores; on
/// smaller machines the JSON records hardware_threads so the consumer can
/// gate on it.
///
///   build/bench_engine              # FREQ_BENCH_SCALE scales the stream

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"
#include "core/string_frequent_items.h"
#include "engine/stream_engine.h"
#include "stream/generators.h"

namespace {

using namespace freq;
using stream_t = update_stream<std::uint64_t, std::uint64_t>;

constexpr std::uint32_t k = 4096;

/// Per-chunk ingest latencies ride along with every total: ~64 chunks per
/// run, so BENCH_engine.json records tail behaviour (p50/p99), not just
/// the mean rate.
constexpr std::size_t lat_chunks = 64;

struct baseline_run {
    double seconds;
    bench::latency_recorder::summary lat;
};

baseline_run time_elementwise(const stream_t& stream) {
    frequent_items_sketch<std::uint64_t, std::uint64_t> sketch(
        sketch_config{.max_counters = k, .seed = 1});
    bench::latency_recorder rec;
    bench::stopwatch sw;
    bench::record_chunks(stream.size(), lat_chunks, rec,
                         [&](std::size_t off, std::size_t take) {
                             for (std::size_t i = off; i < off + take; ++i) {
                                 sketch.update(stream[i].id, stream[i].weight);
                             }
                         });
    const double s = sw.seconds();
    std::printf("  (elementwise sketch: %s)\n", sketch.to_string().c_str());
    return {s, rec.summarize()};
}

baseline_run time_batched(const stream_t& stream) {
    frequent_items_sketch<std::uint64_t, std::uint64_t> sketch(
        sketch_config{.max_counters = k, .seed = 1});
    constexpr std::size_t batch = 512;
    bench::latency_recorder rec;
    bench::stopwatch sw;
    bench::record_chunks(stream.size(), lat_chunks, rec,
                         [&](std::size_t off, std::size_t take) {
                             for (std::size_t i = off; i < off + take; i += batch) {
                                 const std::size_t t = std::min(batch, off + take - i);
                                 sketch.update(
                                     std::span<const update64>(stream.data() + i, t));
                             }
                         });
    return {sw.seconds(), rec.summarize()};
}

struct engine_run {
    std::uint32_t shards;
    double seconds;
    std::uint64_t ring_full_stalls;
    bench::latency_recorder::summary lat;
};

engine_run time_engine(const stream_t& stream, std::uint32_t shards) {
    engine_config cfg;
    cfg.num_shards = shards;
    cfg.num_producers = 1;
    cfg.sketch = sketch_config{.max_counters = k, .seed = 1};
    stream_engine<> engine(cfg);
    bench::latency_recorder rec;
    bench::stopwatch sw;
    {
        auto producer = engine.make_producer();
        bench::record_chunks(stream.size(), lat_chunks, rec,
                             [&](std::size_t off, std::size_t take) {
                                 producer.push(std::span<const update64>(
                                     stream.data() + off, take));
                             });
        producer.flush();
    }
    engine.flush();
    const double s = sw.seconds();
    const auto st = engine.stats();
    engine.stop();
    return {shards, s, st.ring_full_stalls, rec.summarize()};
}

// --- text keys: standalone string sketch vs the sharded engine ---------------

/// Materialized word stream (spellings pre-built so both contenders pay the
/// same string-construction cost and the measurement isolates ingest).
std::vector<std::pair<std::string, std::uint64_t>> word_stream(const stream_t& ids) {
    std::vector<std::pair<std::string, std::uint64_t>> words;
    words.reserve(ids.size());
    for (const auto& u : ids) {
        std::string word = "w";  // +=: gcc 12 -Wrestrict FP on "w" + to_string (PR105329)
        word += std::to_string(u.id);
        words.emplace_back(std::move(word), u.weight);
    }
    return words;
}

baseline_run time_text_standalone(
    const std::vector<std::pair<std::string, std::uint64_t>>& words) {
    string_frequent_items<std::uint64_t> sketch(
        sketch_config{.max_counters = k, .seed = 1});
    bench::latency_recorder rec;
    bench::stopwatch sw;
    bench::record_chunks(words.size(), lat_chunks, rec,
                         [&](std::size_t off, std::size_t take) {
                             for (std::size_t i = off; i < off + take; ++i) {
                                 sketch.update(words[i].first, words[i].second);
                             }
                         });
    const double s = sw.seconds();
    std::printf("  (standalone text sketch: %s)\n", sketch.to_string().c_str());
    return {s, rec.summarize()};
}

engine_run time_text_engine(const std::vector<std::pair<std::string, std::uint64_t>>& words,
                            std::uint32_t shards) {
    engine_config cfg;
    cfg.num_shards = shards;
    cfg.num_producers = 1;
    cfg.sketch = sketch_config{.max_counters = k, .seed = 1};
    stream_engine<std::uint64_t, std::uint64_t, string_frequent_items<std::uint64_t>>
        engine(cfg);
    bench::latency_recorder rec;
    bench::stopwatch sw;
    {
        auto producer = engine.make_producer();
        bench::record_chunks(words.size(), lat_chunks, rec,
                             [&](std::size_t off, std::size_t take) {
                                 for (std::size_t i = off; i < off + take; ++i) {
                                     producer.push(std::string_view(words[i].first),
                                                   words[i].second);
                                 }
                             });
        producer.flush();
    }
    engine.flush();
    const double s = sw.seconds();
    const auto st = engine.stats();
    engine.stop();
    return {shards, s, st.ring_full_stalls, rec.summarize()};
}

}  // namespace

int main() {
    bench::alloc_phase allocs;  // heap traffic of the whole run
    const std::uint64_t n = bench::scaled(4'000'000);
    zipf_stream_generator gen({.num_updates = n,
                               .num_distinct = n / 10,
                               .alpha = 1.1,
                               .min_weight = 1,
                               .max_weight = 100,
                               .seed = 2024});
    const auto stream = gen.generate();
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("engine ingest bench: n=%llu zipf(1.1) hardware_threads=%u\n",
                static_cast<unsigned long long>(n), hw);

    const baseline_run base = time_elementwise(stream);
    const baseline_run batched = time_batched(stream);
    const double base_rate = static_cast<double>(n) / base.seconds / 1e6;
    const double batched_rate = static_cast<double>(n) / batched.seconds / 1e6;

    bench::print_header("engine ingest throughput (Mupd/s)",
                        "config                rate     speedup  stalls");
    std::printf("%-20s %7.2f %9.2fx %7s\n", "1 thread, update()", base_rate, 1.0, "-");
    std::printf("%-20s %7.2f %9.2fx %7s\n", "1 thread, batched", batched_rate,
                batched_rate / base_rate, "-");

    std::vector<engine_run> runs;
    for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        runs.push_back(time_engine(stream, shards));
        const auto& r = runs.back();
        const double rate = static_cast<double>(n) / r.seconds / 1e6;
        std::printf("engine, %u shard(s)%*s %7.2f %9.2fx %7llu\n", r.shards,
                    r.shards >= 10 ? 1 : 2, "", rate, rate / base_rate,
                    static_cast<unsigned long long>(r.ring_full_stalls));
    }

    // Text keys: the same contest for the fingerprint + spelling path. A
    // smaller stream — string hashing dominates, and the point is the
    // standalone-vs-sharded ratio, not absolute text throughput.
    const std::uint64_t text_n = n / 4;
    const auto words = word_stream(stream_t(stream.begin(),
                                            stream.begin() + static_cast<std::ptrdiff_t>(text_n)));
    const baseline_run text_base = time_text_standalone(words);
    const double text_base_rate = static_cast<double>(text_n) / text_base.seconds / 1e6;
    bench::print_header("text-key ingest throughput (Mupd/s)",
                        "config                rate     speedup  stalls");
    std::printf("%-20s %7.2f %9.2fx %7s\n", "1 thread, text", text_base_rate, 1.0, "-");
    std::vector<engine_run> text_runs;
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
        text_runs.push_back(time_text_engine(words, shards));
        const auto& r = text_runs.back();
        const double rate = static_cast<double>(text_n) / r.seconds / 1e6;
        std::printf("text engine, %u shard%s %7.2f %9.2fx %7llu\n", r.shards,
                    r.shards == 1 ? " " : "s", rate, rate / text_base_rate,
                    static_cast<unsigned long long>(r.ring_full_stalls));
    }

    // Acceptance: 4 shards >= 2x the element-wise single-thread baseline,
    // and sharded text ingest beats the standalone text sketch. On machines
    // with < 4 hardware threads the measurements are still taken and
    // recorded, but the checks degrade to explicit [INFO] lines — they must
    // never silently count as a PASS they did not earn.
    const double four_shard_rate =
        static_cast<double>(n) / runs[2].seconds / 1e6;
    const bool accepted = four_shard_rate >= 2.0 * base_rate;
    const double text_four_rate = static_cast<double>(text_n) / text_runs[2].seconds / 1e6;
    const bool text_accepted = text_four_rate > text_base_rate;
    if (hw >= 4) {
        bench::check(accepted, "4-shard engine >= 2x single-thread update() throughput");
        bench::check(text_accepted,
                     "4-shard text engine beats the standalone text sketch");
    } else {
        std::printf("[INFO] 4-shard speedup %.2fx %s the 2x acceptance target — "
                    "informational only: %u hardware thread(s) < 4 required for the gate\n",
                    four_shard_rate / base_rate, accepted ? "meets" : "misses", hw);
        std::printf("[INFO] 4-shard text speedup %.2fx %s the >1x acceptance target — "
                    "informational only: %u hardware thread(s) < 4 required for the gate\n",
                    text_four_rate / text_base_rate, text_accepted ? "meets" : "misses",
                    hw);
    }

    // Machine-readable record for CI trend tracking.
    FILE* json = std::fopen("BENCH_engine.json", "w");
    if (json != nullptr) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"engine_ingest\",\n");
        std::fprintf(json, "  \"stream\": {\"n\": %llu, \"alpha\": 1.1, \"k\": %u},\n",
                     static_cast<unsigned long long>(n), k);
        std::fprintf(json, "  \"hardware_threads\": %u,\n", hw);
        std::fprintf(json, "  ");
        allocs.write_json_fields(json, "");
        std::fprintf(json, ",\n");
        std::fprintf(json, "  \"shard_counts\": [");
        for (std::size_t i = 0; i < runs.size(); ++i) {
            std::fprintf(json, "%u%s", runs[i].shards, i + 1 < runs.size() ? ", " : "");
        }
        std::fprintf(json, "],\n");
        std::fprintf(json, "  \"acceptance\": {\"target_speedup\": 2.0, \"gated\": %s, "
                     "\"met\": %s},\n",
                     hw >= 4 ? "true" : "false", accepted ? "true" : "false");
        std::fprintf(json, "  \"single_thread_update_mups\": %.3f,\n", base_rate);
        std::fprintf(json,
                     "  \"single_thread_update_chunk\": {\"chunk_p50_s\": %.6g, "
                     "\"chunk_p99_s\": %.6g},\n",
                     base.lat.p50_s, base.lat.p99_s);
        std::fprintf(json, "  \"single_thread_batched_mups\": %.3f,\n", batched_rate);
        std::fprintf(json,
                     "  \"single_thread_batched_chunk\": {\"chunk_p50_s\": %.6g, "
                     "\"chunk_p99_s\": %.6g},\n",
                     batched.lat.p50_s, batched.lat.p99_s);
        std::fprintf(json, "  \"engine\": [\n");
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const double rate = static_cast<double>(n) / runs[i].seconds / 1e6;
            std::fprintf(json,
                         "    {\"shards\": %u, \"mups\": %.3f, \"speedup_vs_update\": "
                         "%.3f, \"ring_full_stalls\": %llu, \"chunk_p50_s\": %.6g, "
                         "\"chunk_p99_s\": %.6g}%s\n",
                         runs[i].shards, rate, rate / base_rate,
                         static_cast<unsigned long long>(runs[i].ring_full_stalls),
                         runs[i].lat.p50_s, runs[i].lat.p99_s,
                         i + 1 < runs.size() ? "," : "");
        }
        std::fprintf(json, "  ],\n");
        std::fprintf(json, "  \"text\": {\n");
        std::fprintf(json, "    \"n\": %llu,\n",
                     static_cast<unsigned long long>(text_n));
        std::fprintf(json, "    \"acceptance\": {\"target\": \"sharded > standalone\", "
                     "\"gated\": %s, \"met\": %s},\n",
                     hw >= 4 ? "true" : "false", text_accepted ? "true" : "false");
        std::fprintf(json, "    \"standalone_text_mups\": %.3f,\n", text_base_rate);
        std::fprintf(json,
                     "    \"standalone_text_chunk\": {\"chunk_p50_s\": %.6g, "
                     "\"chunk_p99_s\": %.6g},\n",
                     text_base.lat.p50_s, text_base.lat.p99_s);
        std::fprintf(json, "    \"engine\": [\n");
        for (std::size_t i = 0; i < text_runs.size(); ++i) {
            const double rate = static_cast<double>(text_n) / text_runs[i].seconds / 1e6;
            std::fprintf(json,
                         "      {\"shards\": %u, \"mups\": %.3f, "
                         "\"speedup_vs_standalone\": %.3f, \"ring_full_stalls\": %llu, "
                         "\"chunk_p50_s\": %.6g, \"chunk_p99_s\": %.6g}%s\n",
                         text_runs[i].shards, rate, rate / text_base_rate,
                         static_cast<unsigned long long>(text_runs[i].ring_full_stalls),
                         text_runs[i].lat.p50_s, text_runs[i].lat.p99_s,
                         i + 1 < text_runs.size() ? "," : "");
        }
        std::fprintf(json, "    ]\n  }\n}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_engine.json\n");
    }
    return 0;
}
