/// Ablation: the §1.3.4 adversarial stream — k huge-weight items followed by
/// M unit-weight updates to fresh items. RBMC performs a Θ(k) decrement on
/// essentially every tail update; SMED amortizes to one decrement per ~k/2
/// updates; MHE pays its O(log k) heap cost but does not degenerate.
///
/// This is the analytical example that motivates Algorithm 4, turned into a
/// measurement.

#include <cstdio>

#include "baselines/rbmc.h"
#include "baselines/space_saving_heap.h"
#include "bench/bench_common.h"
#include "core/frequent_items_sketch.h"

int main() {
    using namespace freq;
    using namespace freq::bench;

    constexpr std::uint32_t k = 1024;
    const std::uint64_t m = scaled(2'000'000);
    rbmc_pathology_generator gen({.k = k, .heavy_weight = m, .seed = 7});
    const auto stream = gen.generate();
    const double n = static_cast<double>(stream.size());

    print_header("RBMC pathology (k = 1024 heavy items, then M unit updates)",
                 "algorithm        seconds   M-updates/s   decrements   decr/update");

    rbmc<std::uint64_t, std::uint64_t> r(k, 1);
    const double t_rbmc = time_consume(r, stream);
    std::printf("%-12s  %10.3f  %12.2f  %11llu  %12.4f\n", "RBMC", t_rbmc, n / t_rbmc / 1e6,
                static_cast<unsigned long long>(r.num_decrements()),
                static_cast<double>(r.num_decrements()) / n);

    frequent_items_sketch<std::uint64_t, std::uint64_t> smed(
        sketch_config{.max_counters = k, .seed = 1});
    const double t_smed = time_consume(smed, stream);
    std::printf("%-12s  %10.3f  %12.2f  %11llu  %12.4f\n", "SMED", t_smed, n / t_smed / 1e6,
                static_cast<unsigned long long>(smed.num_decrements()),
                static_cast<double>(smed.num_decrements()) / n);

    space_saving_heap<std::uint64_t, std::uint64_t> mh(k, 1);
    const double t_mhe = time_consume(mh, stream);
    std::printf("%-12s  %10.3f  %12.2f  %11s  %12s\n", "MHE", t_mhe, n / t_mhe / 1e6, "-", "-");

    std::printf("\n");
    bool ok = true;
    ok &= check(r.num_decrements() > m / 2,
                "RBMC decrements on (essentially) every tail update (§1.3.4)");
    ok &= check(smed.num_decrements() < m / (k / 8),
                "SMED decrements at most once per Ω(k) updates even adversarially (Lemma 3)");
    ok &= check(t_smed < t_rbmc, "SMED is faster than RBMC on the adversarial stream");
    return ok ? 0 : 1;
}
