/// Async snapshot service vs. fold-on-demand reads: the cost of a point
/// query against a loaded 8-shard engine, and the ingest-throughput
/// interference of a concurrent reader, measured three ways — no readers,
/// a reader folding a fresh snapshot per query (the pre-service read
/// path), and a reader acquiring the cached double-buffered view
/// (engine/snapshot_service.h).
///
/// Phase C measures the incremental fold (engine_config::incremental_snapshots,
/// the default): publish cost as a function of how many of the 8 shards
/// actually mutated between snapshots, against the fold-every-shard
/// baseline the other phases use.
///
/// Emits a table on stdout and machine-readable BENCH_snapshot.json in the
/// working directory (wired into CI). Acceptance targets: cached-view point
/// queries >= 10x faster than fold-on-demand at 8 shards, and incremental
/// publishes >= 2x faster than the full fold when <= 25% of shards are
/// dirty — both on a machine with >= 4 hardware threads; smaller machines
/// degrade the checks to explicit [INFO] lines, like the other engine
/// benches.
///
///   build/bench_snapshot            # FREQ_BENCH_SCALE scales the stream

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "engine/stream_engine.h"
#include "random/xoshiro.h"
#include "stream/generators.h"

namespace {

using namespace freq;
using stream_t = update_stream<std::uint64_t, std::uint64_t>;

constexpr std::uint32_t k = 2048;
constexpr std::uint32_t shards = 8;

engine_config make_cfg(bool incremental) {
    engine_config cfg;
    cfg.num_shards = shards;
    cfg.num_producers = 1;
    cfg.sketch = sketch_config{.max_counters = k, .seed = 1};
    // Phases A and B measure the fold-every-shard read path (and the cached
    // service on top of it), so they pin the flag off; phase C compares.
    cfg.incremental_snapshots = incremental;
    return cfg;
}

/// Ids to query: drawn from the stream so most queries hit live counters.
std::vector<std::uint64_t> query_ids(const stream_t& stream, std::size_t count) {
    std::vector<std::uint64_t> ids;
    ids.reserve(count);
    xoshiro256ss rng(99);
    for (std::size_t i = 0; i < count; ++i) {
        ids.push_back(stream[rng() % stream.size()].id);
    }
    return ids;
}

/// ns per fold-on-demand point query against a loaded engine. Each query is
/// also recorded individually into \p rec for the p50/p99 tail.
double time_fold_reads(const stream_engine<>& engine,
                       std::span<const std::uint64_t> ids,
                       bench::latency_recorder& rec, std::uint64_t& sink) {
    bench::stopwatch sw;
    for (const std::uint64_t id : ids) {
        bench::stopwatch qsw;
        sink += engine.snapshot().estimate(id);
        rec.record_seconds(qsw.seconds());
    }
    return sw.seconds() * 1e9 / static_cast<double>(ids.size());
}

/// ns per cached-view point query (one acquire per query, the worst case —
/// batch readers would amortize the acquire over many estimates).
double time_cached_reads(const stream_engine<>& engine,
                         std::span<const std::uint64_t> ids, std::size_t rounds,
                         bench::latency_recorder& rec, std::uint64_t& sink) {
    bench::stopwatch sw;
    for (std::size_t r = 0; r < rounds; ++r) {
        for (const std::uint64_t id : ids) {
            bench::stopwatch qsw;
            sink += engine.acquire_snapshot()->estimate(id);
            rec.record_seconds(qsw.seconds());
        }
    }
    return sw.seconds() * 1e9 / static_cast<double>(ids.size() * rounds);
}

enum class reader_mode { none, fold, cached };

struct ingest_run {
    double seconds;
    std::uint64_t reader_queries;
    std::uint64_t publishes;
};

/// Pushes the whole stream through a fresh engine while one reader thread
/// queries continuously in the requested mode; returns ingest wall time.
ingest_run time_ingest(const stream_t& stream, reader_mode mode,
                       std::span<const std::uint64_t> ids) {
    stream_engine<> engine(make_cfg(false));
    if (mode == reader_mode::cached) {
        engine.enable_snapshot_service(std::chrono::milliseconds(2));
    }
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> queries{0};
    std::thread reader;
    if (mode != reader_mode::none) {
        reader = std::thread([&] {
            std::uint64_t sink = 0;
            std::size_t i = 0;
            while (!done.load(std::memory_order_acquire)) {
                const std::uint64_t id = ids[i++ % ids.size()];
                if (mode == reader_mode::fold) {
                    sink += engine.snapshot().estimate(id);
                } else {
                    sink += engine.acquire_snapshot()->estimate(id);
                }
                queries.fetch_add(1, std::memory_order_relaxed);
            }
            if (sink == 0xdeadbeef) {
                std::printf("impossible\n");
            }
        });
    }
    bench::stopwatch sw;
    {
        auto producer = engine.make_producer();
        producer.push(std::span<const update64>(stream.data(), stream.size()));
        producer.flush();
    }
    engine.flush();
    const double s = sw.seconds();
    done.store(true, std::memory_order_release);
    if (reader.joinable()) {
        reader.join();
    }
    const auto snap_stats = engine.snapshot_stats();
    engine.stop();
    return {s, queries.load(), snap_stats.publishes};
}

}  // namespace

int main() {
    bench::alloc_phase allocs;  // heap traffic of the whole run
    const std::uint64_t n = bench::scaled(2'000'000);
    zipf_stream_generator gen({.num_updates = n,
                               .num_distinct = n / 10,
                               .alpha = 1.1,
                               .min_weight = 1,
                               .max_weight = 100,
                               .seed = 2024});
    const auto stream = gen.generate();
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("snapshot-service bench: n=%llu zipf(1.1) k=%u shards=%u "
                "hardware_threads=%u\n",
                static_cast<unsigned long long>(n), k, shards, hw);

    // --- phase A: read latency against a loaded, idle engine -----------------
    stream_engine<> engine(make_cfg(false));
    {
        auto producer = engine.make_producer();
        producer.push(std::span<const update64>(stream.data(), stream.size()));
        producer.flush();
    }
    engine.flush();

    const auto ids = query_ids(stream, 512);
    std::uint64_t sink = 0;
    bench::latency_recorder fold_rec;
    const double fold_ns = time_fold_reads(engine, ids, fold_rec, sink);

    engine.enable_snapshot_service(std::chrono::milliseconds(2));
    bench::latency_recorder cached_rec;
    const double cached_ns = time_cached_reads(engine, ids, 64, cached_rec, sink);
    const double read_speedup = fold_ns / cached_ns;
    engine.stop();
    if (sink == 0xdeadbeef) {
        std::printf("impossible\n");  // defeat dead-code elimination
    }

    bench::print_header("point-query latency (loaded engine, 8 shards)",
                        "read path                ns/query      speedup");
    std::printf("%-22s %11.0f %11.2fx\n", "fold-on-demand", fold_ns, 1.0);
    std::printf("%-22s %11.0f %11.2fx\n", "cached view", cached_ns, read_speedup);

    // --- phase B: ingest interference of a concurrent reader -----------------
    const auto quiet = time_ingest(stream, reader_mode::none, ids);
    const auto fold = time_ingest(stream, reader_mode::fold, ids);
    const auto cached = time_ingest(stream, reader_mode::cached, ids);

    const double quiet_rate = static_cast<double>(n) / quiet.seconds / 1e6;
    const double fold_rate = static_cast<double>(n) / fold.seconds / 1e6;
    const double cached_rate = static_cast<double>(n) / cached.seconds / 1e6;

    bench::print_header(
        "ingest throughput under concurrent reads (Mupd/s)",
        "reader                    rate    vs quiet   reader q/s  publishes");
    std::printf("%-20s %9.2f %9.2f%% %12s %10s\n", "none", quiet_rate, 100.0, "-", "-");
    std::printf("%-20s %9.2f %9.2f%% %12.0f %10s\n", "fold-on-demand", fold_rate,
                100.0 * fold_rate / quiet_rate,
                static_cast<double>(fold.reader_queries) / fold.seconds, "-");
    std::printf("%-20s %9.2f %9.2f%% %12.0f %10llu\n", "cached view", cached_rate,
                100.0 * cached_rate / quiet_rate,
                static_cast<double>(cached.reader_queries) / cached.seconds,
                static_cast<unsigned long long>(cached.publishes));

    // --- phase C: incremental fold cost vs dirty fraction --------------------
    // A loaded engine with incremental_snapshots on: between publishes,
    // exactly D of the 8 shards receive traffic, so each publish re-clones
    // and re-merges D shards and serves the rest from the cached clean fold.
    // The baseline is the same publish against the fold-every-shard path.
    constexpr unsigned dirty_counts[] = {0, 1, 2, 4, 8};
    constexpr int fold_rounds = 50;
    double inc_ns[sizeof(dirty_counts) / sizeof(dirty_counts[0])] = {};
    double full_ns = 0.0;
    {
        stream_engine<> inc_engine(make_cfg(true));
        stream_engine<> base_engine(make_cfg(false));
        for (auto* e : {&inc_engine, &base_engine}) {
            auto producer = e->make_producer();
            producer.push(std::span<const update64>(stream.data(), stream.size()));
            producer.flush();
            e->flush();
        }
        // One live key per shard so a round can dirty exactly D shards.
        std::vector<std::uint64_t> shard_key(shards);
        for (std::uint32_t s = 0; s < shards; ++s) {
            std::uint64_t id = 0;
            while (inc_engine.shard_of(id) != s) {
                ++id;
            }
            shard_key[s] = id;
        }
        auto p = inc_engine.make_producer();
        for (std::size_t d = 0; d < sizeof(dirty_counts) / sizeof(dirty_counts[0]);
             ++d) {
            const unsigned D = dirty_counts[d];
            auto dirty_round = [&] {
                for (unsigned s = 0; s < D; ++s) {
                    p.push(shard_key[s], 1);
                }
                p.flush();
                inc_engine.flush();
            };
            // Two untimed warm rounds: populate the clone cache and absorb
            // the one-time clean-set membership rebuild for this D.
            for (int w = 0; w < 2; ++w) {
                dirty_round();
                sink += inc_engine.snapshot().total_weight();
            }
            double total = 0.0;
            for (int r = 0; r < fold_rounds; ++r) {
                dirty_round();
                bench::stopwatch ssw;
                sink += inc_engine.snapshot().total_weight();
                total += ssw.seconds();
            }
            inc_ns[d] = total / fold_rounds * 1e9;
        }
        {
            auto bp = base_engine.make_producer();
            double total = 0.0;
            for (int r = 0; r < fold_rounds; ++r) {
                bp.push(shard_key[r % shards], 1);
                bp.flush();
                base_engine.flush();
                bench::stopwatch ssw;
                sink += base_engine.snapshot().total_weight();
                total += ssw.seconds();
            }
            full_ns = total / fold_rounds * 1e9;
        }
    }
    if (sink == 0xdeadbeef) {
        std::printf("impossible\n");
    }

    bench::print_header("incremental snapshot publish cost (8 shards, loaded)",
                        "dirty shards        ns/publish    vs full fold");
    std::printf("%-18s %13.0f %14.2fx\n", "full fold (off)", full_ns, 1.0);
    for (std::size_t d = 0; d < sizeof(dirty_counts) / sizeof(dirty_counts[0]); ++d) {
        std::printf("%-18u %13.0f %14.2fx\n", dirty_counts[d], inc_ns[d],
                    full_ns / inc_ns[d]);
    }

    // Acceptance: cached-view reads >= 10x faster than fold-on-demand at 8
    // shards. Below 4 hardware threads the numbers are still recorded but
    // the check degrades to an explicit [INFO] line — it must never
    // silently count as a PASS it did not earn.
    const bool accepted = read_speedup >= 10.0;
    // Incremental gate: at <= 25% dirty shards (D=2 of 8) the publish must
    // be >= 2x cheaper than the full fold.
    const double inc_speedup = full_ns / inc_ns[2];
    const bool inc_accepted = inc_speedup >= 2.0;
    if (hw >= 4) {
        bench::check(inc_accepted,
                     "incremental publish >= 2x faster than full fold at <= 25% "
                     "dirty shards");
    } else {
        std::printf("[INFO] incremental publish speedup %.1fx at 2/8 dirty shards %s "
                    "the 2x acceptance target — informational only: %u hardware "
                    "thread(s) < 4 required for the gate\n",
                    inc_speedup, inc_accepted ? "meets" : "misses", hw);
    }
    if (hw >= 4) {
        bench::check(accepted,
                     "cached-view point queries >= 10x faster than fold-on-demand "
                     "at 8 shards");
    } else {
        std::printf("[INFO] cached-view speedup %.1fx %s the 10x acceptance target — "
                    "informational only: %u hardware thread(s) < 4 required for the "
                    "gate\n",
                    read_speedup, accepted ? "meets" : "misses", hw);
    }

    FILE* json = std::fopen("BENCH_snapshot.json", "w");
    if (json != nullptr) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"snapshot_service\",\n");
        std::fprintf(json, "  \"stream\": {\"n\": %llu, \"alpha\": 1.1, \"k\": %u, "
                     "\"shards\": %u},\n",
                     static_cast<unsigned long long>(n), k, shards);
        std::fprintf(json, "  \"hardware_threads\": %u,\n", hw);
        std::fprintf(json, "  ");
        allocs.write_json_fields(json, "");
        std::fprintf(json, ",\n");
        std::fprintf(json, "  \"acceptance\": {\"target_read_speedup\": 10.0, "
                     "\"gated\": %s, \"met\": %s, "
                     "\"target_incremental_speedup\": 2.0, "
                     "\"incremental_met\": %s},\n",
                     hw >= 4 ? "true" : "false", accepted ? "true" : "false",
                     inc_accepted ? "true" : "false");
        std::fprintf(json, "  \"incremental_fold\": {\"full_fold_ns\": %.1f, "
                     "\"speedup_at_2_of_8_dirty\": %.2f, \"points\": [",
                     full_ns, inc_speedup);
        for (std::size_t d = 0; d < sizeof(dirty_counts) / sizeof(dirty_counts[0]);
             ++d) {
            std::fprintf(json, "%s{\"dirty\": %u, \"ns\": %.1f}", d == 0 ? "" : ", ",
                         dirty_counts[d], inc_ns[d]);
        }
        std::fprintf(json, "]},\n");
        const auto fold_lat = fold_rec.summarize();
        const auto cached_lat = cached_rec.summarize();
        std::fprintf(json, "  \"read_latency\": {\"fold_ns\": %.1f, \"cached_ns\": %.1f, "
                     "\"speedup\": %.2f, "
                     "\"fold_p50_s\": %.6g, \"fold_p99_s\": %.6g, "
                     "\"cached_p50_s\": %.6g, \"cached_p99_s\": %.6g},\n",
                     fold_ns, cached_ns, read_speedup, fold_lat.p50_s, fold_lat.p99_s,
                     cached_lat.p50_s, cached_lat.p99_s);
        std::fprintf(json, "  \"ingest\": [\n");
        std::fprintf(json, "    {\"reader\": \"none\", \"mups\": %.3f},\n", quiet_rate);
        std::fprintf(json,
                     "    {\"reader\": \"fold\", \"mups\": %.3f, \"reader_qps\": %.0f},\n",
                     fold_rate, static_cast<double>(fold.reader_queries) / fold.seconds);
        std::fprintf(json,
                     "    {\"reader\": \"cached\", \"mups\": %.3f, \"reader_qps\": %.0f, "
                     "\"publishes\": %llu}\n",
                     cached_rate,
                     static_cast<double>(cached.reader_queries) / cached.seconds,
                     static_cast<unsigned long long>(cached.publishes));
        std::fprintf(json, "  ]\n}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_snapshot.json\n");
    }
    return 0;
}
