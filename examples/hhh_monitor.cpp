/// Hierarchical heavy hitters: the network-monitoring application of
/// §1.2/§6 ([18]) built on the sketch. Detects both a single hot host and a
/// distributed hot subnet (e.g. a scanning botnet inside one /24) that no
/// per-host view would surface.
///
///   build/examples/hhh_monitor

#include <cstdio>

#include "hhh/hierarchical_heavy_hitters.h"
#include "random/xoshiro.h"
#include "stream/generators.h"

int main() {
    using namespace freq;
    using namespace freq::hhh;

    hierarchical_heavy_hitters monitor({
        .levels = {32, 24, 16, 8},
        .counters_per_level = 2048,
        .seed = 1,
    });

    // Background traffic: CAIDA-like packet mix.
    caida_like_generator background({.num_updates = 1'000'000, .num_flows = 100'000, .seed = 3});
    for (const auto& pkt : background.generate()) {
        monitor.update(static_cast<std::uint32_t>(pkt.id), pkt.weight);
    }

    // Anomaly 1: one host exfiltrating at high volume.
    const std::uint32_t hot_host = *net::parse_ipv4("203.0.113.77");
    // Anomaly 2: a /24 where every host contributes a little (DDoS-style) —
    // invisible at host granularity, glaring at subnet granularity.
    const std::uint32_t botnet = *net::parse_ipv4("198.51.100.0");
    xoshiro256ss rng(9);
    for (int i = 0; i < 120'000; ++i) {
        monitor.update(hot_host, 12'000);
        monitor.update(botnet + static_cast<std::uint32_t>(rng.below(256)), 6'000);
    }

    std::printf("monitored %.3f Gbit across %zu KiB of sketches\n\n",
                static_cast<double>(monitor.total_weight()) / 1e9,
                monitor.memory_bytes() / 1024);

    const auto rows = monitor.query(/*phi=*/0.05);
    std::printf("hierarchical heavy hitters (phi = 5%%):\n");
    std::printf("%-22s %14s %16s\n", "prefix", "est. bits", "conditioned bits");
    for (const auto& r : rows) {
        std::printf("%-22s %14llu %16llu\n", r.to_string().c_str(),
                    static_cast<unsigned long long>(r.estimate),
                    static_cast<unsigned long long>(r.conditioned));
    }
    std::printf("\nexpected: 203.0.113.77/32 (hot host) and 198.51.100.0/24 (distributed"
                " subnet; its hosts are individually small)\n");
    return 0;
}
