/// Hierarchical heavy hitters: the network-monitoring application of
/// §1.2/§6 ([18]), now a thin wrapper over the engine-backed
/// telemetry::hhh_summarizer — one sharded summarizer per prefix level with
/// a cached snapshot service, fed through a bundled engine feeder. Detects
/// both a single hot host and a distributed hot subnet (e.g. a scanning
/// botnet inside one /24) that no per-host view would surface.
///
///   build/examples/hhh_monitor

#include <cstdio>

#include "net/ipv4.h"
#include "random/xoshiro.h"
#include "stream/generators.h"
#include "telemetry/hhh_summarizer.h"

int main() {
    using namespace freq;
    using namespace freq::telemetry;

    hhh_summarizer monitor(hhh_config{
        .counters_per_level = 2048,
        .seed = 1,
        .shards = 2,
        .snapshot_every = std::chrono::milliseconds(1),
    });

    auto feed = monitor.make_feeder();

    // Background traffic: CAIDA-like packet mix.
    caida_like_generator background({.num_updates = 1'000'000, .num_flows = 100'000, .seed = 3});
    for (const auto& pkt : background.generate()) {
        feed.push(static_cast<std::uint32_t>(pkt.id), static_cast<double>(pkt.weight));
    }

    // Anomaly 1: one host exfiltrating at high volume.
    const std::uint32_t hot_host = *net::parse_ipv4("203.0.113.77");
    // Anomaly 2: a /24 where every host contributes a little (DDoS-style) —
    // invisible at host granularity, glaring at subnet granularity.
    const std::uint32_t botnet = *net::parse_ipv4("198.51.100.0");
    xoshiro256ss rng(9);
    for (int i = 0; i < 120'000; ++i) {
        feed.push(hot_host, 12'000);
        feed.push(botnet + static_cast<std::uint32_t>(rng.below(256)), 6'000);
    }
    feed.flush();
    monitor.flush();  // applied-barrier before querying

    std::printf("monitored %.3f Gbit across %zu KiB of sketches (%u shards/level)\n\n",
                monitor.total_weight() / 1e9, monitor.memory_bytes() / 1024,
                monitor.cfg().shards);

    const auto rows = monitor.query(/*phi=*/0.05);
    std::printf("hierarchical heavy hitters (phi = 5%%):\n");
    std::printf("%-22s %14s %16s\n", "prefix", "est. bits", "conditioned bits");
    for (const auto& r : rows) {
        std::printf("%-22s %14.0f %16.0f\n", r.to_string().c_str(), r.estimate,
                    r.conditioned);
    }
    std::printf("\nexpected: 203.0.113.77/32 (hot host) and 198.51.100.0/24 (distributed"
                " subnet; its hosts are individually small)\n");
    return 0;
}
