/// Top talkers: the paper's own evaluation scenario (§4.1) as an
/// application — find the source IPs sending the most *bytes* (weighted
/// heavy hitters) over a packet trace, with 1/70th the memory of an exact
/// table. The whole pipeline runs through the runtime façade (src/api/):
/// freq::builder picks k, seed and engine sharding at runtime and hands
/// back a freq::summarizer; ingestion streams through the sharded engine
/// behind it; reports are threshold-mode result_sets carrying the N /
/// error-envelope metadata a service would return to its callers.
///
///   build/top_talkers [trace.fqtr]
///
/// With no argument, a CAIDA-like trace is synthesized, written to a
/// temporary .fqtr file, and read back — demonstrating the trace-file
/// workflow the paper used (preprocess once, re-run many algorithms).

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <thread>

#include "api/builder.h"
#include "api/summarizer.h"
#include "metrics/error.h"
#include "net/ipv4.h"
#include "stream/exact_counter.h"
#include "stream/generators.h"
#include "stream/trace_io.h"

int main(int argc, char** argv) {
    using namespace freq;

    std::string path;
    if (argc > 1) {
        path = argv[1];
    } else {
        path = (std::filesystem::temp_directory_path() / "top_talkers_demo.fqtr").string();
        std::printf("no trace given; synthesizing a CAIDA-like trace at %s\n", path.c_str());
        caida_like_generator gen({.num_updates = 2'000'000, .num_flows = 200'000, .seed = 1});
        write_trace(path, gen.generate());
    }
    const auto trace = read_trace(path);
    std::printf("loaded %zu packets\n", trace.size());

    // k = 4096 counters per shard = 144 KiB of counter storage each
    // (18 bytes x ceil_pow2(4k/3) = 8192 slots, §2.3.3); 4 shards drain
    // the rings in parallel, and the async snapshot service republishes a
    // merged view every 5 ms so live queries never fold on this thread.
    // All of it picked at runtime by the builder.
    auto talker_summary = builder()
                              .max_counters(4096)
                              .seed(7)
                              .sharded(/*shards=*/4, /*producers=*/1)
                              .snapshot_every(std::chrono::milliseconds(5))
                              .build();

    exact_counter<std::uint64_t, std::uint64_t> exact;  // ground truth for the demo
    {
        // Live monitoring under sustained ingest: a feeder thread streams
        // the trace while this thread polls the *cached* published view —
        // each read is a pointer acquire (epoch-tagged, staleness <= the
        // 5 ms publish interval), not an O(k·S) fold.
        auto feeder = talker_summary.make_feeder();
        std::thread ingest([&] {
            for (const auto& pkt : trace) {
                feeder.push(pkt.id, static_cast<double>(pkt.weight));
            }
            feeder.flush();
        });
        std::uint64_t last_epoch = 0;
        for (int poll = 0; poll < 4; ++poll) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            const auto epoch = talker_summary.snapshot_epoch();
            std::printf("live view: epoch=%llu  N=%.3f Gbit  (reads off the hot loop)\n",
                        static_cast<unsigned long long>(epoch),
                        talker_summary.total_weight() / 1e9);
            last_epoch = epoch;
        }
        ingest.join();
        talker_summary.flush();  // barrier + republish: everything pushed is visible
        std::printf("final view: epoch=%llu (%llu at last poll)\n",
                    static_cast<unsigned long long>(talker_summary.snapshot_epoch()),
                    static_cast<unsigned long long>(last_epoch));
    }
    for (const auto& pkt : trace) {
        exact.update(pkt.id, pkt.weight);  // weight = packet size in bits
    }

    // Fold once and query the standalone snapshot (engine-backed point
    // queries would re-snapshot per call).
    const auto sketch = talker_summary.snapshot();
    std::printf("engine: %s\n", talker_summary.to_string().c_str());

    std::printf("\ntotal traffic: %.3f Gbit from %zu sources; snapshot memory: %zu KiB "
                "(exact table would need ~%zu KiB)\n",
                sketch.total_weight() / 1e9, exact.num_distinct(),
                sketch.memory_bytes() / 1024, exact.num_distinct() * 16 / 1024);

    // Threshold-mode query: phi = 0.5% of N under the no-false-negatives
    // guarantee — every true >= 0.5% talker is in the result_set.
    const auto talkers = sketch.frequent_items(error_mode::no_false_negatives,
                                               sketch.total_weight() / 200);
    std::printf("\n%s\n", talkers.to_string().c_str());
    std::printf("top talkers (>= %.2f%% of traffic), estimate vs true:\n",
                100.0 * talkers.phi());
    std::printf("%-18s %14s %14s %9s\n", "source", "est. bits", "true bits", "err %");
    for (std::size_t i = 0; i < std::min<std::size_t>(10, talkers.size()); ++i) {
        const auto& t = talkers[i];
        const double truth = static_cast<double>(exact.frequency(t.id));
        const double err = truth > 0 ? 100.0 * (t.estimate - truth) / truth : 0.0;
        std::printf("%-18s %14.0f %14.0f %8.2f%%\n",
                    net::format_ipv4(static_cast<std::uint32_t>(t.id)).c_str(), t.estimate,
                    truth, err);
    }

    const auto report = evaluate_errors(sketch, exact);
    std::printf("\nmax estimate error over all %zu sources: %.0f bits (certified bound: %.0f)\n",
                report.items_evaluated, report.max_error, sketch.maximum_error());

    // --- time-fading variant -------------------------------------------------
    // The same façade call with .fading(0.5): each tick() halves the weight
    // of everything seen so far, so the report ranks *recent* talkers. Here
    // the trace is replayed in four "minutes" with a decay tick between
    // them — sources active in the last minute dominate sources that went
    // quiet, even when their all-time byte counts are smaller.
    auto recent_summary =
        builder().max_counters(4096).seed(7).fading(0.5).sharded(4).build();
    {
        const std::size_t quarter = trace.size() / 4;
        for (int q = 0; q < 4; ++q) {
            const std::size_t begin = quarter * static_cast<std::size_t>(q);
            const std::size_t end = q == 3 ? trace.size() : begin + quarter;
            recent_summary.update(
                std::span<const update64>(trace.data() + begin, end - begin));
            recent_summary.flush();
            if (q < 3) {
                recent_summary.tick();  // everything so far fades by 1/2
            }
        }
    }
    const auto recent = recent_summary.snapshot();
    std::printf("\nrecent talkers (decay 0.5 per quarter-trace epoch, decayed Gbit):\n");
    for (const auto& r : recent.top_items(5)) {
        std::printf("  %-18s %10.4f\n",
                    net::format_ipv4(static_cast<std::uint32_t>(r.id)).c_str(),
                    r.estimate / 1e9);
    }
    std::printf("decayed total: %.3f Gbit of %.3f Gbit all-time\n",
                recent.total_weight() / 1e9, sketch.total_weight() / 1e9);

    // What the run looked like from the inside: the process-wide telemetry
    // registry saw both engines above (and would feed a /metrics scrape in
    // a service). Empty under a -DFREQ_OBS_OFF build.
    const auto telemetry = summarizer::telemetry();
    std::printf("\ntelemetry: %zu instrument families live; key counters:\n",
                telemetry.family_count());
    for (const char* name :
         {"freq_engine_updates_applied_total", "freq_engine_ring_full_total",
          "freq_snapshot_publishes_total", "freq_snapshot_acquires_total",
          "freq_facade_updates_total"}) {
        if (const auto* fam = telemetry.find(name);
            fam != nullptr && !fam->samples.empty()) {
            std::printf("  %-38s %.0f\n", name, fam->samples[0].value);
        }
    }

    if (argc <= 1) {
        std::filesystem::remove(path);
    }
    return 0;
}
