/// Top talkers: the paper's own evaluation scenario (§4.1) as an
/// application — find the source IPs sending the most *bytes* (weighted
/// heavy hitters) over a packet trace, with 1/70th the memory of an exact
/// table. Ingestion runs through the sharded concurrent engine: the trace
/// is pushed by one producer into per-shard rings, shard workers summarize
/// in parallel, and the report is a merged snapshot — the same code path a
/// live monitoring deployment would use, including a mid-trace snapshot
/// taken while packets are still flowing.
///
///   build/top_talkers [trace.fqtr]
///
/// With no argument, a CAIDA-like trace is synthesized, written to a
/// temporary .fqtr file, and read back — demonstrating the trace-file
/// workflow the paper used (preprocess once, re-run many algorithms).

#include <cstdio>
#include <filesystem>
#include <span>
#include <string>

#include "core/basic_frequent_items.h"
#include "core/frequent_items_sketch.h"
#include "engine/stream_engine.h"
#include "metrics/error.h"
#include "net/ipv4.h"
#include "stream/exact_counter.h"
#include "stream/generators.h"
#include "stream/trace_io.h"

int main(int argc, char** argv) {
    using namespace freq;

    std::string path;
    if (argc > 1) {
        path = argv[1];
    } else {
        path = (std::filesystem::temp_directory_path() / "top_talkers_demo.fqtr").string();
        std::printf("no trace given; synthesizing a CAIDA-like trace at %s\n", path.c_str());
        caida_like_generator gen({.num_updates = 2'000'000, .num_flows = 200'000, .seed = 1});
        write_trace(path, gen.generate());
    }
    const auto trace = read_trace(path);
    std::printf("loaded %zu packets\n", trace.size());

    // k = 4096 counters per shard = 144 KiB of counter storage each
    // (18 bytes x ceil_pow2(4k/3) = 8192 slots, §2.3.3); 4 shards drain
    // the producer's rings in parallel.
    engine_config cfg;
    cfg.num_shards = 4;
    cfg.sketch = sketch_config{.max_counters = 4096, .seed = 7};
    stream_engine<> engine(cfg);

    exact_counter<std::uint64_t, std::uint64_t> exact;  // ground truth for the demo
    {
        auto producer = engine.make_producer();
        const std::size_t half = trace.size() / 2;
        producer.push(std::span<const update64>(trace.data(), half));
        // Live monitoring: query mid-trace without pausing ingestion.
        const auto live = engine.snapshot();
        std::printf("mid-trace snapshot: %s\n", live.to_string().c_str());
        producer.push(std::span<const update64>(trace.data() + half, trace.size() - half));
        producer.flush();
    }
    engine.flush();
    for (const auto& pkt : trace) {
        exact.update(pkt.id, pkt.weight);  // weight = packet size in bits
    }

    const auto sketch = engine.snapshot();
    const auto st = engine.stats();
    std::printf("engine: %u shards applied %llu updates in %llu batches (%llu stalls)\n",
                engine.num_shards(), static_cast<unsigned long long>(st.updates_applied),
                static_cast<unsigned long long>(st.batches_applied),
                static_cast<unsigned long long>(st.ring_full_stalls));

    std::printf("\ntotal traffic: %.3f Gbit from %zu sources; snapshot memory: %zu KiB "
                "(exact table would need ~%zu KiB)\n",
                static_cast<double>(sketch.total_weight()) / 1e9, exact.num_distinct(),
                sketch.memory_bytes() / 1024, exact.num_distinct() * 16 / 1024);

    const auto threshold = sketch.total_weight() / 200;  // phi = 0.5%
    const auto talkers = sketch.frequent_items(error_type::no_false_negatives, threshold);
    std::printf("\ntop talkers (>= 0.5%% of traffic), estimate vs true:\n");
    std::printf("%-18s %14s %14s %9s\n", "source", "est. bits", "true bits", "err %");
    for (std::size_t i = 0; i < std::min<std::size_t>(10, talkers.size()); ++i) {
        const auto& t = talkers[i];
        const double truth = static_cast<double>(exact.frequency(t.id));
        const double err = truth > 0 ? 100.0 * (static_cast<double>(t.estimate) - truth) / truth
                                     : 0.0;
        std::printf("%-18s %14llu %14.0f %8.2f%%\n",
                    net::format_ipv4(static_cast<std::uint32_t>(t.id)).c_str(),
                    static_cast<unsigned long long>(t.estimate), truth, err);
    }

    const auto report = evaluate_errors(sketch, exact);
    std::printf("\nmax estimate error over all %zu sources: %.0f bits (certified bound: %llu)\n",
                report.items_evaluated, report.max_error,
                static_cast<unsigned long long>(sketch.maximum_error()));

    // --- time-fading variant -------------------------------------------------
    // The same engine with exponential_fading shards: each advance_epoch()
    // halves the weight of everything seen so far, so the report ranks
    // *recent* talkers. Here the trace is replayed in four "minutes" with a
    // decay tick between them — sources active in the last minute dominate
    // sources that went quiet, even when their all-time byte counts are
    // smaller.
    using fading_sketch = fading_frequent_items<std::uint64_t, double>;
    engine_config fcfg;
    fcfg.num_shards = 4;
    fcfg.sketch = sketch_config{.max_counters = 4096, .seed = 7, .decay = 0.5};
    stream_engine<std::uint64_t, double, fading_sketch> fading_engine(fcfg);
    {
        auto fp = fading_engine.make_producer();
        const std::size_t quarter = trace.size() / 4;
        for (int q = 0; q < 4; ++q) {
            const std::size_t begin = quarter * static_cast<std::size_t>(q);
            const std::size_t end = q == 3 ? trace.size() : begin + quarter;
            for (std::size_t i = begin; i < end; ++i) {
                fp.push(trace[i].id, static_cast<double>(trace[i].weight));
            }
            fp.flush();
            fading_engine.flush();
            if (q < 3) {
                fading_engine.advance_epoch();  // everything so far fades by 1/2
            }
        }
    }
    const auto fading_snap = fading_engine.snapshot();
    std::printf("\nrecent talkers (decay 0.5 per quarter-trace epoch, decayed Gbit):\n");
    for (const auto& r : fading_snap.top_items(5)) {
        std::printf("  %-18s %10.4f\n",
                    net::format_ipv4(static_cast<std::uint32_t>(r.id)).c_str(),
                    r.estimate / 1e9);
    }
    std::printf("decayed total: %.3f Gbit of %.3f Gbit all-time\n",
                fading_snap.total_weight() / 1e9,
                static_cast<double>(sketch.total_weight()) / 1e9);

    if (argc <= 1) {
        std::filesystem::remove(path);
    }
    return 0;
}
