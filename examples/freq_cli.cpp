/// freq_cli — a command-line front end to the library, covering the full
/// workflow the paper's evaluation used (synthesize/preprocess traces once,
/// then run any algorithm over them and compare) plus the runtime façade: the
/// sketch/merge/query/report commands pick lifetime policy and knobs from
/// flags via freq::builder, and summaries travel as the unified envelope, so
/// one binary serves plain, time-fading and sliding-window deployments.
///
/// Usage:
///   freq_cli gen   <out.fqtr> [--n N] [--flows F] [--alpha A] [--seed S]
///                  [--kind caida|zipf] [--timestamps]
///                  (--timestamps writes FQTR v2 with one monotonic
///                  timestamp per record)
///   freq_cli stats <trace.fqtr>
///   freq_cli stats --prom|--json [trace.fqtr] [--n N]
///                  runtime telemetry: drives every pipeline layer (engine,
///                  shards, spelling, snapshot service, façade) over the
///                  trace — or a synthesized stream when none is given —
///                  then dumps the obs registry in Prometheus text or JSON.
///                  Empty output under a -DFREQ_OBS_OFF build, by design.
///   freq_cli run   <trace.fqtr> [--algo smed|smin|rbmc|mhe|cm] [--k K]
///                  [--phi PHI] [--exact]
///   freq_cli sketch <trace.fqtr> <out.sk> [--k K] [--key u64|text]
///                  [--algo paper|count_min|count_sketch|space_saving]
///                  [--policy plain|fading|window] [--decay R] [--window E]
///                  [--tick-every N] [--shards S] [--snapshot-every MS]
///                  [--stats-every N]   (telemetry dump every N updates)
///                  [--hugepages] [--numa]  (memory placement; degrade to
///                  no-ops with a stderr note when the host can't honor them)
///                  --algo picks the sketch algorithm behind the façade
///                  (default: the paper's); the chosen algorithm travels in
///                  the envelope, so query/report/merge need no flag.
///   freq_cli merge <out.sk> <in1.sk> <in2.sk> [...]
///   freq_cli query <sketch.sk> <id-or-word> [...]
///   freq_cli report <sketch.sk> [--phi PHI] [--mode nfp|nfn]
///                  (prints the envelope's algorithm tag with the report;
///                  count_min sketches answer --mode nfn only)
///   freq_cli hhh   <trace.fqtr> [--phi PHI] [--levels 32,24,16,8] [--k K]
///                  [--shards S] [--policy plain|fading|window] [--decay R]
///                  [--window E] [--snapshot-every MS] [--tick-every T]
///                  hierarchical heavy hitters over the trace ids' low 32
///                  bits (IPv4 source addresses), one sharded engine
///                  summarizer per prefix level; --policy applies to every
///                  level; with a v2 trace, --tick-every T ticks the levels
///                  every T timestamp units during replay.
///   freq_cli replay <trace.fqtr> [--into engine|hhh] [--shards S] [--k K]
///                  [--levels ...] [--policy ...] [--tick-every T]
///                  line-rate replay through the full pipeline; reports
///                  sustained records/sec and p50/p99 chunk tails.
///
/// --key text treats each trace id as the word "w<id>" and runs the text
/// summarizer — combined with --shards S the words ingest through the
/// sharded engine (fingerprints on the ring hot path, per-shard spelling
/// dictionaries), and query/report spell results back out.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "api/builder.h"
#include "api/summarizer.h"
#include "baselines/count_min_sketch.h"
#include "baselines/rbmc.h"
#include "baselines/space_saving_heap.h"
#include "common/mem.h"
#include "core/frequent_items_sketch.h"
#include "metrics/error.h"
#include "net/ipv4.h"
#include "stream/exact_counter.h"
#include "stream/generators.h"
#include "stream/trace_io.h"
#include "telemetry/hhh_summarizer.h"
#include "telemetry/trace_replay.h"

namespace {

using namespace freq;
using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;

struct args {
    std::vector<std::string> positional;
    std::uint64_t n = 2'000'000;
    std::uint64_t flows = 200'000;
    double alpha = 1.1;
    std::uint64_t seed = 1;
    std::string kind = "caida";
    std::string algo = "smed";
    std::uint32_t k = 4096;
    double phi = 0.01;
    bool exact = false;
    std::string policy = "plain";
    double decay = 0.97;
    std::uint32_t window = 4;
    std::uint64_t tick_every = 0;  ///< 0 = never tick
    std::string mode = "nfn";
    std::uint32_t shards = 0;           ///< 0 = standalone (no engine)
    std::uint64_t snapshot_every = 0;   ///< ms between publishes; 0 = off
    std::string key = "u64";            ///< u64 | text
    bool prom = false;                  ///< stats: Prometheus telemetry dump
    bool json = false;                  ///< stats: JSON telemetry dump
    std::uint64_t stats_every = 0;      ///< sketch: telemetry every N updates
    bool timestamps = false;            ///< gen: write FQTR v2 with timestamps
    std::string levels = "32,24,16,8";  ///< hhh/replay: prefix levels
    std::string into = "engine";        ///< replay: sink (engine | hhh)
    bool hugepages = false;  ///< advise THP on sketch/engine buffers
    bool numa = false;       ///< interleave engine shards across NUMA nodes
};

args parse(int argc, char** argv) {
    args a;
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--n") {
            a.n = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--flows") {
            a.flows = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--alpha") {
            a.alpha = std::atof(next().c_str());
        } else if (flag == "--seed") {
            a.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--kind") {
            a.kind = next();
        } else if (flag == "--algo") {
            a.algo = next();
        } else if (flag == "--k") {
            a.k = static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
        } else if (flag == "--phi") {
            a.phi = std::atof(next().c_str());
        } else if (flag == "--exact") {
            a.exact = true;
        } else if (flag == "--policy") {
            a.policy = next();
        } else if (flag == "--decay") {
            a.decay = std::atof(next().c_str());
        } else if (flag == "--window") {
            a.window = static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
        } else if (flag == "--tick-every") {
            a.tick_every = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--mode") {
            a.mode = next();
        } else if (flag == "--shards") {
            a.shards = static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
        } else if (flag == "--snapshot-every") {
            a.snapshot_every = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--key") {
            a.key = next();
        } else if (flag == "--prom") {
            a.prom = true;
        } else if (flag == "--json") {
            a.json = true;
        } else if (flag == "--stats-every") {
            a.stats_every = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--timestamps") {
            a.timestamps = true;
        } else if (flag == "--levels") {
            a.levels = next();
        } else if (flag == "--into") {
            a.into = next();
        } else if (flag == "--hugepages") {
            a.hugepages = true;
        } else if (flag == "--numa") {
            a.numa = true;
        } else {
            a.positional.push_back(flag);
        }
    }
    return a;
}

int cmd_gen(const args& a) {
    if (a.positional.empty()) {
        std::fprintf(stderr, "gen: output path required\n");
        return 2;
    }
    update_stream<std::uint64_t, std::uint64_t> stream;
    if (a.kind == "zipf") {
        zipf_stream_generator gen({.num_updates = a.n,
                                   .num_distinct = a.flows,
                                   .alpha = a.alpha,
                                   .min_weight = 1,
                                   .max_weight = 10'000,
                                   .seed = a.seed});
        stream = gen.generate();
    } else {
        caida_like_generator gen(
            {.num_updates = a.n, .num_flows = a.flows, .alpha = a.alpha, .seed = a.seed});
        stream = gen.generate();
    }
    if (a.timestamps) {
        // Monotonic synthetic clock: one timestamp unit per record, so
        // `replay --tick-every T` produces one epoch tick every T records.
        std::vector<std::uint64_t> ts(stream.size());
        for (std::size_t i = 0; i < ts.size(); ++i) {
            ts[i] = static_cast<std::uint64_t>(i);
        }
        write_trace(a.positional[0], stream, ts);
        std::printf("wrote %zu updates to %s (FQTR v2, timestamps)\n", stream.size(),
                    a.positional[0].c_str());
    } else {
        write_trace(a.positional[0], stream);
        std::printf("wrote %zu updates to %s\n", stream.size(), a.positional[0].c_str());
    }
    return 0;
}

/// Drives every pipeline layer over \p stream so the obs registry holds live
/// samples from all of them: the u64 sharded engine with the async snapshot
/// service (ring, shard drains, sketch maintenance, snapshot publishes,
/// façade verbs), then the text sharded engine (spelling channel + dedupe
/// filter). The small k forces decrement rounds even on modest streams.
void warm_pipeline(const update_stream<std::uint64_t, std::uint64_t>& stream) {
    {
        builder b;
        b.max_counters(512).seed(7).sharded(2).snapshot_every(
            std::chrono::milliseconds(1));
        auto s = b.build();
        const std::size_t chunk = std::max<std::size_t>(1, stream.size() / 4);
        for (std::size_t i = 0; i < stream.size(); i += chunk) {
            const std::size_t run = std::min<std::size_t>(chunk, stream.size() - i);
            s.update(std::span<const update64>(stream.data() + i, run));
            (void)s.total_weight();  // cached-view read -> snapshot acquires
            s.tick();
        }
        (void)s.estimate(stream.empty() ? 0 : stream[0].id);
        (void)s.frequent_items(error_mode::no_false_negatives,
                               0.01 * s.total_weight());
        (void)s.top_items(10);
    }
    {
        builder b;
        b.text_keys().max_counters(512).seed(7).sharded(2);
        auto s = b.build();
        // Few distinct words, many repeats: exercises the recently-sent
        // dedupe filter as well as the spelling channel itself.
        const std::size_t m = std::min<std::size_t>(stream.size(), 100'000);
        std::string word;
        for (std::size_t i = 0; i < m; ++i) {
            word = "w";
            word += std::to_string(stream[i].id % 1024);
            s.update(word, 1.0);
        }
        (void)s.estimate(std::string_view("w1"));
        (void)s.top_items(10);
    }
}

/// `stats --prom|--json`: runtime-introspection dump of the obs registry
/// after warming the full pipeline (from the given trace, or a synthesized
/// Zipf stream when none is supplied).
int cmd_stats_telemetry(const args& a) {
    update_stream<std::uint64_t, std::uint64_t> stream;
    if (!a.positional.empty()) {
        stream = read_trace(a.positional[0]);
    } else {
        zipf_stream_generator gen({.num_updates = a.n,
                                   .num_distinct = std::max<std::uint64_t>(a.n / 10, 16),
                                   .alpha = a.alpha,
                                   .min_weight = 1,
                                   .max_weight = 100,
                                   .seed = a.seed});
        stream = gen.generate();
    }
    warm_pipeline(stream);
    const auto snap = summarizer::telemetry();
    if (a.json) {
        std::printf("%s\n", snap.to_json().c_str());
    } else {
        std::printf("%s", snap.to_prometheus().c_str());
    }
    return 0;
}

int cmd_stats(const args& a) {
    if (a.prom || a.json) {
        return cmd_stats_telemetry(a);
    }
    if (a.positional.empty()) {
        std::fprintf(stderr, "stats: trace path required (or --prom/--json for a "
                             "telemetry dump)\n");
        return 2;
    }
    const auto stream = read_trace(a.positional[0]);
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.consume(stream);
    std::printf("n (updates):        %llu\n",
                static_cast<unsigned long long>(exact.num_updates()));
    std::printf("N (weighted):       %llu\n",
                static_cast<unsigned long long>(exact.total_weight()));
    std::printf("distinct ids:       %zu\n", exact.num_distinct());
    std::printf("mean weight:        %.2f\n",
                static_cast<double>(exact.total_weight()) /
                    static_cast<double>(std::max<std::uint64_t>(1, exact.num_updates())));
    const auto top = exact.top_frequencies(10);
    std::printf("top-10 frequencies:");
    for (const auto f : top) {
        std::printf(" %llu", static_cast<unsigned long long>(f));
    }
    std::printf("\n");
    return 0;
}

int cmd_run(const args& a) {
    if (a.positional.empty()) {
        std::fprintf(stderr, "run: trace path required\n");
        return 2;
    }
    const auto stream = read_trace(a.positional[0]);

    // Uniform driver over the algorithms: collect heavy hitter rows.
    struct hh {
        std::uint64_t id;
        std::uint64_t estimate;
    };
    std::vector<hh> hits;
    double seconds = 0;
    std::size_t bytes = 0;
    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&t0] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    };

    std::uint64_t total_weight = 0;
    for (const auto& u : stream) {
        total_weight += u.weight;
    }
    const auto threshold = static_cast<std::uint64_t>(a.phi * static_cast<double>(total_weight));

    if (a.algo == "smed" || a.algo == "smin") {
        sketch_u64 s(sketch_config{.max_counters = a.k,
                                   .decrement_quantile = a.algo == "smed" ? 0.5 : 0.0,
                                   .seed = a.seed});
        s.consume(stream);
        seconds = elapsed();
        bytes = s.memory_bytes();
        for (const auto& r : s.frequent_items(error_type::no_false_negatives, threshold)) {
            hits.push_back({r.id, r.estimate});
        }
    } else if (a.algo == "rbmc") {
        rbmc<std::uint64_t, std::uint64_t> s(a.k, a.seed);
        s.consume(stream);
        seconds = elapsed();
        bytes = s.memory_bytes();
        s.for_each([&](std::uint64_t id, std::uint64_t c) {
            if (c + s.maximum_error() > threshold) {
                hits.push_back({id, c + s.maximum_error()});
            }
        });
    } else if (a.algo == "mhe") {
        space_saving_heap<std::uint64_t, std::uint64_t> s(a.k, a.seed);
        s.consume(stream);
        seconds = elapsed();
        bytes = s.memory_bytes();
        s.for_each([&](std::uint64_t id, std::uint64_t c) {
            if (c > threshold) {
                hits.push_back({id, c});
            }
        });
    } else if (a.algo == "cm") {
        count_min_sketch<std::uint64_t, std::uint64_t> s(
            {.width = a.k, .depth = 4, .seed = a.seed});
        exact_counter<std::uint64_t, std::uint64_t> candidates;  // CM needs ids externally
        for (const auto& u : stream) {
            s.update(u.id, u.weight);
            candidates.update(u.id, 0);  // remember the id universe only
        }
        seconds = elapsed();
        bytes = s.memory_bytes();
        for (const auto& [id, unused] : candidates.counts()) {
            (void)unused;
            if (s.estimate(id) > threshold) {
                hits.push_back({id, s.estimate(id)});
            }
        }
    } else {
        std::fprintf(stderr, "unknown --algo %s\n", a.algo.c_str());
        return 2;
    }

    std::sort(hits.begin(), hits.end(), [](const hh& x, const hh& y) {
        return x.estimate > y.estimate;
    });
    std::printf("%s k=%u: %.3fs (%.1f M updates/s), %zu KiB, %zu heavy hitters over %.2f%%\n",
                a.algo.c_str(), a.k, seconds,
                static_cast<double>(stream.size()) / seconds / 1e6, bytes / 1024,
                hits.size(), a.phi * 100);
    for (std::size_t i = 0; i < std::min<std::size_t>(10, hits.size()); ++i) {
        std::printf("  %20llu  %llu\n", static_cast<unsigned long long>(hits[i].id),
                    static_cast<unsigned long long>(hits[i].estimate));
    }

    if (a.exact) {
        exact_counter<std::uint64_t, std::uint64_t> exact;
        exact.consume(stream);
        std::printf("exact heavy hitters: %zu\n", exact.heavy_hitters(threshold).size());
    }
    return 0;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot open " + path);
    }
    return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw std::runtime_error("cannot open " + path);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/// The façade entry point: lifetime policy and knobs become a summarizer at
/// runtime — the same dispatch a config-driven service would perform.
summarizer build_from_flags(const args& a) {
    builder b;
    b.max_counters(a.k).seed(a.seed);
    // "smed" (the run-verb default) is the paper sketch too, so a bare
    // `sketch` invocation keeps building the paper summarizer.
    if (a.algo == "count_min") {
        b.algorithm(algo::count_min);
    } else if (a.algo == "count_sketch") {
        b.algorithm(algo::count_sketch);
    } else if (a.algo == "space_saving") {
        b.algorithm(algo::space_saving);
    } else if (a.algo != "paper" && a.algo != "smed") {
        throw std::invalid_argument(
            "unknown --algo " + a.algo +
            " (expected paper|count_min|count_sketch|space_saving)");
    }
    if (a.key == "text") {
        b.text_keys();
    } else if (a.key != "u64") {
        throw std::invalid_argument("unknown --key " + a.key + " (expected u64|text)");
    }
    if (a.policy == "fading") {
        b.fading(a.decay);
    } else if (a.policy == "window") {
        b.sliding_window(a.window);
    } else if (a.policy != "plain") {
        throw std::invalid_argument("unknown --policy " + a.policy +
                                    " (expected plain|fading|window)");
    }
    if (a.shards > 0) {
        b.sharded(a.shards);
    }
    if (a.snapshot_every > 0) {
        b.snapshot_every(std::chrono::milliseconds(a.snapshot_every));
    }
    // Memory placement is advisory: report what the host can actually honor
    // so a degraded run (no THP, single node, FREQ_NUMA=OFF) is visible
    // instead of silently identical.
    if (a.hugepages) {
        b.hugepages();
        const mem::topology& topo = mem::host_topology();
        if (!mem::numa_compiled) {
            std::fprintf(stderr,
                         "--hugepages: built without NUMA/hugepage support "
                         "(FREQ_NUMA=OFF or non-Linux); running with ordinary pages\n");
        } else if (!topo.thp_available && topo.explicit_hugepage_bytes == 0) {
            std::fprintf(stderr,
                         "--hugepages: host has no transparent-huge-page support and "
                         "an empty hugepage pool; running with ordinary pages\n");
        }
    }
    if (a.numa) {
        b.numa(numa_policy::interleave);
        const mem::topology& topo = mem::host_topology();
        if (a.shards == 0) {
            std::fprintf(stderr,
                         "--numa: standalone summarizer (no --shards); nothing to "
                         "interleave\n");
        } else if (!topo.multi_node()) {
            std::fprintf(stderr,
                         "--numa: single NUMA node detected; shard placement "
                         "unchanged\n");
        }
    }
    return b.build();
}

error_mode mode_from_flags(const args& a) {
    if (a.mode == "nfp") {
        return error_mode::no_false_positives;
    }
    if (a.mode == "nfn") {
        return error_mode::no_false_negatives;
    }
    throw std::invalid_argument("unknown --mode " + a.mode + " (expected nfp|nfn)");
}

int cmd_sketch(const args& a) {
    if (a.positional.size() < 2) {
        std::fprintf(stderr, "sketch: trace and output paths required\n");
        return 2;
    }
    const auto stream = read_trace(a.positional[0]);
    auto s = build_from_flags(a);
    // Replay in chunks: a policy tick every --tick-every updates (so fading /
    // windowed summaries age mid-trace the way a live deployment would), and
    // with --snapshot-every a live read between chunks served from the
    // cached published view instead of a per-query fold.
    std::size_t chunk = a.tick_every > 0 ? a.tick_every : stream.size();
    if (s.snapshot_service_enabled() && a.tick_every == 0) {
        chunk = std::max<std::size_t>(1, stream.size() / 8);
    }
    const bool text = a.key == "text";
    if (a.stats_every > 0) {
        chunk = std::min<std::size_t>(chunk, a.stats_every);
    }
    std::uint64_t next_stats = a.stats_every;
    std::size_t i = 0;
    while (i < stream.size()) {
        const std::size_t run = std::min<std::size_t>(chunk, stream.size() - i);
        if (text) {
            // Trace ids become words: the text path fingerprints each word
            // back to 64 bits (sharded: in the engine producers).
            std::string word;
            for (std::size_t j = i; j < i + run; ++j) {
                word = "w";
                word += std::to_string(stream[j].id);
                s.update(word, static_cast<double>(stream[j].weight));
            }
        } else {
            s.update(std::span<const update64>(stream.data() + i, run));
        }
        i += run;
        if (s.snapshot_service_enabled()) {
            std::printf("live @ %zu/%zu: epoch=%llu N=%.6g (cached view)\n", i,
                        stream.size(),
                        static_cast<unsigned long long>(s.snapshot_epoch()),
                        s.total_weight());
        }
        if (a.stats_every > 0 && i >= next_stats) {
            std::printf("--- telemetry @ %zu/%zu updates ---\n%s", i, stream.size(),
                        summarizer::telemetry().to_prometheus().c_str());
            while (next_stats <= i) {
                next_stats += a.stats_every;
            }
        }
        if (a.tick_every > 0 && i < stream.size()) {
            s.tick();
        }
    }
    write_file(a.positional[1], s.save().bytes());
    std::printf("sketched %zu updates -> %s (%s, %s)\n", stream.size(),
                a.positional[1].c_str(), s.descriptor().to_string().c_str(),
                s.to_string().c_str());
    return 0;
}

int cmd_merge(const args& a) {
    if (a.positional.size() < 3) {
        std::fprintf(stderr, "merge: output and >= 2 input sketches required\n");
        return 2;
    }
    auto acc = restore_summary(read_file(a.positional[1]));
    for (std::size_t i = 2; i < a.positional.size(); ++i) {
        const auto next = restore_summary(read_file(a.positional[i]));
        acc.merge(next);
    }
    write_file(a.positional[0], acc.save().bytes());
    std::printf("merged %zu sketches -> %s (%s)\n", a.positional.size() - 1,
                a.positional[0].c_str(), acc.to_string().c_str());
    return 0;
}

int cmd_query(const args& a) {
    if (a.positional.size() < 2) {
        std::fprintf(stderr, "query: sketch path and >= 1 id required\n");
        return 2;
    }
    const auto s = restore_summary(read_file(a.positional[0]));
    std::printf("%s\n", s.descriptor().to_string().c_str());
    const bool text = s.descriptor().keys == key_kind::text;
    for (std::size_t i = 1; i < a.positional.size(); ++i) {
        if (text) {
            const std::string& word = a.positional[i];
            std::printf("%s: estimate=%.6g  bounds=[%.6g, %.6g]\n", word.c_str(),
                        s.estimate(word), s.lower_bound(word), s.upper_bound(word));
        } else {
            const std::uint64_t id = std::strtoull(a.positional[i].c_str(), nullptr, 10);
            std::printf("%llu: estimate=%.6g  bounds=[%.6g, %.6g]\n",
                        static_cast<unsigned long long>(id), s.estimate(id),
                        s.lower_bound(id), s.upper_bound(id));
        }
    }
    return 0;
}

int cmd_report(const args& a) {
    if (a.positional.empty()) {
        std::fprintf(stderr, "report: sketch path required\n");
        return 2;
    }
    const auto s = restore_summary(read_file(a.positional[0]));
    const error_mode mode = mode_from_flags(a);
    const auto rs = s.frequent_items(mode, a.phi * s.total_weight());
    std::printf("algorithm: %s\n", to_string(s.descriptor().algorithm));
    std::printf("%s\n%s\n", s.descriptor().to_string().c_str(), rs.to_string().c_str());
    std::printf("guarantee: %s over threshold %.6g (phi=%.4g%%, N=%.6g, max_error=%.6g)\n",
                rs.mode() == error_mode::no_false_positives
                    ? "every row truly exceeds the threshold"
                    : "no item above the threshold is missing",
                rs.threshold(), 100.0 * rs.phi(), rs.total_weight(), rs.maximum_error());
    std::printf("%20s %14s %14s %14s\n", "item", "estimate", "lower", "upper");
    for (std::size_t i = 0; i < std::min<std::size_t>(20, rs.size()); ++i) {
        const auto& row = rs[i];
        std::printf("%20s %14.6g %14.6g %14.6g\n", row.item.c_str(), row.estimate,
                    row.lower_bound, row.upper_bound);
    }
    if (rs.size() > 20) {
        std::printf("  ... %zu more rows\n", rs.size() - 20);
    }
    return 0;
}

std::vector<unsigned> parse_levels(const std::string& spec) {
    std::vector<unsigned> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok =
            spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!tok.empty()) {
            out.push_back(static_cast<unsigned>(std::strtoul(tok.c_str(), nullptr, 10)));
        }
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    if (out.empty()) {
        throw std::invalid_argument("--levels: no prefix lengths in '" + spec + "'");
    }
    return out;
}

telemetry::hhh_summarizer build_hhh_from_flags(const args& a) {
    lifetime_kind lifetime = lifetime_kind::plain;
    if (a.policy == "fading") {
        lifetime = lifetime_kind::fading;
    } else if (a.policy == "window") {
        lifetime = lifetime_kind::windowed;
    } else if (a.policy != "plain") {
        throw std::invalid_argument("unknown --policy " + a.policy +
                                    " (expected plain|fading|window)");
    }
    telemetry::hhh_config cfg;
    for (const unsigned len : parse_levels(a.levels)) {
        cfg.levels.push_back({.prefix_len = len,
                              .lifetime = lifetime,
                              .decay = a.decay,
                              .window_epochs = a.window});
    }
    cfg.counters_per_level = a.k;
    cfg.seed = a.seed;
    cfg.shards = std::max<std::uint32_t>(1, a.shards);
    if (a.snapshot_every > 0) {
        cfg.snapshot_every = std::chrono::milliseconds(a.snapshot_every);
    }
    return telemetry::hhh_summarizer(std::move(cfg));
}

void print_replay_report(const telemetry::replay_report& rep) {
    std::printf("replayed %llu records in %.3fs: %.2f M records/s, %llu epoch ticks\n",
                static_cast<unsigned long long>(rep.records), rep.seconds,
                rep.records_per_sec / 1e6, static_cast<unsigned long long>(rep.ticks));
    std::printf("chunk tails: p50=%.3fms p99=%.3fms\n", rep.chunk_p50_s * 1e3,
                rep.chunk_p99_s * 1e3);
}

int cmd_hhh(const args& a) {
    if (a.positional.empty()) {
        std::fprintf(stderr, "hhh: trace path required\n");
        return 2;
    }
    const auto trace = read_timed_trace(a.positional[0]);
    auto monitor = build_hhh_from_flags(a);
    const auto rep = telemetry::replay_into(
        monitor, trace, {.tick_interval = a.tick_every});
    print_replay_report(rep);
    std::printf("%zu levels x %u shards, %zu KiB of sketches, N=%.6g\n",
                monitor.num_levels(), monitor.cfg().shards,
                monitor.memory_bytes() / 1024, monitor.total_weight());

    const auto rows = monitor.query(a.phi);
    std::printf("hierarchical heavy hitters (phi=%.4g%%):\n", 100.0 * a.phi);
    std::printf("%-22s %14s %16s\n", "prefix", "estimate", "conditioned");
    for (const auto& r : rows) {
        std::printf("%-22s %14.6g %16.6g\n", r.to_string().c_str(), r.estimate,
                    r.conditioned);
    }
    return 0;
}

int cmd_replay(const args& a) {
    if (a.positional.empty()) {
        std::fprintf(stderr, "replay: trace path required\n");
        return 2;
    }
    const auto trace = read_timed_trace(a.positional[0]);
    const telemetry::replay_options opt{.tick_interval = a.tick_every};
    if (a.into == "hhh") {
        auto monitor = build_hhh_from_flags(a);
        const auto rep = telemetry::replay_into(monitor, trace, opt);
        print_replay_report(rep);
        std::printf("sink: hhh %zu levels x %u shards, N=%.6g\n", monitor.num_levels(),
                    monitor.cfg().shards, monitor.total_weight());
        return 0;
    }
    if (a.into != "engine") {
        std::fprintf(stderr, "replay: unknown --into %s (expected engine|hhh)\n",
                     a.into.c_str());
        return 2;
    }
    args sink_args = a;
    if (sink_args.shards == 0) {
        sink_args.shards = 2;  // replay exercises the sharded pipeline by default
    }
    auto s = build_from_flags(sink_args);
    const auto rep = telemetry::replay_into(s, trace, opt);
    print_replay_report(rep);
    std::printf("sink: engine %s, N=%.6g\n", s.descriptor().to_string().c_str(),
                s.total_weight());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: freq_cli <gen|stats|run|sketch|merge|query|report|hhh|replay>"
                     " ... (see file header for flags)\n");
        return 2;
    }
    const std::string cmd = argv[1];
    const args a = parse(argc, argv);
    try {
        if (cmd == "gen") return cmd_gen(a);
        if (cmd == "stats") return cmd_stats(a);
        if (cmd == "run") return cmd_run(a);
        if (cmd == "sketch") return cmd_sketch(a);
        if (cmd == "merge") return cmd_merge(a);
        if (cmd == "query") return cmd_query(a);
        if (cmd == "report") return cmd_report(a);
        if (cmd == "hhh") return cmd_hhh(a);
        if (cmd == "replay") return cmd_replay(a);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
    return 2;
}
