/// Quickstart: the 60-second tour of the public API.
///
///   build/examples/quickstart
///
/// Creates a sketch, feeds it a skewed weighted stream, queries estimates
/// and bounds, extracts heavy hitters both ways, and round-trips the sketch
/// through its serialized form.

#include <cstdio>

#include "core/frequent_items_sketch.h"
#include "stream/generators.h"

int main() {
    using namespace freq;

    // A sketch with k = 256 counters: ~24 * 256 bytes of counter storage,
    // error guarantee ~N / (0.33 * 256) (Theorem 4 with the §2.3.2 calibration).
    frequent_items_sketch<std::uint64_t, std::uint64_t> sketch(256);

    // Feed 1M weighted updates: Zipf-popular items, weights in [1, 100].
    zipf_stream_generator gen({.num_updates = 1'000'000,
                               .num_distinct = 50'000,
                               .alpha = 1.1,
                               .min_weight = 1,
                               .max_weight = 100,
                               .seed = 42});
    const auto stream = gen.generate();
    for (const auto& u : stream) {
        sketch.update(u.id, u.weight);
    }
    std::printf("%s\n", sketch.to_string().c_str());

    // Point queries: estimate plus certified bounds.
    const auto hot = stream.front().id;
    std::printf("item %llu: estimate=%llu in [%llu, %llu], max_error=%llu\n",
                static_cast<unsigned long long>(hot),
                static_cast<unsigned long long>(sketch.estimate(hot)),
                static_cast<unsigned long long>(sketch.lower_bound(hot)),
                static_cast<unsigned long long>(sketch.upper_bound(hot)),
                static_cast<unsigned long long>(sketch.maximum_error()));

    // Heavy hitters at phi = 1%: the no-false-negatives view returns every
    // true phi-heavy item (plus possibly a few near-threshold ones); the
    // no-false-positives view returns only certainly-heavy items.
    const auto threshold = sketch.total_weight() / 100;
    const auto generous = sketch.frequent_items(error_type::no_false_negatives, threshold);
    const auto strict = sketch.frequent_items(error_type::no_false_positives, threshold);
    std::printf("heavy hitters over %llu: %zu certain, %zu candidates\n",
                static_cast<unsigned long long>(threshold), strict.size(), generous.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(5, strict.size()); ++i) {
        std::printf("  #%zu  id=%llu  estimate=%llu  [%llu, %llu]\n", i + 1,
                    static_cast<unsigned long long>(strict[i].id),
                    static_cast<unsigned long long>(strict[i].estimate),
                    static_cast<unsigned long long>(strict[i].lower_bound),
                    static_cast<unsigned long long>(strict[i].upper_bound));
    }

    // Serialize / restore: the image is a portable little-endian byte string.
    const auto bytes = sketch.serialize();
    const auto restored =
        frequent_items_sketch<std::uint64_t, std::uint64_t>::deserialize(bytes);
    std::printf("serialized %zu bytes; restored sketch agrees: %s\n", bytes.size(),
                restored.estimate(hot) == sketch.estimate(hot) ? "yes" : "NO");
    return 0;
}
