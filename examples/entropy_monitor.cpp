/// Entropy monitoring: the anomaly-detection application of §1.2 ([5, 10,
/// 22]). The empirical entropy of the source-IP distribution drops sharply
/// when traffic concentrates (a hot talker / worm victim) and rises when it
/// disperses (scanning). The estimator uses the frequent-items sketch as a
/// black-box subroutine and reports certified entropy intervals per window.
///
///   build/examples/entropy_monitor

#include <cstdio>

#include "entropy/entropy_estimator.h"
#include "random/xoshiro.h"
#include "random/zipf.h"

int main() {
    using namespace freq;

    constexpr int windows = 6;
    constexpr int packets_per_window = 200'000;
    xoshiro256ss rng(11);
    zipf_distribution normal_mix(50'000, 1.1);

    std::printf("%-9s %-28s %10s %10s %10s\n", "window", "traffic profile", "H_lower",
                "H_point", "H_upper");
    for (int w = 0; w < windows; ++w) {
        entropy_estimator est(1024, /*seed=*/static_cast<std::uint64_t>(w));
        const bool attack_window = w == 3;  // one window of concentrated traffic
        for (int i = 0; i < packets_per_window; ++i) {
            if (attack_window && rng.below(100) < 80) {
                est.update(0xbadc0ffee0ddf00dULL, 1);  // one source dominates
            } else {
                est.update(normal_mix(rng), 1);
            }
        }
        const auto h = est.estimate();
        std::printf("%-9d %-28s %10.3f %10.3f %10.3f%s\n", w,
                    attack_window ? "CONCENTRATED (anomaly)" : "normal mix", h.lower, h.point,
                    h.upper, attack_window ? "   <-- entropy collapse" : "");
    }
    std::printf("\nA sustained drop of several bits in the certified interval is the"
                " classic worm/hot-talker signature (Wagner & Plattner).\n");
    return 0;
}
