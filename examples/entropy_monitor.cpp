/// Entropy monitoring: the anomaly-detection application of §1.2 ([5, 10,
/// 22]), now a thin wrapper over the engine-backed
/// telemetry::entropy_monitor. The empirical entropy of the source-IP
/// distribution drops sharply when traffic concentrates (a hot talker /
/// worm victim) and rises when it disperses (scanning). Each window's
/// certified [lower, upper] interval is computed from one published
/// snapshot view, and an EWMA-smoothed baseline turns the point estimate
/// into collapse/spike alarms — the DDoS signal.
///
///   build/examples/entropy_monitor

#include <cstdio>

#include "random/xoshiro.h"
#include "random/zipf.h"
#include "telemetry/entropy_monitor.h"

int main() {
    using namespace freq;
    using namespace freq::telemetry;

    constexpr int windows = 6;
    constexpr int packets_per_window = 200'000;
    xoshiro256ss rng(11);
    zipf_distribution normal_mix(50'000, 1.1);

    std::printf("%-9s %-28s %10s %10s %10s   %s\n", "window", "traffic profile",
                "H_lower", "H_point", "H_upper", "alarm");
    for (int w = 0; w < windows; ++w) {
        entropy_monitor mon(entropy_monitor_config{
            .max_counters = 1024,
            .seed = static_cast<std::uint64_t>(w),
            .shards = 2,
            .snapshot_every = std::chrono::milliseconds(1),
            .warmup_samples = 0,  // windows share no state; alarm per window
        });
        const bool attack_window = w == 3;  // one window of concentrated traffic
        auto feed = mon.make_feeder();
        for (int i = 0; i < packets_per_window; ++i) {
            if (attack_window && rng.below(100) < 80) {
                feed.push(0xbadc0ffee0ddf00dULL, 1);  // one source dominates
            } else {
                feed.push(normal_mix(rng), 1);
            }
        }
        feed.flush();
        mon.flush();
        const auto h = mon.estimate();
        std::printf("%-9d %-28s %10.3f %10.3f %10.3f   %s%s\n", w,
                    attack_window ? "CONCENTRATED (anomaly)" : "normal mix", h.lower,
                    h.point, h.upper, attack_window ? "collapse expected" : "-",
                    attack_window ? "   <-- entropy collapse" : "");
    }

    // The alarm path end to end: one long-lived monitor with an
    // exponentially-fading lifetime (old windows decay away) and per-window
    // observe() calls against its EWMA baseline.
    std::printf("\nEWMA shift detector over one continuous fading monitor:\n");
    entropy_monitor mon(entropy_monitor_config{
        .max_counters = 1024,
        .seed = 42,
        .shards = 2,
        .lifetime = lifetime_kind::fading,
        .decay = 0.5,  // one tick per window: previous windows fade fast
        .collapse_threshold_bits = 2.0,
        .spike_threshold_bits = 2.0,
        .warmup_samples = 2,
    });
    auto feed = mon.make_feeder();
    for (int w = 0; w < windows; ++w) {
        const bool attack_window = w == 3;
        for (int i = 0; i < packets_per_window; ++i) {
            if (attack_window && rng.below(100) < 80) {
                feed.push(0xbadc0ffee0ddf00dULL, 1);
            } else {
                feed.push(normal_mix(rng), 1);
            }
        }
        feed.flush();
        mon.flush();
        const auto obs = mon.observe();
        std::printf("  window %d: point %.3f vs baseline %.3f -> %s\n", w,
                    obs.interval.point, obs.baseline, to_string(obs.alarm));
        mon.tick();  // window boundary: decay the previous windows
    }
    std::printf("\nA sustained drop of several bits in the certified interval is the"
                " classic worm/hot-talker signature (Wagner & Plattner).\n");
    return 0;
}
