/// Distributed aggregation: the §3 motivating scenario on the sharded
/// ingestion engine. "Machines" are concurrent producer threads, each
/// pushing its own partition into the engine's per-shard SPSC rings; shard
/// workers summarize in parallel, and snapshot() folds the shard summaries
/// with the Algorithm 5 merge into one summary of the whole dataset — while
/// ingestion is still running, without ever blocking the producers.
///
/// The final snapshot is also shipped through the serialized wire format,
/// demonstrating that engine snapshots are ordinary sketches (they merge,
/// serialize, and ship exactly like the §3 per-machine summaries).
///
///   build/distributed_merge [num_producers] [num_shards]

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/frequent_items_sketch.h"
#include "engine/stream_engine.h"
#include "stream/exact_counter.h"
#include "stream/generators.h"

int main(int argc, char** argv) {
    using namespace freq;
    using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;

    const int producers = argc > 1 ? std::atoi(argv[1]) : 8;
    const int shards = argc > 2 ? std::atoi(argv[2]) : 4;
    constexpr std::uint32_t k = 2048;
    constexpr std::uint64_t updates_per_producer = 500'000;

    engine_config cfg;
    cfg.num_shards = static_cast<std::uint32_t>(shards);
    cfg.num_producers = static_cast<std::uint32_t>(producers);
    cfg.sketch = sketch_config{.max_counters = k, .seed = 42};
    stream_engine<> engine(cfg);

    // Each "machine" generates and pushes its own partition concurrently.
    // The exact counter is an omniscient observer for the demo only.
    std::vector<exact_counter<std::uint64_t, std::uint64_t>> observers(
        static_cast<std::size_t>(producers));
    {
        std::vector<stream_engine<>::producer> handles;
        handles.reserve(static_cast<std::size_t>(producers));
        for (int p = 0; p < producers; ++p) {
            handles.push_back(engine.make_producer());
        }
        std::vector<std::thread> threads;
        for (int p = 0; p < producers; ++p) {
            threads.emplace_back([&, p] {
                zipf_stream_generator gen({.num_updates = updates_per_producer,
                                           .num_distinct = 100'000,
                                           .alpha = 1.05,
                                           .min_weight = 1,
                                           .max_weight = 10'000,
                                           .seed = 9000 + static_cast<std::uint64_t>(p)});
                for (std::uint64_t i = 0; i < updates_per_producer; ++i) {
                    const auto u = gen.next();
                    handles[static_cast<std::size_t>(p)].push(u.id, u.weight);
                    observers[static_cast<std::size_t>(p)].update(u.id, u.weight);
                }
                handles[static_cast<std::size_t>(p)].flush();
            });
        }

        // A live snapshot while the producers are mid-stream: readers never
        // block writers — snapshot() clones each shard's O(k) summary and
        // merges the clones.
        const auto live = engine.snapshot();
        std::printf("live snapshot while ingesting: %s\n", live.to_string().c_str());

        for (auto& t : threads) {
            t.join();
        }
    }
    engine.flush();  // barrier: every pushed update is applied

    exact_counter<std::uint64_t, std::uint64_t> exact;
    for (const auto& obs : observers) {
        for (const auto& [id, f] : obs.counts()) {
            exact.update(id, f);
        }
    }

    const auto st = engine.stats();
    std::printf("%d producers x %llu updates through %d shards: "
                "%llu applied in %llu batches, %llu full-ring stalls\n",
                producers, static_cast<unsigned long long>(updates_per_producer), shards,
                static_cast<unsigned long long>(st.updates_applied),
                static_cast<unsigned long long>(st.batches_applied),
                static_cast<unsigned long long>(st.ring_full_stalls));

    // The stream-complete snapshot: one summary of the union of all
    // partitions (Theorem 5 — valid for any aggregation shape).
    const auto global = engine.snapshot();
    std::printf("merged snapshot: %s\n", global.to_string().c_str());
    std::printf("N check: merged=%llu exact=%llu\n",
                static_cast<unsigned long long>(global.total_weight()),
                static_cast<unsigned long long>(exact.total_weight()));

    // Snapshots are ordinary sketches: ship one over the wire and reload.
    const auto wire = global.serialize();
    const auto reloaded = sketch_u64::deserialize(wire);
    std::printf("wire roundtrip: %zu bytes, N=%llu\n", wire.size(),
                static_cast<unsigned long long>(reloaded.total_weight()));

    // Validate: bounds bracket the truth for the global top items.
    const auto rows = reloaded.frequent_items(error_type::no_false_negatives);
    std::printf("\nglobal heavy hitters (top 8 of %zu):\n", rows.size());
    std::printf("%20s %14s %14s %14s  ok\n", "id", "lower", "true", "upper");
    int shown = 0;
    for (const auto& r : rows) {
        if (shown++ >= 8) {
            break;
        }
        const auto truth = exact.frequency(r.id);
        std::printf("%20llu %14llu %14llu %14llu  %s\n",
                    static_cast<unsigned long long>(r.id),
                    static_cast<unsigned long long>(r.lower_bound),
                    static_cast<unsigned long long>(truth),
                    static_cast<unsigned long long>(r.upper_bound),
                    r.lower_bound <= truth && truth <= r.upper_bound ? "yes" : "NO");
    }
    return 0;
}
