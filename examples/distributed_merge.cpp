/// Distributed aggregation: the §3 motivating scenario. A large stream is
/// partitioned across "machines" (here: shards), each machine summarizes its
/// partition independently, the summaries travel as serialized byte strings,
/// and an aggregator merges them — over an arbitrary tree — into one summary
/// of the whole dataset. No machine ever sees more than its own shard.
///
///   build/examples/distributed_merge [num_shards]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/frequent_items_sketch.h"
#include "stream/exact_counter.h"
#include "stream/generators.h"

int main(int argc, char** argv) {
    using namespace freq;
    using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;

    const int shards = argc > 1 ? std::atoi(argv[1]) : 16;
    constexpr std::uint32_t k = 2048;

    // "Machines": each consumes its own partition and serializes its summary.
    std::vector<std::vector<std::uint8_t>> wire_images;
    exact_counter<std::uint64_t, std::uint64_t> exact;  // omniscient observer, demo only
    std::size_t wire_bytes = 0;
    for (int m = 0; m < shards; ++m) {
        sketch_u64 local(sketch_config{.max_counters = k, .seed = static_cast<std::uint64_t>(m)});
        zipf_stream_generator gen({.num_updates = 500'000,
                                   .num_distinct = 100'000,
                                   .alpha = 1.05,
                                   .min_weight = 1,
                                   .max_weight = 10'000,
                                   .seed = 9000 + static_cast<std::uint64_t>(m)});
        for (const auto& u : gen.generate()) {
            local.update(u.id, u.weight);
            exact.update(u.id, u.weight);
        }
        wire_images.push_back(local.serialize());
        wire_bytes += wire_images.back().size();
    }
    std::printf("%d machines summarized %llu total updates; shipped %zu KiB of sketches\n",
                shards, static_cast<unsigned long long>(exact.num_updates()),
                wire_bytes / 1024);

    // Aggregator: deserialize and merge pairwise in a balanced tree
    // (Theorem 5: the bound holds for any aggregation tree).
    std::vector<sketch_u64> level;
    level.reserve(wire_images.size());
    for (const auto& img : wire_images) {
        level.push_back(sketch_u64::deserialize(img));
    }
    while (level.size() > 1) {
        std::vector<sketch_u64> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            level[i].merge(level[i + 1]);
            next.push_back(std::move(level[i]));
        }
        if (level.size() % 2 == 1) {
            next.push_back(std::move(level.back()));
        }
        level = std::move(next);
    }
    const sketch_u64& global = level.front();

    std::printf("merged summary: %s\n", global.to_string().c_str());
    std::printf("N check: merged=%llu exact=%llu\n",
                static_cast<unsigned long long>(global.total_weight()),
                static_cast<unsigned long long>(exact.total_weight()));

    // Validate: bounds bracket the truth for the global top items.
    const auto rows = global.frequent_items(error_type::no_false_negatives);
    std::printf("\nglobal heavy hitters (top 8 of %zu):\n", rows.size());
    std::printf("%20s %14s %14s %14s  ok\n", "id", "lower", "true", "upper");
    int shown = 0;
    for (const auto& r : rows) {
        if (shown++ >= 8) {
            break;
        }
        const auto truth = exact.frequency(r.id);
        std::printf("%20llu %14llu %14llu %14llu  %s\n",
                    static_cast<unsigned long long>(r.id),
                    static_cast<unsigned long long>(r.lower_bound),
                    static_cast<unsigned long long>(truth),
                    static_cast<unsigned long long>(r.upper_bound),
                    r.lower_bound <= truth && truth <= r.upper_bound ? "yes" : "NO");
    }
    return 0;
}
