/// Distributed aggregation: the §3 motivating scenario on the runtime
/// façade. Two "datacenters" each run a sharded summarizer; "machines" are
/// concurrent feeder threads pushing their partitions into the engine's
/// per-shard SPSC rings. Each datacenter ships its summary as the unified
/// envelope (summarizer::save()); the aggregator restores both from bytes
/// alone — restore_summary() picks the instantiation from the envelope's
/// descriptor, no compile-time knowledge of the senders — merges them with
/// Algorithm 5, and answers threshold-mode queries under both §1.2
/// guarantees against exact ground truth.
///
///   build/distributed_merge [producers_per_dc] [num_shards]

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/builder.h"
#include "stream/exact_counter.h"
#include "stream/generators.h"

int main(int argc, char** argv) {
    using namespace freq;

    const int producers = argc > 1 ? std::atoi(argv[1]) : 4;
    const int shards = argc > 2 ? std::atoi(argv[2]) : 2;
    constexpr std::uint32_t k = 2048;
    constexpr std::uint64_t updates_per_producer = 500'000;
    constexpr int datacenters = 2;

    // The exact counter is an omniscient observer for the demo only.
    std::vector<exact_counter<std::uint64_t, std::uint64_t>> observers(
        static_cast<std::size_t>(datacenters * producers));

    std::vector<summary_bytes> wire;  // one envelope per datacenter
    for (int dc = 0; dc < datacenters; ++dc) {
        // §3.2 recommends distinct hash seeds across merged summaries; the
        // builder makes that a per-datacenter config knob.
        auto summary = builder()
                           .max_counters(k)
                           .seed(42 + static_cast<std::uint64_t>(dc))
                           .sharded(static_cast<std::uint32_t>(shards),
                                    static_cast<std::uint32_t>(producers))
                           .build();

        std::vector<std::thread> threads;
        for (int p = 0; p < producers; ++p) {
            threads.emplace_back([&, dc, p] {
                auto feeder = summary.make_feeder();
                const auto machine = static_cast<std::size_t>(dc * producers + p);
                zipf_stream_generator gen({.num_updates = updates_per_producer,
                                           .num_distinct = 100'000,
                                           .alpha = 1.05,
                                           .min_weight = 1,
                                           .max_weight = 10'000,
                                           .seed = 9000 + machine});
                for (std::uint64_t i = 0; i < updates_per_producer; ++i) {
                    const auto u = gen.next();
                    feeder.push(u.id, static_cast<double>(u.weight));
                    observers[machine].update(u.id, u.weight);
                }
                feeder.flush();
            });
        }

        // A live snapshot while the feeders are mid-stream: readers never
        // block writers — the engine clones each shard's O(k) summary and
        // folds the clones.
        const auto live = summary.snapshot();
        std::printf("dc%d live snapshot while ingesting: %s\n", dc,
                    live.to_string().c_str());

        for (auto& t : threads) {
            t.join();
        }
        summary.flush();  // barrier: every pushed update is applied
        std::printf("dc%d done: %s\n", dc, summary.to_string().c_str());
        wire.push_back(summary.save());  // the envelope that ships to the aggregator
    }

    exact_counter<std::uint64_t, std::uint64_t> exact;
    for (const auto& obs : observers) {
        for (const auto& [id, f] : obs.counts()) {
            exact.update(id, f);
        }
    }

    // The aggregator: restore each envelope from bytes alone and fold.
    std::printf("\naggregator received %d envelopes (%zu + %zu bytes)\n", datacenters,
                wire[0].size(), wire[1].size());
    auto global = restore_summary(wire[0]);
    for (int dc = 1; dc < datacenters; ++dc) {
        const auto part = restore_summary(wire[static_cast<std::size_t>(dc)]);
        global.merge(part);
    }
    std::printf("merged summary: %s\n", global.to_string().c_str());
    std::printf("N check: merged=%.0f exact=%llu\n", global.total_weight(),
                static_cast<unsigned long long>(exact.total_weight()));

    // Threshold-mode queries under both guarantees, phi = 0.1%.
    const double threshold = 0.001 * global.total_weight();
    const auto nfn = global.frequent_items(error_mode::no_false_negatives, threshold);
    const auto nfp = global.frequent_items(error_mode::no_false_positives, threshold);
    const auto truth = exact.heavy_hitters(static_cast<std::uint64_t>(threshold) + 1);
    std::printf("\nphi=%.2f%%: %zu true heavy hitters; no-false-negatives returns %zu, "
                "no-false-positives returns %zu\n",
                100.0 * nfn.phi(), truth.size(), nfn.size(), nfp.size());

    // Validate: bounds bracket the truth for the global top items.
    std::printf("\nglobal heavy hitters (top 8 of %zu, %s):\n", nfn.size(),
                nfn.to_string().c_str());
    std::printf("%20s %14s %14s %14s  ok\n", "id", "lower", "true", "upper");
    int shown = 0;
    for (const auto& r : nfn) {
        if (shown++ >= 8) {
            break;
        }
        const auto f = static_cast<double>(exact.frequency(r.id));
        std::printf("%20s %14.0f %14.0f %14.0f  %s\n", r.item.c_str(), r.lower_bound, f,
                    r.upper_bound, r.lower_bound <= f && f <= r.upper_bound ? "yes" : "NO");
    }
    return 0;
}
