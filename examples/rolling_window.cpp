/// Rolling-window analytics: the §3 motivating deployment — "a company keeps
/// a separate summary for data obtained in each 1-hour period over the
/// course of several years ... summaries can then be seamlessly merged to
/// answer approximate queries about the data of interest."
///
/// This example keeps one sketch per epoch (a "minute" of traffic) and
/// answers "top talkers over the last W minutes" at query time by merging
/// the W most recent epoch sketches — merging is cheap enough (O(k),
/// in place on a scratch copy) to do per query.
///
///   build/examples/rolling_window

#include <cstdio>
#include <deque>
#include <vector>

#include "core/frequent_items_sketch.h"
#include "net/ipv4.h"
#include "stream/generators.h"

int main() {
    using namespace freq;
    using sketch_u64 = frequent_items_sketch<std::uint64_t, std::uint64_t>;

    constexpr std::uint32_t k = 2048;
    constexpr int window_epochs = 5;
    constexpr int total_epochs = 12;

    std::deque<sketch_u64> epochs;  // most recent at the back

    for (int epoch = 0; epoch < total_epochs; ++epoch) {
        // Each epoch sees fresh traffic; epochs 6-8 contain a burst from one
        // source, which must surface in windows covering them and age out
        // afterwards.
        sketch_u64 summary(
            sketch_config{.max_counters = k, .seed = static_cast<std::uint64_t>(epoch)});
        caida_like_generator gen({.num_updates = 300'000,
                                  .num_flows = 60'000,
                                  .seed = 100 + static_cast<std::uint64_t>(epoch)});
        for (const auto& pkt : gen.generate()) {
            summary.update(pkt.id, pkt.weight);
        }
        if (epoch >= 6 && epoch <= 8) {
            const auto attacker = *net::parse_ipv4("203.0.113.99");
            for (int i = 0; i < 30'000; ++i) {
                summary.update(attacker, 12'000);
            }
        }
        epochs.push_back(std::move(summary));
        if (epochs.size() > total_epochs) {
            epochs.pop_front();
        }

        // Query: merge the last `window_epochs` summaries into a scratch
        // sketch (the stored epoch summaries stay untouched).
        const int have = static_cast<int>(epochs.size());
        const int from = std::max(0, have - window_epochs);
        sketch_u64 window(sketch_config{.max_counters = k, .seed = 999});
        for (int i = from; i < have; ++i) {
            window.merge(epochs[i]);
        }
        const auto top = window.top_items(3);
        std::printf("epoch %2d | window [%2d, %2d) | top talkers:", epoch, from, have);
        for (const auto& r : top) {
            std::printf("  %s=%0.2fMbit",
                        net::format_ipv4(static_cast<std::uint32_t>(r.id)).c_str(),
                        static_cast<double>(r.estimate) / 1e6);
        }
        std::printf("%s\n", (epoch >= 6 && epoch <= 10) ? "   <- burst in window" : "");
    }

    std::printf("\nNote how 203.0.113.99 enters the top list at epoch 6 and ages out once"
                " the window slides past epoch 8 + %d.\n", window_epochs - 1);
    return 0;
}
