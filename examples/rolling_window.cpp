/// Rolling-window analytics: the §3 motivating deployment — "a company keeps
/// a separate summary for data obtained in each 1-hour period over the
/// course of several years ... summaries can then be seamlessly merged to
/// answer approximate queries about the data of interest."
///
/// This used to hand-roll a deque of per-epoch sketches; on the runtime
/// façade the whole deployment is one builder line: .sliding_window(5)
/// keeps the epoch ring *inside* the summary, .sharded(2) runs it through
/// the concurrent engine, tick() rotates every shard's window at each epoch
/// boundary (evicting the expired epoch exactly), and every query covers
/// precisely the last `window_epochs` epochs. The per-epoch envelope save
/// at the bottom shows windowed summaries shipping across machines exactly
/// like plain ones (the epoch-ring serde of api/summary_bytes.h).
///
///   build/rolling_window

#include <algorithm>
#include <cstdio>

#include "api/builder.h"
#include "net/ipv4.h"
#include "stream/generators.h"

int main() {
    using namespace freq;

    constexpr std::uint32_t k = 2048;
    constexpr std::uint32_t window_epochs = 5;
    constexpr int total_epochs = 14;  // burst (epochs 6-8) ages out at epoch 13
    constexpr int last_burst_epoch = 8;

    auto window = builder()
                      .max_counters(k)
                      .seed(0)
                      .sliding_window(window_epochs)
                      .sharded(/*shards=*/2)
                      .build();
    auto feeder = window.make_feeder();

    for (int epoch = 0; epoch < total_epochs; ++epoch) {
        // Each epoch sees fresh traffic; epochs 6-8 contain a burst from one
        // source, which must surface in windows covering them and age out
        // afterwards.
        caida_like_generator gen({.num_updates = 300'000,
                                  .num_flows = 60'000,
                                  .seed = 100 + static_cast<std::uint64_t>(epoch)});
        for (const auto& pkt : gen.generate()) {
            feeder.push(pkt.id, static_cast<double>(pkt.weight));
        }
        if (epoch >= 6 && epoch <= last_burst_epoch) {
            const auto attacker = *net::parse_ipv4("203.0.113.99");
            for (int i = 0; i < 30'000; ++i) {
                feeder.push(attacker, 12'000.0);
            }
        }
        feeder.flush();
        window.flush();

        // Query: the result covers exactly the last
        // min(epoch + 1, window_epochs) epochs; no scratch deque, no manual
        // merge loop.
        const auto top = window.top_items(3);
        std::printf("epoch %2d | window covers last %2d epoch(s) | top talkers:", epoch,
                    static_cast<int>(
                        std::min<std::uint64_t>(window.now() + 1, window_epochs)));
        for (const auto& r : top) {
            std::printf("  %s=%0.2fMbit",
                        net::format_ipv4(static_cast<std::uint32_t>(r.id)).c_str(),
                        r.estimate / 1e6);
        }
        const bool burst_in_window =
            epoch >= 6 &&
            epoch <= last_burst_epoch + static_cast<int>(window_epochs) - 1;
        std::printf("%s\n", burst_in_window ? "   <- burst in window" : "");

        // Epoch boundary: every shard rotates its ring, evicting the epoch
        // that slides out of the window.
        window.tick();
    }

    // Windowed summaries ship like plain ones: the envelope carries the
    // epoch ring (absolute epoch numbers included), so the restored summary
    // keeps evicting correctly as its clock advances.
    const auto wire = window.save();
    const auto reopened = restore_summary(wire);
    std::printf("\nenvelope roundtrip: %zu bytes, %s, window N=%.3f Mbit, epoch %llu\n",
                wire.size(), reopened.descriptor().to_string().c_str(),
                reopened.total_weight() / 1e6,
                static_cast<unsigned long long>(reopened.now()));

    std::printf("\nNote how 203.0.113.99 enters the top list at epoch 6 and ages out at"
                " epoch %d, once the window slides past epoch %d.\n",
                last_burst_epoch + static_cast<int>(window_epochs), last_burst_epoch);
    return 0;
}
