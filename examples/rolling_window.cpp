/// Rolling-window analytics: the §3 motivating deployment — "a company keeps
/// a separate summary for data obtained in each 1-hour period over the
/// course of several years ... summaries can then be seamlessly merged to
/// answer approximate queries about the data of interest."
///
/// This used to hand-roll a deque of per-epoch sketches; the epoch_window
/// lifetime policy (core/lifetime_policy.h) now keeps that ring *inside* the
/// sketch, and the sharded engine runs it concurrently: traffic streams
/// through the same producer/ring/worker path as the plain engine,
/// advance_epoch() rotates every shard's window at each epoch boundary
/// (evicting the expired epoch exactly), and snapshot() epoch-aligns the
/// shard windows into one `windowed_frequent_items` whose queries cover
/// precisely the last `window_epochs` epochs.
///
///   build/rolling_window

#include <algorithm>
#include <cstdio>

#include "core/basic_frequent_items.h"
#include "engine/stream_engine.h"
#include "net/ipv4.h"
#include "stream/generators.h"

int main() {
    using namespace freq;
    using window_sketch = windowed_frequent_items<std::uint64_t, std::uint64_t>;

    constexpr std::uint32_t k = 2048;
    constexpr std::uint32_t window_epochs = 5;
    constexpr int total_epochs = 14;  // burst (epochs 6-8) ages out at epoch 13
    constexpr int last_burst_epoch = 8;

    engine_config cfg;
    cfg.num_shards = 2;
    cfg.sketch = sketch_config{
        .max_counters = k, .seed = 0, .window_epochs = window_epochs};
    stream_engine<std::uint64_t, std::uint64_t, window_sketch> engine(cfg);
    auto producer = engine.make_producer();

    for (int epoch = 0; epoch < total_epochs; ++epoch) {
        // Each epoch sees fresh traffic; epochs 6-8 contain a burst from one
        // source, which must surface in windows covering them and age out
        // afterwards.
        caida_like_generator gen({.num_updates = 300'000,
                                  .num_flows = 60'000,
                                  .seed = 100 + static_cast<std::uint64_t>(epoch)});
        for (const auto& pkt : gen.generate()) {
            producer.push(pkt.id, pkt.weight);
        }
        if (epoch >= 6 && epoch <= last_burst_epoch) {
            const auto attacker = *net::parse_ipv4("203.0.113.99");
            for (int i = 0; i < 30'000; ++i) {
                producer.push(attacker, 12'000);
            }
        }
        producer.flush();
        engine.flush();

        // Query: the merged snapshot covers exactly the last
        // min(epoch + 1, window_epochs) epochs; no scratch deque, no manual
        // merge loop.
        const auto window = engine.snapshot();
        const auto top = window.top_items(3);
        std::printf("epoch %2d | window covers last %2d epoch(s) | top talkers:", epoch,
                    static_cast<int>(
                        std::min<std::uint64_t>(window.now() + 1, window_epochs)));
        for (const auto& r : top) {
            std::printf("  %s=%0.2fMbit",
                        net::format_ipv4(static_cast<std::uint32_t>(r.id)).c_str(),
                        static_cast<double>(r.estimate) / 1e6);
        }
        const bool burst_in_window =
            epoch >= 6 &&
            epoch <= last_burst_epoch + static_cast<int>(window_epochs) - 1;
        std::printf("%s\n", burst_in_window ? "   <- burst in window" : "");

        // Epoch boundary: every shard rotates its ring, evicting the epoch
        // that slides out of the window.
        engine.advance_epoch();
    }

    std::printf("\nNote how 203.0.113.99 enters the top list at epoch 6 and ages out at"
                " epoch %d, once the window slides past epoch %d.\n",
                last_burst_epoch + static_cast<int>(window_epochs), last_burst_epoch);
    return 0;
}
