/// Frequent words with real-valued weights — the tf-idf motivation of §1.2.
/// Streams (word, tf-idf) pairs from synthetic "documents" through the
/// string sketch and reports the highest-scoring terms with their
/// spellings; then replays the same stream through the *sharded engine*
/// (fingerprints on the ring hot path, per-shard spelling dictionaries) to
/// show both ingestion paths agree.
///
///   build/examples/word_frequencies

#include <cstdio>
#include <string>
#include <vector>

#include "core/string_frequent_items.h"
#include "engine/stream_engine.h"
#include "random/xoshiro.h"
#include "random/zipf.h"

int main() {
    using namespace freq;

    // Vocabulary: common words get high term frequency but low idf; topical
    // words appear rarely but score high when they do.
    const std::vector<std::pair<std::string, double>> vocabulary = {
        {"the", 0.01},     {"of", 0.01},        {"stream", 1.2},   {"packet", 1.5},
        {"sketch", 2.8},   {"heavy", 1.9},      {"hitter", 2.4},   {"misra", 3.5},
        {"gries", 3.5},    {"quantile", 2.2},   {"merge", 1.7},    {"counter", 1.1},
        {"entropy", 2.6},  {"weighted", 1.4},   {"median", 2.0},   {"datasketch", 3.1},
    };

    string_frequent_items<double> sketch(64, /*seed=*/5);
    xoshiro256ss rng(7);
    zipf_distribution word_pick(vocabulary.size(), 0.9);

    // Stream 500k weighted word occurrences; also pour in long-tail noise
    // words so the sketch must actually evict.
    for (int i = 0; i < 500'000; ++i) {
        if (rng.below(100) < 70) {
            const auto& [word, idf] = vocabulary[word_pick(rng) - 1];
            const double tf = 1.0 + static_cast<double>(rng.below(5));
            sketch.update(word, tf * idf);
        } else {
            sketch.update("noise_" + std::to_string(rng.below(200'000)), 0.05);
        }
    }

    std::printf("processed %.0f total tf-idf mass; max error %.2f\n\n",
                sketch.total_weight(), sketch.maximum_error());
    std::printf("%-14s %12s %12s %12s\n", "term", "estimate", "lower", "upper");
    const auto rows = sketch.frequent_items(error_type::no_false_positives);
    for (std::size_t i = 0; i < std::min<std::size_t>(10, rows.size()); ++i) {
        std::printf("%-14s %12.1f %12.1f %12.1f\n", rows[i].item.c_str(), rows[i].estimate,
                    rows[i].lower_bound, rows[i].upper_bound);
    }

    // The same workload through the sharded engine: producers fingerprint
    // words onto the ring hot path, each shard keeps the spelling slice for
    // its key sub-space, and the merged snapshot reports spelled terms.
    engine_config cfg;
    cfg.num_shards = 2;
    cfg.sketch = sketch_config{.max_counters = 64, .seed = 5};
    stream_engine<std::uint64_t, double, string_frequent_items<double>> engine(cfg);
    {
        auto producer = engine.make_producer();
        xoshiro256ss replay(7);
        zipf_distribution pick(vocabulary.size(), 0.9);
        for (int i = 0; i < 500'000; ++i) {
            if (replay.below(100) < 70) {
                const auto& [word, idf] = vocabulary[pick(replay) - 1];
                producer.push(std::string_view(word),
                              (1.0 + static_cast<double>(replay.below(5))) * idf);
            } else {
                producer.push(std::string_view("noise_" + std::to_string(replay.below(200'000))),
                              0.05);
            }
        }
    }
    engine.flush();
    const auto snap = engine.snapshot();
    const auto st = engine.stats();
    std::printf("\nsharded engine (2 shards): N=%.0f, %llu updates applied, "
                "%llu spellings shipped\n",
                snap.total_weight(),
                static_cast<unsigned long long>(st.updates_applied),
                static_cast<unsigned long long>(st.spellings_applied));
    const auto top = snap.top_items(5);
    for (const auto& r : top) {
        std::printf("  %-14s %12.1f\n", r.item.c_str(), r.estimate);
    }
    return 0;
}
