/// Concurrency tests for the policy-templated engine: stream_engine
/// instantiated with time-fading and sliding-window shard sketches must
/// ingest through the unchanged producer API (rings -> batched drain),
/// advance_epoch() must tick every shard coherently, and merged snapshots
/// must match a sequential policy sketch over the same stream within the
/// policy-adjusted error envelope.

#include "engine/stream_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/basic_frequent_items.h"
#include "core/lifetime_policy.h"
#include "random/xoshiro.h"
#include "random/zipf.h"
#include "stream/update.h"

namespace freq {
namespace {

using fading_engine =
    stream_engine<std::uint64_t, double, fading_frequent_items<std::uint64_t, double>>;
using windowed_engine =
    stream_engine<std::uint64_t, std::uint64_t,
                  windowed_frequent_items<std::uint64_t, std::uint64_t>>;

// P producer threads push epoch-sliced Zipf traffic through fading shards;
// between epochs the engine ticks. The merged snapshot must bracket the
// brute-force decayed frequencies and obey the summed (Theorem 4 + 5)
// envelope on total decayed weight.
TEST(FadingEngine, SnapshotWithinDecayedEnvelope) {
    const double rho = 0.7;
    constexpr std::uint32_t k = 256;
    constexpr int epochs = 6;
    constexpr int per_epoch = 60'000;
    constexpr unsigned producers = 2;

    engine_config cfg;
    cfg.num_shards = 4;
    cfg.num_producers = producers;
    cfg.sketch = sketch_config{.max_counters = k, .seed = 21, .decay = rho};
    fading_engine engine(cfg);

    std::unordered_map<std::uint64_t, double> exact;
    double exact_total = 0.0;

    std::vector<fading_engine::producer> handles;
    handles.reserve(producers);
    for (unsigned p = 0; p < producers; ++p) {
        handles.push_back(engine.make_producer());
    }

    xoshiro256ss gen(2025);
    zipf_distribution zipf(4'000, 1.1);
    for (int epoch = 0; epoch < epochs; ++epoch) {
        // Build this epoch's traffic up front so the exact reference sees
        // the identical multiset the producers push.
        update_stream<std::uint64_t, double> traffic;
        traffic.reserve(per_epoch);
        for (int i = 0; i < per_epoch; ++i) {
            traffic.push_back(
                {zipf(gen), 1.0 + static_cast<double>(gen.below(16))});
        }
        {
            std::vector<std::thread> threads;
            for (unsigned p = 0; p < producers; ++p) {
                threads.emplace_back([&, p] {
                    const std::size_t begin = traffic.size() * p / producers;
                    const std::size_t end = traffic.size() * (p + 1) / producers;
                    handles[p].push(std::span<const update<std::uint64_t, double>>(
                        traffic.data() + begin, end - begin));
                    handles[p].flush();
                });
            }
            for (auto& t : threads) {
                t.join();
            }
        }
        engine.flush();
        for (const auto& u : traffic) {
            exact[u.id] += u.weight;
            exact_total += u.weight;
        }
        if (epoch + 1 < epochs) {
            engine.advance_epoch();
            for (auto& [id, c] : exact) {
                c *= rho;
            }
            exact_total *= rho;
        }
    }

    const auto snap = engine.snapshot();
    const double tol = 1e-6 * exact_total;
    EXPECT_NEAR(snap.total_weight(), exact_total, tol);
    for (const auto& [id, f] : exact) {
        ASSERT_LE(snap.lower_bound(id), f + tol) << id;
        ASSERT_GE(snap.upper_bound(id), f - tol) << id;
    }
    // Per-shard decayed weights sum to the decayed total, so the merged
    // offset keeps the N_decayed / (0.33 k) form.
    EXPECT_LE(snap.maximum_error(), exact_total / (0.33 * k) + tol);

    const auto st = engine.stats();
    EXPECT_EQ(st.updates_enqueued, static_cast<std::uint64_t>(epochs) * per_epoch);
    EXPECT_EQ(st.updates_applied, st.updates_enqueued);
}

// Windowed shards through the same rings: epochs are integral, so window
// totals are exact; keys whose epochs slid out of the window must vanish
// from the merged snapshot entirely.
TEST(WindowedEngine, SnapshotCoversExactlyTheWindow) {
    constexpr std::uint32_t window = 3;
    constexpr std::uint32_t k = 512;
    constexpr int epochs = 7;
    constexpr int per_epoch = 30'000;

    engine_config cfg;
    cfg.num_shards = 3;
    cfg.sketch =
        sketch_config{.max_counters = k, .seed = 9, .window_epochs = window};
    windowed_engine engine(cfg);

    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> per_epoch_counts;
    {
        auto producer = engine.make_producer();
        xoshiro256ss gen(7);
        zipf_distribution zipf(3'000, 1.2);
        for (int epoch = 0; epoch < epochs; ++epoch) {
            per_epoch_counts.emplace_back();
            for (int i = 0; i < per_epoch; ++i) {
                // Key space shifts per epoch so eviction is observable.
                const std::uint64_t id = zipf(gen) + 500ull * epoch;
                const std::uint64_t w = 1 + gen.below(5);
                producer.push(id, w);
                per_epoch_counts.back()[id] += w;
            }
            producer.flush();
            engine.flush();
            if (epoch + 1 < epochs) {
                engine.advance_epoch();
            }
        }
    }

    std::unordered_map<std::uint64_t, std::uint64_t> exact;
    std::uint64_t exact_total = 0;
    for (int e = epochs - window; e < epochs; ++e) {
        for (const auto& [id, w] : per_epoch_counts[e]) {
            exact[id] += w;
            exact_total += w;
        }
    }

    const auto snap = engine.snapshot();
    EXPECT_EQ(snap.now(), static_cast<std::uint64_t>(epochs - 1));
    EXPECT_EQ(snap.total_weight(), exact_total);
    for (const auto& [id, f] : exact) {
        ASSERT_LE(snap.lower_bound(id), f) << id;
        ASSERT_GE(snap.upper_bound(id), f) << id;
    }
    EXPECT_LE(static_cast<double>(snap.maximum_error()),
              static_cast<double>(exact_total) / (0.33 * k));

    // A key that appeared only in the first (evicted) epochs is gone. Pick
    // one present in epoch 0 but absent from the window's key range.
    std::uint64_t evicted_only = 0;
    for (const auto& [id, w] : per_epoch_counts[0]) {
        if (!exact.count(id)) {
            evicted_only = id;
            break;
        }
    }
    ASSERT_NE(evicted_only, 0u);
    EXPECT_EQ(snap.estimate(evicted_only), 0u);

    // The folded window summary answers set queries over the window only.
    const auto folded = snap.summarize();
    EXPECT_EQ(folded.total_weight(), exact_total);
}

// Snapshots and epoch ticks racing live ingestion: never deadlocks, never
// tears — every observed snapshot total is bounded by the weight pushed so
// far, and the epoch-aligned merge absorbs ticks landing between two shard
// clones.
TEST(WindowedEngine, LiveSnapshotsSurviveConcurrentTicks) {
    engine_config cfg;
    cfg.num_shards = 4;
    cfg.sketch = sketch_config{.max_counters = 128, .seed = 3, .window_epochs = 4};
    windowed_engine engine(cfg);

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> snapshots_taken{0};
    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            const auto snap = engine.snapshot();
            // Window totals never exceed the total stream weight.
            EXPECT_LE(snap.total_weight(), 5'000'000u);
            snapshots_taken.fetch_add(1, std::memory_order_relaxed);
        }
    });
    std::thread ticker([&] {
        while (!done.load(std::memory_order_acquire)) {
            engine.advance_epoch();
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });

    {
        auto producer = engine.make_producer();
        xoshiro256ss gen(55);
        for (int i = 0; i < 400'000; ++i) {
            producer.push(gen.below(10'000), 1 + gen.below(4));
        }
        producer.flush();
    }
    engine.flush();
    done.store(true, std::memory_order_release);
    reader.join();
    ticker.join();
    EXPECT_GE(snapshots_taken.load(), 1u);

    const auto snap = engine.snapshot();
    EXPECT_GT(snap.now(), 0u);
}

}  // namespace
}  // namespace freq
