/// The unified serde envelope: any summary instantiation — every lifetime
/// policy, both key kinds, both backends, standalone or engine snapshot —
/// must round-trip bit-exactly (save → restore → save is byte-identical)
/// and answer queries identically after restoration. Also covers the
/// epoch-ring serde (windowed summaries keep evicting correctly after
/// crossing a machine boundary) and the envelope/template-layer interop.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/builder.h"
#include "api/summarizer.h"
#include "api/summary_bytes.h"
#include "core/frequent_items_sketch.h"
#include "stream/generators.h"

namespace freq {
namespace {

update_stream<std::uint64_t, std::uint64_t> small_stream(std::uint64_t seed) {
    zipf_stream_generator gen({.num_updates = 40'000,
                               .num_distinct = 5'000,
                               .alpha = 1.1,
                               .min_weight = 1,
                               .max_weight = 100,
                               .seed = seed});
    return gen.generate();
}

/// Ingests enough (with ticks for aging policies) to exercise decrements,
/// policy clocks and — for text keys — the spelling dictionary.
void feed(summarizer& s, std::uint64_t seed) {
    const bool text = s.descriptor().keys == key_kind::text;
    for (int epoch = 0; epoch < 3; ++epoch) {
        for (const auto& u : small_stream(seed + static_cast<std::uint64_t>(epoch))) {
            if (text) {
                s.update("item" + std::to_string(u.id % 2'000),
                         static_cast<double>(u.weight));
            } else {
                s.update(u.id, static_cast<double>(u.weight));
            }
        }
        if (s.descriptor().lifetime != lifetime_kind::plain && epoch < 2) {
            s.tick();
        }
    }
    s.flush();
}

/// Restored summaries must answer point queries identically — those are
/// layout-independent. (Set queries on *windowed* summaries run an epoch
/// fold whose tie-breaking depends on table slot layout, and the canonical
/// envelope legitimately rebuilds a different layout; their results agree
/// within the error envelope but not bit-for-bit, so they are not compared
/// row-by-row here.)
void expect_same_answers(const summarizer& a, const summarizer& b) {
    EXPECT_EQ(a.descriptor(), b.descriptor());
    EXPECT_DOUBLE_EQ(a.total_weight(), b.total_weight());
    EXPECT_DOUBLE_EQ(a.maximum_error(), b.maximum_error());
    EXPECT_EQ(a.num_counters(), b.num_counters());
    EXPECT_EQ(a.now(), b.now());
    const bool text = a.descriptor().keys == key_kind::text;
    for (const auto& r : a.top_items(32)) {
        if (text) {
            EXPECT_DOUBLE_EQ(a.estimate(r.item), b.estimate(r.item)) << r.item;
            EXPECT_DOUBLE_EQ(a.lower_bound(r.item), b.lower_bound(r.item)) << r.item;
            EXPECT_DOUBLE_EQ(a.upper_bound(r.item), b.upper_bound(r.item)) << r.item;
        } else {
            EXPECT_DOUBLE_EQ(a.estimate(r.id), b.estimate(r.id)) << r.id;
            EXPECT_DOUBLE_EQ(a.lower_bound(r.id), b.lower_bound(r.id)) << r.id;
            EXPECT_DOUBLE_EQ(a.upper_bound(r.id), b.upper_bound(r.id)) << r.id;
        }
    }
}

builder variant(int i) {
    builder b;
    b.max_counters(256).seed(11);
    switch (i) {
        case 0: b.plain(); break;
        case 1: b.fading(0.6); break;
        case 2: b.sliding_window(3); break;
        case 3: b.text_keys().plain(); break;
        case 4: b.text_keys().fading(0.6); break;
        case 5: b.text_keys().sliding_window(3); break;
        case 6: b.map_backend().plain(); break;
        case 7: b.map_backend().fading(0.6); break;
        case 8: b.plain().sharded(2); break;
        case 9: b.fading(0.6).sharded(2); break;
        case 10: b.sliding_window(3).sharded(2); break;
        case 11: b.text_keys().plain().sharded(2); break;
        case 12: b.text_keys().fading(0.6).sharded(2); break;
        case 13: b.text_keys().sliding_window(3).sharded(2); break;
        // The algorithm axis: every baseline instantiation the builder can
        // materialize, standalone and sharded.
        case 14: b.algorithm(algo::count_min).plain(); break;
        case 15: b.algorithm(algo::count_min).real_weights(); break;
        case 16: b.algorithm(algo::count_min).fading(0.6); break;
        case 17: b.algorithm(algo::count_sketch).plain(); break;
        case 18: b.algorithm(algo::space_saving).plain(); break;
        case 19: b.algorithm(algo::space_saving).fading(0.6); break;
        case 20: b.algorithm(algo::count_min).sharded(2); break;
        default: b.algorithm(algo::space_saving).sharded(2); break;
    }
    return b;
}

TEST(ApiEnvelope, BitExactRoundTripForEveryInstantiation) {
    for (int i = 0; i <= 21; ++i) {
        SCOPED_TRACE("variant " + std::to_string(i));
        auto s = variant(i).build();
        feed(s, 100 + static_cast<std::uint64_t>(i));
        const auto first = s.save();
        auto restored = restore_summary(first);
        const auto second = restored.save();
        EXPECT_TRUE(first == second) << "save -> restore -> save not byte-identical";
        if (s.sharded()) {
            expect_same_answers(s.snapshot(), restored);
        } else {
            expect_same_answers(s, restored);
        }
    }
}

TEST(ApiEnvelope, DescriptorSurvivesTheWire) {
    auto s = builder().text_keys().max_counters(128).seed(9).fading(0.75).build();
    s.update("hello", 2.0);
    const auto bytes = s.save();
    EXPECT_EQ(bytes.version(), summary_bytes::current_version);
    const auto& d = bytes.descriptor();
    EXPECT_EQ(d.keys, key_kind::text);
    EXPECT_EQ(d.weights, weight_kind::real);
    EXPECT_EQ(d.lifetime, lifetime_kind::fading);
    EXPECT_EQ(d.backend, backend_kind::table);
    EXPECT_EQ(d.sketch.max_counters, 128u);
    EXPECT_EQ(d.sketch.seed, 9u);
    EXPECT_DOUBLE_EQ(d.sketch.decay, 0.75);
}

TEST(ApiEnvelope, BaselineDescriptorCarriesTheAlgorithmTag) {
    auto s = builder().algorithm(algo::space_saving).max_counters(64).seed(4).build();
    s.update(std::uint64_t{1}, 3.0);
    const auto bytes = s.save();
    EXPECT_EQ(bytes.descriptor().algorithm, algo::space_saving);
    EXPECT_EQ(bytes.bytes()[10], static_cast<std::uint8_t>(algo::space_saving));
    auto restored = restore_summary(bytes);
    EXPECT_EQ(restored.descriptor().algorithm, algo::space_saving);
    EXPECT_DOUBLE_EQ(restored.estimate(1), 3.0);
}

TEST(ApiEnvelope, LegacyMinorImagesRestoreAsThePaperAlgorithm) {
    // Paper envelopes still write the pre-algorithm-tag minor versions (0
    // for u64, 1 for text) with a zero tag byte — byte-identical to what
    // older writers produced — and restore as algo::paper.
    auto u64s = builder().max_counters(32).seed(6).build();
    u64s.update(std::uint64_t{5}, 2.0);
    const auto u64b = u64s.save();
    EXPECT_EQ(u64b.bytes()[9], 0u) << "paper u64 images must stay minor 0";
    EXPECT_EQ(u64b.bytes()[10], 0u) << "legacy images carry a zero algorithm tag";
    EXPECT_EQ(restore_summary(u64b).descriptor().algorithm, algo::paper);

    auto texts = builder().text_keys().max_counters(32).seed(6).build();
    texts.update("word", 2.0);
    const auto textb = texts.save();
    EXPECT_EQ(textb.bytes()[9], 1u) << "paper text images must stay minor 1";
    EXPECT_EQ(textb.bytes()[10], 0u);
    EXPECT_EQ(restore_summary(textb).descriptor().algorithm, algo::paper);

    // A minor-<=1 image claiming a baseline algorithm is from the future of
    // that layout — rejected, not misread.
    auto bad = u64b.bytes();
    bad[10] = static_cast<std::uint8_t>(algo::count_min);
    EXPECT_THROW((void)restore_summary(std::move(bad)), std::invalid_argument);

    // Baseline envelopes need the tagged layout: minor 2.
    auto cms = builder().algorithm(algo::count_min).max_counters(32).build();
    cms.update(std::uint64_t{5}, 2.0);
    EXPECT_EQ(cms.save().bytes()[9], summary_bytes::current_minor_version);
}

TEST(ApiEnvelope, RestoredWindowedSummaryKeepsEvicting) {
    auto s = builder().max_counters(64).sliding_window(3).build();
    s.update(std::uint64_t{42}, 1'000.0);  // lands in epoch 0
    s.tick();
    s.update(std::uint64_t{7}, 10.0);  // epoch 1
    auto restored = restore_summary(s.save());
    EXPECT_EQ(restored.now(), 1u);
    EXPECT_DOUBLE_EQ(restored.estimate(42), 1'000.0);
    restored.tick();  // epoch 2: 42 still inside the 3-epoch window
    EXPECT_DOUBLE_EQ(restored.estimate(42), 1'000.0);
    restored.tick();  // epoch 3: epoch 0 slides out — 42 evicted exactly
    EXPECT_DOUBLE_EQ(restored.estimate(42), 0.0);
    EXPECT_DOUBLE_EQ(restored.estimate(7), 10.0);
}

TEST(ApiEnvelope, RestoredFadingSummaryKeepsDecaying) {
    auto s = builder().max_counters(64).fading(0.5).build();
    s.update(std::uint64_t{1}, 100.0);
    s.tick();
    s.update(std::uint64_t{2}, 100.0);
    auto restored = restore_summary(s.save());
    EXPECT_EQ(restored.now(), 1u);
    EXPECT_DOUBLE_EQ(restored.estimate(1), 50.0);
    EXPECT_DOUBLE_EQ(restored.estimate(2), 100.0);
    restored.tick();
    EXPECT_DOUBLE_EQ(restored.estimate(1), 25.0);
    EXPECT_DOUBLE_EQ(restored.estimate(2), 50.0);
}

TEST(ApiEnvelope, TemplateLayerInterop) {
    // A raw template-layer sketch saves into the same envelope the façade
    // reads, and a façade save loads back into the template layer.
    frequent_items_sketch<std::uint64_t, std::uint64_t> raw(
        sketch_config{.max_counters = 64, .seed = 5});
    raw.update(3, 30);
    raw.update(4, 40);
    auto via_facade = restore_summary(envelope_save(raw));
    EXPECT_DOUBLE_EQ(via_facade.estimate(4), 40.0);

    auto s = builder().max_counters(64).seed(5).build();
    s.update(std::uint64_t{8}, 80.0);
    const auto back = envelope_load<basic_frequent_items<std::uint64_t, std::uint64_t>>(
        s.save());
    EXPECT_EQ(back.estimate(8), 80u);
}

TEST(ApiEnvelope, EngineSnapshotShipsAsStandaloneSummary) {
    auto eng = builder().max_counters(128).seed(2).sharded(2).build();
    const auto stream = small_stream(7);
    eng.update(std::span<const update64>(stream.data(), stream.size()));
    eng.flush();
    auto restored = restore_summary(eng.save());
    EXPECT_FALSE(restored.sharded());
    EXPECT_DOUBLE_EQ(restored.total_weight(), eng.total_weight());
    // Restored snapshots are ordinary summaries: they merge.
    auto other = builder().max_counters(128).seed(3).build();
    other.update(std::uint64_t{1}, 5.0);
    const double n = restored.total_weight() + other.total_weight();
    restored.merge(other);
    EXPECT_DOUBLE_EQ(restored.total_weight(), n);
}

TEST(ApiEnvelope, WrongInstantiationLoadThrows) {
    auto s = builder().max_counters(32).fading(0.5).build();
    s.update(std::uint64_t{1}, 1.0);
    const auto bytes = s.save();
    using plain_u64 = basic_frequent_items<std::uint64_t, std::uint64_t>;
    using fading_text = string_frequent_items<double, exponential_fading>;
    EXPECT_THROW((void)envelope_load<plain_u64>(bytes), std::invalid_argument);
    EXPECT_THROW((void)envelope_load<fading_text>(bytes), std::invalid_argument);
}

TEST(ApiEnvelope, AcceptanceBoundRejectsOversizedCapacityBeforeAllocation) {
    auto big = builder().max_counters(1u << 12).build();
    big.update(std::uint64_t{1}, 5.0);
    const auto bytes = big.save();
    EXPECT_NO_THROW((void)restore_summary(bytes));
    EXPECT_THROW((void)restore_summary(bytes, /*max_accepted_counters=*/1u << 10),
                 std::invalid_argument);
}

TEST(ApiEnvelope, TrailingBytesRejected) {
    auto s = builder().max_counters(32).build();
    s.update(std::uint64_t{1}, 1.0);
    auto bytes = std::move(s.save()).take();
    bytes.push_back(0);
    EXPECT_THROW((void)restore_summary(std::move(bytes)), std::invalid_argument);
}

}  // namespace
}  // namespace freq
