#include "core/med_exact_sketch.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "stream/exact_counter.h"
#include "stream/generators.h"

namespace freq {
namespace {

using med_u64 = med_exact_sketch<std::uint64_t, std::uint64_t>;

TEST(MedExact, RejectsBadParameters) {
    EXPECT_THROW(med_u64(0), std::invalid_argument);
    EXPECT_THROW(med_u64(8, 9), std::invalid_argument);  // k* > k
}

TEST(MedExact, DefaultRankIsHalfK) {
    med_u64 s(100);
    EXPECT_EQ(s.rank(), 50u);
    med_u64 s1(1);
    EXPECT_EQ(s1.rank(), 1u);
}

TEST(MedExact, ExactWhileUnderCapacity) {
    med_u64 s(32);
    for (std::uint64_t i = 0; i < 32; ++i) {
        s.update(i, 10 * (i + 1));
    }
    EXPECT_EQ(s.num_decrements(), 0u);
    for (std::uint64_t i = 0; i < 32; ++i) {
        EXPECT_EQ(s.estimate(i), 10 * (i + 1));
    }
}

TEST(MedExact, DecrementEvictsAtLeastRankCounters) {
    // k = 8, k* = 4: after overflow at least 4 counters must free up
    // (Lemma 3's eviction argument).
    med_u64 s(8, 4);
    for (std::uint64_t i = 0; i < 8; ++i) {
        s.update(i, 100);
    }
    s.update(99, 1);  // forces a decrement of the 4th largest = 100
    EXPECT_EQ(s.num_decrements(), 1u);
    EXPECT_EQ(s.num_counters(), 0u);  // all counters were equal -> all evicted
    EXPECT_EQ(s.maximum_error(), 100u);
}

TEST(MedExact, LargeWeightSurvivesDecrement) {
    med_u64 s(4, 2);
    s.update(1, 10);
    s.update(2, 20);
    s.update(3, 30);
    s.update(4, 40);
    // New item with weight > c_{k*} = 30 gets a counter of 50 - 30 = 20.
    s.update(5, 50);
    EXPECT_EQ(s.lower_bound(5), 20u);
    EXPECT_EQ(s.maximum_error(), 30u);
    // Counters 10, 20, 30 died; 40 -> 10.
    EXPECT_EQ(s.lower_bound(4), 10u);
    EXPECT_EQ(s.lower_bound(1), 0u);
}

// Theorem 2, tested literally: for every j < k*,
//   0 <= f_i - lower_bound(i) <= N^res(j) / (k* - j).
class MedTheorem2 : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(MedTheorem2, TailGuaranteeHolds) {
    const auto [k, alpha] = GetParam();
    med_u64 s(k);  // k* = k/2
    exact_counter<std::uint64_t, std::uint64_t> exact;
    zipf_stream_generator gen({.num_updates = 50'000,
                               .num_distinct = 5'000,
                               .alpha = alpha,
                               .min_weight = 1,
                               .max_weight = 500,
                               .seed = k * 10 + 1});
    for (const auto& u : gen.generate()) {
        s.update(u.id, u.weight);
        exact.update(u.id, u.weight);
    }
    const std::uint32_t kstar = s.rank();
    for (std::uint32_t j = 0; j < kstar; j += std::max(1u, kstar / 8)) {
        const double bound = static_cast<double>(exact.residual_weight(j)) /
                             static_cast<double>(kstar - j);
        for (const auto& [id, f] : exact.counts()) {
            const auto lb = s.lower_bound(id);
            ASSERT_LE(lb, f);
            ASSERT_LE(static_cast<double>(f - lb), bound + 1e-9)
                << "j=" << j << " id=" << id;
        }
    }
    // The offset tracks total decrement mass, so it bounds every error too.
    for (const auto& [id, f] : exact.counts()) {
        ASSERT_GE(s.upper_bound(id), f);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MedTheorem2,
                         ::testing::Combine(::testing::Values(16u, 64u, 128u, 256u),
                                            ::testing::Values(0.8, 1.1, 1.5)));

// Lemma 3: decrements happen at most once every k* updates.
TEST(MedExact, DecrementsAreSpacedByRank) {
    constexpr std::uint32_t k = 64;
    med_u64 s(k);  // k* = 32
    zipf_stream_generator gen({.num_updates = 40'000,
                               .num_distinct = 20'000,
                               .alpha = 0.5,
                               .min_weight = 1,
                               .max_weight = 5,
                               .seed = 17});
    std::uint64_t n = 0;
    for (const auto& u : gen.generate()) {
        s.update(u.id, u.weight);
        ++n;
    }
    ASSERT_GT(s.num_decrements(), 0u);
    EXPECT_LE(s.num_decrements(), n / s.rank() + 1);
}

TEST(MedExact, MergePreservesTheorem5Bound) {
    constexpr std::uint32_t k = 64;
    med_u64 a(k);
    med_u64 b(k);
    exact_counter<std::uint64_t, std::uint64_t> exact;
    zipf_stream_generator ga({.num_updates = 20'000,
                              .num_distinct = 3'000,
                              .alpha = 1.1,
                              .min_weight = 1,
                              .max_weight = 100,
                              .seed = 100});
    zipf_stream_generator gb({.num_updates = 20'000,
                              .num_distinct = 3'000,
                              .alpha = 1.1,
                              .min_weight = 1,
                              .max_weight = 100,
                              .seed = 200});
    for (const auto& u : ga.generate()) {
        a.update(u.id, u.weight);
        exact.update(u.id, u.weight);
    }
    for (const auto& u : gb.generate()) {
        b.update(u.id, u.weight);
        exact.update(u.id, u.weight);
    }
    a.merge(b);
    EXPECT_EQ(a.total_weight(), exact.total_weight());
    // Theorem 5: f_i - lower_bound <= (N - C)/k*.
    std::uint64_t c_sum = 0;
    a.for_each([&](std::uint64_t, std::uint64_t c) { c_sum += c; });
    const double bound = static_cast<double>(exact.total_weight() - c_sum) /
                         static_cast<double>(a.rank());
    for (const auto& [id, f] : exact.counts()) {
        const auto lb = a.lower_bound(id);
        ASSERT_LE(lb, f);
        ASSERT_LE(static_cast<double>(f - lb), bound + 1e-9);
        ASSERT_GE(a.upper_bound(id), f);
    }
}

}  // namespace
}  // namespace freq
