#include "metrics/error.h"
#include "metrics/space.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "baselines/space_saving_heap.h"
#include "core/frequent_items_sketch.h"
#include "stream/exact_counter.h"

namespace freq {
namespace {

// A fake "sketch" with a programmable estimate function.
struct fake_sketch {
    std::unordered_map<std::uint64_t, std::uint64_t> estimates;
    std::uint64_t estimate(std::uint64_t id) const {
        const auto it = estimates.find(id);
        return it == estimates.end() ? 0 : it->second;
    }
};

TEST(ErrorMetrics, ExactSketchHasZeroError) {
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.update(1, 10);
    exact.update(2, 20);
    fake_sketch s{{{1, 10}, {2, 20}}};
    const auto r = evaluate_errors(s, exact);
    EXPECT_EQ(r.max_error, 0.0);
    EXPECT_EQ(r.mean_error, 0.0);
    EXPECT_EQ(r.items_evaluated, 2u);
}

TEST(ErrorMetrics, DirectionalErrorsSeparated) {
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.update(1, 10);  // estimate 13: overestimate by 3
    exact.update(2, 20);  // estimate 15: underestimate by 5
    fake_sketch s{{{1, 13}, {2, 15}}};
    const auto r = evaluate_errors(s, exact);
    EXPECT_DOUBLE_EQ(r.max_error, 5.0);
    EXPECT_DOUBLE_EQ(r.max_overestimate, 3.0);
    EXPECT_DOUBLE_EQ(r.max_underestimate, 5.0);
    EXPECT_DOUBLE_EQ(r.mean_error, 4.0);
}

TEST(ErrorMetrics, MissingItemCountsAsZeroEstimate) {
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.update(7, 42);
    fake_sketch s;
    const auto r = evaluate_errors(s, exact);
    EXPECT_DOUBLE_EQ(r.max_error, 42.0);
    EXPECT_DOUBLE_EQ(r.max_underestimate, 42.0);
}

TEST(HeavyHitterMetrics, PerfectReturnScoresOne) {
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.update(1, 100);
    exact.update(2, 100);
    exact.update(3, 1);
    const auto r = evaluate_heavy_hitters<std::uint64_t, std::uint64_t>({1, 2}, exact, 0.2);
    EXPECT_DOUBLE_EQ(r.precision, 1.0);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
    EXPECT_EQ(r.num_true, 2u);
}

TEST(HeavyHitterMetrics, FalsePositiveLowersPrecision) {
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.update(1, 100);
    exact.update(3, 1);
    const auto r = evaluate_heavy_hitters<std::uint64_t, std::uint64_t>({1, 3}, exact, 0.5);
    EXPECT_DOUBLE_EQ(r.precision, 0.5);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(HeavyHitterMetrics, MissLowersRecall) {
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.update(1, 100);
    exact.update(2, 100);
    const auto r = evaluate_heavy_hitters<std::uint64_t, std::uint64_t>({1}, exact, 0.3);
    EXPECT_DOUBLE_EQ(r.precision, 1.0);
    EXPECT_DOUBLE_EQ(r.recall, 0.5);
}

TEST(HeavyHitterMetrics, EmptySetsScoreOneByConvention) {
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.update(1, 1);
    exact.update(2, 1);  // no item reaches 99% of N, so the true set is empty
    const auto r = evaluate_heavy_hitters<std::uint64_t, std::uint64_t>({}, exact, 0.99);
    EXPECT_DOUBLE_EQ(r.precision, 1.0);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
    EXPECT_EQ(r.num_true, 0u);
}

TEST(SpaceBudget, FindsLargestAffordableK) {
    using sketch = frequent_items_sketch<std::uint64_t, std::uint64_t>;
    const std::size_t budget = sketch::bytes_for(4096);
    const auto k = max_counters_within(budget, sketch::bytes_for);
    EXPECT_GE(sketch::bytes_for(k), sketch::bytes_for(4096));
    EXPECT_LE(sketch::bytes_for(k), budget);
    // One more counter would cross a power-of-two slot boundary eventually:
    // the result must be maximal.
    EXPECT_GT(sketch::bytes_for(k + 1), budget);
}

TEST(SpaceBudget, DifferentModelsGiveDifferentK) {
    using sketch = frequent_items_sketch<std::uint64_t, std::uint64_t>;
    using heap = space_saving_heap<std::uint64_t, std::uint64_t>;
    const std::size_t budget = sketch::bytes_for(8192);
    const auto k_sketch = max_counters_within(budget, sketch::bytes_for);
    const auto k_heap = max_counters_within(budget, heap::bytes_for);
    // The heap's extra index/entry overhead affords fewer counters — the
    // §4.3 equal-space handicap for MHE.
    EXPECT_LT(k_heap, k_sketch);
}

TEST(SpaceBudget, ImpossibleBudgetRejected) {
    using sketch = frequent_items_sketch<std::uint64_t, std::uint64_t>;
    EXPECT_THROW(max_counters_within(1, sketch::bytes_for), std::invalid_argument);
}

TEST(ExactCounter, ResidualWeight) {
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.update(1, 100);
    exact.update(2, 50);
    exact.update(3, 10);
    EXPECT_EQ(exact.residual_weight(0), 160u);
    EXPECT_EQ(exact.residual_weight(1), 60u);
    EXPECT_EQ(exact.residual_weight(2), 10u);
    EXPECT_EQ(exact.residual_weight(3), 0u);
    EXPECT_EQ(exact.residual_weight(99), 0u);
}

TEST(ExactCounter, HeavyHittersThreshold) {
    exact_counter<std::uint64_t, std::uint64_t> exact;
    exact.update(1, 100);
    exact.update(2, 49);
    exact.update(3, 50);
    const auto hh = exact.heavy_hitters(50);
    EXPECT_EQ(hh.size(), 2u);
}

}  // namespace
}  // namespace freq
