/// Unit tests for the memory subsystem (common/mem.h): the sysfs topology
/// parse against a fake tree, the arena's reset/alignment/steady-state
/// contracts, and the page allocator's graceful hugepage fallback chain.
/// Everything here must pass identically with FREQ_NUMA=OFF — the degraded
/// build short-circuits the sysfs parse, and the tests assert the
/// documented degraded view instead of skipping.

#include "common/mem.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

using namespace freq;
namespace fs = std::filesystem;

// --- fake sysfs tree ---------------------------------------------------------

/// Builds a miniature /sys with two NUMA nodes, madvise-mode THP and a
/// 4-page 2 MiB hugepage pool, and removes it on destruction.
class fake_sysfs {
public:
    fake_sysfs() {
        root_ = fs::temp_directory_path() /
                ("freq_mem_test_" + std::to_string(::getpid()));
        fs::remove_all(root_);
        write("devices/system/node/node0/cpulist", "0-1,4\n");
        write("devices/system/node/node1/cpulist", "2-3\n");
        write("kernel/mm/transparent_hugepage/enabled", "always [madvise] never\n");
        write("kernel/mm/hugepages/hugepages-2048kB/nr_hugepages", "4\n");
    }
    ~fake_sysfs() { fs::remove_all(root_); }

    void write(const std::string& rel, const std::string& contents) {
        const fs::path p = root_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream out(p);
        out << contents;
    }

    std::string path() const { return root_.string(); }

private:
    fs::path root_;
};

TEST(MemTopology, ParsesFakeSysfsTree) {
    fake_sysfs sys;
    const mem::topology topo = mem::detect_topology(sys.path());
    if constexpr (!mem::numa_compiled) {
        // Degraded builds never touch the filesystem: single-node view.
        EXPECT_TRUE(topo.nodes.empty());
        EXPECT_EQ(topo.num_nodes(), 1u);
        EXPECT_FALSE(topo.multi_node());
        return;
    }
    ASSERT_EQ(topo.nodes.size(), 2u);
    EXPECT_TRUE(topo.multi_node());
    EXPECT_EQ(topo.nodes[0].id, 0);
    EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 4}));
    EXPECT_EQ(topo.nodes[1].id, 1);
    EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{2, 3}));
    EXPECT_TRUE(topo.thp_available);
    EXPECT_EQ(topo.explicit_hugepage_bytes, 2048u * 1024u);
}

TEST(MemTopology, ThpNeverMeansUnavailable) {
    if constexpr (!mem::numa_compiled) {
        GTEST_SKIP() << "degraded build skips the sysfs parse entirely";
    }
    fake_sysfs sys;
    sys.write("kernel/mm/transparent_hugepage/enabled", "always madvise [never]\n");
    EXPECT_FALSE(mem::detect_topology(sys.path()).thp_available);
}

TEST(MemTopology, MissingRootYieldsDegradedView) {
    const mem::topology topo =
        mem::detect_topology("/nonexistent/freq/sysfs/root");
    EXPECT_TRUE(topo.nodes.empty());
    EXPECT_EQ(topo.num_nodes(), 1u);
    EXPECT_FALSE(topo.multi_node());
    EXPECT_EQ(topo.explicit_hugepage_bytes, 0u);
    EXPECT_FALSE(topo.thp_available);
    EXPECT_EQ(topo.node_for_worker(0), -1);
}

TEST(MemTopology, NodeForWorkerRoundRobins) {
    mem::topology topo;
    topo.nodes.push_back({0, {0, 1}});
    topo.nodes.push_back({1, {2, 3}});
    EXPECT_EQ(topo.node_for_worker(0), 0);
    EXPECT_EQ(topo.node_for_worker(1), 1);
    EXPECT_EQ(topo.node_for_worker(2), 0);
    EXPECT_EQ(topo.node_for_worker(3), 1);
    // Degenerate single-node topologies decline to pin at all.
    topo.nodes.resize(1);
    EXPECT_EQ(topo.node_for_worker(0), -1);
}

TEST(MemTopology, PinRejectsInvalidNodes) {
    mem::topology topo;
    topo.nodes.push_back({0, {0}});
    EXPECT_FALSE(mem::pin_thread_to_node(topo, -1));
    EXPECT_FALSE(mem::pin_thread_to_node(topo, 7));
    mem::topology empty_cpus;
    empty_cpus.nodes.push_back({0, {}});
    EXPECT_FALSE(mem::pin_thread_to_node(empty_cpus, 0));
}

// --- arena -------------------------------------------------------------------

TEST(MemArena, RespectsAlignment) {
    mem::arena a(4096);
    for (const std::size_t align : {1u, 8u, 16u, 64u, 256u}) {
        void* p = a.allocate(3, align);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
            << "alignment " << align;
    }
}

TEST(MemArena, StoreRoundTripsBytes) {
    mem::arena a(4096);
    const std::string_view s1 = a.store("the quick brown fox");
    const std::string_view s2 = a.store("jumps over");
    EXPECT_EQ(s1, "the quick brown fox");
    EXPECT_EQ(s2, "jumps over");
    EXPECT_TRUE(a.store("").empty());
    // Stored views stay valid as the arena grows past its first block.
    std::vector<std::string_view> views;
    for (int i = 0; i < 2000; ++i) {
        views.push_back(a.store("padding-string-" + std::to_string(i)));
    }
    EXPECT_EQ(s1, "the quick brown fox");
    EXPECT_EQ(views[1234], "padding-string-1234");
    EXPECT_GT(a.num_blocks(), 1u);
}

TEST(MemArena, ResetKeepsFirstBlockHot) {
    mem::arena a(4096);
    for (int i = 0; i < 2000; ++i) {
        a.allocate(16);
    }
    ASSERT_GT(a.num_blocks(), 1u);
    const std::size_t reserved_before = a.bytes_reserved();
    a.reset();
    EXPECT_EQ(a.num_blocks(), 1u);
    EXPECT_EQ(a.bytes_used(), 0u);
    EXPECT_LT(a.bytes_reserved(), reserved_before);
    EXPECT_GT(a.bytes_reserved(), 0u);
    // A fill that fits the retained block allocates no new blocks.
    const std::size_t fit = a.bytes_reserved() / 32;
    for (std::size_t i = 0; i < fit; ++i) {
        a.allocate(16, 16);
    }
    EXPECT_EQ(a.num_blocks(), 1u);
}

TEST(MemArena, MoveTransfersOwnership) {
    mem::arena a(4096);
    const std::string_view view = a.store("survives the move");
    mem::arena b(std::move(a));
    EXPECT_EQ(view, "survives the move");
    EXPECT_GT(b.bytes_used(), 0u);
    mem::arena c(4096);
    c = std::move(b);
    EXPECT_EQ(view, "survives the move");
    EXPECT_GT(c.bytes_used(), 0u);
}

TEST(MemArena, GrowsForOversizedRequests) {
    mem::arena a(4096);
    void* p = a.allocate(1 << 20);  // far larger than the block size
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, 1 << 20);
    EXPECT_GE(a.bytes_reserved(), std::size_t{1} << 20);
}

// --- page allocator ----------------------------------------------------------

TEST(MemPageAlloc, HugepageRequestAlwaysFallsBackToUsableMemory) {
    // Containers rarely grant MAP_HUGETLB; the contract is a usable,
    // zeroed buffer regardless of which rung of the fallback chain served
    // it (explicit huge -> THP-advised -> plain map -> operator new).
    mem::page_block block = mem::page_alloc(1 << 20, /*want_hugepages=*/true);
    ASSERT_TRUE(static_cast<bool>(block));
    ASSERT_GE(block.bytes, std::size_t{1} << 20);
    auto* bytes = static_cast<unsigned char*>(block.ptr);
    for (std::size_t i = 0; i < block.bytes; i += 4096) {
        EXPECT_EQ(bytes[i], 0u);
    }
    std::memset(block.ptr, 0x5a, block.bytes);
    mem::page_free(block);
    EXPECT_EQ(block.ptr, nullptr);
    EXPECT_EQ(block.bytes, 0u);
}

TEST(MemPageAlloc, ZeroBytesYieldsEmptyBlock) {
    mem::page_block block = mem::page_alloc(0, false);
    EXPECT_FALSE(static_cast<bool>(block));
    mem::page_free(block);  // must be a safe no-op
}

TEST(MemPageAlloc, AdviseHugepagesRejectsTinyRanges) {
    char tiny[64];
    EXPECT_FALSE(mem::advise_hugepages(tiny, sizeof(tiny)));
    EXPECT_FALSE(mem::advise_hugepages(nullptr, 0));
}

TEST(MemPageAlloc, FirstTouchHandlesNullAndCommitsPages) {
    mem::first_touch(nullptr, 4096);  // must not crash
    mem::page_block block = mem::page_alloc(64 * 1024, false);
    ASSERT_TRUE(static_cast<bool>(block));
    mem::first_touch(block.ptr, block.bytes);
    EXPECT_EQ(static_cast<unsigned char*>(block.ptr)[0], 0u);
    mem::page_free(block);
}

TEST(MemPlacement, ApplyPlacementIsNoopWithoutHugepages) {
    std::vector<std::uint64_t> buf(1024);
    mem::apply_placement(buf.data(), buf.size() * sizeof(std::uint64_t),
                         mem::placement{false, -1});
    mem::apply_placement(nullptr, 0, mem::placement{true, 0});
    // With hugepages requested the call advises THP when the kernel allows
    // it; either way the buffer contents are untouched.
    buf[0] = 42;
    mem::apply_placement(buf.data(), buf.size() * sizeof(std::uint64_t),
                         mem::placement{true, -1});
    EXPECT_EQ(buf[0], 42u);
}

}  // namespace
